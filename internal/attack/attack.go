// Package attack implements the evasion attacks of the paper: the fast
// gradient sign and value methods (Eq. 2), their iterative PGD extension,
// and the power-guided single- and multi-pixel attacks of Section III.
package attack

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// GradientSource supplies loss gradients with respect to the input — in
// white-box attacks the victim network itself, in black-box attacks a
// trained surrogate.
type GradientSource interface {
	// InputGradient returns ∂L/∂u for input u and one-hot target.
	InputGradient(u, target []float64) []float64
	// Inputs returns the input dimensionality.
	Inputs() int
}

// Compile-time check that the software network satisfies GradientSource.
var _ GradientSource = (*nn.Network)(nil)

// FGSM returns the fast gradient sign perturbation u' = u + ε·sgn(∇uL),
// Eq. (2) of the paper. The input is not clipped, matching the paper's
// unconstrained attack-strength sweeps.
func FGSM(g GradientSource, u, target []float64, eps float64) ([]float64, error) {
	if eps < 0 {
		return nil, fmt.Errorf("attack: negative attack strength %v", eps)
	}
	if len(u) != g.Inputs() {
		return nil, fmt.Errorf("attack: input length %d, want %d", len(u), g.Inputs())
	}
	grad := g.InputGradient(u, target)
	out := tensor.CloneVec(u)
	for j, gj := range grad {
		switch {
		case gj > 0:
			out[j] += eps
		case gj < 0:
			out[j] -= eps
		}
	}
	return out, nil
}

// TargetedFGSM returns the targeted variant of Eq. (2): the input moves
// *down* the loss gradient computed against the attacker-chosen target
// class, u' = u − ε·sgn(∇uL(u, target)), steering the model toward
// classifying u' as that class (the paper's "stop sign as speed limit"
// scenario).
func TargetedFGSM(g GradientSource, u, target []float64, eps float64) ([]float64, error) {
	if eps < 0 {
		return nil, fmt.Errorf("attack: negative attack strength %v", eps)
	}
	if len(u) != g.Inputs() {
		return nil, fmt.Errorf("attack: input length %d, want %d", len(u), g.Inputs())
	}
	grad := g.InputGradient(u, target)
	out := tensor.CloneVec(u)
	for j, gj := range grad {
		switch {
		case gj > 0:
			out[j] -= eps
		case gj < 0:
			out[j] += eps
		}
	}
	return out, nil
}

// FGV returns the fast gradient value perturbation u' = u + ε·∇uL/‖∇uL‖₂,
// the FGSM variant that preserves the gradient direction.
func FGV(g GradientSource, u, target []float64, eps float64) ([]float64, error) {
	if eps < 0 {
		return nil, fmt.Errorf("attack: negative attack strength %v", eps)
	}
	if len(u) != g.Inputs() {
		return nil, fmt.Errorf("attack: input length %d, want %d", len(u), g.Inputs())
	}
	grad := g.InputGradient(u, target)
	norm := tensor.Norm2(grad)
	out := tensor.CloneVec(u)
	if norm == 0 {
		return out, nil
	}
	tensor.AxpyInPlace(eps/norm, grad, out)
	return out, nil
}

// PGDConfig controls the projected-gradient-descent attack, the standard
// iterative strengthening of FGSM (an extension beyond the paper's
// single-step attacks).
type PGDConfig struct {
	// Eps is the ℓ∞ ball radius around the clean input.
	Eps float64
	// StepSize is the per-iteration FGSM step.
	StepSize float64
	// Steps is the number of iterations.
	Steps int
	// ClipLo and ClipHi bound the pixel values (use 0,1 for images;
	// set ClipLo == ClipHi to disable).
	ClipLo, ClipHi float64
}

// PGD runs iterated FGSM steps projected back into the ℓ∞ ball of radius
// cfg.Eps around u.
func PGD(g GradientSource, u, target []float64, cfg PGDConfig) ([]float64, error) {
	if cfg.Eps < 0 || cfg.StepSize <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("attack: invalid PGD config %+v", cfg)
	}
	if len(u) != g.Inputs() {
		return nil, fmt.Errorf("attack: input length %d, want %d", len(u), g.Inputs())
	}
	adv := tensor.CloneVec(u)
	for step := 0; step < cfg.Steps; step++ {
		grad := g.InputGradient(adv, target)
		for j, gj := range grad {
			switch {
			case gj > 0:
				adv[j] += cfg.StepSize
			case gj < 0:
				adv[j] -= cfg.StepSize
			}
			// Project into the ℓ∞ ball.
			if adv[j] > u[j]+cfg.Eps {
				adv[j] = u[j] + cfg.Eps
			} else if adv[j] < u[j]-cfg.Eps {
				adv[j] = u[j] - cfg.Eps
			}
			if cfg.ClipHi > cfg.ClipLo {
				if adv[j] < cfg.ClipLo {
					adv[j] = cfg.ClipLo
				} else if adv[j] > cfg.ClipHi {
					adv[j] = cfg.ClipHi
				}
			}
		}
	}
	return adv, nil
}

// ErrNeedNorms indicates a power-guided method was invoked without column
// 1-norm information.
var ErrNeedNorms = errors.New("attack: method requires column 1-norm signals")

// ErrNeedGradient indicates the worst-case method was invoked without a
// gradient source.
var ErrNeedGradient = errors.New("attack: method requires a gradient source")

// PixelMethod enumerates the five single-pixel strategies of Figure 4.
type PixelMethod int

const (
	// PixelRandom perturbs a uniformly random pixel with a random sign
	// ("RP" in the paper).
	PixelRandom PixelMethod = iota + 1
	// PixelNormPlus adds the attack strength at the largest-1-norm pixel
	// ("+").
	PixelNormPlus
	// PixelNormMinus subtracts the attack strength at the largest-1-norm
	// pixel ("-").
	PixelNormMinus
	// PixelNormRandom perturbs the largest-1-norm pixel with a random
	// sign ("RD").
	PixelNormRandom
	// PixelWorst perturbs the most loss-sensitive pixel in the gradient
	// direction — the white-box lower bound ("Worst").
	PixelWorst
)

// String returns the paper's legend label for the method.
func (m PixelMethod) String() string {
	switch m {
	case PixelRandom:
		return "RP"
	case PixelNormPlus:
		return "+"
	case PixelNormMinus:
		return "-"
	case PixelNormRandom:
		return "RD"
	case PixelWorst:
		return "Worst"
	default:
		return fmt.Sprintf("PixelMethod(%d)", int(m))
	}
}

// AllPixelMethods lists the five methods in the paper's legend order.
func AllPixelMethods() []PixelMethod {
	return []PixelMethod{PixelRandom, PixelNormPlus, PixelNormMinus, PixelNormRandom, PixelWorst}
}

// MarshalJSON emits the legend label, the form experiment results carry
// on the wire.
func (m PixelMethod) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON accepts the legend label.
func (m *PixelMethod) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, cand := range AllPixelMethods() {
		if cand.String() == s {
			*m = cand
			return nil
		}
	}
	return fmt.Errorf("attack: unknown pixel method %q", s)
}

// SinglePixel perturbs one pixel of u according to the method.
//   - norms: the power-channel column signals (needed by the Norm methods);
//     only their argmax matters, so uncalibrated signals work.
//   - grad: gradient source (needed by PixelWorst).
//   - src: randomness for the random methods.
//
// It returns the perturbed copy of u.
func SinglePixel(method PixelMethod, u, target []float64, eps float64, norms []float64, grad GradientSource, src *rng.Source) ([]float64, error) {
	if eps < 0 {
		return nil, fmt.Errorf("attack: negative attack strength %v", eps)
	}
	out := tensor.CloneVec(u)
	switch method {
	case PixelRandom:
		if src == nil {
			return nil, errors.New("attack: PixelRandom requires a random source")
		}
		j := src.Intn(len(u))
		if src.Bool() {
			out[j] += eps
		} else {
			out[j] -= eps
		}
	case PixelNormPlus, PixelNormMinus, PixelNormRandom:
		if len(norms) != len(u) {
			return nil, fmt.Errorf("attack: got %d norms for %d inputs: %w", len(norms), len(u), ErrNeedNorms)
		}
		j := tensor.ArgMax(norms)
		switch method {
		case PixelNormPlus:
			out[j] += eps
		case PixelNormMinus:
			out[j] -= eps
		default:
			if src == nil {
				return nil, errors.New("attack: PixelNormRandom requires a random source")
			}
			if src.Bool() {
				out[j] += eps
			} else {
				out[j] -= eps
			}
		}
	case PixelWorst:
		if grad == nil {
			return nil, ErrNeedGradient
		}
		g := grad.InputGradient(u, target)
		j := tensor.ArgMax(tensor.AbsVec(g))
		if g[j] >= 0 {
			out[j] += eps
		} else {
			out[j] -= eps
		}
	default:
		return nil, fmt.Errorf("attack: unknown pixel method %v", method)
	}
	return out, nil
}

// MultiPixel perturbs the k pixels with the largest column 1-norms, each
// with an independent random sign — the paper's multi-pixel observation
// that success decays like (1/2)^N. With worst=true (and a gradient
// source) the k most sensitive pixels are instead perturbed in their
// gradient directions, giving the white-box bound.
func MultiPixel(k int, u, target []float64, eps float64, norms []float64, grad GradientSource, worst bool, src *rng.Source) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("attack: pixel count %d must be positive", k)
	}
	if eps < 0 {
		return nil, fmt.Errorf("attack: negative attack strength %v", eps)
	}
	out := tensor.CloneVec(u)
	if worst {
		if grad == nil {
			return nil, ErrNeedGradient
		}
		g := grad.InputGradient(u, target)
		for _, j := range tensor.TopK(tensor.AbsVec(g), k) {
			if g[j] >= 0 {
				out[j] += eps
			} else {
				out[j] -= eps
			}
		}
		return out, nil
	}
	if len(norms) != len(u) {
		return nil, fmt.Errorf("attack: got %d norms for %d inputs: %w", len(norms), len(u), ErrNeedNorms)
	}
	if src == nil {
		return nil, errors.New("attack: MultiPixel requires a random source")
	}
	for _, j := range tensor.TopK(norms, k) {
		if src.Bool() {
			out[j] += eps
		} else {
			out[j] -= eps
		}
	}
	return out, nil
}

// LossIncrease is a convenience used by tests and examples: the change in
// the victim's loss caused by an adversarial example.
func LossIncrease(victim *nn.Network, clean, adv, target []float64) float64 {
	return victim.LossValue(adv, target) - victim.LossValue(clean, target)
}

// Linf returns the ℓ∞ distance between a clean input and its adversarial
// counterpart, the perturbation-budget metric of Eq. (1).
func Linf(clean, adv []float64) float64 {
	var best float64
	for i := range clean {
		if d := math.Abs(clean[i] - adv[i]); d > best {
			best = d
		}
	}
	return best
}
