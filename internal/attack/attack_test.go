package attack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func trainedNet(t *testing.T, seed int64, act nn.Activation, crit nn.Loss, out, in int) *nn.Network {
	t.Helper()
	n, err := nn.NewNetwork(out, in, act, crit)
	if err != nil {
		t.Fatal(err)
	}
	n.InitXavier(rng.New(seed))
	return n
}

func TestFGSMIncreasesLoss(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := trainedNet(t, seed, nn.ActSoftmax, nn.LossCrossEntropy, 5, 12)
		u := src.UniformVec(12, 0, 1)
		target := make([]float64, 5)
		target[src.Intn(5)] = 1
		adv, err := FGSM(n, u, target, 0.1)
		if err != nil {
			return false
		}
		// FGSM takes the first-order ascent direction; for small eps the
		// loss must not decrease.
		return n.LossValue(adv, target) >= n.LossValue(u, target)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFGSMPerturbationIsEpsSigned(t *testing.T) {
	src := rng.New(4)
	n := trainedNet(t, 4, nn.ActLinear, nn.LossMSE, 3, 8)
	u := src.UniformVec(8, 0, 1)
	target := []float64{1, 0, 0}
	const eps = 0.25
	adv, err := FGSM(n, u, target, eps)
	if err != nil {
		t.Fatal(err)
	}
	g := n.InputGradient(u, target)
	for j := range u {
		d := adv[j] - u[j]
		switch {
		case g[j] > 0 && math.Abs(d-eps) > 1e-12:
			t.Fatalf("pixel %d: d=%v, want +eps", j, d)
		case g[j] < 0 && math.Abs(d+eps) > 1e-12:
			t.Fatalf("pixel %d: d=%v, want -eps", j, d)
		case g[j] == 0 && d != 0:
			t.Fatalf("pixel %d: zero gradient perturbed", j)
		}
	}
	if got := Linf(u, adv); math.Abs(got-eps) > 1e-12 {
		t.Fatalf("Linf = %v, want %v", got, eps)
	}
}

func TestFGSMValidation(t *testing.T) {
	n := trainedNet(t, 1, nn.ActLinear, nn.LossMSE, 2, 4)
	if _, err := FGSM(n, []float64{1, 2, 3, 4}, []float64{1, 0}, -1); err == nil {
		t.Fatal("negative eps must error")
	}
	if _, err := FGSM(n, []float64{1}, []float64{1, 0}, 0.1); err == nil {
		t.Fatal("bad input length must error")
	}
}

func TestFGVDirectionAndMagnitude(t *testing.T) {
	src := rng.New(5)
	n := trainedNet(t, 5, nn.ActLinear, nn.LossMSE, 3, 6)
	u := src.UniformVec(6, 0, 1)
	target := []float64{0, 1, 0}
	const eps = 0.3
	adv, err := FGV(n, u, target, eps)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.SubVec(adv, u)
	if math.Abs(tensor.Norm2(r)-eps) > 1e-9 {
		t.Fatalf("FGV perturbation norm %v, want %v", tensor.Norm2(r), eps)
	}
	// Perturbation parallel to gradient.
	g := n.InputGradient(u, target)
	cos := tensor.Dot(r, g) / (tensor.Norm2(r) * tensor.Norm2(g))
	if math.Abs(cos-1) > 1e-9 {
		t.Fatalf("FGV not parallel to gradient: cos=%v", cos)
	}
}

func TestFGVZeroGradient(t *testing.T) {
	n := trainedNet(t, 6, nn.ActLinear, nn.LossMSE, 2, 3)
	n.W.Fill(0)
	u := []float64{0.5, 0.5, 0.5}
	adv, err := FGV(n, u, []float64{0, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range u {
		if adv[j] != u[j] {
			t.Fatal("zero gradient must leave input unchanged")
		}
	}
}

func TestPGDStaysInBall(t *testing.T) {
	src := rng.New(7)
	n := trainedNet(t, 7, nn.ActSoftmax, nn.LossCrossEntropy, 4, 10)
	u := src.UniformVec(10, 0, 1)
	target := make([]float64, 4)
	target[1] = 1
	cfg := PGDConfig{Eps: 0.1, StepSize: 0.03, Steps: 20, ClipLo: 0, ClipHi: 1}
	adv, err := PGD(n, u, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Linf(u, adv) > cfg.Eps+1e-12 {
		t.Fatalf("PGD escaped the ball: %v", Linf(u, adv))
	}
	for _, v := range adv {
		if v < 0 || v > 1 {
			t.Fatalf("PGD escaped the box: %v", v)
		}
	}
	// PGD must do at least as well as single-step FGSM with the same
	// budget (both unclipped comparisons on the loss).
	fgsm, err := FGSM(n, u, target, cfg.Eps)
	if err != nil {
		t.Fatal(err)
	}
	_ = fgsm
	if n.LossValue(adv, target) < n.LossValue(u, target)-1e-9 {
		t.Fatal("PGD decreased the loss")
	}
}

func TestPGDValidation(t *testing.T) {
	n := trainedNet(t, 8, nn.ActLinear, nn.LossMSE, 2, 3)
	if _, err := PGD(n, []float64{1, 2, 3}, []float64{1, 0}, PGDConfig{Eps: 0.1, StepSize: 0, Steps: 5}); err == nil {
		t.Fatal("zero step must error")
	}
	if _, err := PGD(n, []float64{1}, []float64{1, 0}, PGDConfig{Eps: 0.1, StepSize: 0.1, Steps: 1}); err == nil {
		t.Fatal("bad length must error")
	}
}

func TestPixelMethodStrings(t *testing.T) {
	want := map[PixelMethod]string{
		PixelRandom: "RP", PixelNormPlus: "+", PixelNormMinus: "-",
		PixelNormRandom: "RD", PixelWorst: "Worst",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if len(AllPixelMethods()) != 5 {
		t.Fatal("AllPixelMethods must list 5 methods")
	}
}

func TestSinglePixelNormMethods(t *testing.T) {
	u := []float64{0.5, 0.5, 0.5, 0.5}
	norms := []float64{1, 9, 2, 3}
	const eps = 2.0
	plus, err := SinglePixel(PixelNormPlus, u, nil, eps, norms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plus[1] != 2.5 {
		t.Fatalf("+ method: %v", plus)
	}
	minus, err := SinglePixel(PixelNormMinus, u, nil, eps, norms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if minus[1] != -1.5 {
		t.Fatalf("- method: %v", minus)
	}
	rd, err := SinglePixel(PixelNormRandom, u, nil, eps, norms, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rd[1]-0.5) != eps {
		t.Fatalf("RD method must move pixel 1 by ±eps: %v", rd)
	}
	// Only the argmax pixel moves.
	for j := range u {
		if j == 1 {
			continue
		}
		if plus[j] != u[j] || minus[j] != u[j] || rd[j] != u[j] {
			t.Fatal("non-target pixels must be unchanged")
		}
	}
}

func TestSinglePixelRandomMovesOnePixel(t *testing.T) {
	u := make([]float64, 30)
	adv, err := SinglePixel(PixelRandom, u, nil, 1.5, nil, nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for j := range u {
		if adv[j] != u[j] {
			changed++
			if math.Abs(adv[j]-u[j]) != 1.5 {
				t.Fatalf("wrong magnitude at %d", j)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("changed %d pixels, want 1", changed)
	}
}

func TestSinglePixelWorstUsesGradient(t *testing.T) {
	n := trainedNet(t, 9, nn.ActLinear, nn.LossMSE, 3, 6)
	src := rng.New(9)
	u := src.UniformVec(6, 0, 1)
	target := []float64{1, 0, 0}
	adv, err := SinglePixel(PixelWorst, u, target, 0.7, nil, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := n.InputGradient(u, target)
	jstar := tensor.ArgMax(tensor.AbsVec(g))
	moved := -1
	for j := range u {
		if adv[j] != u[j] {
			moved = j
		}
	}
	if moved != jstar {
		t.Fatalf("worst moved pixel %d, want %d", moved, jstar)
	}
	// Direction must match the gradient sign (loss ascent).
	if (adv[jstar]-u[jstar] > 0) != (g[jstar] >= 0) {
		t.Fatal("worst must move in the gradient direction")
	}
	if n.LossValue(adv, target) < n.LossValue(u, target) {
		t.Fatal("worst-case attack decreased the loss")
	}
}

func TestSinglePixelErrors(t *testing.T) {
	u := []float64{1, 2}
	if _, err := SinglePixel(PixelNormPlus, u, nil, 1, []float64{1}, nil, nil); !errors.Is(err, ErrNeedNorms) {
		t.Fatalf("want ErrNeedNorms, got %v", err)
	}
	if _, err := SinglePixel(PixelWorst, u, nil, 1, nil, nil, nil); !errors.Is(err, ErrNeedGradient) {
		t.Fatalf("want ErrNeedGradient, got %v", err)
	}
	if _, err := SinglePixel(PixelRandom, u, nil, 1, nil, nil, nil); err == nil {
		t.Fatal("RP without src must error")
	}
	if _, err := SinglePixel(PixelNormRandom, u, nil, 1, []float64{1, 2}, nil, nil); err == nil {
		t.Fatal("RD without src must error")
	}
	if _, err := SinglePixel(PixelMethod(0), u, nil, 1, nil, nil, nil); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, err := SinglePixel(PixelRandom, u, nil, -1, nil, nil, rng.New(1)); err == nil {
		t.Fatal("negative eps must error")
	}
}

func TestMultiPixelTopK(t *testing.T) {
	u := make([]float64, 6)
	norms := []float64{5, 1, 9, 2, 8, 0}
	adv, err := MultiPixel(3, u, nil, 1, norms, nil, false, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	wantMoved := map[int]bool{0: true, 2: true, 4: true}
	for j := range u {
		moved := adv[j] != u[j]
		if moved != wantMoved[j] {
			t.Fatalf("pixel %d moved=%v, want %v", j, moved, wantMoved[j])
		}
		if moved && math.Abs(adv[j]) != 1 {
			t.Fatalf("pixel %d magnitude %v", j, adv[j])
		}
	}
}

func TestMultiPixelWorstIncreasesLossMoreThanRandomSigns(t *testing.T) {
	n := trainedNet(t, 11, nn.ActLinear, nn.LossMSE, 4, 20)
	src := rng.New(11)
	u := src.UniformVec(20, 0, 1)
	target := make([]float64, 4)
	target[0] = 1
	worst, err := MultiPixel(5, u, target, 0.5, nil, n, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	norms := make([]float64, 20)
	g := n.InputGradient(u, target)
	for j := range norms {
		norms[j] = math.Abs(g[j]) // same pixel selection, random signs
	}
	rnd, err := MultiPixel(5, u, target, 0.5, norms, nil, false, src)
	if err != nil {
		t.Fatal(err)
	}
	if n.LossValue(worst, target) < n.LossValue(rnd, target)-1e-9 {
		t.Fatal("gradient-signed multi-pixel must dominate random signs on the same pixels")
	}
}

func TestMultiPixelValidation(t *testing.T) {
	u := []float64{1, 2}
	if _, err := MultiPixel(0, u, nil, 1, []float64{1, 2}, nil, false, rng.New(1)); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := MultiPixel(1, u, nil, 1, []float64{1}, nil, false, rng.New(1)); !errors.Is(err, ErrNeedNorms) {
		t.Fatal("want ErrNeedNorms")
	}
	if _, err := MultiPixel(1, u, nil, 1, nil, nil, true, nil); !errors.Is(err, ErrNeedGradient) {
		t.Fatal("want ErrNeedGradient")
	}
	if _, err := MultiPixel(1, u, nil, 1, []float64{1, 2}, nil, false, nil); err == nil {
		t.Fatal("nil src must error")
	}
}

func TestLossIncreaseAndLinf(t *testing.T) {
	n := trainedNet(t, 12, nn.ActLinear, nn.LossMSE, 2, 3)
	u := []float64{0.1, 0.2, 0.3}
	target := []float64{1, 0}
	adv, err := FGSM(n, u, target, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := LossIncrease(n, u, adv, target); got < 0 {
		t.Fatalf("loss increase %v negative for FGSM on linear model", got)
	}
	if Linf(u, u) != 0 {
		t.Fatal("Linf of identical inputs must be 0")
	}
}

func TestTargetedFGSMReducesTargetLoss(t *testing.T) {
	src := rng.New(15)
	n := trainedNet(t, 15, nn.ActSoftmax, nn.LossCrossEntropy, 5, 10)
	u := src.UniformVec(10, 0, 1)
	target := make([]float64, 5)
	target[3] = 1 // attacker-chosen class
	adv, err := TargetedFGSM(n, u, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n.LossValue(adv, target) > n.LossValue(u, target)+1e-9 {
		t.Fatal("targeted FGSM must not increase the target-class loss")
	}
	if _, err := TargetedFGSM(n, u, target, -1); err == nil {
		t.Fatal("negative eps must error")
	}
	if _, err := TargetedFGSM(n, []float64{1}, target, 0.1); err == nil {
		t.Fatal("bad length must error")
	}
}

// MLPs plug into the same attack machinery as single-layer networks.
func TestFGSMOnMLP(t *testing.T) {
	src := rng.New(16)
	m, err := nn.NewMLP([]int{8, 12, 4}, nn.ActReLU, nn.ActSoftmax, nn.LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	m.InitXavier(src)
	var g GradientSource = m
	u := src.UniformVec(8, 0.1, 0.9)
	target := []float64{0, 1, 0, 0}
	adv, err := FGSM(g, u, target, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.LossValue(adv, target) < m.LossValue(u, target)-1e-9 {
		t.Fatal("FGSM on MLP decreased the loss")
	}
}
