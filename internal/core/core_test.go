package core

import (
	"testing"

	"xbarsec/internal/attack"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
)

func tinyScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Kind: dataset.MNIST, TrainN: 250, TestN: 120, Seed: seed,
		Train: nn.TrainConfig{Epochs: 15, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScenarioDefaults(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{TrainN: 200, TestN: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Victim.Act != nn.ActLinear || s.Victim.Crit != nn.LossMSE {
		t.Fatal("defaults must be the paper's linear+MSE head")
	}
	if s.Train.Len() != 200 || s.Test.Len() != 100 {
		t.Fatalf("sizes %d/%d", s.Train.Len(), s.Test.Len())
	}
	acc, err := s.CleanAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("clean accuracy %v suspiciously low", acc)
	}
}

func TestRunPowerProfileAttackEndToEnd(t *testing.T) {
	s := tinyScenario(t, 2)
	res, err := RunPowerProfileAttack(s, PowerProfileOptions{Strength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signals) != s.Victim.Inputs() {
		t.Fatalf("signals %d", len(res.Signals))
	}
	if res.QueriesUsed != s.Victim.Inputs() {
		t.Fatalf("queries %d, want %d", res.QueriesUsed, s.Victim.Inputs())
	}
	if res.TargetPixel < 0 || res.TargetPixel >= s.Victim.Inputs() {
		t.Fatalf("target pixel %d", res.TargetPixel)
	}
	if res.AttackedAccuracy > res.CleanAccuracy {
		t.Fatalf("attack increased accuracy: %v -> %v", res.CleanAccuracy, res.AttackedAccuracy)
	}
}

func TestRunPowerProfileAttackWorstBound(t *testing.T) {
	s := tinyScenario(t, 3)
	plus, err := RunPowerProfileAttack(s, PowerProfileOptions{Method: attack.PixelNormPlus, Strength: 8})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := RunPowerProfileAttack(s, PowerProfileOptions{Method: attack.PixelWorst, Strength: 8})
	if err != nil {
		t.Fatal(err)
	}
	if worst.AttackedAccuracy > plus.AttackedAccuracy+0.05 {
		t.Fatalf("white-box bound %v should not exceed power-guided %v",
			worst.AttackedAccuracy, plus.AttackedAccuracy)
	}
}

func TestRunSurrogateAttackEndToEnd(t *testing.T) {
	s := tinyScenario(t, 4)
	res, err := RunSurrogateAttack(s, SurrogateAttackOptions{
		Mode: oracle.RawOutput, Queries: 120, Lambda: 0.004, Eps: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesUsed != 120 {
		t.Fatalf("queries %d", res.QueriesUsed)
	}
	if res.Model == nil {
		t.Fatal("model must be returned")
	}
	if res.SurrogateAccuracy < 0.3 {
		t.Fatalf("surrogate accuracy %v too low", res.SurrogateAccuracy)
	}
	if res.AttackedAccuracy > res.CleanAccuracy {
		t.Fatalf("attack increased oracle accuracy: %v -> %v", res.CleanAccuracy, res.AttackedAccuracy)
	}
}

func TestNilScenarioRejected(t *testing.T) {
	if _, err := RunPowerProfileAttack(nil, PowerProfileOptions{}); err == nil {
		t.Fatal("nil scenario must error")
	}
	if _, err := RunSurrogateAttack(nil, SurrogateAttackOptions{}); err == nil {
		t.Fatal("nil scenario must error")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := tinyScenario(t, 7)
	b := tinyScenario(t, 7)
	if !a.Victim.W.Equal(b.Victim.W, 0) {
		t.Fatal("scenarios with the same seed must be identical")
	}
}
