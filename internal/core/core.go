// Package core is the high-level facade over the attack stack: it wires
// datasets, victim training, crossbar deployment, the power probe, and
// the attack implementations into the two end-to-end scenarios the paper
// evaluates — the output-free power-profile attack (Case 1, §III) and the
// power-augmented surrogate attack (Case 2, §IV). Examples and downstream
// users should start here; the lower-level packages remain available for
// custom pipelines.
package core

import (
	"errors"
	"fmt"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

// ScenarioConfig describes a deployed victim model.
type ScenarioConfig struct {
	// Kind selects the dataset family (dataset.MNIST or dataset.CIFAR10).
	Kind dataset.Kind
	// Act and Crit select the output head; zero values default to the
	// paper's linear + MSE configuration.
	Act  nn.Activation
	Crit nn.Loss
	// TrainN and TestN size the datasets (defaults 2000/500).
	TrainN, TestN int
	// DataDir optionally points at real MNIST/CIFAR files.
	DataDir string
	// Device is the crossbar technology; zero value = ideal default
	// config.
	Device crossbar.DeviceConfig
	// Train overrides the victim training configuration; zero value uses
	// a converged default.
	Train nn.TrainConfig
	// Seed drives all randomness.
	Seed int64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Kind == 0 {
		c.Kind = dataset.MNIST
	}
	if c.Act == 0 {
		c.Act = nn.ActLinear
	}
	if c.Crit == 0 {
		c.Crit = nn.LossMSE
	}
	if c.Device == (crossbar.DeviceConfig{}) {
		c.Device = crossbar.DefaultDeviceConfig()
	}
	if c.Train.Epochs == 0 {
		c.Train = nn.TrainConfig{Epochs: 30, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true}
		if c.Kind == dataset.CIFAR10 {
			c.Train.LearningRate = 0.001
			c.Train.Epochs = 60
			c.Train.WeightDecay = 0.05
		}
	}
	return c
}

// Scenario is a deployed victim: data, trained weights, and the crossbar
// hosting them.
type Scenario struct {
	// Train and Test are the victim's datasets.
	Train, Test *dataset.Dataset
	// Victim is the software twin of the deployed network.
	Victim *nn.Network
	// Hardware is the crossbar-hosted deployment the attacker faces.
	Hardware *crossbar.Network
	// Seed echoes the scenario seed for derived randomness.
	Seed int64
}

// NewScenario trains and deploys a victim according to cfg.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	train, test, err := dataset.Load(cfg.Kind, src.Split("data"), dataset.LoadOptions{
		DataDir: cfg.DataDir, TrainN: cfg.TrainN, TestN: cfg.TestN,
	})
	if err != nil {
		return nil, fmt.Errorf("core: loading data: %w", err)
	}
	victim, _, err := nn.TrainNew(train, cfg.Act, cfg.Crit, cfg.Train, src.Split("train"))
	if err != nil {
		return nil, fmt.Errorf("core: training victim: %w", err)
	}
	hw, err := crossbar.NewNetwork(victim, cfg.Device, src.Split("program"))
	if err != nil {
		return nil, fmt.Errorf("core: deploying victim: %w", err)
	}
	return &Scenario{Train: train, Test: test, Victim: victim, Hardware: hw, Seed: cfg.Seed}, nil
}

// CleanAccuracy returns the deployed model's test accuracy.
func (s *Scenario) CleanAccuracy() (float64, error) {
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		label, err := s.Hardware.Predict(s.Test.X.Row(i))
		if err != nil {
			return 0, err
		}
		if label == s.Test.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(s.Test.Len()), nil
}

// PowerProfileOptions configures the Case-1 attack.
type PowerProfileOptions struct {
	// Method selects the pixel strategy; zero value = PixelNormPlus (the
	// paper's most effective power-guided method).
	Method attack.PixelMethod
	// Strength is the attack strength ε (default 5).
	Strength float64
	// MeasurementNoise is the relative probe noise (default 0).
	MeasurementNoise float64
	// Repeats averages repeated measurements per basis query (default 1).
	Repeats int
}

// PowerProfileResult reports a Case-1 attack end to end.
type PowerProfileResult struct {
	// Signals are the raw per-column power signals.
	Signals []float64
	// TargetPixel is the argmax-signal input index.
	TargetPixel int
	// QueriesUsed counts power measurements.
	QueriesUsed int
	// CleanAccuracy and AttackedAccuracy are oracle accuracies before and
	// after the single-pixel perturbation.
	CleanAccuracy, AttackedAccuracy float64
}

// RunPowerProfileAttack performs the full Case-1 pipeline: extract the
// column 1-norm profile from supply-current measurements, pick the target
// pixel, perturb every test image, and measure the deployed model's
// accuracy drop.
func RunPowerProfileAttack(s *Scenario, opts PowerProfileOptions) (*PowerProfileResult, error) {
	if s == nil {
		return nil, errors.New("core: nil scenario")
	}
	if opts.Method == 0 {
		opts.Method = attack.PixelNormPlus
	}
	if opts.Strength == 0 {
		opts.Strength = 5
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 1
	}
	src := rng.New(s.Seed).Split("power-profile")
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(s.Hardware.Crossbar()), opts.MeasurementNoise, src.Split("probe"))
	if err != nil {
		return nil, err
	}
	signals, err := probe.ExtractColumnSignals(opts.Repeats)
	if err != nil {
		return nil, fmt.Errorf("core: extracting column signals: %w", err)
	}
	clean, err := s.CleanAccuracy()
	if err != nil {
		return nil, err
	}
	oh := s.Test.OneHot()
	asrc := src.Split("attack")
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		adv, err := attack.SinglePixel(opts.Method, tensor.CloneVec(s.Test.X.Row(i)), oh.Row(i), opts.Strength, signals, s.Victim, asrc)
		if err != nil {
			return nil, fmt.Errorf("core: perturbing sample %d: %w", i, err)
		}
		label, err := s.Hardware.Predict(adv)
		if err != nil {
			return nil, err
		}
		if label == s.Test.Labels[i] {
			correct++
		}
	}
	return &PowerProfileResult{
		Signals:          signals,
		TargetPixel:      tensor.ArgMax(signals),
		QueriesUsed:      probe.Queries(),
		CleanAccuracy:    clean,
		AttackedAccuracy: float64(correct) / float64(s.Test.Len()),
	}, nil
}

// SurrogateAttackOptions configures the Case-2 attack.
type SurrogateAttackOptions struct {
	// Mode selects what queries reveal; zero value = oracle.RawOutput.
	Mode oracle.Mode
	// Queries is the attacker's query budget (default 200).
	Queries int
	// Lambda is the power loss weight λ (default 0.004).
	Lambda float64
	// Eps is the FGSM strength used against the oracle (default 0.1, as
	// in the paper's Figure 5).
	Eps float64
	// Surrogate overrides the surrogate training configuration.
	Surrogate surrogate.Config
}

// SurrogateAttackResult reports a Case-2 attack end to end.
type SurrogateAttackResult struct {
	// SurrogateAccuracy is the stolen model's test accuracy.
	SurrogateAccuracy float64
	// CleanAccuracy and AttackedAccuracy are oracle accuracies before and
	// under surrogate-crafted FGSM.
	CleanAccuracy, AttackedAccuracy float64
	// QueriesUsed counts oracle queries.
	QueriesUsed int
	// Model is the trained surrogate (usable for further attacks).
	Model *surrogate.Model
}

// RunSurrogateAttack performs the full Case-2 pipeline: query the oracle
// (outputs + power), train a surrogate with the Eq. (9) joint loss, craft
// FGSM adversarial examples on it, and measure their transfer to the
// oracle.
func RunSurrogateAttack(s *Scenario, opts SurrogateAttackOptions) (*SurrogateAttackResult, error) {
	if s == nil {
		return nil, errors.New("core: nil scenario")
	}
	if opts.Mode == 0 {
		opts.Mode = oracle.RawOutput
	}
	if opts.Queries <= 0 {
		opts.Queries = 200
	}
	if opts.Eps == 0 {
		opts.Eps = 0.1
	}
	if opts.Surrogate.Epochs == 0 {
		opts.Surrogate = surrogate.DefaultConfig()
		if s.Train.Dim() > 1000 {
			// Dense high-dimensional inputs need a smaller stable rate.
			opts.Surrogate.LearningRate = 0.003
			opts.Surrogate.Epochs = 120
		}
	}
	opts.Surrogate.Lambda = opts.Lambda
	if opts.Lambda == 0 {
		opts.Surrogate.Lambda = 0.004
	}

	src := rng.New(s.Seed).Split("surrogate-attack")
	orc, err := oracle.New(s.Hardware, oracle.Config{Mode: opts.Mode, MeasurePower: true})
	if err != nil {
		return nil, err
	}
	qs, err := oracle.Collect(orc, s.Train, opts.Queries, src.Split("collect"))
	if err != nil {
		return nil, fmt.Errorf("core: collecting queries: %w", err)
	}
	model, err := surrogate.Train(qs, opts.Surrogate, src.Split("fit"))
	if err != nil {
		return nil, fmt.Errorf("core: training surrogate: %w", err)
	}
	clean, err := s.CleanAccuracy()
	if err != nil {
		return nil, err
	}
	oh := s.Test.OneHot()
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		adv, err := attack.FGSM(model.Net, tensor.CloneVec(s.Test.X.Row(i)), oh.Row(i), opts.Eps)
		if err != nil {
			return nil, err
		}
		label, err := s.Hardware.Predict(adv)
		if err != nil {
			return nil, err
		}
		if label == s.Test.Labels[i] {
			correct++
		}
	}
	return &SurrogateAttackResult{
		SurrogateAccuracy: model.Accuracy(s.Test.X, s.Test.Labels),
		CleanAccuracy:     clean,
		AttackedAccuracy:  float64(correct) / float64(s.Test.Len()),
		QueriesUsed:       orc.Queries(),
		Model:             model,
	}, nil
}
