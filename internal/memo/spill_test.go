package memo_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xbarsec/internal/memo"
	"xbarsec/internal/wal"
)

func TestSpillPutGetRoundTrip(t *testing.T) {
	s, err := memo.OpenSpill(wal.OSFS{}, filepath.Join(t.TempDir(), "spill"))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("artifact"), 100)
	if err := s.Put("experiment|fig3|1|0.5|8", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("experiment|fig3|1|0.5|8")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after reload")
	}
	if _, ok, _ := s.Get("experiment|fig3|2|0.5|8"); ok {
		t.Fatal("absent key reported present")
	}
	st := s.Stats()
	if st.Artifacts != 1 || st.Bytes != int64(len(payload)) || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSpillSurvivesReopen is the warm-restart property: a fresh store
// over the same directory inventories and serves what the previous
// process spilled.
func TestSpillSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	s, err := memo.OpenSpill(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", []byte("beta-beta")); err != nil {
		t.Fatal(err)
	}

	s2, err := memo.OpenSpill(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Artifacts != 2 || st.Bytes != int64(len("alpha")+len("beta-beta")) {
		t.Fatalf("reopened inventory = %+v, want 2 artifacts, %d bytes", st, len("alpha")+len("beta-beta"))
	}
	got, ok, err := s2.Get("key-a")
	if err != nil || !ok || string(got) != "alpha" {
		t.Fatalf("reload across reopen: %q ok=%v err=%v", got, ok, err)
	}
}

// TestSpillQuarantine corrupts and truncates spilled files in every way
// that matters: none may be served, each must be quarantined, and the
// quarantined file must not be re-counted on reopen.
func TestSpillQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	s, err := memo.OpenSpill(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	mangle := func(t *testing.T, key string, f func([]byte) []byte) {
		t.Helper()
		if err := s.Put(key, []byte("precious-artifact-bytes")); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(key))
		path := filepath.Join(dir, hex.EncodeToString(sum[:]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, f(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	mangle(t, "bitflip", func(d []byte) []byte { d[len(d)-1] ^= 0xFF; return d })
	mangle(t, "truncated", func(d []byte) []byte { return d[:len(d)/2] })
	mangle(t, "headerless", func(d []byte) []byte { return d[:10] })

	for _, key := range []string{"bitflip", "truncated", "headerless"} {
		got, ok, err := s.Get(key)
		if err != nil {
			t.Fatalf("%s: Get errored: %v", key, err)
		}
		if ok {
			t.Fatalf("%s: corrupt artifact served: %q", key, got)
		}
		// Quarantined, not deleted: the bytes stay for inspection.
		if _, ok, _ := s.Get(key); ok {
			t.Fatalf("%s: corrupt artifact served on second read", key)
		}
	}
	if st := s.Stats(); st.Corrupt != 3 || st.Artifacts != 0 {
		t.Fatalf("stats after quarantine = %+v, want Corrupt=3 Artifacts=0", st)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	quar := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".quarantine") {
			quar++
		}
	}
	if quar != 3 {
		t.Fatalf("%d quarantine files, want 3", quar)
	}

	// Reopen: quarantined files are not inventory.
	s2, err := memo.OpenSpill(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Artifacts != 0 || st.Bytes != 0 {
		t.Fatalf("reopened inventory over quarantine = %+v, want empty", st)
	}
}

// TestSpillSweepsStaleTmp: a crash between create and rename leaves a
// .tmp file; reopening must sweep it and not count it.
func TestSpillSweepsStaleTmp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, strings.Repeat("ab", 32)+".tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := memo.OpenSpill(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Artifacts != 0 {
		t.Fatalf("stale tmp counted as artifact: %+v", st)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale tmp not swept: %v", err)
	}
}

func TestCacheOnEvictSpillsValue(t *testing.T) {
	c := memo.NewWeighted[string](4, 10, func(v string) int64 { return int64(len(v)) })
	var mu sync.Mutex
	spilled := map[string]string{}
	c.SetOnEvict(func(key, val string) {
		mu.Lock()
		spilled[key] = val
		mu.Unlock()
	})
	put := func(k, v string) {
		t.Helper()
		if _, _, err := c.Do(k, func() (string, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "aaaa") // weight 4
	put("b", "bbbb") // weight 8
	put("c", "cccc") // weight 12 -> evicts a
	mu.Lock()
	defer mu.Unlock()
	if spilled["a"] != "aaaa" {
		t.Fatalf("evicted value not handed to hook: %+v", spilled)
	}
	if _, ok := spilled["b"]; ok {
		t.Fatalf("retained value evicted: %+v", spilled)
	}
}

// TestDoPanicIsTypedError: a panicking computation must fail the flight
// with a typed error for the caller AND any joined waiters — before
// this, the waiters would deadlock on a never-closed ready channel.
func TestDoPanicIsTypedError(t *testing.T) {
	c := memo.New[int](8)
	started := make(chan struct{})
	var waitErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		_, _, waitErr = c.Do("boom", func() (int, error) {
			t.Error("waiter recomputed instead of joining the flight")
			return 0, nil
		})
	}()

	_, _, err := c.Do("boom", func() (int, error) {
		close(started)
		// Give the waiter time to join the in-flight entry; joining is a
		// map lookup under the cache mutex, so this is generous.
		time.Sleep(100 * time.Millisecond)
		panic("kaboom")
	})
	var pe *memo.PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("caller error = %v, want PanicError(kaboom)", err)
	}
	wg.Wait()
	if !errors.As(waitErr, &pe) {
		t.Fatalf("waiter error = %v, want PanicError", waitErr)
	}

	// Failed flights are not cached: the key is retryable.
	v, _, err := c.Do("boom", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after panic: %d, %v", v, err)
	}
}
