package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesAndCounts(t *testing.T) {
	c := New[int](0)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	v, cached, err := c.Do("k", compute)
	if err != nil || v != 42 || cached {
		t.Fatalf("first Do: v=%v cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.Do("k", compute)
	if err != nil || v != 42 || !cached {
		t.Fatalf("second Do: v=%v cached=%v err=%v", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
	if c.Size() != 1 {
		t.Fatalf("size %d", c.Size())
	}
}

func TestSingleflightCollapsesConcurrentCallers(t *testing.T) {
	c := New[int](0)
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](0)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Size() != 0 {
		t.Fatalf("failed computation cached (size %d)", c.Size())
	}
	v, cached, err := c.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || cached {
		t.Fatalf("retry after error: v=%v cached=%v err=%v", v, cached, err)
	}
}

func TestRepeatedFailuresDoNotGrowEvictionQueue(t *testing.T) {
	c := New[int](2)
	boom := errors.New("boom")
	for i := 0; i < 100; i++ {
		if _, _, err := c.Do("bad", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	queued := len(c.order)
	c.mu.Unlock()
	if queued != 0 {
		t.Fatalf("eviction queue holds %d entries after failures, want 0", queued)
	}
	// The failing key never displaces live values.
	if _, _, err := c.Do("good", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, _, _ = c.Do("bad", func() (int, error) { return 0, boom })
	}
	if _, cached, _ := c.Do("good", func() (int, error) { return -1, nil }); !cached {
		t.Fatal("live value evicted by failing key churn")
	}
}

func TestFIFOEvictionBound(t *testing.T) {
	c := New[int](2)
	for i := 0; i < 5; i++ {
		_, _, err := c.Do(fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if c.Size() != 2 {
		t.Fatalf("size %d, want bound 2", c.Size())
	}
	// The two newest keys survive; the oldest were evicted.
	if _, cached, _ := c.Do("k4", func() (int, error) { return -1, nil }); !cached {
		t.Fatal("newest key evicted")
	}
	if _, cached, _ := c.Do("k0", func() (int, error) { return -1, nil }); cached {
		t.Fatal("oldest key not evicted")
	}
}

func TestStaleFailingFlightDoesNotEvictNewEntry(t *testing.T) {
	c := New[int](0)
	boom := errors.New("boom")
	inFlight := make(chan struct{})
	release := make(chan struct{})
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		_, _, _ = c.Do("k", func() (int, error) {
			close(inFlight)
			<-release
			return 0, boom
		})
	}()
	<-inFlight
	c.Reset()
	// A new flight for the same key succeeds in the post-Reset map.
	if _, _, err := c.Do("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	// The stale flight fails; it must not evict the new live entry.
	close(release)
	<-staleDone
	v, cached, err := c.Do("k", func() (int, error) { return -1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !cached || v != 5 {
		t.Fatalf("live entry lost after stale flight failed: v=%v cached=%v", v, cached)
	}
}

func TestReset(t *testing.T) {
	c := New[int](0)
	if _, _, err := c.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Size() != 0 {
		t.Fatalf("size %d after reset", c.Size())
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("stats %d/%d after reset", hits, misses)
	}
	if _, cached, _ := c.Do("k", func() (int, error) { return 2, nil }); cached {
		t.Fatal("value survived reset")
	}
}
