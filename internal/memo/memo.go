// Package memo provides a bounded, singleflight memoization cache: the
// concurrency substrate shared by the service layer's artifact cache and
// the experiment engine's victim store. Both memoize values that are
// pure functions of a string key, so the first computation's result is
// every caller's result and concurrent identical requests must collapse
// onto a single computation instead of duplicating work.
package memo

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache memoizes computed values by their exact deterministic key and
// collapses concurrent identical requests onto a single computation
// (singleflight). The cache is bounded: beyond maxEntries — and, when a
// weight function is configured, beyond maxWeight total weight — the
// oldest completed values are evicted FIFO, so a caller sweeping
// distinct keys can cost compute but never unbounded memory. The
// entry-count bound alone cannot protect a cache of unevenly sized
// values (64 CIFAR victims are gigabytes; 64 campaign results are
// kilobytes); the weight bound makes the limit track what the values
// actually pin.
type Cache[V any] struct {
	mu         sync.Mutex
	entries    map[string]*entry[V]
	order      []string // insertion order, the FIFO eviction queue
	maxEntries int
	maxWeight  int64
	weigh      func(V) int64
	weight     int64 // total weight of completed, retained entries
	onEvict    func(key string, val V)

	hits   atomic.Int64
	misses atomic.Int64
}

// PanicError is the error waiters and the panicking caller itself
// receive when a Do computation panics. Without it a panic would unwind
// past the close of the entry's ready channel and every joined waiter
// would block forever; with it a panic is just a failed computation —
// not cached, retryable, and attributable (the service layer maps it to
// a typed internal error on the job).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error renders the recovered panic.
func (p *PanicError) Error() string { return fmt.Sprintf("memo: compute panicked: %v", p.Value) }

type entry[V any] struct {
	ready  chan struct{}
	val    V
	err    error
	done   bool  // set under mu when the computation finished
	weight int64 // weigh(val), accounted while the entry is retained
}

// New returns a cache bounded to maxEntries values (<= 0 selects 4096)
// with no weight bound.
func New[V any](maxEntries int) *Cache[V] {
	return NewWeighted[V](maxEntries, 0, nil)
}

// NewWeighted returns a cache bounded both by entry count and — when
// weigh is non-nil and maxWeight is positive — by total value weight.
// weigh is called once per computed value, outside the cache lock; it
// must be cheap relative to the computation and must not mutate the
// value. The usual weight is an approximate byte size, making maxWeight
// a memory budget. A single value heavier than maxWeight is still
// computed and returned, but is evicted rather than retained.
func NewWeighted[V any](maxEntries int, maxWeight int64, weigh func(V) int64) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if weigh == nil {
		maxWeight = 0
	}
	return &Cache[V]{
		entries:    make(map[string]*entry[V]),
		maxEntries: maxEntries,
		maxWeight:  maxWeight,
		weigh:      weigh,
	}
}

// SetOnEvict installs a hook called with each completed value as it is
// evicted by the size or weight bound — the seam the service layer's
// disk spill hangs off: evicted artifacts leave memory but stay
// servable. The hook runs outside the cache lock (it may do I/O) and is
// not called on Reset, which models a cold process start, not eviction.
// Install before the cache is shared; the field is not synchronized
// against concurrent Do calls.
func (c *Cache[V]) SetOnEvict(fn func(key string, val V)) { c.onEvict = fn }

// Do returns the cached value for key, computing it with compute on a
// miss. Concurrent callers with the same key wait for the one in-flight
// computation instead of duplicating it. Failed computations are not
// cached (the entry is removed so a later retry can succeed); waiters
// joined to a failed flight receive its error.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (val V, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			var zero V
			return zero, false, e.err
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &entry[V]{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.mu.Unlock()
	c.misses.Add(1)
	func() {
		// A panicking compute must not unwind past the bookkeeping below:
		// the ready channel would never close and every joined waiter
		// would block forever. Recover it into a typed error instead —
		// the flight fails like any other and is not cached.
		defer func() {
			if r := recover(); r != nil {
				e.err = &PanicError{Value: r}
			}
		}()
		e.val, e.err = compute()
	}()
	if e.err == nil && c.weigh != nil {
		e.weight = c.weigh(e.val)
	}
	c.mu.Lock()
	e.done = true
	// Only account for the entry this flight installed: after a Reset a
	// stale flight must neither evict a newer live entry that reused its
	// key nor charge its weight against the new generation's budget.
	if cur, ok := c.entries[key]; ok && cur == e {
		if e.err != nil {
			delete(c.entries, key)
			c.removeFromOrderLocked(key)
		} else {
			c.weight += e.weight
		}
	}
	evicted := c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	if c.onEvict != nil {
		for _, ev := range evicted {
			c.onEvict(ev.key, ev.val)
		}
	}
	return e.val, false, e.err
}

// evicted is one (key, value) pair leaving the cache, handed to the
// OnEvict hook outside the lock.
type evicted[V any] struct {
	key string
	val V
}

// removeFromOrderLocked drops key's entry from the eviction queue when
// its computation failed — otherwise repeated failures of one key would
// grow the queue without bound. Scans from the tail: the failing key
// was appended recently.
func (c *Cache[V]) removeFromOrderLocked(key string) {
	for i := len(c.order) - 1; i >= 0; i-- {
		if c.order[i] == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops the oldest completed values until the cache fits
// both its entry bound and (when configured) its weight bound, and
// returns them so the caller can run the OnEvict hook outside the lock.
// In-flight entries are never evicted (their waiters hold the entry
// anyway), and failed entries never linger in the queue (Do removes
// them), so the queue tracks the map exactly.
func (c *Cache[V]) evictLocked() []evicted[V] {
	over := func() bool {
		return len(c.entries) > c.maxEntries ||
			(c.maxWeight > 0 && c.weight > c.maxWeight)
	}
	var out []evicted[V]
	for over() && len(c.order) > 0 {
		k := c.order[0]
		if e, ok := c.entries[k]; ok {
			if !e.done {
				return out
			}
			c.weight -= e.weight
			delete(c.entries, k)
			if c.onEvict != nil {
				out = append(out, evicted[V]{key: k, val: e.val})
			}
		}
		c.order = c.order[1:]
	}
	return out
}

// Stats returns cumulative hit/miss counters.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Size returns the number of cached values.
func (c *Cache[V]) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Weight returns the total weight of retained completed values (0 when
// the cache has no weight function).
func (c *Cache[V]) Weight() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.weight
}

// Reset drops every cached value and zeroes the counters. Tests and
// benchmarks use it to measure the cold path; in-flight computations
// finish but their results are no longer shared with later callers.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*entry[V])
	c.order = nil
	c.weight = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
