package memo

import (
	"errors"
	"fmt"
	"testing"
)

var errTest = errors.New("compute failed")

// weighted builds a cache where each string value weighs its length.
func weighted(maxEntries int, maxWeight int64) *Cache[string] {
	return NewWeighted[string](maxEntries, maxWeight, func(v string) int64 { return int64(len(v)) })
}

func put(t *testing.T, c *Cache[string], key, val string) {
	t.Helper()
	got, _, err := c.Do(key, func() (string, error) { return val, nil })
	if err != nil || got != val {
		t.Fatalf("Do(%q) = %q, %v", key, got, err)
	}
}

func TestWeightEvictionBound(t *testing.T) {
	c := weighted(100, 10)
	put(t, c, "a", "xxxx") // weight 4
	put(t, c, "b", "xxxx") // 8
	if w := c.Weight(); w != 8 {
		t.Fatalf("weight = %d, want 8", w)
	}
	put(t, c, "c", "xxxx") // 12 > 10: evict oldest ("a") -> 8
	if w := c.Weight(); w != 8 {
		t.Fatalf("weight after eviction = %d, want 8", w)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
	// "a" was evicted: recomputed on next request.
	calls := 0
	_, cached, err := c.Do("a", func() (string, error) { calls++; return "xxxx", nil })
	if err != nil || cached || calls != 1 {
		t.Fatalf("evicted key served from cache: cached=%v calls=%d", cached, calls)
	}
	// "c" survived.
	_, cached, err = c.Do("c", func() (string, error) { t.Fatal("recompute"); return "", nil })
	if err != nil || !cached {
		t.Fatal("retained key recomputed")
	}
}

func TestOverweightValueComputedButNotRetained(t *testing.T) {
	c := weighted(100, 5)
	put(t, c, "big", "0123456789") // weight 10 > budget 5
	if c.Size() != 0 || c.Weight() != 0 {
		t.Fatalf("overweight value retained: size %d weight %d", c.Size(), c.Weight())
	}
	// Still correct, just recomputed each time.
	calls := 0
	for i := 0; i < 2; i++ {
		if _, cached, _ := c.Do("big", func() (string, error) { calls++; return "0123456789", nil }); cached {
			t.Fatal("overweight value served from cache")
		}
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestEntryBoundStillApplies(t *testing.T) {
	c := weighted(2, 1<<30)
	for i := 0; i < 4; i++ {
		put(t, c, fmt.Sprint(i), "v")
	}
	if c.Size() != 2 || c.Weight() != 2 {
		t.Fatalf("size %d weight %d, want 2/2", c.Size(), c.Weight())
	}
}

func TestFailedComputeAddsNoWeight(t *testing.T) {
	c := weighted(10, 100)
	_, _, err := c.Do("f", func() (string, error) { return "ignored", errTest })
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
	if c.Weight() != 0 || c.Size() != 0 {
		t.Fatalf("failed compute accounted: size %d weight %d", c.Size(), c.Weight())
	}
}

func TestResetZeroesWeight(t *testing.T) {
	c := weighted(10, 100)
	put(t, c, "a", "xyz")
	c.Reset()
	if c.Weight() != 0 || c.Size() != 0 {
		t.Fatalf("reset left size %d weight %d", c.Size(), c.Weight())
	}
	// Post-reset inserts account from zero.
	put(t, c, "b", "xy")
	if c.Weight() != 2 {
		t.Fatalf("weight = %d, want 2", c.Weight())
	}
}

func TestStaleFlightAfterResetDoesNotLeakWeight(t *testing.T) {
	c := weighted(10, 100)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do("k", func() (string, error) {
			close(started)
			<-release
			return "stale-value", nil
		})
	}()
	<-started
	c.Reset() // the in-flight entry is no longer current
	close(release)
	<-done
	if c.Weight() != 0 || c.Size() != 0 {
		t.Fatalf("stale flight leaked: size %d weight %d", c.Size(), c.Weight())
	}
	// The new generation computes and accounts independently.
	put(t, c, "k", "new")
	if c.Weight() != 3 {
		t.Fatalf("weight = %d, want 3", c.Weight())
	}
}

func TestUnweightedCacheReportsZeroWeight(t *testing.T) {
	c := New[string](4)
	put(t, c, "a", "whatever")
	if c.Weight() != 0 {
		t.Fatalf("unweighted cache weight = %d", c.Weight())
	}
}
