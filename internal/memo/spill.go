package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"xbarsec/internal/wal"
)

// SpillStore is the content-addressed on-disk tier behind the in-memory
// artifact cache: values evicted by the byte-weight bound (and every
// completed job's artifact, written through at completion) land here and
// are served on later misses, so a process restart goes warm instead of
// recomputing hours of campaign work.
//
// Addressing: each artifact is one file named hex(sha256(key)) — keys
// are the same deterministic spec keys the cache uses, so the same spec
// always maps to the same file across restarts. Integrity: the file
// embeds the sha256 of its payload; Get verifies it before serving, and
// a mismatch (bit rot, a torn write that survived rename — anything)
// quarantines the file rather than serving a wrong artifact. Writes are
// tmp+rename atomic, so a crash mid-Put leaves either the previous
// content or nothing, never a half-written artifact at the live name.
//
// File layout: [32-byte sha256 of payload][payload].
type SpillStore struct {
	fsys wal.FS
	dir  string

	// putMu serializes writers of distinct keys only for the counter
	// updates' benefit; same-key writers are already collapsed upstream
	// by the cache's singleflight.
	putMu sync.Mutex

	artifacts atomic.Int64 // live artifact files
	bytes     atomic.Int64 // their total payload bytes
	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	corrupt   atomic.Int64 // files quarantined by failed verification
}

const (
	spillHashSize   = sha256.Size
	spillTmpSuffix  = ".tmp"
	spillQuarSuffix = ".quarantine"
)

// SpillStats is a snapshot of the store's counters for GET /v2/stats.
type SpillStats struct {
	// Artifacts and Bytes describe what is on disk now (preexisting
	// files from earlier runs included).
	Artifacts int64
	Bytes     int64
	// Hits, Misses, Puts and Corrupt count this process's activity:
	// verified reloads, absent keys, artifacts written, and files
	// quarantined by failed integrity checks.
	Hits, Misses, Puts, Corrupt int64
}

// OpenSpill opens (creating if needed) a spill store rooted at dir. It
// scans the directory to seed the artifact/byte counters with what
// earlier runs left behind — that inventory is what makes a restart
// warm — and sweeps stale temporary files from crashed Puts.
func OpenSpill(fsys wal.FS, dir string) (*SpillStore, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: creating spill dir %s: %w", dir, err)
	}
	s := &SpillStore{fsys: fsys, dir: dir}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("memo: scanning spill dir %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, spillTmpSuffix) {
			// A crash between create and rename; the live name never saw it.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, spillQuarSuffix) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		s.artifacts.Add(1)
		if n := info.Size() - spillHashSize; n > 0 {
			s.bytes.Add(n)
		}
	}
	return s, nil
}

// path maps a cache key to its content-addressed file.
func (s *SpillStore) path(key string) string {
	return filepath.Join(s.dir, Addr(key))
}

// Addr returns the content address a key spills under: hex(sha256 of
// the raw key), the file's basename. It is the artifact id of the
// GET /v2/artifacts/{id} endpoints (api.ArtifactID computes the same
// address from the wire side).
func Addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// ValidAddr reports whether s is a well-formed content address: exactly
// the 64 lowercase hex characters Addr produces. Callers serving
// artifacts by client-supplied address must check it first — anything
// else (path separators, "..", uppercase aliases) is rejected rather
// than mapped to a file.
func ValidAddr(s string) bool {
	if len(s) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetAddr reloads one artifact by content address instead of by key,
// with the same verification and quarantine behavior as Get. It backs
// the artifact-serving endpoints, where the requester knows only the
// address. An invalid address is an error, never a path lookup.
func (s *SpillStore) GetAddr(addr string) ([]byte, bool, error) {
	if !ValidAddr(addr) {
		return nil, false, fmt.Errorf("memo: invalid artifact address %q", addr)
	}
	return s.getPath(filepath.Join(s.dir, addr))
}

// Put spills one artifact, atomically. A key already on disk is left
// alone: keys are deterministic spec hashes, so the bytes would be
// identical. Failure leaves no partial file at the live name.
func (s *SpillStore) Put(key string, payload []byte) error {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	path := s.path(key)
	if _, err := s.fsys.Stat(path); err == nil {
		return nil
	}
	tmp := path + spillTmpSuffix
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("memo: spill create: %w", err)
	}
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, spillHashSize+len(payload))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("memo: spill write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("memo: spill sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("memo: spill close: %w", err)
	}
	if err := s.fsys.Rename(tmp, path); err != nil {
		_ = s.fsys.Remove(tmp)
		return fmt.Errorf("memo: spill rename: %w", err)
	}
	s.puts.Add(1)
	s.artifacts.Add(1)
	s.bytes.Add(int64(len(payload)))
	return nil
}

// Get reloads one artifact, verifying its embedded payload hash. A
// missing key is (nil, false, nil). A file that fails verification —
// truncated, bit-flipped, torn — is quarantined (renamed aside, kept
// for inspection) and reported as a miss: the store never serves bytes
// it cannot prove are the artifact that was written.
func (s *SpillStore) Get(key string) ([]byte, bool, error) {
	return s.getPath(s.path(key))
}

// getPath is the shared read/verify/quarantine path behind Get and
// GetAddr.
func (s *SpillStore) getPath(path string) ([]byte, bool, error) {
	f, err := s.fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("memo: spill open: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, false, fmt.Errorf("memo: spill read: %w", err)
	}
	if len(data) < spillHashSize {
		s.quarantine(path, int64(0))
		return nil, false, nil
	}
	payload := data[spillHashSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[:spillHashSize]) {
		s.quarantine(path, int64(len(payload)))
		return nil, false, nil
	}
	s.hits.Add(1)
	return payload, true, nil
}

// quarantine moves a failed file aside and fixes the counters.
func (s *SpillStore) quarantine(path string, payloadBytes int64) {
	s.corrupt.Add(1)
	s.misses.Add(1)
	s.artifacts.Add(-1)
	s.bytes.Add(-payloadBytes)
	if err := s.fsys.Rename(path, path+spillQuarSuffix); err != nil {
		// Renaming aside failed (crashed FS, permissions); removing is the
		// fallback that still stops the corrupt bytes from being served.
		_ = s.fsys.Remove(path)
	}
}

// Stats snapshots the counters.
func (s *SpillStore) Stats() SpillStats {
	return SpillStats{
		Artifacts: s.artifacts.Load(),
		Bytes:     s.bytes.Load(),
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}
