// Package sidechannel implements the attacker's view of the crossbar power
// channel: a measurement probe with optional instrument noise, exact
// column-1-norm extraction through basis queries (Section II-B of the
// paper), and query-efficient search strategies for locating the largest
// 1-norm without measuring every input (the optimization the paper's
// Section III closing remark sketches).
package sidechannel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/linalg"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// PowerMeter is anything whose power draw can be measured for a chosen
// input — in practice a crossbar.Network (the oracle hardware), but tests
// also use synthetic meters.
type PowerMeter interface {
	// Power returns the power consumed while processing u.
	Power(u []float64) (float64, error)
	// Inputs returns the input dimensionality.
	Inputs() int
}

// MeterFromCrossbar adapts a bare crossbar array to the PowerMeter
// interface.
func MeterFromCrossbar(x *crossbar.Crossbar) PowerMeter { return xbarMeter{x} }

type xbarMeter struct{ x *crossbar.Crossbar }

func (m xbarMeter) Power(u []float64) (float64, error) { return m.x.Power(u) }
func (m xbarMeter) Inputs() int                        { return m.x.Cols() }

// Probe is the attacker's measurement apparatus. It counts queries and can
// model instrument noise on top of whatever device noise the crossbar
// itself exhibits.
//
// The query counter is atomic, so goroutines may share a probe over a
// noise-free meter without racing. With instrument noise the shared
// noise stream is mutex-guarded: concurrent measurements are race-free
// but consume the stream in arrival order, so fixed-seed replay of noisy
// readings requires serial use.
type Probe struct {
	meter PowerMeter
	// NoiseStd is the relative instrument noise: each measurement is
	// multiplied by 1 + N(0, NoiseStd).
	noiseStd float64
	src      *rng.Source
	srcMu    sync.Mutex // guards src under concurrent measurements
	queries  atomic.Int64
}

// NewProbe wraps meter. noiseStd is the relative measurement noise; src
// may be nil when noiseStd is 0.
func NewProbe(meter PowerMeter, noiseStd float64, src *rng.Source) (*Probe, error) {
	if meter == nil {
		return nil, errors.New("sidechannel: nil meter")
	}
	if noiseStd < 0 {
		return nil, fmt.Errorf("sidechannel: negative noise std %v", noiseStd)
	}
	if noiseStd > 0 && src == nil {
		return nil, errors.New("sidechannel: noise requested but src is nil")
	}
	return &Probe{meter: meter, noiseStd: noiseStd, src: src}, nil
}

// Queries returns the number of power measurements taken so far.
func (p *Probe) Queries() int { return int(p.queries.Load()) }

// ResetQueries zeroes the query counter.
func (p *Probe) ResetQueries() { p.queries.Store(0) }

// Inputs returns the input dimensionality of the metered device.
func (p *Probe) Inputs() int { return p.meter.Inputs() }

// Measure returns one (possibly noisy) power measurement for input u.
// Only successful measurements count: a meter error leaves the query
// counter unchanged.
func (p *Probe) Measure(u []float64) (float64, error) {
	pw, err := p.meter.Power(u)
	if err != nil {
		return 0, err
	}
	p.queries.Add(1)
	if p.noiseStd > 0 {
		p.srcMu.Lock()
		pw *= 1 + p.src.Normal(0, p.noiseStd)
		p.srcMu.Unlock()
	}
	return pw, nil
}

// MeasureAveraged averages k repeated measurements of u to suppress noise.
func (p *Probe) MeasureAveraged(u []float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("sidechannel: average count %d must be positive", k)
	}
	var sum float64
	for i := 0; i < k; i++ {
		v, err := p.Measure(u)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(k), nil
}

// ExtractColumnSignals measures the power for each basis input e_j (input
// j driven at full scale, all others grounded) and returns the N raw
// power readings. For an ideal crossbar these are Vdd²·G_j — an affine
// function of the column 1-norms ‖W_:,j‖₁, so their ranking equals the
// 1-norm ranking the attacks need. Exactly N queries are used (times
// repeats when repeats > 1).
func (p *Probe) ExtractColumnSignals(repeats int) ([]float64, error) {
	if repeats <= 0 {
		repeats = 1
	}
	n := p.meter.Inputs()
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		v, err := p.MeasureAveraged(tensor.Basis(n, j, 1), repeats)
		if err != nil {
			return nil, fmt.Errorf("sidechannel: basis query %d: %w", j, err)
		}
		out[j] = v
	}
	return out, nil
}

// EstimateColumnSignalsLS recovers the per-column power signals from
// measurements of arbitrary (non-basis) inputs by least squares: since
// power is linear in the input, p(u) = Σ_j u_j·s_j, a set of Q >= N
// input/power pairs determines the signal vector s as the solution of
// U·s = p. This is the stealthier variant of ExtractColumnSignals — the
// attacker can ride along on natural-looking traffic instead of issuing
// conspicuous one-hot probe inputs (the paper's §II-B remark that "the
// unknown values of G_j can be determined through several observations of
// i_total for different input voltages").
func (p *Probe) EstimateColumnSignalsLS(inputs *tensor.Matrix) ([]float64, error) {
	if inputs == nil || inputs.Rows() == 0 {
		return nil, errors.New("sidechannel: no measurement inputs")
	}
	if inputs.Cols() != p.meter.Inputs() {
		return nil, fmt.Errorf("sidechannel: inputs have %d columns, want %d", inputs.Cols(), p.meter.Inputs())
	}
	if inputs.Rows() < inputs.Cols() {
		return nil, fmt.Errorf("sidechannel: need at least %d measurements, got %d", inputs.Cols(), inputs.Rows())
	}
	powers := make([]float64, inputs.Rows())
	for i := range powers {
		v, err := p.Measure(inputs.Row(i))
		if err != nil {
			return nil, fmt.Errorf("sidechannel: measurement %d: %w", i, err)
		}
		powers[i] = v
	}
	signals, err := linalg.LeastSquares(inputs, powers)
	if err != nil {
		return nil, fmt.Errorf("sidechannel: solving for column signals: %w", err)
	}
	return signals, nil
}

// CalibrateColumnNorms converts raw basis-query powers into absolute
// column 1-norm estimates given knowledge of the device configuration and
// array height (number of outputs M): ‖W_:,j‖₁ ≈ (P_j/Vdd² − 2M·GOff)/s.
// The programming scale s must be taken from the crossbar.
func CalibrateColumnNorms(signals []float64, cfg crossbar.DeviceConfig, outputs int, scale float64) []float64 {
	offset := 2 * float64(outputs) * cfg.GOff
	out := make([]float64, len(signals))
	for j, pw := range signals {
		gj := pw / (cfg.Vdd * cfg.Vdd)
		out[j] = (gj - offset) / scale
	}
	return out
}
