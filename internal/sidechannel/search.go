package sidechannel

import (
	"fmt"
	"math"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Query-efficient search for the input column with the largest power
// signal. The paper's Section III notes that when the 1-norm map is
// smooth over pixel locations (MNIST) the maximum could be found with far
// fewer than N queries, while rapidly-varying maps (CIFAR-10) resist such
// search. These strategies make that trade-off measurable (ablation A2 in
// DESIGN.md).

// SearchResult reports where a search strategy believes the largest
// column signal lies and what it cost.
type SearchResult struct {
	// Index is the flattened input index with the (estimated) largest
	// power signal.
	Index int
	// Signal is the measured power at Index.
	Signal float64
	// Queries is the number of power measurements consumed.
	Queries int
}

// ExhaustiveMaxSearch measures every basis input and returns the argmax —
// the N-query baseline the paper's attack uses.
func ExhaustiveMaxSearch(p *Probe) (SearchResult, error) {
	signals, err := p.ExtractColumnSignals(1)
	if err != nil {
		return SearchResult{}, err
	}
	idx := tensor.ArgMax(signals)
	return SearchResult{Index: idx, Signal: signals[idx], Queries: len(signals)}, nil
}

// HillClimbConfig controls the greedy spatial search.
type HillClimbConfig struct {
	// Width and Height give the image geometry used to define pixel
	// neighborhoods. Width*Height must divide the input dimension (the
	// quotient is the channel count; moves stay within a channel).
	Width, Height int
	// Restarts is the number of random starting pixels.
	Restarts int
	// MaxSteps bounds the climb length per restart.
	MaxSteps int
}

// HillClimbMaxSearch greedily climbs the power landscape over the pixel
// lattice: from a random pixel it repeatedly moves to the best 4-connected
// neighbor until no neighbor improves. On smooth maps (MNIST) it finds a
// near-maximal pixel in far fewer than N queries; on rough maps (CIFAR)
// it stalls in local maxima, reproducing the paper's qualitative claim.
func HillClimbMaxSearch(p *Probe, cfg HillClimbConfig, src *rng.Source) (SearchResult, error) {
	n := p.Inputs()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return SearchResult{}, fmt.Errorf("sidechannel: invalid geometry %dx%d", cfg.Width, cfg.Height)
	}
	plane := cfg.Width * cfg.Height
	if plane > n || n%plane != 0 {
		return SearchResult{}, fmt.Errorf("sidechannel: geometry %dx%d incompatible with %d inputs", cfg.Width, cfg.Height, n)
	}
	channels := n / plane
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = plane
	}
	if src == nil {
		return SearchResult{}, fmt.Errorf("sidechannel: hill climb requires a random source")
	}

	cache := make(map[int]float64, 4*cfg.Restarts*cfg.MaxSteps)
	var queries int
	measure := func(idx int) (float64, error) {
		if v, ok := cache[idx]; ok {
			return v, nil
		}
		v, err := p.Measure(tensor.Basis(n, idx, 1))
		if err != nil {
			return 0, err
		}
		queries++
		cache[idx] = v
		return v, nil
	}

	best := SearchResult{Index: -1}
	for r := 0; r < cfg.Restarts; r++ {
		ch := src.Intn(channels)
		x := src.Intn(cfg.Width)
		y := src.Intn(cfg.Height)
		cur := ch*plane + y*cfg.Width + x
		curVal, err := measure(cur)
		if err != nil {
			return SearchResult{}, err
		}
		for step := 0; step < cfg.MaxSteps; step++ {
			bestN, bestV := -1, curVal
			px, py := (cur%plane)%cfg.Width, (cur%plane)/cfg.Width
			base := (cur / plane) * plane
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := px+d[0], py+d[1]
				if nx < 0 || nx >= cfg.Width || ny < 0 || ny >= cfg.Height {
					continue
				}
				cand := base + ny*cfg.Width + nx
				v, err := measure(cand)
				if err != nil {
					return SearchResult{}, err
				}
				if v > bestV {
					bestV, bestN = v, cand
				}
			}
			if bestN < 0 {
				break // local maximum
			}
			cur, curVal = bestN, bestV
		}
		if best.Index < 0 || curVal > best.Signal {
			best = SearchResult{Index: cur, Signal: curVal}
		}
	}
	best.Queries = queries
	return best, nil
}

// AnnealConfig controls the simulated-annealing search.
type AnnealConfig struct {
	// Width and Height give the image geometry (see HillClimbConfig).
	Width, Height int
	// Steps is the annealing schedule length (default 4·(Width+Height)).
	Steps int
	// StartTemp is the initial acceptance temperature relative to the
	// first measured signal (default 0.5).
	StartTemp float64
}

// AnnealMaxSearch searches the power landscape by simulated annealing:
// random jumps of geometrically shrinking radius, accepting downhill
// moves with Boltzmann probability. It is the "standard optimization
// technique" alternative the paper's §III sketches; unlike hill climbing
// it can escape local maxima on moderately rough maps, at the cost of
// more queries.
func AnnealMaxSearch(p *Probe, cfg AnnealConfig, src *rng.Source) (SearchResult, error) {
	n := p.Inputs()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return SearchResult{}, fmt.Errorf("sidechannel: invalid geometry %dx%d", cfg.Width, cfg.Height)
	}
	plane := cfg.Width * cfg.Height
	if plane > n || n%plane != 0 {
		return SearchResult{}, fmt.Errorf("sidechannel: geometry %dx%d incompatible with %d inputs", cfg.Width, cfg.Height, n)
	}
	if src == nil {
		return SearchResult{}, fmt.Errorf("sidechannel: annealing requires a random source")
	}
	channels := n / plane
	if cfg.Steps <= 0 {
		cfg.Steps = 4 * (cfg.Width + cfg.Height)
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 0.5
	}

	cache := make(map[int]float64, cfg.Steps)
	var queries int
	measure := func(idx int) (float64, error) {
		if v, ok := cache[idx]; ok {
			return v, nil
		}
		v, err := p.Measure(tensor.Basis(n, idx, 1))
		if err != nil {
			return 0, err
		}
		queries++
		cache[idx] = v
		return v, nil
	}

	ch := src.Intn(channels)
	x, y := src.Intn(cfg.Width), src.Intn(cfg.Height)
	cur := ch*plane + y*cfg.Width + x
	curVal, err := measure(cur)
	if err != nil {
		return SearchResult{}, err
	}
	best := SearchResult{Index: cur, Signal: curVal}
	temp := cfg.StartTemp * math.Max(curVal, 1e-30)
	cool := math.Pow(1e-3, 1/float64(cfg.Steps)) // end at 0.1% of start
	maxRadius := float64(cfg.Width+cfg.Height) / 2
	for step := 0; step < cfg.Steps; step++ {
		frac := float64(step) / float64(cfg.Steps)
		radius := int(maxRadius*(1-frac)) + 1
		px, py := (cur%plane)%cfg.Width, (cur%plane)/cfg.Width
		nx := px + src.Intn(2*radius+1) - radius
		ny := py + src.Intn(2*radius+1) - radius
		if nx < 0 {
			nx = 0
		} else if nx >= cfg.Width {
			nx = cfg.Width - 1
		}
		if ny < 0 {
			ny = 0
		} else if ny >= cfg.Height {
			ny = cfg.Height - 1
		}
		cand := (cur/plane)*plane + ny*cfg.Width + nx
		candVal, err := measure(cand)
		if err != nil {
			return SearchResult{}, err
		}
		accept := candVal >= curVal
		if !accept && temp > 0 {
			accept = src.Float64() < math.Exp((candVal-curVal)/temp)
		}
		if accept {
			cur, curVal = cand, candVal
		}
		if curVal > best.Signal {
			best = SearchResult{Index: cur, Signal: curVal}
		}
		temp *= cool
	}
	best.Queries = queries
	return best, nil
}
