package sidechannel

import (
	"math"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

func buildCrossbar(t *testing.T, seed int64, m, n int, cfg crossbar.DeviceConfig) (*crossbar.Crossbar, *tensor.Matrix) {
	t.Helper()
	src := rng.New(seed)
	w := tensor.New(m, n)
	d := w.Data()
	for i := range d {
		d[i] = src.Normal(0, 1)
	}
	xb, err := crossbar.Program(w, cfg, src.Split("xbar"))
	if err != nil {
		t.Fatal(err)
	}
	return xb, w
}

func idealCfg() crossbar.DeviceConfig {
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	return cfg
}

func TestNewProbeValidation(t *testing.T) {
	xb, _ := buildCrossbar(t, 1, 3, 4, idealCfg())
	if _, err := NewProbe(nil, 0, nil); err == nil {
		t.Fatal("nil meter must error")
	}
	if _, err := NewProbe(MeterFromCrossbar(xb), -1, nil); err == nil {
		t.Fatal("negative noise must error")
	}
	if _, err := NewProbe(MeterFromCrossbar(xb), 0.1, nil); err == nil {
		t.Fatal("noise without src must error")
	}
}

func TestExtractColumnSignalsExactRecovery(t *testing.T) {
	cfg := idealCfg()
	xb, w := buildCrossbar(t, 2, 5, 9, cfg)
	probe, err := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Queries() != 9 {
		t.Fatalf("queries = %d, want 9", probe.Queries())
	}
	norms := CalibrateColumnNorms(signals, cfg, 5, xb.Scale())
	want := w.ColAbsSums()
	for j := range want {
		if math.Abs(norms[j]-want[j]) > 1e-9 {
			t.Fatalf("column %d: %v, want %v", j, norms[j], want[j])
		}
	}
}

func TestExtractWithGOffOffsetPreservesRanking(t *testing.T) {
	cfg := crossbar.DefaultDeviceConfig() // nonzero GOff
	xb, w := buildCrossbar(t, 3, 6, 12, cfg)
	probe, err := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		t.Fatal(err)
	}
	// Raw signals (uncalibrated) must rank columns identically to the
	// true 1-norms: a rank correlation of exactly 1.
	rho, err := stats.Spearman(signals, w.ColAbsSums())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("ranking not preserved: rho = %v", rho)
	}
	// And calibration recovers absolute values.
	norms := CalibrateColumnNorms(signals, cfg, 6, xb.Scale())
	want := w.ColAbsSums()
	for j := range want {
		if math.Abs(norms[j]-want[j]) > 1e-6 {
			t.Fatalf("column %d: %v, want %v", j, norms[j], want[j])
		}
	}
}

func TestMeasurementNoiseAveragingConverges(t *testing.T) {
	cfg := idealCfg()
	xb, _ := buildCrossbar(t, 4, 4, 6, cfg)
	src := rng.New(10)
	noisy, err := NewProbe(MeterFromCrossbar(xb), 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := src.UniformVec(6, 0.2, 1)
	truth, err := clean.Measure(u)
	if err != nil {
		t.Fatal(err)
	}
	one, err := noisy.Measure(u)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := noisy.MeasureAveraged(u, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-truth) >= math.Abs(one-truth) {
		t.Skipf("averaging did not improve on this draw (one=%v avg=%v truth=%v)", one, avg, truth)
	}
	if math.Abs(avg-truth)/truth > 0.05 {
		t.Fatalf("400-sample average off by %v%%", 100*math.Abs(avg-truth)/truth)
	}
}

func TestMeasureAveragedValidation(t *testing.T) {
	xb, _ := buildCrossbar(t, 5, 3, 3, idealCfg())
	probe, _ := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if _, err := probe.MeasureAveraged([]float64{1, 0, 0}, 0); err == nil {
		t.Fatal("zero repeat count must error")
	}
	if _, err := probe.Measure([]float64{1}); err == nil {
		t.Fatal("wrong input length must propagate error")
	}
}

func TestQueryCounting(t *testing.T) {
	xb, _ := buildCrossbar(t, 6, 3, 5, idealCfg())
	probe, _ := NewProbe(MeterFromCrossbar(xb), 0, nil)
	u := []float64{1, 0, 0, 0, 0}
	for i := 0; i < 3; i++ {
		if _, err := probe.Measure(u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := probe.MeasureAveraged(u, 4); err != nil {
		t.Fatal(err)
	}
	if probe.Queries() != 7 {
		t.Fatalf("queries = %d, want 7", probe.Queries())
	}
	probe.ResetQueries()
	if probe.Queries() != 0 {
		t.Fatal("reset failed")
	}
}

// smoothMeter is a synthetic power landscape over a WxH image, unimodal so
// hill climbing must find the global max.
type smoothMeter struct {
	w, h   int
	peakX  int
	peakY  int
	spread float64
}

func (m smoothMeter) Inputs() int { return m.w * m.h }
func (m smoothMeter) Power(u []float64) (float64, error) {
	// Interpret u as a basis vector; find its index.
	idx := tensor.ArgMax(u)
	x, y := idx%m.w, idx/m.w
	dx, dy := float64(x-m.peakX), float64(y-m.peakY)
	return math.Exp(-(dx*dx + dy*dy) / (2 * m.spread * m.spread)), nil
}

func TestHillClimbFindsPeakOnSmoothMap(t *testing.T) {
	meter := smoothMeter{w: 20, h: 20, peakX: 13, peakY: 6, spread: 6}
	probe, err := NewProbe(meter, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HillClimbMaxSearch(probe, HillClimbConfig{Width: 20, Height: 20, Restarts: 3, MaxSteps: 100}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := 6*20 + 13
	if res.Index != wantIdx {
		t.Fatalf("hill climb found %d, want %d", res.Index, wantIdx)
	}
	if res.Queries >= 400 {
		t.Fatalf("hill climb used %d queries, should beat exhaustive 400", res.Queries)
	}
}

func TestHillClimbValidation(t *testing.T) {
	meter := smoothMeter{w: 4, h: 4, peakX: 0, peakY: 0, spread: 2}
	probe, _ := NewProbe(meter, 0, nil)
	if _, err := HillClimbMaxSearch(probe, HillClimbConfig{Width: 0, Height: 4}, rng.New(1)); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := HillClimbMaxSearch(probe, HillClimbConfig{Width: 5, Height: 5}, rng.New(1)); err == nil {
		t.Fatal("incompatible geometry must error")
	}
	if _, err := HillClimbMaxSearch(probe, HillClimbConfig{Width: 4, Height: 4}, nil); err == nil {
		t.Fatal("nil src must error")
	}
}

func TestExhaustiveSearchMatchesArgmaxOnCrossbar(t *testing.T) {
	cfg := idealCfg()
	xb, w := buildCrossbar(t, 7, 6, 16, cfg)
	probe, _ := NewProbe(MeterFromCrossbar(xb), 0, nil)
	res, err := ExhaustiveMaxSearch(probe)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ArgMax(w.ColAbsSums())
	if res.Index != want {
		t.Fatalf("exhaustive found %d, want %d", res.Index, want)
	}
	if res.Queries != 16 {
		t.Fatalf("queries = %d, want 16", res.Queries)
	}
}

func TestHillClimbOnCrossbarBeatsQueryBudget(t *testing.T) {
	// Build a crossbar whose column 1-norms form a smooth 2D bump, as the
	// paper observes for MNIST.
	const w, h = 12, 12
	src := rng.New(8)
	wm := tensor.New(4, w*h)
	for j := 0; j < w*h; j++ {
		x, y := j%w, j/w
		dx, dy := float64(x-6), float64(y-6)
		mass := math.Exp(-(dx*dx + dy*dy) / 18)
		for i := 0; i < 4; i++ {
			sign := 1.0
			if src.Bool() {
				sign = -1
			}
			wm.Set(i, j, sign*mass/4)
		}
	}
	xb, err := crossbar.Program(wm, idealCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := NewProbe(MeterFromCrossbar(xb), 0, nil)
	res, err := HillClimbMaxSearch(probe, HillClimbConfig{Width: w, Height: h, Restarts: 4, MaxSteps: 60}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	norms := wm.ColAbsSums()
	best := norms[tensor.ArgMax(norms)]
	if res.Signal < 0.9*best*xb.Scale()*idealCfg().Vdd*idealCfg().Vdd {
		t.Fatalf("hill climb found a poor peak: %v of best-signal", res.Signal)
	}
	if res.Queries >= w*h {
		t.Fatalf("hill climb used %d queries, exhaustive needs %d", res.Queries, w*h)
	}
}

func TestEstimateColumnSignalsLSMatchesBasisQueries(t *testing.T) {
	cfg := idealCfg()
	xb, w := buildCrossbar(t, 31, 5, 10, cfg)
	probe, err := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := probe.ExtractColumnSignals(1)
	if err != nil {
		t.Fatal(err)
	}
	// Random natural-looking inputs, Q = 2N measurements.
	src := rng.New(5)
	inputs := tensor.New(20, 10)
	for i := 0; i < inputs.Rows(); i++ {
		inputs.SetRow(i, src.UniformVec(10, 0, 1))
	}
	ls, err := probe.EstimateColumnSignalsLS(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range basis {
		if math.Abs(ls[j]-basis[j]) > 1e-9 {
			t.Fatalf("column %d: LS %v vs basis %v", j, ls[j], basis[j])
		}
	}
	// Sanity: both rank columns like the true 1-norms.
	rho, err := stats.Spearman(ls, w.ColAbsSums())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("LS extraction ranking broken: rho=%v", rho)
	}
}

func TestEstimateColumnSignalsLSNoiseRobustness(t *testing.T) {
	cfg := idealCfg()
	xb, w := buildCrossbar(t, 32, 5, 8, cfg)
	src := rng.New(9)
	probe, err := NewProbe(MeterFromCrossbar(xb), 0.05, src.Split("probe"))
	if err != nil {
		t.Fatal(err)
	}
	// Overdetermined system (Q = 12N) averages the noise down.
	inputs := tensor.New(96, 8)
	for i := 0; i < inputs.Rows(); i++ {
		inputs.SetRow(i, src.UniformVec(8, 0, 1))
	}
	ls, err := probe.EstimateColumnSignalsLS(inputs)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := stats.Spearman(ls, w.ColAbsSums())
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 {
		t.Fatalf("noisy LS extraction rank corr %v too low", rho)
	}
}

func TestEstimateColumnSignalsLSValidation(t *testing.T) {
	xb, _ := buildCrossbar(t, 33, 3, 6, idealCfg())
	probe, _ := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if _, err := probe.EstimateColumnSignalsLS(nil); err == nil {
		t.Fatal("nil inputs must error")
	}
	if _, err := probe.EstimateColumnSignalsLS(tensor.New(3, 6)); err == nil {
		t.Fatal("underdetermined system must error")
	}
	if _, err := probe.EstimateColumnSignalsLS(tensor.New(8, 5)); err == nil {
		t.Fatal("wrong width must error")
	}
}

func TestAnnealFindsPeakOnSmoothMap(t *testing.T) {
	meter := smoothMeter{w: 20, h: 20, peakX: 4, peakY: 15, spread: 6}
	probe, err := NewProbe(meter, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnnealMaxSearch(probe, AnnealConfig{Width: 20, Height: 20, Steps: 200}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Annealing should land at (or adjacent to) the true peak and beat
	// the exhaustive budget.
	px, py := res.Index%20, res.Index/20
	if abs(px-4)+abs(py-15) > 2 {
		t.Fatalf("anneal found (%d,%d), peak at (4,15)", px, py)
	}
	if res.Queries >= 400 {
		t.Fatalf("anneal used %d queries, exhaustive needs 400", res.Queries)
	}
}

func TestAnnealValidation(t *testing.T) {
	meter := smoothMeter{w: 4, h: 4, spread: 2}
	probe, _ := NewProbe(meter, 0, nil)
	if _, err := AnnealMaxSearch(probe, AnnealConfig{Width: 0, Height: 4}, rng.New(1)); err == nil {
		t.Fatal("zero width must error")
	}
	if _, err := AnnealMaxSearch(probe, AnnealConfig{Width: 3, Height: 3}, rng.New(1)); err == nil {
		t.Fatal("incompatible geometry must error")
	}
	if _, err := AnnealMaxSearch(probe, AnnealConfig{Width: 4, Height: 4}, nil); err == nil {
		t.Fatal("nil src must error")
	}
}

// bimodalMeter has a small local bump and a larger global peak, so greedy
// climbing from the wrong basin stalls while annealing can escape.
type bimodalMeter struct{ w, h int }

func (m bimodalMeter) Inputs() int { return m.w * m.h }
func (m bimodalMeter) Power(u []float64) (float64, error) {
	idx := tensor.ArgMax(u)
	x, y := float64(idx%m.w), float64(idx/m.w)
	small := 0.6 * math.Exp(-((x-3)*(x-3)+(y-3)*(y-3))/4)
	big := 1.0 * math.Exp(-((x-16)*(x-16)+(y-16)*(y-16))/4)
	return small + big + 1e-6, nil
}

func TestAnnealEscapesLocalMaximum(t *testing.T) {
	meter := bimodalMeter{w: 20, h: 20}
	probe, err := NewProbe(meter, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Average over a few seeds: annealing should usually reach the global
	// peak's value.
	hits := 0
	const trials = 5
	for s := int64(0); s < trials; s++ {
		res, err := AnnealMaxSearch(probe, AnnealConfig{Width: 20, Height: 20, Steps: 300}, rng.New(100+s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Signal > 0.8 {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("annealing found the global peak in only %d/%d trials", hits, trials)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
