package sidechannel

import (
	"errors"
	"sync"
	"testing"

	"xbarsec/internal/tensor"
)

// failMeter errors on every read; successful-read-only counting is pinned
// against it.
type failMeter struct{ n int }

var errProbeMeter = errors.New("meter fault")

func (m failMeter) Power(u []float64) (float64, error) { return 0, errProbeMeter }
func (m failMeter) Inputs() int                        { return m.n }

func TestMeasureErrorDoesNotCount(t *testing.T) {
	probe, err := NewProbe(failMeter{n: 4}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Measure(tensor.Basis(4, 0, 1)); !errors.Is(err, errProbeMeter) {
		t.Fatalf("want meter fault, got %v", err)
	}
	if q := probe.Queries(); q != 0 {
		t.Fatalf("failed measurement counted: queries = %d", q)
	}
}

func TestProbeCounterExactUnderContention(t *testing.T) {
	xb, _ := buildCrossbar(t, 31, 6, 8, idealCfg())
	probe, err := NewProbe(MeterFromCrossbar(xb), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 200
	u := tensor.Basis(8, 3, 1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := probe.Measure(u); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if q := probe.Queries(); q != goroutines*perG {
		t.Fatalf("queries = %d, want %d", q, goroutines*perG)
	}
}
