package tensor

import (
	"math"
	"testing"
)

// Equivalence harness for the fast backend (ISSUE 9; Gemm joined the
// unrolled group in ISSUE 10). Two contracts are pinned here:
//
//   - VecMatInto, AddOuterInto, SGDMomentumStep must be byte-for-byte
//     identical to the reference at every worker count (partition-only
//     kernels).
//   - Gemm, GemmTB, MatVecInto, GemmTA run unrolled/fused accumulations
//     (chain splits, FMA) and are held to the standard
//     reordered-summation bound |fast−ref| ≤ c·k·eps·Σ|aᵢ·bᵢ| + floor
//     per destination element.
//
// Plus a cross-cutting determinism property: for a fixed input the fast
// backend's bits must not depend on the worker count.

// equivShapes covers serial paths, pool paths (crossing fastMinFlop),
// unroll tails (k ≢ 0 mod 4 and mod 16), degenerate dims, and both
// GemmTB loop orders (m<n, m>n, m=n).
var equivShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 5},
	{4, 16, 4},
	{3, 17, 9},   // k tail of 1 past 16-lane, 1 past 4-chain
	{7, 31, 2},   // narrow dst: exercises asm scalar column tail
	{5, 130, 33}, // k ≡ 2 mod 4
	{32, 300, 10},
	{10, 300, 32}, // GemmTB m<n vs m>n mirror of the line above
	{64, 257, 64}, // square-ish, k ≡ 1 mod 4, > fastMinFlop
	{128, 96, 70}, // > fastMinFlop: pool path under workers>1
	{1, 3072, 10}, // training shapes from the surrogate hot loop
	{33, 128, 128},
}

// dotBound returns the tolerance for one destination element whose exact
// value accumulates k products with total magnitude mag = Σ|aᵢ·bᵢ|:
// c·k·eps·mag covers any reordering of the sum (and FMA's fused
// rounding, which is strictly closer to exact than the separate ops),
// with a tiny absolute floor for all-zero rows.
func dotBound(k int, mag float64) float64 {
	const c = 8
	return c*float64(k)*2.220446049250313e-16*mag + 1e-300
}

func checkBitEqual(t *testing.T, kernel string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %x want %x",
				kernel, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func checkWithin(t *testing.T, kernel string, got, want, mag []float64, k int) {
	t.Helper()
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > dotBound(k, mag[i]) {
			t.Fatalf("%s: element %d off by %g (bound %g, ref %g)",
				kernel, i, d, dotBound(k, mag[i]), want[i])
		}
	}
}

// absDotsMM returns Σ_k |a[i,k]·b[k,j]| per destination element of a·b.
func absDotsMM(a, b *Matrix) []float64 {
	mag := make([]float64, a.rows*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += math.Abs(a.data[i*a.cols+k] * b.data[k*b.cols+j])
			}
			mag[i*b.cols+j] = s
		}
	}
	return mag
}

// absDotsTB returns Σ_k |a[i,k]·b[j,k]| per destination element of a·bᵀ.
func absDotsTB(a, b *Matrix) []float64 {
	mag := make([]float64, a.rows*b.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.rows; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += math.Abs(a.data[i*a.cols+k] * b.data[j*b.cols+k])
			}
			mag[i*b.rows+j] = s
		}
	}
	return mag
}

// absDotsTA returns Σ_s |a[s,f]·b[s,j]| per destination element of aᵀ·b.
func absDotsTA(a, b *Matrix) []float64 {
	mag := make([]float64, a.cols*b.cols)
	for f := 0; f < a.cols; f++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.rows; k++ {
				s += math.Abs(a.data[k*a.cols+f] * b.data[k*b.cols+j])
			}
			mag[f*b.cols+j] = s
		}
	}
	return mag
}

// absDotsMV returns Σ_j |m[i,j]·x[j]| per destination element of m·x.
func absDotsMV(m *Matrix, x []float64) []float64 {
	mag := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += math.Abs(m.data[i*m.cols+j] * x[j])
		}
		mag[i] = s
	}
	return mag
}

func TestFastBitExactKernels(t *testing.T) {
	ref := Reference()
	for _, workers := range []int{1, 2, 5} {
		fast := NewFast(workers)
		r := newTestRand(101)
		for _, sh := range equivShapes {
			x := randomVec(r, sh.m)
			y := randomVec(r, sh.k)

			wantV := make([]float64, sh.k)
			gotV := make([]float64, sh.k)
			m2 := randomMatrix(r, sh.m, sh.k)
			ref.VecMatInto(wantV, x, m2)
			fast.VecMatInto(gotV, x, m2)
			checkBitEqual(t, "VecMatInto", gotV, wantV)

			wantO := randomMatrix(r, sh.m, sh.k)
			gotO := wantO.Clone()
			ref.AddOuterInto(wantO, x, y)
			fast.AddOuterInto(gotO, x, y)
			checkBitEqual(t, "AddOuterInto", gotO.data, wantO.data)

			for _, decay := range []bool{false, true} {
				wRef := randomMatrix(r, sh.m, sh.k)
				vRef := randomMatrix(r, sh.m, sh.k)
				g := randomMatrix(r, sh.m, sh.k)
				wFast := wRef.Clone()
				vFast := vRef.Clone()
				ref.SGDMomentumStep(wRef, vRef, g, 0.9, -0.05, decay, -0.001)
				fast.SGDMomentumStep(wFast, vFast, g, 0.9, -0.05, decay, -0.001)
				checkBitEqual(t, "SGDMomentumStep/w", wFast.data, wRef.data)
				checkBitEqual(t, "SGDMomentumStep/v", vFast.data, vRef.data)
			}
		}
	}
}

func TestFastToleranceKernels(t *testing.T) {
	ref := Reference()
	for _, workers := range []int{1, 2, 5} {
		fast := NewFast(workers)
		r := newTestRand(202)
		for _, sh := range equivShapes {
			a := randomMatrix(r, sh.m, sh.k)
			bMM := randomMatrix(r, sh.k, sh.n)
			wantMM := New(sh.m, sh.n)
			gotMM := New(sh.m, sh.n)
			ref.Gemm(wantMM, a, bMM)
			fast.Gemm(gotMM, a, bMM)
			checkWithin(t, "Gemm", gotMM.data, wantMM.data, absDotsMM(a, bMM), sh.k)

			bT := randomMatrix(r, sh.n, sh.k) // b for GemmTB: n rows of length k
			want := New(sh.m, sh.n)
			got := New(sh.m, sh.n)
			ref.GemmTB(want, a, bT)
			fast.GemmTB(got, a, bT)
			checkWithin(t, "GemmTB", got.data, want.data, absDotsTB(a, bT), sh.k)

			aTA := randomMatrix(r, sh.k, sh.m) // k samples, m features
			bTA := randomMatrix(r, sh.k, sh.n)
			wantTA := New(sh.m, sh.n)
			gotTA := New(sh.m, sh.n)
			ref.GemmTA(wantTA, aTA, bTA)
			fast.GemmTA(gotTA, aTA, bTA)
			checkWithin(t, "GemmTA", gotTA.data, wantTA.data, absDotsTA(aTA, bTA), sh.k)

			x := randomVec(r, sh.k)
			m := randomMatrix(r, sh.m, sh.k)
			wantMV := make([]float64, sh.m)
			gotMV := make([]float64, sh.m)
			ref.MatVecInto(wantMV, m, x)
			fast.MatVecInto(gotMV, m, x)
			checkWithin(t, "MatVecInto", gotMV, wantMV, absDotsMV(m, x), sh.k)
		}
	}
}

// TestGemmRowsQuadBitExact pins the pure-Go unrolled Gemm row kernel's
// documented claim directly (it is the fallback on machines without
// AVX2+FMA, so the backend-level sweeps may never reach it here): the
// four-wide pairing keeps each element's chain in increasing k and Go
// does not fuse, so the kernel is bitwise identical to the reference.
func TestGemmRowsQuadBitExact(t *testing.T) {
	r := newTestRand(606)
	for _, sh := range equivShapes {
		a := randomMatrix(r, sh.m, sh.k)
		b := randomMatrix(r, sh.k, sh.n)
		// Sparsify a so the group-level zero skip fires.
		for i := range a.data {
			if i%3 == 0 {
				a.data[i] = 0
			}
		}
		want := New(sh.m, sh.n)
		got := New(sh.m, sh.n)
		gemmRows(want, a, b, 0, sh.m)
		gemmRowsQuad(got, a, b, 0, sh.m)
		checkBitEqual(t, "gemmRowsQuad", got.data, want.data)
	}
}

// TestFastWorkerCountBitStable pins the cross-cutting determinism
// property: the partition scheme assigns every destination element to
// exactly one range, so changing the worker count must not change a
// single bit of any fast kernel's output.
func TestFastWorkerCountBitStable(t *testing.T) {
	base := NewFast(1)
	r := newTestRand(303)
	for _, workers := range []int{2, 3, 7} {
		fast := NewFast(workers)
		for _, sh := range equivShapes {
			a := randomMatrix(r, sh.m, sh.k)
			bMM := randomMatrix(r, sh.k, sh.n)
			bT := randomMatrix(r, sh.n, sh.k)
			aTA := randomMatrix(r, sh.k, sh.m)
			bTA := randomMatrix(r, sh.k, sh.n)
			x := randomVec(r, sh.k)

			one := New(sh.m, sh.n)
			many := New(sh.m, sh.n)
			base.Gemm(one, a, bMM)
			fast.Gemm(many, a, bMM)
			checkBitEqual(t, "Gemm workers", many.data, one.data)

			base.GemmTB(one, a, bT)
			fast.GemmTB(many, a, bT)
			checkBitEqual(t, "GemmTB workers", many.data, one.data)

			base.GemmTA(one, aTA, bTA)
			fast.GemmTA(many, aTA, bTA)
			checkBitEqual(t, "GemmTA workers", many.data, one.data)

			oneMV := make([]float64, sh.m)
			manyMV := make([]float64, sh.m)
			m := randomMatrix(r, sh.m, sh.k)
			base.MatVecInto(oneMV, m, x)
			fast.MatVecInto(manyMV, m, x)
			checkBitEqual(t, "MatVecInto workers", manyMV, oneMV)
		}
	}
}

// TestFastSerialAllocationFree mirrors TestKernelsAllocationFree for the
// fast backend: with one worker every kernel takes the serial early
// return ahead of any closure creation, so training- and serving-path
// calls must not allocate.
func TestFastSerialAllocationFree(t *testing.T) {
	fast := NewFast(1)
	r := newTestRand(404)
	a := randomMatrix(r, 16, 48)
	b := randomMatrix(r, 48, 12)
	bT := randomMatrix(r, 12, 48)
	dst := New(16, 12)
	x := randomVec(r, 48)
	mv := make([]float64, 16)
	vm := make([]float64, 48)
	w := randomMatrix(r, 16, 48)
	v := New(16, 48)
	g := randomMatrix(r, 16, 48)
	aTA := randomMatrix(r, 48, 16)

	checks := []struct {
		name string
		fn   func()
	}{
		{"Gemm", func() { fast.Gemm(dst, a, b) }},
		{"GemmTA", func() { fast.GemmTA(dst, aTA, b) }},
		{"GemmTB", func() { fast.GemmTB(dst, a, bT) }},
		{"MatVecInto", func() { fast.MatVecInto(mv, a, x) }},
		{"VecMatInto", func() { fast.VecMatInto(vm, mv, a) }},
		{"AddOuterInto", func() { fast.AddOuterInto(a, mv, x) }},
		{"SGDMomentumStep", func() { fast.SGDMomentumStep(w, v, g, 0.9, -0.1, true, -0.001) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s allocated %.1f times per call with workers=1", c.name, n)
		}
	}
}

func TestBackendRegistry(t *testing.T) {
	if ActiveName() != RefName {
		t.Fatalf("default backend = %q, want %q", ActiveName(), RefName)
	}
	if !Active().BitExact() {
		t.Fatal("reference backend must report BitExact")
	}
	fast, err := ByName(FastName)
	if err != nil {
		t.Fatal(err)
	}
	if fast.BitExact() {
		t.Fatal("fast backend must not report BitExact")
	}
	for _, name := range []string{"", RefName} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != RefName {
			t.Fatalf("ByName(%q) = %q, want reference", name, b.Name())
		}
	}
	if _, err := ByName("simd9000"); err == nil {
		t.Fatal("ByName with unknown name must error")
	}

	prev := Use(fast)
	defer Use(prev)
	if prev.Name() != RefName {
		t.Fatalf("Use returned %q as previous backend, want %q", prev.Name(), RefName)
	}
	if ActiveName() != FastName {
		t.Fatalf("after Use(fast), ActiveName = %q", ActiveName())
	}
	// Package-level entry points must dispatch through the active backend.
	r := newTestRand(505)
	a := randomMatrix(r, 3, 40)
	bT := randomMatrix(r, 5, 40)
	got := New(3, 5)
	GemmTB(got, a, bT)
	want := New(3, 5)
	fast.GemmTB(want, a, bT)
	checkBitEqual(t, "dispatched GemmTB", got.data, want.data)
}

func TestUseNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Use(nil) must panic")
		}
	}()
	Use(nil)
}

// FuzzFastDotEquiv drives the multi-accumulator dot kernels (the root of
// every tolerance-mode deviation) against the reference single chain
// with fuzzer-chosen lengths and bit patterns.
func FuzzFastDotEquiv(f *testing.F) {
	f.Add(uint64(1), uint64(2), 17)
	f.Add(uint64(0x3ff0000000000000), uint64(0xbff0000000000000), 64)
	f.Add(uint64(0x0010000000000000), uint64(0x7fe0000000000000), 5)
	fast := NewFast(1).(*fastBackend)
	f.Fuzz(func(t *testing.T, xs, ys uint64, n int) {
		if n < 0 || n > 512 {
			t.Skip()
		}
		r := newTestRand(int64(xs ^ ys))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.normal() * math.Float64frombits(xs&0x7ff0000000000000|0x3ff0000000000000) / 2
			y[i] = r.normal()
		}
		// Keep magnitudes finite so the bound is meaningful.
		var mag float64
		for i := range x {
			if math.IsInf(x[i], 0) || math.IsNaN(x[i]) {
				t.Skip()
			}
			mag += math.Abs(x[i] * y[i])
		}
		if math.IsInf(mag, 0) {
			t.Skip()
		}
		var ref float64
		for i := range x {
			ref += x[i] * y[i]
		}
		got := fast.dot(x, y)
		if d := math.Abs(got - ref); d > dotBound(n, mag) {
			t.Fatalf("dot len %d off by %g (bound %g)", n, d, dotBound(n, mag))
		}
		alt := dot4c(x, y)
		if d := math.Abs(alt - ref); d > dotBound(n, mag) {
			t.Fatalf("dot4c len %d off by %g (bound %g)", n, d, dotBound(n, mag))
		}
	})
}
