package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	tests := []struct {
		name       string
		rows, cols int
	}{
		{"empty", 0, 0},
		{"row vector", 1, 5},
		{"col vector", 5, 1},
		{"square", 3, 3},
		{"rect", 2, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(tt.rows, tt.cols)
			if m.Rows() != tt.rows || m.Cols() != tt.cols {
				t.Fatalf("got %dx%d, want %dx%d", m.Rows(), m.Cols(), tt.rows, tt.cols)
			}
			if m.Size() != tt.rows*tt.cols {
				t.Fatalf("Size() = %d, want %d", m.Size(), tt.rows*tt.cols)
			}
			for _, v := range m.Data() {
				if v != 0 {
					t.Fatal("New must zero-fill")
				}
			}
		})
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestNewFromDataMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestNewFromRowsEmpty(t *testing.T) {
	m, err := NewFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("shape %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestIdentityMatVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3, -4}
	got := id.MatVec(x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity MatVec changed element %d: %v", i, got)
		}
	}
}

func TestAtSetAdd(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
}

func TestRowIsView(t *testing.T) {
	m := New(2, 2)
	r := m.Row(0)
	r[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("Row must return a view")
	}
}

func TestColIsCopy(t *testing.T) {
	m := New(2, 2)
	c := m.Col(0)
	c[0] = 9
	if m.At(0, 0) != 0 {
		t.Fatal("Col must return a copy")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("shape %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.MatMul(b)
	want, _ := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("MatMul = %+v", got.Data())
	}
}

func TestMatVecVecMatConsistency(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, -2, 3}, {0, 4, -1}})
	x := []float64{2, 1}
	// xᵀM must equal (Mᵀx)ᵀ.
	a := m.VecMat(x)
	b := m.T().MatVec(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("VecMat disagrees with Tᵀ MatVec: %v vs %v", a, b)
		}
	}
}

func TestColAbsSums(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, -2}, {-3, 4}})
	got := m.ColAbsSums()
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("ColAbsSums = %v, want [4 6]", got)
	}
}

func TestAddSubScaleApply(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{4, 3}, {2, 1}})
	a.AddMatrix(b)
	want, _ := NewFromRows([][]float64{{5, 5}, {5, 5}})
	if !a.Equal(want, 0) {
		t.Fatalf("AddMatrix = %v", a.Data())
	}
	a.SubMatrix(b)
	a.Scale(2)
	a.Apply(func(x float64) float64 { return x - 1 })
	want2, _ := NewFromRows([][]float64{{1, 3}, {5, 7}})
	if !a.Equal(want2, 0) {
		t.Fatalf("chained ops = %v", a.Data())
	}
}

func TestAddScaled(t *testing.T) {
	a := New(1, 3)
	b, _ := NewFromRows([][]float64{{1, 2, 3}})
	a.AddScaled(-2, b)
	want, _ := NewFromRows([][]float64{{-2, -4, -6}})
	if !a.Equal(want, 0) {
		t.Fatalf("AddScaled = %v", a.Data())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Fatal("Clone shares backing store")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(1, 2).Equal(New(2, 1), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestMaxAbsFrobenius(t *testing.T) {
	m, _ := NewFromRows([][]float64{{-3, 4}})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.FrobeniusNorm()-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

// Property: (AB)x == A(Bx) for random small matrices.
func TestMatMulMatVecAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n, k, p := 2+r.intn(4), 2+r.intn(4), 2+r.intn(4)
		a := randomMatrix(r, n, k)
		b := randomMatrix(r, k, p)
		x := randomVec(r, p)
		left := a.MatMul(b).MatVec(x)
		right := a.MatVec(b.MatVec(x))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := randomMatrix(r, 1+r.intn(6), 1+r.intn(6))
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ColAbsSums is invariant under sign flips of any row.
func TestColAbsSumsSignInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := randomMatrix(r, 2+r.intn(4), 2+r.intn(4))
		before := m.ColAbsSums()
		flip := m.Clone()
		row := flip.Row(r.intn(flip.Rows()))
		for i := range row {
			row[i] = -row[i]
		}
		after := flip.ColAbsSums()
		for j := range before {
			if math.Abs(before[j]-after[j]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
