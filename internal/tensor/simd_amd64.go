//go:build amd64

package tensor

// dotAVX2 computes the dot product of x and y (y at least as long as x)
// with AVX2+FMA: four vector lanes times four accumulator chains, reduced
// (s0+s1)+(s2+s3) then left-to-right across lanes. Callers must check
// cpuHasAVX2FMA first.
//
//go:noescape
func dotAVX2(x, y []float64) float64

// gemmTAQuadAVX2 applies one four-sample GemmTA axpy sweep: for each i in
// [0, len(a0)), dst[i*stride : i*stride+len(b0)] accumulates
// a0[i]*b0 + a1[i]*b1 + a2[i]*b2 + a3[i]*b3 with FMA, terms in increasing
// sample order. a1..a3 must have len(a0) elements and b1..b3 len(b0);
// dst must cover (len(a0)-1)*stride + len(b0) elements.
//
//go:noescape
func gemmTAQuadAVX2(dst []float64, stride int, a0, a1, a2, a3, b0, b1, b2, b3 []float64)

// cpuHasAVX2FMA reports whether the CPU and OS support AVX2 and FMA.
// The probe is stable for the life of the machine — same class of
// environment fact as GOMAXPROCS, not ambient nondeterminism.
func cpuHasAVX2FMA() bool

// archSIMD reports whether the SIMD kernel set is usable on this machine.
func archSIMD() bool { return cpuHasAVX2FMA() }
