package tensor

import "math/rand"

// testRand is a tiny deterministic generator for property tests, wrapping
// math/rand so helper signatures stay compact.
type testRand struct{ r *rand.Rand }

func newTestRand(seed int64) *testRand {
	return &testRand{r: rand.New(rand.NewSource(seed))}
}

func (t *testRand) intn(n int) int     { return t.r.Intn(n) }
func (t *testRand) float64() float64   { return t.r.Float64()*2 - 1 }
func (t *testRand) normal() float64    { return t.r.NormFloat64() }
func (t *testRand) perm(n int) []int   { return t.r.Perm(n) }
func (t *testRand) shuffleSeed() int64 { return t.r.Int63() }
func (t *testRand) uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = t.r.Float64()
	}
	return out
}

func randomMatrix(r *testRand, rows, cols int) *Matrix {
	m := New(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = r.float64()
	}
	return m
}

func randomVec(r *testRand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float64()
	}
	return out
}
