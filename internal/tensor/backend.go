package tensor

import (
	"fmt"
	"sync/atomic"
)

// Backend is a complete implementation of the hot kernel set. The package-
// level kernel functions (Gemm, GemmTA, ...) validate shapes and dispatch to
// the active backend, so backend methods may assume conforming shapes; a
// backend invoked directly with mismatched operands panics from a slice
// bounds check rather than a descriptive message.
//
// Two implementations exist:
//
//   - Reference(): the scalar loops this package started from. Bit-exact:
//     every destination element accumulates its contracted-dimension terms
//     in strictly increasing index order on a single accumulator chain (see
//     the determinism contract in gemm.go). All goldens and equivalence
//     tests are pinned against it byte-for-byte.
//
//   - NewFast(workers): row/column-partitioned parallelism via
//     internal/pool plus multi-accumulator unrolling of the contracted
//     dimension in the dot-oriented kernels (GemmTB, MatVecInto). The
//     partitioned kernels keep each destination element's chain intact, so
//     parallelism never changes a bit; the unrolled kernels split one
//     element's sum across four chains, which reorders the additions and is
//     therefore only tolerance-equal to Reference (see fast.go for the
//     bound). For a fixed input a fast backend returns the same bits at any
//     worker count — nondeterminism never enters, only a documented,
//     bounded deviation from the reference order.
//
// BitExact reports which side of that split a backend is on: tests and
// goldens compare byte-for-byte when the active backend is bit-exact and
// fall back to the tolerance contract otherwise.
type Backend interface {
	// Name identifies the backend ("reference", "fast") in flags, specs,
	// /v2/version and /v2/stats.
	Name() string
	// BitExact reports whether results are bit-identical to the scalar
	// reference loops.
	BitExact() bool

	Gemm(dst, a, b *Matrix)
	GemmTA(dst, a, b *Matrix)
	GemmTB(dst, a, b *Matrix)
	MatVecInto(dst []float64, m *Matrix, x []float64)
	VecMatInto(dst []float64, x []float64, m *Matrix)
	AddOuterInto(dst *Matrix, x, y []float64)
	SGDMomentumStep(w, v, g *Matrix, mu, gs float64, decay bool, ws float64)
}

// backendRef wraps the interface value so the active backend can live in an
// atomic.Pointer (which requires a concrete element type).
type backendRef struct{ b Backend }

var activeBackend atomic.Pointer[backendRef]

func init() { activeBackend.Store(&backendRef{b: referenceBackend{}}) }

// Use installs b as the process-wide active backend and returns the
// previous one, so callers (tests, benchmarks) can restore it with a
// deferred Use. Selection is always explicit — a flag, a spec option, a
// test hook — never an environment read, per the detrand contract: the
// backend in effect is part of a run's configuration, not ambient state.
//
// Use is safe for concurrent use, but swapping backends while kernels are
// in flight mixes backends across calls; processes select a backend once
// at startup (xbarserve/xbarattack -fast) before any work is launched.
func Use(b Backend) Backend {
	if b == nil {
		panic("tensor: Use(nil) backend")
	}
	return activeBackend.Swap(&backendRef{b: b}).b
}

// Active returns the process-wide active backend (Reference() by default).
func Active() Backend { return activeBackend.Load().b }

// ActiveName returns the active backend's name — the value surfaced in
// /v2/version, /v2/stats and experiment spec options.
func ActiveName() string { return Active().Name() }

// Reference returns the bit-exact scalar backend, the process default.
func Reference() Backend { return referenceBackend{} }

// ByName resolves a backend selector string: "" and "reference" yield the
// bit-exact default, "fast" yields NewFast(0). Unknown names are an error
// (not a panic: selectors arrive over the wire in experiment specs).
func ByName(name string) (Backend, error) {
	switch name {
	case "", RefName:
		return Reference(), nil
	case FastName:
		return NewFast(0), nil
	default:
		return nil, fmt.Errorf("tensor: unknown backend %q (want %q or %q)", name, RefName, FastName)
	}
}

// Backend selector names, as they appear in flags, spec options and stats.
const (
	RefName  = "reference"
	FastName = "fast"
)

// referenceBackend is the scalar loop implementation — the bit-exactness
// anchor every other backend is validated against. Methods delegate to the
// shared range-parameterized kernels in gemm.go over the full index range.
type referenceBackend struct{}

func (referenceBackend) Name() string   { return RefName }
func (referenceBackend) BitExact() bool { return true }

func (referenceBackend) Gemm(dst, a, b *Matrix)   { gemmRows(dst, a, b, 0, a.rows) }
func (referenceBackend) GemmTA(dst, a, b *Matrix) { gemmTACols(dst, a, b, 0, b.cols) }
func (referenceBackend) GemmTB(dst, a, b *Matrix) { gemmTBRows(dst, a, b, 0, a.rows) }

func (referenceBackend) MatVecInto(dst []float64, m *Matrix, x []float64) {
	matVecRows(dst, m, x, 0, m.rows)
}

func (referenceBackend) VecMatInto(dst []float64, x []float64, m *Matrix) {
	vecMatCols(dst, x, m, 0, m.cols)
}

func (referenceBackend) AddOuterInto(dst *Matrix, x, y []float64) {
	addOuterRows(dst, x, y, 0, len(x))
}

func (referenceBackend) SGDMomentumStep(w, v, g *Matrix, mu, gs float64, decay bool, ws float64) {
	sgdSpan(w, v, g, mu, gs, decay, ws, 0, len(w.data))
}
