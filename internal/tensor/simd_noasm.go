//go:build !amd64

package tensor

// Portable stubs: archSIMD reports false, so the fast backend routes every
// kernel to the pure-Go paths and these bodies are unreachable.

func dotAVX2(x, y []float64) float64 {
	panic("tensor: dotAVX2 without SIMD support")
}

func gemmTAQuadAVX2(dst []float64, stride int, a0, a1, a2, a3, b0, b1, b2, b3 []float64) {
	panic("tensor: gemmTAQuadAVX2 without SIMD support")
}

func archSIMD() bool { return false }
