package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Vector helpers. Vectors are plain []float64 so they interoperate with the
// rest of the standard library; these functions supply the operations the
// attack and training code needs.

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddVec returns a + b as a new slice.
// It panics if the lengths differ.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// SubVec returns a - b as a new slice.
// It panics if the lengths differ.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// ScaleVec returns alpha*a as a new slice.
func ScaleVec(alpha float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = alpha * v
	}
	return out
}

// AxpyInPlace computes y += alpha*x in place.
// It panics if the lengths differ.
func AxpyInPlace(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// CloneVec returns a copy of a.
func CloneVec(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Norm1 returns Σ|a_i|.
func Norm1(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns sqrt(Σ a_i²).
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns max|a_i|, or 0 for an empty slice.
func NormInf(a []float64) float64 {
	var best float64
	for _, v := range a {
		if x := math.Abs(v); x > best {
			best = x
		}
	}
	return best
}

// ArgMax returns the index of the largest element, breaking ties in favor
// of the lowest index. It returns -1 for an empty slice.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best, bi := a[0], 0
	for i := 1; i < len(a); i++ {
		if a[i] > best {
			best, bi = a[i], i
		}
	}
	return bi
}

// ArgMin returns the index of the smallest element, breaking ties in favor
// of the lowest index. It returns -1 for an empty slice.
func ArgMin(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best, bi := a[0], 0
	for i := 1; i < len(a); i++ {
		if a[i] < best {
			best, bi = a[i], i
		}
	}
	return bi
}

// TopK returns the indices of the k largest elements in descending order of
// value. If k exceeds len(a), all indices are returned. Ties are broken by
// lower index first.
func TopK(a []float64, k int) []int {
	if k > len(a) {
		k = len(a)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return a[idx[x]] > a[idx[y]] })
	return idx[:k]
}

// Clamp limits every element of a into [lo, hi], in place, and returns a.
func Clamp(a []float64, lo, hi float64) []float64 {
	for i, v := range a {
		if v < lo {
			a[i] = lo
		} else if v > hi {
			a[i] = hi
		}
	}
	return a
}

// SignVec returns the element-wise sign of a: -1, 0 or +1.
func SignVec(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		}
	}
	return out
}

// Basis returns the length-n standard basis vector scaled by beta with a 1
// (scaled) in position j: beta*e_j. It panics if j is out of range.
func Basis(n, j int, beta float64) []float64 {
	if j < 0 || j >= n {
		panic(fmt.Sprintf("tensor: basis index %d out of range for length %d", j, n))
	}
	out := make([]float64, n)
	out[j] = beta
	return out
}

// AbsVec returns |a| element-wise as a new slice.
func AbsVec(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = math.Abs(v)
	}
	return out
}

// Sum returns Σ a_i.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}
