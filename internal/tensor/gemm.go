package tensor

import "fmt"

// Batched GEMM kernel layer. Every kernel in this file writes into a
// caller-provided destination and allocates nothing, so training loops can
// reuse workspaces across mini-batches and epochs.
//
// Determinism contract (relied on by nn, surrogate and the equivalence
// tests): for every destination element, the contracted-dimension terms are
// accumulated in strictly increasing index order on a single accumulator
// chain — the same order as the scalar MatVec/VecMat/MatMul loops and the
// per-sample training loops these kernels replace. Instruction-level
// parallelism comes only from computing many *independent* destination
// elements concurrently (contiguous inner loops over a destination row),
// never from splitting one element's sum across multiple accumulators,
// so results are bit-identical to the scalar paths. Cache blocking
// partitions the contracted dimension into contiguous chunks processed in
// increasing order, which preserves the per-element accumulation order.
//
// Skipping a zero multiplier is bitwise neutral here: every destination
// starts the accumulation at +0, and IEEE-754 addition can only produce
// -0 from (-0) + (-0), so a partial sum that began at +0 is never -0 and
// x + (±0·y) == x for every partial sum x that can arise. The kernels
// exploit this to skip zero input elements (sparse image rows) exactly
// like MatMul and VecMat do.
//
// Since the backend split (see backend.go), the exported functions below
// validate shapes and dispatch to the active Backend; the loop bodies live
// in range-parameterized helpers (gemmRows, gemmTACols, ...) shared by the
// reference backend (full range, this file's contract verbatim) and the
// fast backend's partitioned parallel paths (each partition owns a disjoint
// destination range, so the per-element chains are untouched).

// gemmBlock is the contracted-dimension block size: 256 columns of float64
// per operand row is 2 KiB, so a block of the streamed operand stays
// resident in L1/L2 while the destination row is swept.
const gemmBlock = 256

// Gemm computes dst = a·b, overwriting dst. It panics on shape mismatch
// (dst must be a.Rows() x b.Cols() and a.Cols() == b.Rows()). With the
// default backend the result is bit-identical to a.MatMul(b).
//
//xbar:hotpath
func Gemm(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: Gemm shape %dx%d by %dx%d into %dx%d",
			a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols))
	}
	Active().Gemm(dst, a, b)
}

// gemmRows runs the Gemm axpy kernel for destination rows [i0, i1).
// Partitioning by destination row leaves every element's accumulator chain
// intact, so any union of disjoint row ranges reproduces the full-range
// result bit-for-bit.
func gemmRows(dst, a, b *Matrix, i0, i1 int) {
	n := b.cols
	for i := i0; i < i1; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for k0 := 0; k0 < a.cols; k0 += gemmBlock {
			k1 := k0 + gemmBlock
			if k1 > a.cols {
				k1 = a.cols
			}
			for k := k0; k < k1; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.data[k*n : (k+1)*n]
				for j, v := range brow {
					drow[j] += aik * v
				}
			}
		}
	}
}

// GemmTA computes dst = aᵀ·b, overwriting dst, for a (k x m) and b (k x n)
// with dst m x n. The contracted dimension is the shared row index of a
// and b, accumulated in increasing order — exactly the order in which a
// per-sample loop sums outer products δ_k·u_kᵀ over a mini-batch, so a
// whole batch-gradient sum is one GemmTA call.
//
//xbar:hotpath
func GemmTA(dst, a, b *Matrix) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: GemmTA shape %dx%d by %dx%d into %dx%d",
			a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols))
	}
	Active().GemmTA(dst, a, b)
}

// gemmTACols runs the GemmTA kernel for destination columns [c0, c1).
// Partitioning by destination column keeps each element's chain intact
// (every (i, j) is owned by exactly one column range), so partitions
// compose bit-identically.
//
// Access pattern (this is why GemmTA trailed GemmTB at the same shape —
// 0.38 vs 0.29 ms in BENCH_8): the kernel is a streaming axpy. The
// contracted (sample) index k is the outer loop, so each sample row of b
// is read once and stays L1-resident while the column of a for that k
// scatters it across all m destination rows; column blocks (jBlock) keep
// the destination slab cache-resident across the whole batch. The cost is
// that the m·n destination slab is re-swept — loaded and stored — once
// per group of samples, and that read-modify-write traffic, not the
// multiplies, bounds the kernel. GemmTB by contrast holds its accumulators
// in registers and touches each destination element exactly once. The fix
// that preserves accumulation order is to widen the sample group: grouping
// g samples per sweep divides the destination load/store traffic by g
// while still adding each element's terms in increasing k on one chain.
// The pairing below is 4-wide (it was 2-wide when BENCH_8 was recorded);
// wider pairing was measured slower — register pressure starts evicting
// the b-row pointers. (A register-tiled dot orientation was measured
// slower still: it re-streams b once per destination row.)
func gemmTACols(dst, a, b *Matrix, c0, c1 int) {
	m, n := a.cols, b.cols
	for i := 0; i < dst.rows; i++ {
		drow := dst.data[i*n+c0 : i*n+c1]
		for j := range drow {
			drow[j] = 0
		}
	}
	const jBlock = 512
	for j0 := c0; j0 < c1; j0 += jBlock {
		j1 := j0 + jBlock
		if j1 > c1 {
			j1 = c1
		}
		k := 0
		for ; k+4 <= a.rows; k += 4 {
			a0 := a.data[k*m : (k+1)*m]
			a1 := a.data[(k+1)*m : (k+2)*m]
			a2 := a.data[(k+2)*m : (k+3)*m]
			a3 := a.data[(k+3)*m : (k+4)*m]
			b0 := b.data[k*n+j0 : k*n+j1]
			b1 := b.data[(k+1)*n+j0 : (k+1)*n+j1]
			b2 := b.data[(k+2)*n+j0 : (k+2)*n+j1]
			b3 := b.data[(k+3)*n+j0 : (k+3)*n+j1]
			for i := range a0 {
				x0, x1, x2, x3 := a0[i], a1[i], a2[i], a3[i]
				if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
					continue
				}
				drow := dst.data[i*n+j0 : i*n+j1]
				drow = drow[:len(b0)]
				b1v := b1[:len(b0)]
				b2v := b2[:len(b0)]
				b3v := b3[:len(b0)]
				for j, bv := range b0 {
					t := drow[j] + x0*bv
					t += x1 * b1v[j]
					t += x2 * b2v[j]
					drow[j] = t + x3*b3v[j]
				}
			}
		}
		for ; k+2 <= a.rows; k += 2 {
			a0 := a.data[k*m : (k+1)*m]
			a1 := a.data[(k+1)*m : (k+2)*m]
			b0 := b.data[k*n+j0 : k*n+j1]
			b1 := b.data[(k+1)*n+j0 : (k+1)*n+j1]
			for i := range a0 {
				x0, x1 := a0[i], a1[i]
				if x0 == 0 && x1 == 0 {
					continue
				}
				drow := dst.data[i*n+j0 : i*n+j1]
				drow = drow[:len(b0)]
				b1v := b1[:len(b0)]
				for j, bv := range b0 {
					t := drow[j] + x0*bv
					drow[j] = t + x1*b1v[j]
				}
			}
		}
		for ; k < a.rows; k++ {
			arow := a.data[k*m : (k+1)*m]
			brow := b.data[k*n+j0 : k*n+j1]
			for i, aki := range arow {
				if aki == 0 {
					continue
				}
				drow := dst.data[i*n+j0 : i*n+j1]
				drow = drow[:len(brow)]
				for j, bv := range brow {
					drow[j] += aki * bv
				}
			}
		}
	}
}

// GemmTB computes dst = a·bᵀ, overwriting dst, for a (m x k) and b (n x k)
// with dst m x n. Each destination element is the dot product of a row of
// a and a row of b, accumulated over the contracted dimension in
// increasing order — the same chain as MatVec — but four destination
// elements advance together through four contiguous streams of b, giving
// four independent accumulator chains instead of MatVec's single
// latency-bound chain (a single element's chain cannot be split without
// changing the result; the fast backend does exactly that, under the
// tolerance contract).
//
//xbar:hotpath
func GemmTB(dst, a, b *Matrix) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("tensor: GemmTB shape %dx%d by %dx%d into %dx%d",
			a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols))
	}
	Active().GemmTB(dst, a, b)
}

// gemmTBRows runs the GemmTB dot kernel for destination rows [i0, i1);
// row partitions compose bit-identically.
func gemmTBRows(dst, a, b *Matrix, i0, i1 int) {
	kdim := a.cols
	n := b.rows
	for i := i0; i < i1; i++ {
		arow := a.data[i*kdim : (i+1)*kdim]
		drow := dst.data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.data[j*kdim : (j+1)*kdim]
			b1 := b.data[(j+1)*kdim : (j+2)*kdim]
			b2 := b.data[(j+2)*kdim : (j+3)*kdim]
			b3 := b.data[(j+3)*kdim : (j+4)*kdim]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j+2 <= n; j += 2 {
			b0 := b.data[j*kdim : (j+1)*kdim]
			b1 := b.data[(j+1)*kdim : (j+2)*kdim]
			var s0, s1 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
			}
			drow[j] = s0
			drow[j+1] = s1
		}
		for ; j < n; j++ {
			brow := b.data[j*kdim : (j+1)*kdim]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// MatVecInto computes dst = m·x without allocating; with the default
// backend it is bit-identical to MatVec. dst and x must not alias. It
// panics on length mismatch.
//
//xbar:hotpath
func MatVecInto(dst []float64, m *Matrix, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("tensor: MatVecInto %dx%d by %d into %d", m.rows, m.cols, len(x), len(dst)))
	}
	Active().MatVecInto(dst, m, x)
}

// matVecRows runs the MatVec dot kernel for destination rows [i0, i1).
func matVecRows(dst []float64, m *Matrix, x []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// VecMatInto computes dst = xᵀ·m without allocating; bit-identical to
// VecMat. dst and x must not alias. It panics on length mismatch.
//
//xbar:hotpath
func VecMatInto(dst []float64, x []float64, m *Matrix) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("tensor: VecMatInto %d by %dx%d into %d", len(x), m.rows, m.cols, len(dst)))
	}
	Active().VecMatInto(dst, x, m)
}

// vecMatCols runs the VecMat axpy kernel for destination columns [j0, j1);
// column partitions compose bit-identically (the contracted dimension is
// the row index, swept in increasing order for every column).
func vecMatCols(dst []float64, x []float64, m *Matrix, j0, j1 int) {
	for j := j0; j < j1; j++ {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols+j0 : i*m.cols+j1]
		dcol := dst[j0:j1]
		dcol = dcol[:len(row)]
		for j, v := range row {
			dcol[j] += xi * v
		}
	}
}

// AddOuterInto accumulates the outer product dst += x·yᵀ in place, the
// single-sample weight-gradient update. dst must be len(x) x len(y).
//
//xbar:hotpath
func AddOuterInto(dst *Matrix, x, y []float64) {
	if dst.rows != len(x) || dst.cols != len(y) {
		panic(fmt.Sprintf("tensor: AddOuterInto %dx%d by %d outer %d", dst.rows, dst.cols, len(x), len(y)))
	}
	Active().AddOuterInto(dst, x, y)
}

// addOuterRows runs the outer-product update for destination rows
// [i0, i1); each row is touched by exactly one partition.
func addOuterRows(dst *Matrix, x, y []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j, yj := range y {
			row[j] += xi * yj
		}
	}
}

// SGDMomentumStep performs the classical momentum update in one fused
// sweep: v ← µ·v + gs·g (+ ws·w when decay), then w ← w + v. The
// per-element operation sequence is exactly Scale + AddScaled (+
// AddScaled) + AddMatrix — elements are independent, so fusing the four
// passes into one changes memory traffic only, never a bit of the result.
//
//xbar:hotpath
func SGDMomentumStep(w, v, g *Matrix, mu, gs float64, decay bool, ws float64) {
	w.sameShape(v, "SGDMomentumStep")
	w.sameShape(g, "SGDMomentumStep")
	Active().SGDMomentumStep(w, v, g, mu, gs, decay, ws)
}

// sgdSpan runs the fused momentum update for flat elements [k0, k1); the
// update is purely element-wise, so any partition of the flat range
// composes bit-identically.
func sgdSpan(w, v, g *Matrix, mu, gs float64, decay bool, ws float64, k0, k1 int) {
	wd, vd, gd := w.data[k0:k1], v.data[k0:k1], g.data[k0:k1]
	vd = vd[:len(wd)]
	gd = gd[:len(wd)]
	if decay {
		for k := range wd {
			x := vd[k] * mu
			x += gs * gd[k]
			x += ws * wd[k]
			vd[k] = x
			wd[k] += x
		}
		return
	}
	for k := range wd {
		x := vd[k] * mu
		x += gs * gd[k]
		vd[k] = x
		wd[k] += x
	}
}

// RowSpan returns a view of rows [i, j) sharing m's backing array — no
// copy. Mutating the view mutates m. It panics if the range is invalid.
func (m *Matrix) RowSpan(i, j int) *Matrix {
	if i < 0 || j < i || j > m.rows {
		panic(fmt.Sprintf("tensor: RowSpan [%d,%d) out of range for %d rows", i, j, m.rows))
	}
	return &Matrix{rows: j - i, cols: m.cols, data: m.data[i*m.cols : j*m.cols]}
}

// CopyRow copies row src of from into row dst of m; both matrices must
// have the same column count. A gather primitive for batched training
// (mini-batch rows arrive in shuffled order).
func (m *Matrix) CopyRow(dst int, from *Matrix, src int) {
	if m.cols != from.cols {
		panic(fmt.Sprintf("tensor: CopyRow width %d vs %d", m.cols, from.cols))
	}
	copy(m.Row(dst), from.Row(src))
}
