package tensor

import "xbarsec/internal/pool"

// The fast backend. Three techniques, two contracts:
//
//  1. Partitioned parallelism (all seven kernels): destination rows /
//     columns / flat spans are split into one contiguous range per worker.
//     Every destination element is owned by exactly one range, so the
//     partition never changes what is computed for an element — for a
//     fixed input the fast backend returns identical bits at every worker
//     count.
//
//  2. Bit-exact kernels (VecMatInto, AddOuterInto, SGDMomentumStep):
//     each range runs the same reference kernel, so these three are
//     byte-for-byte identical to Reference().
//
//  3. Unrolled/fused kernels (Gemm, GemmTB, MatVecInto, GemmTA): the
//     latency-bound single-chain accumulations are replaced by
//     multi-accumulator versions — AVX2+FMA assembly where the CPU
//     supports it (simd_amd64.s), four-wide pure-Go unrolls otherwise.
//     Splitting a sum across chains (and fusing multiply-add) can change
//     rounding, so these four are NOT bit-identical to the reference;
//     backend_equiv_test.go pins them to the standard
//     reordered-summation bound |fast−ref| ≤ c·k·eps·Σ|aᵢ·bᵢ|, which
//     covers both chain splits and FMA's single rounding. (Gemm's
//     accumulation ORDER is actually preserved — four-wide sample
//     grouping on one chain — so only the FMA path deviates, and only
//     by fused roundings; it still lives under the tolerance contract
//     because BitExact() describes the whole backend on any machine.)
//     GemmTB also swaps its loop order by shape (stream the smaller
//     operand) — a pure traversal change, per-element dots are
//     unaffected.
//
// Whether the SIMD kernels are used is fixed when the backend is
// constructed (CPUID probe), not per call; a fastBackend value fully
// describes its numeric behavior on a given machine.
//
// Small operands skip the pool entirely (fastMinFlop), so serving-path
// calls on tiny shapes stay allocation-free; the serial path runs the
// same kernels, so the threshold never changes a result.

// fastMinFlop is the approximate multiply-add count below which fanning
// out is pure overhead (goroutine wake + closure) and the fast backend
// runs the kernel inline. ~64k mul-adds is a few microseconds of work,
// an order of magnitude above the pool's dispatch cost.
const fastMinFlop = 1 << 16

type fastBackend struct {
	// workers is the pool fan-out per kernel call; 0 selects the runnable
	// proc count (pool.Workers). Fixed at construction so a backend value
	// fully describes its behavior.
	workers int
	// simd gates the AVX2+FMA kernels; probed once at construction.
	simd bool
}

// NewFast returns the fast backend: reference-kernel parallelism over
// destination partitions plus multi-accumulator dot kernels (AVX2+FMA
// when available), under the tolerance contract documented above.
// workers <= 0 selects the runnable proc count at each call
// (pool.Workers semantics).
func NewFast(workers int) Backend {
	return &fastBackend{workers: workers, simd: archSIMD()}
}

func (f *fastBackend) Name() string   { return FastName }
func (f *fastBackend) BitExact() bool { return false }

// split returns the number of contiguous partitions to fan n destination
// units across, given ~flop mul-adds of total work: 1 when the pool would
// be overhead (small op or single worker), else the worker count capped
// by n.
func (f *fastBackend) split(n int, flop int) int {
	if n <= 1 || flop < fastMinFlop {
		return 1
	}
	w := pool.Workers(f.workers)
	if w > n {
		w = n
	}
	return w
}

// dot is the backend's dot product: AVX2+FMA when the machine supports
// it, else the four-chain pure-Go kernel. Both reorder relative to the
// reference single chain (tolerance contract). y must be at least as
// long as x.
//
//xbar:hotpath
func (f *fastBackend) dot(x, y []float64) float64 {
	if f.simd {
		return dotAVX2(x, y)
	}
	return dot4c(x, y)
}

//xbar:hotpath
func (f *fastBackend) Gemm(dst, a, b *Matrix) {
	rows := a.rows
	w := f.split(rows, rows*a.cols*b.cols)
	if w == 1 {
		f.gemmRowSpan(dst, a, b, 0, rows)
		return
	}
	pool.Do(w, w, func(p int) {
		f.gemmRowSpan(dst, a, b, p*rows/w, (p+1)*rows/w)
	})
}

// gemmRowSpan computes destination rows [i0, i1) of dst = a·b with the
// unrolled axpy kernel: AVX2+FMA when available, the four-wide pure-Go
// pairing otherwise. Row partitions compose bit-identically (each row is
// owned by exactly one range).
//
//xbar:hotpath
func (f *fastBackend) gemmRowSpan(dst, a, b *Matrix, i0, i1 int) {
	if !f.simd {
		gemmRowsQuad(dst, a, b, i0, i1)
		return
	}
	gemmRowsSIMD(dst, a, b, i0, i1)
}

//xbar:hotpath
func (f *fastBackend) GemmTA(dst, a, b *Matrix) {
	cols := b.cols
	w := f.split(cols, a.rows*a.cols*cols)
	if w == 1 {
		f.gemmTASpan(dst, a, b, 0, cols)
		return
	}
	pool.Do(w, w, func(p int) {
		f.gemmTASpan(dst, a, b, p*cols/w, (p+1)*cols/w)
	})
}

//xbar:hotpath
func (f *fastBackend) GemmTB(dst, a, b *Matrix) {
	m, n := a.rows, b.rows
	flop := m * a.cols * n
	// Loop-order swap: both orientations compute the same per-element
	// dots over contiguous rows, so pick the outer loop that re-streams
	// the SMALLER operand — it stays resident in cache across outer
	// iterations while the larger operand is read once. Shape-only
	// decision, so it is deterministic and partition-stable.
	if m <= n {
		w := f.split(n, flop)
		if w == 1 {
			f.gemmTBCols(dst, a, b, 0, n)
			return
		}
		pool.Do(w, w, func(p int) {
			f.gemmTBCols(dst, a, b, p*n/w, (p+1)*n/w)
		})
		return
	}
	w := f.split(m, flop)
	if w == 1 {
		f.gemmTBRows(dst, a, b, 0, m)
		return
	}
	pool.Do(w, w, func(p int) {
		f.gemmTBRows(dst, a, b, p*m/w, (p+1)*m/w)
	})
}

//xbar:hotpath
func (f *fastBackend) MatVecInto(dst []float64, m *Matrix, x []float64) {
	rows := m.rows
	w := f.split(rows, rows*m.cols)
	if w == 1 {
		f.matVecRows(dst, m, x, 0, rows)
		return
	}
	pool.Do(w, w, func(p int) {
		f.matVecRows(dst, m, x, p*rows/w, (p+1)*rows/w)
	})
}

//xbar:hotpath
func (f *fastBackend) VecMatInto(dst []float64, x []float64, m *Matrix) {
	cols := m.cols
	w := f.split(cols, m.rows*cols)
	if w == 1 {
		vecMatCols(dst, x, m, 0, cols)
		return
	}
	pool.Do(w, w, func(p int) {
		vecMatCols(dst, x, m, p*cols/w, (p+1)*cols/w)
	})
}

//xbar:hotpath
func (f *fastBackend) AddOuterInto(dst *Matrix, x, y []float64) {
	rows := len(x)
	w := f.split(rows, rows*len(y))
	if w == 1 {
		addOuterRows(dst, x, y, 0, rows)
		return
	}
	pool.Do(w, w, func(p int) {
		addOuterRows(dst, x, y, p*rows/w, (p+1)*rows/w)
	})
}

//xbar:hotpath
func (f *fastBackend) SGDMomentumStep(w, v, g *Matrix, mu, gs float64, decay bool, ws float64) {
	n := len(w.data)
	p := f.split(n, n)
	if p == 1 {
		sgdSpan(w, v, g, mu, gs, decay, ws, 0, n)
		return
	}
	pool.Do(p, p, func(q int) {
		sgdSpan(w, v, g, mu, gs, decay, ws, q*n/p, (q+1)*n/p)
	})
}

// gemmTASpan computes destination columns [c0, c1) of dst = aᵀ·b. With
// SIMD it runs the fused quad-axpy kernel; otherwise it falls back to the
// reference column kernel (whose four-wide pairing is already the best
// scalar formulation — see gemmTACols).
//
//xbar:hotpath
func (f *fastBackend) gemmTASpan(dst, a, b *Matrix, c0, c1 int) {
	if !f.simd {
		gemmTACols(dst, a, b, c0, c1)
		return
	}
	gemmTAColsSIMD(dst, a, b, c0, c1)
}

// gemmTAColsSIMD computes destination columns [c0, c1) of dst = aᵀ·b with
// the AVX2+FMA quad-axpy kernel: samples are consumed four at a time, and
// for each group one assembly sweep walks every destination row applying
// row += a0[f]·b0 + a1[f]·b1 + a2[f]·b2 + a3[f]·b3 (a0..a3, b0..b3 are
// the group's contiguous rows of a and b). Terms apply in increasing
// sample order, matching the scalar pairing's order, but each term fuses
// multiply and add (FMA, single rounding) — tolerance contract.
//
//xbar:hotpath
func gemmTAColsSIMD(dst, a, b *Matrix, c0, c1 int) {
	m := a.cols // destination rows
	n := b.cols // destination stride
	s := a.rows // contracted samples
	for i := 0; i < m; i++ {
		row := dst.data[i*n+c0 : i*n+c1]
		for t := range row {
			row[t] = 0
		}
	}
	dbase := dst.data[c0:]
	k := 0
	for ; k+4 <= s; k += 4 {
		gemmTAQuadAVX2(dbase, n,
			a.data[k*m:(k+1)*m],
			a.data[(k+1)*m:(k+2)*m],
			a.data[(k+2)*m:(k+3)*m],
			a.data[(k+3)*m:(k+4)*m],
			b.data[k*n+c0:k*n+c1],
			b.data[(k+1)*n+c0:(k+1)*n+c1],
			b.data[(k+2)*n+c0:(k+2)*n+c1],
			b.data[(k+3)*n+c0:(k+3)*n+c1])
	}
	for ; k < s; k++ {
		arow := a.data[k*m : (k+1)*m]
		brow := b.data[k*n+c0 : k*n+c1]
		for i, x := range arow {
			if x == 0 {
				continue
			}
			row := dbase[i*n : i*n+len(brow)]
			for t, bv := range brow {
				row[t] += x * bv
			}
		}
	}
}

// gemmRowsSIMD computes destination rows [i0, i1) of dst = a·b with the
// AVX2+FMA quad-axpy sweep: for each destination row, the contracted
// terms are consumed four at a time — one assembly call applies
// drow += arow[k]·bₖ + arow[k+1]·bₖ₊₁ + arow[k+2]·bₖ₊₂ + arow[k+3]·bₖ₊₃
// (reusing the GemmTA quad kernel with one-element coefficient slices, so
// the sweep covers exactly this row). Terms apply in increasing k on one
// chain, matching the reference order; each term fuses multiply and add
// (single rounding) — tolerance contract. The destination row stays
// register/L1-resident across all of k, so no gemmBlock re-sweep of the
// streamed operand is needed.
//
//xbar:hotpath
func gemmRowsSIMD(dst, a, b *Matrix, i0, i1 int) {
	kdim := a.cols
	n := b.cols
	for i := i0; i < i1; i++ {
		arow := a.data[i*kdim : (i+1)*kdim]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kdim; k += 4 {
			gemmTAQuadAVX2(drow, n,
				arow[k:k+1], arow[k+1:k+2], arow[k+2:k+3], arow[k+3:k+4],
				b.data[k*n:(k+1)*n],
				b.data[(k+1)*n:(k+2)*n],
				b.data[(k+2)*n:(k+3)*n],
				b.data[(k+3)*n:(k+4)*n])
		}
		for ; k < kdim; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			d := drow[:len(brow)]
			for j, bv := range brow {
				d[j] += aik * bv
			}
		}
	}
}

// gemmRowsQuad is the pure-Go unrolled Gemm row kernel: contracted terms
// grouped four at a time on one accumulator chain in increasing k (the
// same pairing gemmTACols uses), quartering the destination-row
// load/store traffic versus the reference one-k-at-a-time axpy. The
// chain order matches the reference exactly and Go does not fuse, so
// this path is bitwise identical to gemmRows; the group-level zero skip
// is bitwise neutral for the same reason the reference's per-k skip is
// (partial sums starting at +0 are never -0).
//
//xbar:hotpath
func gemmRowsQuad(dst, a, b *Matrix, i0, i1 int) {
	kdim := a.cols
	n := b.cols
	for i := i0; i < i1; i++ {
		arow := a.data[i*kdim : (i+1)*kdim]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kdim; k += 4 {
			x0, x1, x2, x3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
				continue
			}
			b0 := b.data[k*n : (k+1)*n]
			b1 := b.data[(k+1)*n : (k+2)*n]
			b2 := b.data[(k+2)*n : (k+3)*n]
			b3 := b.data[(k+3)*n : (k+4)*n]
			d := drow[:len(b0)]
			b1v := b1[:len(b0)]
			b2v := b2[:len(b0)]
			b3v := b3[:len(b0)]
			for j, bv := range b0 {
				t := d[j] + x0*bv
				t += x1 * b1v[j]
				t += x2 * b2v[j]
				d[j] = t + x3*b3v[j]
			}
		}
		for ; k < kdim; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			d := drow[:len(brow)]
			for j, bv := range brow {
				d[j] += aik * bv
			}
		}
	}
}

// gemmTBCols computes destination columns [j0, j1) of dst = a·bᵀ,
// outer-loop over b's rows so that a (the smaller operand in this
// orientation) is re-streamed from cache while each b row is read once.
//
//xbar:hotpath
func (f *fastBackend) gemmTBCols(dst, a, b *Matrix, j0, j1 int) {
	kdim := a.cols
	n := b.rows
	for j := j0; j < j1; j++ {
		brow := b.data[j*kdim : (j+1)*kdim]
		for i := 0; i < a.rows; i++ {
			dst.data[i*n+j] = f.dot(a.data[i*kdim:(i+1)*kdim], brow)
		}
	}
}

// gemmTBRows computes destination rows [i0, i1) of dst = a·bᵀ, outer-loop
// over a's rows so that b (the smaller operand in this orientation) is
// re-streamed from cache.
//
//xbar:hotpath
func (f *fastBackend) gemmTBRows(dst, a, b *Matrix, i0, i1 int) {
	kdim := a.cols
	n := b.rows
	for i := i0; i < i1; i++ {
		arow := a.data[i*kdim : (i+1)*kdim]
		drow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = f.dot(arow, b.data[j*kdim:(j+1)*kdim])
		}
	}
}

// matVecRows computes dst[i0:i1] of dst = m·x, one multi-accumulator dot
// per row.
//
//xbar:hotpath
func (f *fastBackend) matVecRows(dst []float64, m *Matrix, x []float64, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dst[i] = f.dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
}

// dot4c is the pure-Go multi-accumulator dot product: four strided chains
// (k ≡ 0..3 mod 4) combined as (s0+s1)+(s2+s3), with a single-chain tail.
// The k-3..k indexing keeps every access provably in bounds after the
// y = y[:len(x)] hint, so the inner loop carries no bounds checks.
//
//xbar:hotpath
func dot4c(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	k := 3
	for ; k < len(x); k += 4 {
		s0 += x[k-3] * y[k-3]
		s1 += x[k-2] * y[k-2]
		s2 += x[k-1] * y[k-1]
		s3 += x[k] * y[k]
	}
	for k -= 3; k < len(x); k++ {
		s0 += x[k] * y[k]
	}
	return (s0 + s1) + (s2 + s3)
}
