package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix fills a matrix with a mix of signed values and exact zeros so
// the kernels' zero-skip paths are exercised.
func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		if r.Intn(4) == 0 {
			continue // leave an exact zero
		}
		m.data[i] = r.NormFloat64()
	}
	return m
}

// bitsEqual reports bit-level equality, the standard this package's
// determinism contract promises.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestGemmMatchesMatMulBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Sizes straddling the cache block so the blocked path runs.
	for _, sz := range [][3]int{{3, 5, 4}, {10, 784, 6}, {2, gemmBlock + 33, 9}, {1, 1, 1}} {
		m, k, n := sz[0], sz[1], sz[2]
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		want := a.MatMul(b)
		dst := New(m, n)
		dst.Fill(math.NaN()) // prove dst is fully overwritten
		Gemm(dst, a, b)
		if !bitsEqual(dst.Data(), want.Data()) {
			t.Fatalf("Gemm %dx%dx%d differs from MatMul", m, k, n)
		}
	}
}

func TestGemmTAMatchesPerSampleOuterSum(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, sz := range [][3]int{{5, 3, 4}, {37, 10, 784}, {gemmBlock + 5, 4, 9}} {
		k, m, n := sz[0], sz[1], sz[2]
		a := randMatrix(r, k, m) // e.g. batch of deltas
		b := randMatrix(r, k, n) // e.g. batch of inputs
		// Reference: the per-sample accumulation order of the old training
		// loops — samples outer, in increasing order.
		want := New(m, n)
		for s := 0; s < k; s++ {
			AddOuterInto(want, a.Row(s), b.Row(s))
		}
		dst := New(m, n)
		dst.Fill(math.NaN())
		GemmTA(dst, a, b)
		if !bitsEqual(dst.Data(), want.Data()) {
			t.Fatalf("GemmTA %dx%dx%d differs from per-sample outer sum", k, m, n)
		}
	}
}

func TestGemmTBMatchesPerSampleMatVec(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, sz := range [][3]int{{4, 6, 3}, {33, 784, 10}, {2, gemmBlock + 17, 5}} {
		m, k, n := sz[0], sz[1], sz[2]
		a := randMatrix(r, m, k) // e.g. batch of inputs
		b := randMatrix(r, n, k) // e.g. weights
		dst := New(m, n)
		dst.Fill(math.NaN())
		GemmTB(dst, a, b)
		for i := 0; i < m; i++ {
			if want := b.MatVec(a.Row(i)); !bitsEqual(dst.Row(i), want) {
				t.Fatalf("GemmTB row %d differs from MatVec", i)
			}
		}
	}
}

func TestMatVecIntoMatchesMatVec(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := randMatrix(r, 13, 57)
	x := make([]float64, 57)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	dst := make([]float64, 13)
	MatVecInto(dst, m, x)
	if !bitsEqual(dst, m.MatVec(x)) {
		t.Fatal("MatVecInto differs from MatVec")
	}
}

func TestVecMatIntoMatchesVecMat(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := randMatrix(r, 13, 57)
	x := make([]float64, 13)
	for i := range x {
		if r.Intn(3) != 0 {
			x[i] = r.NormFloat64()
		}
	}
	dst := make([]float64, 57)
	for i := range dst {
		dst[i] = math.NaN()
	}
	VecMatInto(dst, x, m)
	if !bitsEqual(dst, m.VecMat(x)) {
		t.Fatal("VecMatInto differs from VecMat")
	}
}

func TestAddOuterInto(t *testing.T) {
	x := []float64{2, 0, -1}
	y := []float64{1, 3}
	dst := New(3, 2)
	dst.Set(0, 0, 10)
	AddOuterInto(dst, x, y)
	want := []float64{12, 6, 0, 0, -1, -3}
	if !bitsEqual(dst.Data(), want) {
		t.Fatalf("AddOuterInto got %v want %v", dst.Data(), want)
	}
}

func TestRowSpanSharesBacking(t *testing.T) {
	m := New(4, 3)
	v := m.RowSpan(1, 3)
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("RowSpan shape %dx%d", v.Rows(), v.Cols())
	}
	v.Set(0, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("RowSpan is not a view")
	}
	for _, bad := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RowSpan(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			m.RowSpan(bad[0], bad[1])
		}()
	}
}

func TestCopyRow(t *testing.T) {
	src := New(2, 3)
	src.SetRow(1, []float64{4, 5, 6})
	dst := New(3, 3)
	dst.CopyRow(2, src, 1)
	if !bitsEqual(dst.Row(2), src.Row(1)) {
		t.Fatal("CopyRow mismatch")
	}
}

func TestGemmShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 5)
	for name, f := range map[string]func(){
		"Gemm":         func() { Gemm(New(2, 5), a, b) },
		"GemmTA":       func() { GemmTA(New(3, 5), a, b) },
		"GemmTB":       func() { GemmTB(New(2, 4), a, b) },
		"MatVecInto":   func() { MatVecInto(make([]float64, 2), a, make([]float64, 4)) },
		"VecMatInto":   func() { VecMatInto(make([]float64, 3), make([]float64, 4), a) },
		"AddOuterInto": func() { AddOuterInto(a, make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestKernelsAllocationFree(t *testing.T) {
	a := randMatrix(rand.New(rand.NewSource(12)), 16, 300)
	b := randMatrix(rand.New(rand.NewSource(13)), 10, 300)
	bt := b.T()
	dst := New(16, 10)
	dstTA := New(300, 300)
	x := make([]float64, 300)
	mv := make([]float64, 16)
	vm := make([]float64, 300)
	vel := New(16, 10)
	gsg := New(16, 10)
	for name, f := range map[string]func(){
		"Gemm":         func() { Gemm(dst, a, bt) },
		"GemmTA":       func() { GemmTA(dstTA, a, a) },
		"GemmTB":       func() { GemmTB(dst, a, b) },
		"MatVecInto":   func() { MatVecInto(vm, dstTA, x) },
		"VecMatInto":   func() { VecMatInto(vm, mv, a) },
		"AddOuterInto": func() { AddOuterInto(dst, mv, bt.Row(0)) },
		"SGDMomentumStep": func() {
			SGDMomentumStep(dst, vel, gsg, 0.9, -0.01, true, -0.001)
		},
	} {
		f() // warm up
		if n := testing.AllocsPerRun(10, f); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", name, n)
		}
	}
}
