package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"parallel", []float64{1, 2, 3}, []float64{2, 4, 6}, 28},
		{"signed", []float64{1, -1}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Fatalf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestVectorArithmetic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{3, 2, 1}
	if got := AddVec(a, b); got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(a, b); got[0] != -2 || got[2] != 2 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(-1, a); got[0] != -1 || got[2] != -3 {
		t.Fatalf("ScaleVec = %v", got)
	}
	y := CloneVec(a)
	AxpyInPlace(2, b, y)
	if y[0] != 7 || y[2] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
	// Original untouched by clone mutation.
	if a[0] != 1 {
		t.Fatal("CloneVec aliased input")
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if Norm1(v) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(v))
	}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(v))
	}
	if NormInf(v) != 4 {
		t.Fatalf("NormInf = %v", NormInf(v))
	}
	if NormInf(nil) != 0 {
		t.Fatal("NormInf(nil) must be 0")
	}
}

func TestArgMaxMin(t *testing.T) {
	tests := []struct {
		name             string
		v                []float64
		wantMax, wantMin int
	}{
		{"empty", nil, -1, -1},
		{"single", []float64{5}, 0, 0},
		{"ties pick first", []float64{2, 2, 1, 1}, 0, 2},
		{"signed", []float64{-5, 0, 5}, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArgMax(tt.v); got != tt.wantMax {
				t.Fatalf("ArgMax = %d, want %d", got, tt.wantMax)
			}
			if got := ArgMin(tt.v); got != tt.wantMin {
				t.Fatalf("ArgMin = %d, want %d", got, tt.wantMin)
			}
		})
	}
}

func TestTopK(t *testing.T) {
	v := []float64{1, 9, 3, 9, 5}
	got := TopK(v, 3)
	want := []int{1, 3, 4} // stable: first 9, second 9, then 5
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := TopK(v, 99); len(got) != len(v) {
		t.Fatalf("TopK over-length = %v", got)
	}
	if got := TopK(v, 0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
}

func TestClamp(t *testing.T) {
	v := []float64{-2, 0.5, 3}
	Clamp(v, 0, 1)
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("Clamp = %v", v)
	}
}

func TestSignVec(t *testing.T) {
	got := SignVec([]float64{-3, 0, 7})
	if got[0] != -1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("SignVec = %v", got)
	}
}

func TestBasis(t *testing.T) {
	b := Basis(4, 2, 3.5)
	for i, v := range b {
		want := 0.0
		if i == 2 {
			want = 3.5
		}
		if v != want {
			t.Fatalf("Basis = %v", b)
		}
	}
}

func TestBasisOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Basis(3, 3, 1)
}

func TestAbsVecSum(t *testing.T) {
	if got := Sum(AbsVec([]float64{-1, 2, -3})); got != 6 {
		t.Fatalf("Sum(Abs) = %v", got)
	}
}

// Property: triangle inequality for Norm2.
func TestNorm2Triangle(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + r.intn(10)
		a, b := randomVec(r, n), randomVec(r, n)
		return Norm2(AddVec(a, b)) <= Norm2(a)+Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |a·b| <= |a||b|.
func TestCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + r.intn(10)
		a, b := randomVec(r, n), randomVec(r, n)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec with a basis vector extracts a column.
func TestMatVecBasisExtractsColumn(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := randomMatrix(r, 2+r.intn(5), 2+r.intn(5))
		j := r.intn(m.Cols())
		got := m.MatVec(Basis(m.Cols(), j, 1))
		col := m.Col(j)
		for i := range got {
			if math.Abs(got[i]-col[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
