// Package tensor provides the dense matrix and vector kernel used by every
// other package in this module. Matrices are row-major float64. Following
// the convention of mainstream Go numeric libraries, shape mismatches are
// treated as programmer errors and panic with a descriptive message; all
// other failure modes return errors.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use New or NewFromData to
// construct matrices with a shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled rows x cols matrix.
// It panics if rows or cols is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromData wraps data as a rows x cols matrix without copying.
// It panics if len(data) != rows*cols.
func NewFromData(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying
// the data. It returns an error if the rows are ragged or empty.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("tensor: ragged row %d: got %d values, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Size returns the total number of elements.
func (m *Matrix) Size() int { return m.rows * m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i as a slice.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: column %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. It panics if len(v) != Cols().
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("tensor: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Data returns the underlying row-major backing slice (not a copy).
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// MatVec computes m * x and returns the resulting vector of length Rows().
// It panics if len(x) != Cols().
func (m *Matrix) MatVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("tensor: MatVec length %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMat computes xᵀ * m and returns the resulting vector of length Cols().
// It panics if len(x) != Rows().
func (m *Matrix) VecMat(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("tensor: VecMat length %d, want %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// MatMul computes m * other and returns a new Rows() x other.Cols() matrix.
// It panics if m.Cols() != other.Rows().
func (m *Matrix) MatMul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := New(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*other.cols : (i+1)*other.cols]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			brow := other.data[k*other.cols : (k+1)*other.cols]
			for j, b := range brow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// AddMatrix adds other into m element-wise, in place.
// It panics on shape mismatch.
func (m *Matrix) AddMatrix(other *Matrix) {
	m.sameShape(other, "AddMatrix")
	for i, v := range other.data {
		m.data[i] += v
	}
}

// SubMatrix subtracts other from m element-wise, in place.
// It panics on shape mismatch.
func (m *Matrix) SubMatrix(other *Matrix) {
	m.sameShape(other, "SubMatrix")
	for i, v := range other.data {
		m.data[i] -= v
	}
}

// AddScaled adds alpha*other into m element-wise, in place.
// It panics on shape mismatch.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	m.sameShape(other, "AddScaled")
	for i, v := range other.data {
		m.data[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha, in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// Apply replaces each element x with f(x), in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// ColAbsSums returns, for each column j, Σ_i |m_ij| — the 1-norm of
// column j. This is the quantity the crossbar power side channel leaks.
func (m *Matrix) ColAbsSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += math.Abs(v)
		}
	}
	return out
}

// ColAbsSumsInto writes the per-column 1-norms into dst without
// allocating; bit-identical to ColAbsSums. It panics if len(dst) != Cols().
func (m *Matrix) ColAbsSumsInto(dst []float64) {
	if len(dst) != m.cols {
		panic(fmt.Sprintf("tensor: ColAbsSumsInto length %d, want %d", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += math.Abs(v)
		}
	}
}

// MaxAbs returns the largest absolute value in m, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

func (m *Matrix) sameShape(other *Matrix, op string) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, other.rows, other.cols))
	}
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small human-readable preview of the matrix.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
}
