//go:build amd64

#include "textflag.h"

// SIMD kernels for the fast backend (see fast.go for the contract). Both
// use FMA, so each accumulation fuses multiply and add with a single
// rounding — results are tolerance-equal, not bit-equal, to the scalar
// reference chains.

// func dotAVX2(x, y []float64) float64
//
// Four-lane-by-four-chain dot product: 16 elements per iteration on four
// ymm accumulators, horizontally reduced at the end, scalar tail.
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ CX, DX
	ANDQ $-16, DX
	XORQ AX, AX
	CMPQ DX, $0
	JE   reduce
loop16:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	VFMADD231PD 64(DI)(AX*8), Y6, Y2
	VFMADD231PD 96(DI)(AX*8), Y7, Y3
	ADDQ $16, AX
	CMPQ AX, DX
	JL   loop16
reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VSHUFPD $1, X0, X0, X1
	VADDSD X1, X0, X0
scalar:
	CMPQ AX, CX
	JGE  done
	VMOVSD (SI)(AX*8), X1
	VMULSD (DI)(AX*8), X1, X1
	VADDSD X1, X0, X0
	INCQ AX
	JMP  scalar
done:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func gemmTAQuadAVX2(dst []float64, stride int, a0, a1, a2, a3, b0, b1, b2, b3 []float64)
//
// Fused four-sample axpy sweep for GemmTA: for every destination row i
// (i < len(a0)), dst[i*stride : i*stride+len(b0)] += a0[i]*b0 + a1[i]*b1
// + a2[i]*b2 + a3[i]*b3, vectorized over the row with the four terms
// applied in increasing sample order (same order as the scalar pairing,
// FMA rounding).
TEXT ·gemmTAQuadAVX2(SB), NOSPLIT, $0-224
	MOVQ dst_base+0(FP), SI
	MOVQ a0_base+32(FP), R8
	MOVQ a1_base+56(FP), R9
	MOVQ a2_base+80(FP), R10
	MOVQ a3_base+104(FP), R11
	MOVQ b0_base+128(FP), R12
	MOVQ b1_base+152(FP), R13
	MOVQ b2_base+176(FP), DX
	MOVQ b3_base+200(FP), DI
	MOVQ b0_len+136(FP), AX
	ANDQ $-4, AX
	XORQ BX, BX
rowloop:
	CMPQ BX, a0_len+40(FP)
	JGE  alldone
	VBROADCASTSD (R8)(BX*8), Y8
	VBROADCASTSD (R9)(BX*8), Y9
	VBROADCASTSD (R10)(BX*8), Y10
	VBROADCASTSD (R11)(BX*8), Y11
	XORQ CX, CX
	CMPQ CX, AX
	JGE  vtail
vecloop:
	VMOVUPD (SI)(CX*8), Y0
	VFMADD231PD (R12)(CX*8), Y8, Y0
	VFMADD231PD (R13)(CX*8), Y9, Y0
	VFMADD231PD (DX)(CX*8), Y10, Y0
	VFMADD231PD (DI)(CX*8), Y11, Y0
	VMOVUPD Y0, (SI)(CX*8)
	ADDQ $4, CX
	CMPQ CX, AX
	JL   vecloop
vtail:
	CMPQ CX, b0_len+136(FP)
	JGE  rownext
	VMOVSD (SI)(CX*8), X0
	VFMADD231SD (R12)(CX*8), X8, X0
	VFMADD231SD (R13)(CX*8), X9, X0
	VFMADD231SD (DX)(CX*8), X10, X0
	VFMADD231SD (DI)(CX*8), X11, X0
	VMOVSD X0, (SI)(CX*8)
	INCQ CX
	JMP  vtail
rownext:
	MOVQ stride+24(FP), CX
	LEAQ (SI)(CX*8), SI
	INCQ BX
	JMP  rowloop
alldone:
	VZEROUPPER
	RET

// func cpuHasAVX2FMA() bool
//
// CPUID feature probe: FMA + AVX + OSXSAVE (leaf 1 ECX), OS ymm state
// support (XGETBV), AVX2 (leaf 7 EBX). BX is callee-save in the Go ABI,
// preserved around CPUID.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVQ BX, R8
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $0x18001000, DX
	CMPL DX, $0x18001000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	CMPL BX, $0x20
	JNE  no
	MOVQ R8, BX
	MOVB $1, ret+0(FP)
	RET
no:
	MOVQ R8, BX
	MOVB $0, ret+0(FP)
	RET
