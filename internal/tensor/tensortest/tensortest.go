// Package tensortest wires the tensor backend matrix into test binaries.
// Suites that are expected to hold under every backend (nn, surrogate,
// experiment) route their TestMain through Main, which installs the fast
// backend when the binary runs with -tensor.fast:
//
//	go test ./internal/nn/ -tensor.fast
//
// Backend selection stays explicit (a flag on the test binary, never an
// environment read — see the detrand contract), and the default remains
// the bit-exact reference backend, so `go test ./...` is unchanged.
// Equivalence tests that pin bit-identity switch to tolerance mode by
// consulting tensor.Active().BitExact().
package tensortest

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"xbarsec/internal/tensor"
)

var fast = flag.Bool("tensor.fast", false,
	"run the test binary with the fast tensor backend active")

// Main is the shared TestMain body: parse flags, install the requested
// backend, run the suite.
func Main(m *testing.M) {
	flag.Parse()
	if *fast {
		tensor.Use(tensor.NewFast(0))
		fmt.Printf("tensortest: %s tensor backend active\n", tensor.ActiveName())
	}
	os.Exit(m.Run())
}
