package crossbar

import (
	"fmt"
	"math"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Network is a single-layer neural network executed on a crossbar: the
// hardware realization of an nn.Network. It is what the paper's "oracle"
// runs on — attacks query it for outputs and power, never for weights.
type Network struct {
	xbar *Crossbar
	act  nn.Activation
}

// NewNetwork programs net's weights onto a crossbar with the given device
// configuration.
func NewNetwork(net *nn.Network, cfg DeviceConfig, src *rng.Source) (*Network, error) {
	xb, err := Program(net.W, cfg, src)
	if err != nil {
		return nil, fmt.Errorf("crossbar: programming network: %w", err)
	}
	return &Network{xbar: xb, act: net.Act}, nil
}

// Crossbar returns the underlying array.
func (n *Network) Crossbar() *Crossbar { return n.xbar }

// Activation returns the output activation applied after the array.
func (n *Network) Activation() nn.Activation { return n.act }

// Inputs returns the input dimensionality.
func (n *Network) Inputs() int { return n.xbar.Cols() }

// Outputs returns the output dimensionality.
func (n *Network) Outputs() int { return n.xbar.Rows() }

// Forward returns ŷ = f(s) where s is the crossbar's normalized output.
func (n *Network) Forward(u []float64) ([]float64, error) {
	s, err := n.xbar.Output(u)
	if err != nil {
		return nil, err
	}
	return applyActivation(n.act, s), nil
}

// applyActivation mirrors nn's activation semantics on a slice.
func applyActivation(act nn.Activation, s []float64) []float64 {
	// Delegate through a throwaway nn.Network-free path: the activation
	// math is tiny, so reimplementing keeps the packages decoupled.
	switch act {
	case nn.ActLinear:
		return s
	case nn.ActSoftmax:
		return softmax(s)
	case nn.ActSigmoid:
		for i, v := range s {
			s[i] = sigmoid(v)
		}
		return s
	case nn.ActReLU:
		for i, v := range s {
			if v < 0 {
				s[i] = 0
			}
		}
		return s
	default:
		panic(fmt.Sprintf("crossbar: unknown activation %v", act))
	}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func softmax(s []float64) []float64 {
	maxv := s[0]
	for _, v := range s[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range s {
		e := math.Exp(v - maxv)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
	return s
}

// Predict returns the argmax class label for input u.
func (n *Network) Predict(u []float64) (int, error) {
	y, err := n.Forward(u)
	if err != nil {
		return 0, err
	}
	return tensor.ArgMax(y), nil
}

// Power returns the read power consumed while processing u.
func (n *Network) Power(u []float64) (float64, error) { return n.xbar.Power(u) }
