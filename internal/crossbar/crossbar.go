// Package crossbar simulates NVM crossbar arrays performing analog
// matrix-vector multiplication, following Section II-B of the paper. Each
// weight w_ij is realized by a differential conductance pair
// (G+_ij, G-_ij) under the minimum-power programming convention the paper
// assumes: for positive weights G-_ij is parked at the device off-
// conductance and vice versa, giving the one-to-one weight/conductance
// mapping of Eq. (6): |w_ij| ∝ G+_ij + G-_ij.
//
// The ideal mode reproduces Eq. (3)-(5) exactly. First-order non-ideality
// models (conductance quantization, programming/read noise, stuck-at
// faults, IR drop) are provided for the robustness ablations; the paper
// defers SPICE-level modelling to future work.
package crossbar

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// ErrNotProgrammed indicates an operation on a crossbar with no weights.
var ErrNotProgrammed = errors.New("crossbar: not programmed")

// DeviceConfig describes the NVM device technology and array non-
// idealities. The zero value is invalid; use DefaultDeviceConfig.
type DeviceConfig struct {
	// GOn is the maximum programmable conductance in siemens.
	GOn float64
	// GOff is the off-state conductance in siemens (> 0 for real devices;
	// the paper's "≈ 0" assumption corresponds to GOff << GOn).
	GOff float64
	// Vdd is the read voltage in volts; inputs in [0,1] scale to [0,Vdd].
	Vdd float64
	// Levels quantizes each device to this many evenly-spaced conductance
	// states between GOff and GOn. 0 (or 1) means analog (no
	// quantization).
	Levels int
	// ProgramNoiseStd is the relative (multiplicative) Gaussian error
	// applied once at programming time: G ← G·(1 + N(0, σ)).
	ProgramNoiseStd float64
	// ReadNoiseStd is the relative Gaussian error applied on every read.
	ReadNoiseStd float64
	// StuckFraction is the fraction of devices stuck at GOff or GOn
	// (half each), chosen at programming time.
	StuckFraction float64
	// IRDropAlpha is a first-order wire-resistance model: the voltage
	// reaching cell (i,j) is attenuated by 1 - IRDropAlpha·(i+j)/(M+N).
	IRDropAlpha float64
	// PowerMasking adds a dummy differential row whose conductances
	// equalize every column's total conductance to the largest column's.
	// The dummy row's output current is discarded, so inference is
	// unchanged, but the supply current becomes input-independent up to
	// Σ_j u_j — a countermeasure that removes the column-1-norm leak at
	// the cost of extra static power.
	PowerMasking bool
}

// DefaultDeviceConfig returns an ideal crossbar with a realistic ReRAM
// conductance window (GOn/GOff ratio 100).
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{GOn: 100e-6, GOff: 1e-6, Vdd: 0.2}
}

// Validate checks physical plausibility.
func (c DeviceConfig) Validate() error {
	if c.GOn <= 0 || c.GOff < 0 || c.GOn <= c.GOff {
		return fmt.Errorf("crossbar: conductance window [%v, %v] invalid", c.GOff, c.GOn)
	}
	if c.Vdd <= 0 {
		return fmt.Errorf("crossbar: Vdd %v must be positive", c.Vdd)
	}
	if c.Levels < 0 {
		return fmt.Errorf("crossbar: negative quantization levels %d", c.Levels)
	}
	if c.ProgramNoiseStd < 0 || c.ReadNoiseStd < 0 {
		return fmt.Errorf("crossbar: negative noise std")
	}
	if c.StuckFraction < 0 || c.StuckFraction > 1 {
		return fmt.Errorf("crossbar: stuck fraction %v out of [0,1]", c.StuckFraction)
	}
	if c.IRDropAlpha < 0 || c.IRDropAlpha >= 1 {
		return fmt.Errorf("crossbar: IR drop alpha %v out of [0,1)", c.IRDropAlpha)
	}
	return nil
}

// Crossbar is a programmed M x N differential crossbar array.
type Crossbar struct {
	gplus  *tensor.Matrix // M x N positive-path conductances
	gminus *tensor.Matrix // M x N negative-path conductances
	cfg    DeviceConfig
	scale  float64 // siemens per unit weight
	rows   int
	cols   int
	reads  *rng.Source // read-noise stream; nil when ReadNoiseStd == 0
	// mask holds the per-column dummy conductance (split equally between
	// a + and a − device) when PowerMasking is enabled; nil otherwise.
	mask []float64
	// eff caches the IR-drop-adjusted effective conductances for
	// noise-free arrays so batched calls (batch.go) amortize the
	// per-device attenuation arithmetic over many inputs. Built lazily
	// under effOnce; never populated when reads != nil, because per-read
	// noise makes effective conductances change on every read.
	effOnce sync.Once
	effDiff *tensor.Matrix // readConductance(G+) - readConductance(G-)
	effSum  *tensor.Matrix // readConductance(G+) + readConductance(G-)
	effMask []float64      // effective masking dummy row (nil without masking)
	// ir caches the deterministic half of the noisy read path: the
	// IR-drop-attenuated programmed conductances. Per-read noise then
	// multiplies these cached products — the same association order as
	// attenuating and perturbing each device inline — so noisy reads are
	// bit-identical to the uncached path while the per-read positional
	// arithmetic is hoisted. noiseBuf holds one row of per-device noise
	// draws (2 per device: G+ then G-), filled in the stream order the
	// scalar per-device draws consumed.
	irOnce   sync.Once
	irPlus   *tensor.Matrix
	irMinus  *tensor.Matrix
	irMask   []float64
	noiseBuf []float64
}

// irAdjusted materializes (and caches) the IR-drop-attenuated programmed
// conductances used by the noisy read path. With IRDropAlpha == 0 the
// matrices alias the programmed conductances directly.
func (x *Crossbar) irAdjusted() {
	x.irOnce.Do(func() {
		x.noiseBuf = make([]float64, 2*x.cols)
		if x.cfg.IRDropAlpha == 0 {
			x.irPlus, x.irMinus, x.irMask = x.gplus, x.gminus, x.mask
			return
		}
		x.irPlus = x.gplus.Clone()
		x.irMinus = x.gminus.Clone()
		total := float64(x.rows + x.cols)
		for i := 0; i < x.rows; i++ {
			pRow := x.irPlus.Row(i)
			mRow := x.irMinus.Row(i)
			for j := range pRow {
				// Same expression as readConductance (division kept — a
				// reciprocal multiply would not be bit-identical).
				f := 1 - x.cfg.IRDropAlpha*float64(i+j)/total
				pRow[j] *= f
				mRow[j] *= f
			}
		}
		if x.mask != nil {
			x.irMask = make([]float64, x.cols)
			for j, g := range x.mask {
				x.irMask[j] = g * (1 - x.cfg.IRDropAlpha*float64(x.rows+j)/total)
			}
		}
	})
}

// Program maps the weight matrix w onto a crossbar under the minimum-power
// convention. The conductance scale is chosen so the largest |w_ij| maps
// to GOn. src supplies programming noise and stuck-at fault locations; it
// may be nil when the config requests neither.
func Program(w *tensor.Matrix, cfg DeviceConfig, src *rng.Source) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || w.Size() == 0 {
		return nil, fmt.Errorf("crossbar: empty weight matrix: %w", ErrNotProgrammed)
	}
	needsRandom := cfg.ProgramNoiseStd > 0 || cfg.StuckFraction > 0 || cfg.ReadNoiseStd > 0
	if needsRandom && src == nil {
		return nil, errors.New("crossbar: config requires randomness but src is nil")
	}
	maxAbs := w.MaxAbs()
	if maxAbs == 0 {
		// All-zero weights: park every device at GOff with unit scale.
		maxAbs = 1
	}
	scale := (cfg.GOn - cfg.GOff) / maxAbs
	m, n := w.Rows(), w.Cols()
	gp := tensor.New(m, n)
	gm := tensor.New(m, n)
	var progSrc, stuckSrc, readSrc *rng.Source
	if src != nil {
		progSrc = src.Split("program-noise")
		stuckSrc = src.Split("stuck-faults")
		readSrc = src.Split("read-noise")
	}
	for i := 0; i < m; i++ {
		wrow := w.Row(i)
		for j, wij := range wrow {
			on := cfg.GOff + math.Abs(wij)*scale
			on = quantize(on, cfg)
			if cfg.ProgramNoiseStd > 0 {
				on *= 1 + progSrc.Normal(0, cfg.ProgramNoiseStd)
			}
			on = clampConductance(on, cfg)
			off := cfg.GOff
			if wij >= 0 {
				gp.Set(i, j, on)
				gm.Set(i, j, off)
			} else {
				gp.Set(i, j, off)
				gm.Set(i, j, on)
			}
		}
	}
	if cfg.StuckFraction > 0 {
		injectStuckFaults(gp, gm, cfg, stuckSrc)
	}
	xb := &Crossbar{gplus: gp, gminus: gm, cfg: cfg, scale: scale, rows: m, cols: n}
	if cfg.ReadNoiseStd > 0 {
		xb.reads = readSrc
	}
	if cfg.PowerMasking {
		sums := xb.columnSumsRaw()
		var maxSum float64
		for _, s := range sums {
			if s > maxSum {
				maxSum = s
			}
		}
		xb.mask = make([]float64, n)
		for j, s := range sums {
			xb.mask[j] = maxSum - s
		}
	}
	return xb, nil
}

// columnSumsRaw returns Σ_i (G+_ij + G-_ij) over the functional rows only.
func (x *Crossbar) columnSumsRaw() []float64 {
	out := make([]float64, x.cols)
	for i := 0; i < x.rows; i++ {
		gpRow := x.gplus.Row(i)
		gmRow := x.gminus.Row(i)
		for j := range out {
			out[j] += gpRow[j] + gmRow[j]
		}
	}
	return out
}

func quantize(g float64, cfg DeviceConfig) float64 {
	if cfg.Levels <= 1 {
		return g
	}
	step := (cfg.GOn - cfg.GOff) / float64(cfg.Levels-1)
	k := math.Round((g - cfg.GOff) / step)
	return cfg.GOff + k*step
}

func clampConductance(g float64, cfg DeviceConfig) float64 {
	if g < cfg.GOff {
		return cfg.GOff
	}
	if g > cfg.GOn {
		return cfg.GOn
	}
	return g
}

func injectStuckFaults(gp, gm *tensor.Matrix, cfg DeviceConfig, src *rng.Source) {
	total := gp.Size() * 2
	faults := int(cfg.StuckFraction * float64(total))
	for k := 0; k < faults; k++ {
		flat := src.Intn(total)
		target := gp
		if flat >= gp.Size() {
			target = gm
			flat -= gp.Size()
		}
		i, j := flat/gp.Cols(), flat%gp.Cols()
		if src.Bool() {
			target.Set(i, j, cfg.GOff)
		} else {
			target.Set(i, j, cfg.GOn)
		}
	}
}

// Rows returns the number of outputs M.
func (x *Crossbar) Rows() int { return x.rows }

// Cols returns the number of inputs N.
func (x *Crossbar) Cols() int { return x.cols }

// Config returns the device configuration.
func (x *Crossbar) Config() DeviceConfig { return x.cfg }

// Scale returns the siemens-per-unit-weight programming scale.
func (x *Crossbar) Scale() float64 { return x.scale }

// readConductance returns the effective conductance of the device,
// applying per-read noise and the positional IR-drop attenuation.
func (x *Crossbar) readConductance(g float64, i, j int) float64 {
	if x.cfg.IRDropAlpha > 0 {
		g *= 1 - x.cfg.IRDropAlpha*float64(i+j)/float64(x.rows+x.cols)
	}
	if x.reads != nil {
		g *= 1 + x.reads.Normal(0, x.cfg.ReadNoiseStd)
		if g < 0 {
			g = 0
		}
	}
	return g
}

// OutputCurrents drives the column lines with voltages u·Vdd (u in [0,1])
// and returns the M differential output currents i_s = (G+ - G-)·v_u,
// Eq. (3) of the paper. Noise-free arrays read the cached effective
// conductances (see batch.go) — same floating-point operation order, so
// results are unchanged; only the per-call IR-drop arithmetic is hoisted.
func (x *Crossbar) OutputCurrents(u []float64) ([]float64, error) {
	if len(u) != x.cols {
		return nil, fmt.Errorf("crossbar: input length %d, want %d", len(u), x.cols)
	}
	out := make([]float64, x.rows)
	if x.reads == nil {
		x.effective()
		for i := 0; i < x.rows; i++ {
			dRow := x.effDiff.Row(i)
			var s float64
			for j, uj := range u {
				if uj == 0 {
					continue
				}
				s += dRow[j] * uj * x.cfg.Vdd
			}
			out[i] = s
		}
		return out, nil
	}
	// Noisy path: one vectorized noise fill per row (2 draws per device,
	// G+ then G-, in the exact stream order of the per-device scalar
	// draws), applied to the cached IR-adjusted conductances.
	x.irAdjusted()
	for i := 0; i < x.rows; i++ {
		x.reads.FillNormal(x.noiseBuf, 0, x.cfg.ReadNoiseStd)
		pRow := x.irPlus.Row(i)
		mRow := x.irMinus.Row(i)
		var s float64
		for j, uj := range u {
			gp := pRow[j] * (1 + x.noiseBuf[2*j])
			if gp < 0 {
				gp = 0
			}
			gm := mRow[j] * (1 + x.noiseBuf[2*j+1])
			if gm < 0 {
				gm = 0
			}
			s += (gp - gm) * uj * x.cfg.Vdd
		}
		out[i] = s
	}
	return out, nil
}

// Output returns the normalized layer pre-activation s ≈ Wu recovered from
// the output currents, Eq. (4): currents are divided by scale·Vdd so an
// ideal crossbar returns exactly Wu.
func (x *Crossbar) Output(u []float64) ([]float64, error) {
	is, err := x.OutputCurrents(u)
	if err != nil {
		return nil, err
	}
	inv := 1 / (x.scale * x.cfg.Vdd)
	for i := range is {
		is[i] *= inv
	}
	return is, nil
}

// TotalCurrent returns the total steady-state supply current
// i_total = Σ_j v_uj · G_j with G_j = Σ_i (G+_ij + G-_ij), Eq. (5). This
// is the quantity a power-measuring attacker observes.
func (x *Crossbar) TotalCurrent(u []float64) (float64, error) {
	if len(u) != x.cols {
		return 0, fmt.Errorf("crossbar: input length %d, want %d", len(u), x.cols)
	}
	var total float64
	if x.reads == nil {
		// Cached effective conductances, same operation order as below —
		// bit-identical, without the per-call IR-drop pass.
		x.effective()
		// Basis-query fast path: the side-channel probe drives one input
		// at a time (Section III's measurement procedure), and with a
		// single nonzero u_j the general sweep degenerates to one column
		// walk — same terms, same row order, so bit-identical — without
		// scanning all M·N devices against the zero-skip branch.
		nz, nzCount := 0, 0
		for j, uj := range u {
			if uj != 0 {
				nz = j
				if nzCount++; nzCount > 1 {
					break
				}
			}
		}
		if nzCount <= 1 {
			if nzCount == 1 {
				uj := u[nz]
				for i := 0; i < x.rows; i++ {
					total += x.effSum.Row(i)[nz] * uj * x.cfg.Vdd
				}
				if x.effMask != nil {
					total += x.effMask[nz] * uj * x.cfg.Vdd
				}
			}
			return total, nil
		}
		for i := 0; i < x.rows; i++ {
			sRow := x.effSum.Row(i)
			for j, uj := range u {
				if uj == 0 {
					continue
				}
				total += sRow[j] * uj * x.cfg.Vdd
			}
		}
		if x.effMask != nil {
			for j, uj := range u {
				if uj == 0 {
					continue
				}
				total += x.effMask[j] * uj * x.cfg.Vdd
			}
		}
		return total, nil
	}
	// Noisy path: vectorized per-row noise fills over the cached
	// IR-adjusted conductances, stream-order-identical to per-device
	// scalar draws.
	x.irAdjusted()
	for i := 0; i < x.rows; i++ {
		x.reads.FillNormal(x.noiseBuf, 0, x.cfg.ReadNoiseStd)
		pRow := x.irPlus.Row(i)
		mRow := x.irMinus.Row(i)
		for j, uj := range u {
			gp := pRow[j] * (1 + x.noiseBuf[2*j])
			if gp < 0 {
				gp = 0
			}
			gm := mRow[j] * (1 + x.noiseBuf[2*j+1])
			if gm < 0 {
				gm = 0
			}
			total += (gp + gm) * uj * x.cfg.Vdd
		}
	}
	if x.mask != nil {
		// The dummy row sits physically after the functional rows.
		x.reads.FillNormal(x.noiseBuf[:x.cols], 0, x.cfg.ReadNoiseStd)
		for j, uj := range u {
			g := x.irMask[j] * (1 + x.noiseBuf[j])
			if g < 0 {
				g = 0
			}
			total += g * uj * x.cfg.Vdd
		}
	}
	return total, nil
}

// Power returns the static read power Vdd · i_total for input u.
func (x *Crossbar) Power(u []float64) (float64, error) {
	i, err := x.TotalCurrent(u)
	if err != nil {
		return 0, err
	}
	return i * x.cfg.Vdd, nil
}

// ColumnConductanceSums returns G_j = Σ_i (G+_ij + G-_ij) for every input
// column j as programmed (without read noise), including any power-
// masking dummy row. Tests use this as the ground truth the side-channel
// probe must recover.
func (x *Crossbar) ColumnConductanceSums() []float64 {
	out := x.columnSumsRaw()
	if x.mask != nil {
		for j := range out {
			out[j] += x.mask[j]
		}
	}
	return out
}

// MaskOverheadFraction returns the extra static conductance added by
// power masking as a fraction of the functional array's total, or 0 when
// masking is off — the defense's power cost.
func (x *Crossbar) MaskOverheadFraction() float64 {
	if x.mask == nil {
		return 0
	}
	var maskSum, baseSum float64
	for _, v := range x.mask {
		maskSum += v
	}
	for _, v := range x.columnSumsRaw() {
		baseSum += v
	}
	if baseSum == 0 {
		return 0
	}
	return maskSum / baseSum
}

// EffectiveWeights returns the weight matrix implied by the programmed
// conductances, (G+ - G-)/scale. For an ideal configuration this equals
// the programmed weights exactly.
func (x *Crossbar) EffectiveWeights() *tensor.Matrix {
	w := tensor.New(x.rows, x.cols)
	for i := 0; i < x.rows; i++ {
		gpRow := x.gplus.Row(i)
		gmRow := x.gminus.Row(i)
		row := w.Row(i)
		for j := range row {
			row[j] = (gpRow[j] - gmRow[j]) / x.scale
		}
	}
	return w
}
