package crossbar

import (
	"fmt"

	"xbarsec/internal/tensor"
)

// Batched evaluation. One programmed array is driven with a whole batch
// of input vectors at once. For noise-free arrays the IR-drop-adjusted
// effective conductances are materialized once per array and cached (the
// scalar entry points read the same cache), inputs are validated up
// front, and tiled arrays amortize the per-tile dispatch over the batch.
// Every batched method processes inputs strictly in order through the
// scalar kernels, so results — including the consumption order of a
// noisy array's per-read noise stream — are bit-identical to calling the
// scalar counterpart once per input.
//
// Batched calls on a noise-free array are safe for concurrent use; read
// noise makes an array stateful, as with the scalar methods.

// validateBatch checks every input's length up front so a bad batch fails
// before any read-noise draw is consumed.
func validateBatch(us [][]float64, want int) error {
	for b, u := range us {
		if len(u) != want {
			return fmt.Errorf("crossbar: batch input %d length %d, want %d", b, len(u), want)
		}
	}
	return nil
}

// effective materializes (and caches) the IR-drop-adjusted conductance
// difference and sum per device, plus the effective masking row. Only
// valid for noise-free arrays.
func (x *Crossbar) effective() {
	x.effOnce.Do(func() {
		diff := x.gplus.Clone()
		sum := x.gplus.Clone()
		for i := 0; i < x.rows; i++ {
			gpRow := x.gplus.Row(i)
			gmRow := x.gminus.Row(i)
			dRow := diff.Row(i)
			sRow := sum.Row(i)
			for j := range gpRow {
				gp := x.readConductance(gpRow[j], i, j)
				gm := x.readConductance(gmRow[j], i, j)
				dRow[j] = gp - gm
				sRow[j] = gp + gm
			}
		}
		x.effDiff, x.effSum = diff, sum
		if x.mask != nil {
			x.effMask = make([]float64, x.cols)
			for j, g := range x.mask {
				x.effMask[j] = x.readConductance(g, x.rows, j)
			}
		}
	})
}

// OutputCurrentsBatch returns one differential output-current vector per
// input, Eq. (3) applied across the batch.
func (x *Crossbar) OutputCurrentsBatch(us [][]float64) ([][]float64, error) {
	if err := validateBatch(us, x.cols); err != nil {
		return nil, err
	}
	out := make([][]float64, len(us))
	for b, u := range us {
		is, err := x.OutputCurrents(u)
		if err != nil {
			return nil, err
		}
		out[b] = is
	}
	return out, nil
}

// OutputBatch returns the normalized pre-activations s ≈ Wu per input —
// the batched Output.
func (x *Crossbar) OutputBatch(us [][]float64) ([][]float64, error) {
	out, err := x.OutputCurrentsBatch(us)
	if err != nil {
		return nil, err
	}
	inv := 1 / (x.scale * x.cfg.Vdd)
	for _, is := range out {
		for i := range is {
			is[i] *= inv
		}
	}
	return out, nil
}

// TotalCurrentBatch returns the supply current per input — the batched
// TotalCurrent, i.e. what a power-measuring attacker observes for each
// vector of the batch.
func (x *Crossbar) TotalCurrentBatch(us [][]float64) ([]float64, error) {
	if err := validateBatch(us, x.cols); err != nil {
		return nil, err
	}
	out := make([]float64, len(us))
	for b, u := range us {
		i, err := x.TotalCurrent(u)
		if err != nil {
			return nil, err
		}
		out[b] = i
	}
	return out, nil
}

// PowerBatch returns the static read power per input.
func (x *Crossbar) PowerBatch(us [][]float64) ([]float64, error) {
	out, err := x.TotalCurrentBatch(us)
	if err != nil {
		return nil, err
	}
	for b := range out {
		out[b] *= x.cfg.Vdd
	}
	return out, nil
}

// OutputBatch computes the logical s ≈ Wu per input across the tile grid,
// accumulating each tile's batched partial outputs digitally.
func (t *TiledArray) OutputBatch(us [][]float64) ([][]float64, error) {
	if err := validateBatch(us, t.cols); err != nil {
		return nil, err
	}
	out := make([][]float64, len(us))
	for b := range out {
		out[b] = make([]float64, t.rows)
	}
	subs := make([][]float64, len(us))
	for rb := range t.tiles {
		for cb, xb := range t.tiles[rb] {
			c0, c1 := t.colStart[cb], t.colStart[cb+1]
			for b, u := range us {
				subs[b] = u[c0:c1]
			}
			parts, err := xb.OutputBatch(subs)
			if err != nil {
				return nil, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			r0 := t.rowStart[rb]
			for b, part := range parts {
				o := out[b]
				for i, v := range part {
					o[r0+i] += v
				}
			}
		}
	}
	return out, nil
}

// TotalCurrentBatch returns the package-level supply current per input,
// summed over all tiles.
func (t *TiledArray) TotalCurrentBatch(us [][]float64) ([]float64, error) {
	if err := validateBatch(us, t.cols); err != nil {
		return nil, err
	}
	out := make([]float64, len(us))
	subs := make([][]float64, len(us))
	for rb := range t.tiles {
		for cb, xb := range t.tiles[rb] {
			c0, c1 := t.colStart[cb], t.colStart[cb+1]
			for b, u := range us {
				subs[b] = u[c0:c1]
			}
			parts, err := xb.TotalCurrentBatch(subs)
			if err != nil {
				return nil, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			for b, i := range parts {
				out[b] += i
			}
		}
	}
	return out, nil
}

// PowerBatch returns Vdd · total current per input, matching Power.
func (t *TiledArray) PowerBatch(us [][]float64) ([]float64, error) {
	out, err := t.TotalCurrentBatch(us)
	if err != nil {
		return nil, err
	}
	vdd := t.tiles[0][0].Config().Vdd
	for b := range out {
		out[b] *= vdd
	}
	return out, nil
}

// Noisy reports whether the array draws per-read noise, making it
// stateful: every read consumes the noise stream, so concurrent callers
// must serialize access (the service layer's coalescer does) and results
// depend on read order.
func (x *Crossbar) Noisy() bool { return x.reads != nil }

// Noisy reports whether the network's array draws per-read noise; see
// Crossbar.Noisy.
func (n *Network) Noisy() bool { return n.xbar.Noisy() }

// OutputTotalCurrentBatch returns, per input, both the differential
// output currents (Eq. 3) and the total supply current (Eq. 5) — the two
// observables a power-measuring attacker gets from one inference. For a
// noise-free array the two matrices are walked in one fused pass per
// input with a single backing allocation for the whole batch, which is
// what makes coalesced power-measuring serving cheaper than per-call
// Forward-then-Power reads. Each accumulator keeps the exact operation
// order of its scalar counterpart, so results are bit-identical to
// calling OutputCurrents then TotalCurrent once per input; for a noisy
// array that sequential pair IS the implementation (two reads per input,
// in that order), preserving the noise-stream consumption order of the
// scalar query path.
//
//xbar:hotpath
func (x *Crossbar) OutputTotalCurrentBatch(us [][]float64) ([][]float64, []float64, error) {
	if err := validateBatch(us, x.cols); err != nil {
		return nil, nil, err
	}
	totals := make([]float64, len(us))
	outs := make([][]float64, len(us))
	if x.reads != nil {
		for b, u := range us {
			is, err := x.OutputCurrents(u)
			if err != nil {
				return nil, nil, err
			}
			tot, err := x.TotalCurrent(u)
			if err != nil {
				return nil, nil, err
			}
			outs[b], totals[b] = is, tot
		}
		return outs, totals, nil
	}
	x.effective()
	vdd := x.cfg.Vdd
	slab := make([]float64, len(us)*x.rows)
	for b, u := range us {
		out := slab[b*x.rows : (b+1)*x.rows : (b+1)*x.rows]
		var total float64
		for i := 0; i < x.rows; i++ {
			dRow := x.effDiff.Row(i)
			sRow := x.effSum.Row(i)
			var s float64
			for j, uj := range u {
				if uj == 0 {
					continue
				}
				s += dRow[j] * uj * vdd
				total += sRow[j] * uj * vdd
			}
			out[i] = s
		}
		if x.effMask != nil {
			for j, uj := range u {
				if uj == 0 {
					continue
				}
				total += x.effMask[j] * uj * vdd
			}
		}
		outs[b], totals[b] = out, total
	}
	return outs, totals, nil
}

// ForwardPowerBatch returns ŷ = f(s) and the read power per input in one
// fused pass — the serving-path combination of ForwardBatch and
// PowerBatch, bit-identical to calling Forward then Power once per input
// in that order.
func (n *Network) ForwardPowerBatch(us [][]float64) ([][]float64, []float64, error) {
	ss, totals, err := n.xbar.OutputTotalCurrentBatch(us)
	if err != nil {
		return nil, nil, err
	}
	inv := 1 / (n.xbar.scale * n.xbar.cfg.Vdd)
	for b := range ss {
		for i := range ss[b] {
			ss[b][i] *= inv
		}
		ss[b] = applyActivation(n.act, ss[b])
	}
	for b := range totals {
		totals[b] *= n.xbar.cfg.Vdd
	}
	return ss, totals, nil
}

// ForwardBatch returns ŷ = f(s) per input — the batched Network.Forward.
func (n *Network) ForwardBatch(us [][]float64) ([][]float64, error) {
	ss, err := n.xbar.OutputBatch(us)
	if err != nil {
		return nil, err
	}
	for b := range ss {
		ss[b] = applyActivation(n.act, ss[b])
	}
	return ss, nil
}

// PredictBatch returns the argmax class label per input.
func (n *Network) PredictBatch(us [][]float64) ([]int, error) {
	ys, err := n.ForwardBatch(us)
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(ys))
	for b, y := range ys {
		labels[b] = tensor.ArgMax(y)
	}
	return labels, nil
}

// PowerBatch returns the read power per input.
func (n *Network) PowerBatch(us [][]float64) ([]float64, error) {
	return n.xbar.PowerBatch(us)
}

// noisy reports whether any layer array draws per-read noise. A noisy
// pipeline cannot be layer-batched bit-identically: batching would
// consume each layer's noise stream for the whole batch at once, while
// sequential calls interleave forward and power draws per input. The
// batched MLP entry points therefore fall back to strict per-input
// scalar calls when any layer is noisy.
func (n *MLPNetwork) noisy() bool {
	for _, xb := range n.layers {
		if xb.reads != nil {
			return true
		}
	}
	return false
}

// forwardActivationsBatch runs the analog pipeline on a whole batch: one
// batched MVM pass per array instead of one pass per sample. It returns
// every layer's batch of input vectors plus the final outputs.
func (n *MLPNetwork) forwardActivationsBatch(us [][]float64) (inputs [][][]float64, outs [][]float64, err error) {
	inputs = make([][][]float64, len(n.layers))
	cur := us
	for l, xb := range n.layers {
		inputs[l] = cur
		ss, err := xb.OutputBatch(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("crossbar: layer %d: %w", l, err)
		}
		act := n.mlp.Hidden
		if l == len(n.layers)-1 {
			act = n.mlp.Out
		}
		for b := range ss {
			ss[b] = applyActivation(act, ss[b])
		}
		cur = ss
	}
	return inputs, cur, nil
}

// ForwardBatch returns the network output per input, layer-batched.
func (n *MLPNetwork) ForwardBatch(us [][]float64) ([][]float64, error) {
	if err := validateBatch(us, n.Inputs()); err != nil {
		return nil, err
	}
	if n.noisy() {
		outs := make([][]float64, len(us))
		for b, u := range us {
			y, err := n.Forward(u)
			if err != nil {
				return nil, err
			}
			outs[b] = y
		}
		return outs, nil
	}
	_, outs, err := n.forwardActivationsBatch(us)
	return outs, err
}

// PredictBatch returns the argmax class per input.
func (n *MLPNetwork) PredictBatch(us [][]float64) ([]int, error) {
	ys, err := n.ForwardBatch(us)
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(ys))
	for b, y := range ys {
		labels[b] = tensor.ArgMax(y)
	}
	return labels, nil
}

// PowerBatch returns the package-level read power per input: each array
// measures its whole batch of layer inputs in one pass.
func (n *MLPNetwork) PowerBatch(us [][]float64) ([]float64, error) {
	if err := validateBatch(us, n.Inputs()); err != nil {
		return nil, err
	}
	if n.noisy() {
		out := make([]float64, len(us))
		for b, u := range us {
			p, err := n.Power(u)
			if err != nil {
				return nil, err
			}
			out[b] = p
		}
		return out, nil
	}
	inputs, _, err := n.forwardActivationsBatch(us)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(us))
	for l, xb := range n.layers {
		ps, err := xb.PowerBatch(inputs[l])
		if err != nil {
			return nil, fmt.Errorf("crossbar: layer %d power: %w", l, err)
		}
		for b, p := range ps {
			out[b] += p
		}
	}
	return out, nil
}
