package crossbar

import (
	"math"
	"testing"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func TestPowerMaskingEqualizesColumns(t *testing.T) {
	src := rng.New(1)
	w := randWeights(src, 6, 10)
	cfg := idealConfig()
	cfg.PowerMasking = true
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := xb.ColumnConductanceSums()
	for j := 1; j < len(sums); j++ {
		if math.Abs(sums[j]-sums[0]) > 1e-15 {
			t.Fatalf("column sums not equalized: %v vs %v", sums[j], sums[0])
		}
	}
}

func TestPowerMaskingPreservesInference(t *testing.T) {
	src := rng.New(2)
	w := randWeights(src, 5, 8)
	plain, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := idealConfig()
	cfg.PowerMasking = true
	masked, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := src.UniformVec(8, 0, 1)
	a, err := plain.Output(u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := masked.Output(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("masking must not change the functional output")
		}
	}
}

func TestPowerMaskingKillsTheSideChannel(t *testing.T) {
	src := rng.New(3)
	w := randWeights(src, 6, 12)
	cfg := idealConfig()
	cfg.PowerMasking = true
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Basis queries now return identical currents for every column: the
	// attacker learns nothing about per-column 1-norms.
	var first float64
	for j := 0; j < 12; j++ {
		itotal, err := xb.TotalCurrent(tensor.Basis(12, j, 1))
		if err != nil {
			t.Fatal(err)
		}
		if j == 0 {
			first = itotal
			continue
		}
		if math.Abs(itotal-first) > 1e-15*math.Abs(first) {
			t.Fatalf("column %d current %v differs from %v", j, itotal, first)
		}
	}
}

func TestMaskOverheadFraction(t *testing.T) {
	src := rng.New(4)
	w := randWeights(src, 6, 12)
	plain, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MaskOverheadFraction() != 0 {
		t.Fatal("unmasked overhead must be 0")
	}
	cfg := idealConfig()
	cfg.PowerMasking = true
	masked, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	oh := masked.MaskOverheadFraction()
	if oh <= 0 || oh > 2 {
		t.Fatalf("implausible mask overhead %v", oh)
	}
	// Masked total power for the all-ones input exceeds unmasked by
	// exactly the overhead fraction.
	ones := make([]float64, 12)
	for j := range ones {
		ones[j] = 1
	}
	pPlain, _ := plain.Power(ones)
	pMasked, _ := masked.Power(ones)
	if math.Abs(pMasked/pPlain-(1+oh)) > 1e-9 {
		t.Fatalf("power ratio %v, want %v", pMasked/pPlain, 1+oh)
	}
}
