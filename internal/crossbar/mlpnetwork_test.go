package crossbar

import (
	"math"
	"testing"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

func buildMLP(t *testing.T, seed int64, widths []int) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(widths, nn.ActReLU, nn.ActSoftmax, nn.LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	m.InitXavier(rng.New(seed))
	return m
}

func TestNewMLPNetworkValidation(t *testing.T) {
	if _, err := NewMLPNetwork(nil, idealConfig(), nil); err == nil {
		t.Fatal("nil MLP must error")
	}
	m := buildMLP(t, 1, []int{6, 8, 3})
	cfg := idealConfig()
	cfg.ReadNoiseStd = 0.1
	if _, err := NewMLPNetwork(m, cfg, nil); err == nil {
		t.Fatal("noisy config with nil src must error")
	}
}

func TestMLPNetworkForwardMatchesSoftware(t *testing.T) {
	m := buildMLP(t, 2, []int{7, 10, 4})
	hw, err := NewMLPNetwork(m, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Layers() != 2 || hw.Inputs() != 7 || hw.Outputs() != 4 {
		t.Fatalf("shape: %d layers %d->%d", hw.Layers(), hw.Inputs(), hw.Outputs())
	}
	src := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		u := src.UniformVec(7, 0, 1)
		want := m.Forward(u)
		got, err := hw.Forward(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d output %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
		pw, err := hw.Predict(u)
		if err != nil {
			t.Fatal(err)
		}
		if pw != m.Predict(u) {
			t.Fatalf("trial %d: prediction mismatch", trial)
		}
	}
}

func TestMLPNetworkLayerPowers(t *testing.T) {
	m := buildMLP(t, 4, []int{6, 9, 3})
	hw, err := NewMLPNetwork(m, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	u := rng.New(5).UniformVec(6, 0.2, 1)
	per, err := hw.LayerPowers(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-layer powers %d", len(per))
	}
	total, err := hw.Power(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per[0]+per[1]-total) > 1e-15 {
		t.Fatalf("power sum %v != total %v", per[0]+per[1], total)
	}
	if per[0] <= 0 {
		t.Fatal("first layer power must be positive for a nonzero input")
	}
}

// The first array's basis-query structure is preserved in depth: driving
// input j reveals layer 0's column conductance sum, independent of deeper
// layers.
func TestMLPNetworkFirstLayerLeakIntact(t *testing.T) {
	m := buildMLP(t, 6, []int{8, 12, 5})
	hw, err := NewMLPNetwork(m, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first := hw.FirstLayerMeter()
	sums := first.ColumnConductanceSums()
	for j := 0; j < 8; j++ {
		basis := make([]float64, 8)
		basis[j] = 1
		itotal, err := first.TotalCurrent(basis)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(itotal/first.Config().Vdd-sums[j]) > 1e-12 {
			t.Fatalf("column %d: first-layer leak broken", j)
		}
	}
	// And its calibrated norms equal the software layer's 1-norms.
	norms := m.Layers[0].ColAbsSums()
	for j := range norms {
		got := sums[j] / first.Scale()
		if math.Abs(got-norms[j]) > 1e-9 {
			t.Fatalf("column %d: %v, want %v", j, got, norms[j])
		}
	}
}

func TestMLPNetworkLayerAccessor(t *testing.T) {
	m := buildMLP(t, 7, []int{5, 6, 2})
	hw, err := NewMLPNetwork(m, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Layer(0); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Layer(2); err == nil {
		t.Fatal("out-of-range layer must error")
	}
	if _, err := hw.Layer(-1); err == nil {
		t.Fatal("negative layer must error")
	}
}
