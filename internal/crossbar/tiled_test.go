package crossbar

import (
	"math"
	"testing"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func TestProgramTiledValidation(t *testing.T) {
	if _, err := ProgramTiled(nil, idealConfig(), DefaultTileConfig(), nil); err == nil {
		t.Fatal("nil weights must error")
	}
	w := tensor.Identity(4)
	if _, err := ProgramTiled(w, idealConfig(), TileConfig{MaxRows: 0, MaxCols: 4}, nil); err == nil {
		t.Fatal("zero tile bound must error")
	}
}

func TestTiledGridGeometry(t *testing.T) {
	src := rng.New(1)
	w := randWeights(src, 10, 23)
	ta, err := ProgramTiled(w, idealConfig(), TileConfig{MaxRows: 4, MaxCols: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ta.RowBlocks() != 3 || ta.ColBlocks() != 3 {
		t.Fatalf("grid %dx%d, want 3x3", ta.RowBlocks(), ta.ColBlocks())
	}
	if ta.Rows() != 10 || ta.Cols() != 23 {
		t.Fatalf("logical shape %dx%d", ta.Rows(), ta.Cols())
	}
	// Edge tiles are smaller.
	last, err := ta.Tile(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if last.Rows() != 2 || last.Cols() != 7 {
		t.Fatalf("edge tile %dx%d, want 2x7", last.Rows(), last.Cols())
	}
	if _, err := ta.Tile(3, 0); err == nil {
		t.Fatal("out-of-grid tile must error")
	}
}

func TestTiledOutputMatchesMonolithic(t *testing.T) {
	src := rng.New(2)
	w := randWeights(src, 12, 30)
	mono, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := ProgramTiled(w, idealConfig(), TileConfig{MaxRows: 5, MaxCols: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := src.UniformVec(30, 0, 1)
	want, err := mono.Output(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiled.Output(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: tiled %v vs mono %v", i, got[i], want[i])
		}
	}
}

func TestTiledPowerPositiveAndConsistent(t *testing.T) {
	src := rng.New(3)
	w := randWeights(src, 8, 20)
	tiled, err := ProgramTiled(w, idealConfig(), TileConfig{MaxRows: 4, MaxCols: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := src.UniformVec(20, 0.1, 1)
	total, err := tiled.Power(u)
	if err != nil {
		t.Fatal(err)
	}
	perTile, err := tiled.TilePowers(u)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range perTile {
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative tile power %v", p)
			}
			sum += p
		}
	}
	if math.Abs(sum-total) > 1e-12*total {
		t.Fatalf("tile powers sum to %v, total %v", sum, total)
	}
}

// Per-tile rails leak per-block column norms: for each row block the
// basis-query currents reveal Σ_{i in block} |w_ij|, a finer-grained
// signal than the monolithic array's totals.
func TestTiledBlockColumnNormsRefineMonolithicLeak(t *testing.T) {
	src := rng.New(4)
	w := randWeights(src, 9, 15)
	cfg := idealConfig()
	tiled, err := ProgramTiled(w, cfg, TileConfig{MaxRows: 3, MaxCols: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks := tiled.BlockColumnNorms()
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for rb, norms := range blocks {
		for j := 0; j < 15; j++ {
			var want float64
			for i := rb * 3; i < (rb+1)*3; i++ {
				want += math.Abs(w.At(i, j))
			}
			tile, err := tiled.Tile(rb, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := norms[j] / tile.Scale()
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("block %d column %d: %v, want %v", rb, j, got, want)
			}
		}
	}
}

func TestTiledInputLengthErrors(t *testing.T) {
	src := rng.New(5)
	w := randWeights(src, 4, 8)
	tiled, err := ProgramTiled(w, idealConfig(), TileConfig{MaxRows: 2, MaxCols: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiled.Output([]float64{1}); err == nil {
		t.Fatal("short input must error")
	}
	if _, err := tiled.TotalCurrent(make([]float64, 9)); err == nil {
		t.Fatal("long input must error")
	}
	if _, err := tiled.TilePowers([]float64{1}); err == nil {
		t.Fatal("short input must error")
	}
}

func TestTiledDeterministicProgrammingNoise(t *testing.T) {
	w := randWeights(rng.New(6), 6, 10)
	cfg := idealConfig()
	cfg.ProgramNoiseStd = 0.05
	a, err := ProgramTiled(w, cfg, TileConfig{MaxRows: 3, MaxCols: 5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProgramTiled(w, cfg, TileConfig{MaxRows: 3, MaxCols: 5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	u := rng.New(8).UniformVec(10, 0, 1)
	pa, _ := a.Power(u)
	pb, _ := b.Power(u)
	if pa != pb {
		t.Fatal("tiled programming must be deterministic per seed")
	}
}

// A single tile large enough for the whole matrix must behave exactly
// like the monolithic array, including power.
func TestTiledDegeneratesToMonolithic(t *testing.T) {
	src := rng.New(9)
	w := randWeights(src, 5, 9)
	mono, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := ProgramTiled(w, idealConfig(), DefaultTileConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.RowBlocks() != 1 || tiled.ColBlocks() != 1 {
		t.Fatal("expected a single tile")
	}
	u := src.UniformVec(9, 0, 1)
	pm, _ := mono.Power(u)
	pt, _ := tiled.Power(u)
	if math.Abs(pm-pt) > 1e-15 {
		t.Fatalf("power mismatch %v vs %v", pm, pt)
	}
}
