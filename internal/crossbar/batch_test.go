package crossbar

import (
	"testing"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// batchTestWeights returns a small weight matrix with mixed signs, zeros
// and magnitude spread, plus a batch of inputs that includes exact zeros
// (exercising the sparse-input skip) and an all-zero vector.
func batchTestWeights(t *testing.T, rows, cols int) (*tensor.Matrix, [][]float64) {
	t.Helper()
	src := rng.New(11)
	w := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			switch src.Intn(4) {
			case 0:
				// leave zero
			default:
				w.Set(i, j, src.Uniform(-2, 2))
			}
		}
	}
	const batch = 7
	us := make([][]float64, batch)
	for b := 0; b < batch-1; b++ {
		u := make([]float64, cols)
		for j := range u {
			if src.Intn(3) > 0 {
				u[j] = src.Float64()
			}
		}
		us[b] = u
	}
	us[batch-1] = make([]float64, cols) // all-zero input
	return w, us
}

// nonIdealNoNoiseConfig enables every deterministic non-ideality:
// quantization, programming noise, stuck faults, IR drop and power
// masking — everything except per-read noise.
func nonIdealNoNoiseConfig() DeviceConfig {
	cfg := DefaultDeviceConfig()
	cfg.Levels = 16
	cfg.ProgramNoiseStd = 0.05
	cfg.StuckFraction = 0.02
	cfg.IRDropAlpha = 0.1
	cfg.PowerMasking = true
	return cfg
}

func readNoiseConfig() DeviceConfig {
	cfg := nonIdealNoNoiseConfig()
	cfg.ReadNoiseStd = 0.03
	return cfg
}

// checkCrossbarBatchMatches runs every batched Crossbar entry point
// against fresh identically-programmed sequential twins and requires
// bit-identical results. program must return a new, identically
// programmed crossbar on every call.
func checkCrossbarBatchMatches(t *testing.T, program func() *Crossbar, us [][]float64) {
	t.Helper()
	seq, bat := program(), program()
	want := make([][]float64, len(us))
	for b, u := range us {
		out, err := seq.Output(u)
		if err != nil {
			t.Fatal(err)
		}
		want[b] = out
	}
	got, err := bat.OutputBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b := range us {
		for i := range want[b] {
			if got[b][i] != want[b][i] {
				t.Fatalf("OutputBatch[%d][%d] = %v, sequential %v", b, i, got[b][i], want[b][i])
			}
		}
	}

	seq, bat = program(), program()
	wantI := make([]float64, len(us))
	for b, u := range us {
		iv, err := seq.TotalCurrent(u)
		if err != nil {
			t.Fatal(err)
		}
		wantI[b] = iv
	}
	gotI, err := bat.TotalCurrentBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b := range us {
		if gotI[b] != wantI[b] {
			t.Fatalf("TotalCurrentBatch[%d] = %v, sequential %v", b, gotI[b], wantI[b])
		}
	}

	seq, bat = program(), program()
	wantP := make([]float64, len(us))
	for b, u := range us {
		p, err := seq.Power(u)
		if err != nil {
			t.Fatal(err)
		}
		wantP[b] = p
	}
	gotP, err := bat.PowerBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b := range us {
		if gotP[b] != wantP[b] {
			t.Fatalf("PowerBatch[%d] = %v, sequential %v", b, gotP[b], wantP[b])
		}
	}
}

func TestCrossbarBatchMatchesSequentialIdeal(t *testing.T) {
	w, us := batchTestWeights(t, 6, 20)
	checkCrossbarBatchMatches(t, func() *Crossbar {
		xb, err := Program(w, DefaultDeviceConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return xb
	}, us)
}

func TestCrossbarBatchMatchesSequentialNonIdeal(t *testing.T) {
	w, us := batchTestWeights(t, 6, 20)
	checkCrossbarBatchMatches(t, func() *Crossbar {
		xb, err := Program(w, nonIdealNoNoiseConfig(), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return xb
	}, us)
}

func TestCrossbarBatchMatchesSequentialReadNoise(t *testing.T) {
	// With read noise the array is stateful: the batched path must
	// consume the per-read noise stream in exactly the order sequential
	// calls would, so identically-seeded twins must agree bitwise.
	w, us := batchTestWeights(t, 6, 20)
	checkCrossbarBatchMatches(t, func() *Crossbar {
		xb, err := Program(w, readNoiseConfig(), rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return xb
	}, us)
}

func TestCrossbarBatchValidatesUpFront(t *testing.T) {
	w, us := batchTestWeights(t, 4, 10)
	xb, err := Program(w, DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{us[0], make([]float64, 3)}
	if _, err := xb.OutputBatch(bad); err == nil {
		t.Fatal("short input must be rejected")
	}
	if _, err := xb.TotalCurrentBatch(bad); err == nil {
		t.Fatal("short input must be rejected")
	}
	empty, err := xb.OutputBatch(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}

func checkTiledBatchMatches(t *testing.T, program func() *TiledArray, us [][]float64) {
	t.Helper()
	seq, bat := program(), program()
	gotAll, err := bat.OutputBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b, u := range us {
		want, err := seq.Output(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if gotAll[b][i] != want[i] {
				t.Fatalf("tiled OutputBatch[%d][%d] = %v, sequential %v", b, i, gotAll[b][i], want[i])
			}
		}
	}
	seq, bat = program(), program()
	gotI, err := bat.TotalCurrentBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b, u := range us {
		want, err := seq.TotalCurrent(u)
		if err != nil {
			t.Fatal(err)
		}
		if gotI[b] != want {
			t.Fatalf("tiled TotalCurrentBatch[%d] = %v, sequential %v", b, gotI[b], want)
		}
	}
	seq, bat = program(), program()
	gotP, err := bat.PowerBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b, u := range us {
		want, err := seq.Power(u)
		if err != nil {
			t.Fatal(err)
		}
		if gotP[b] != want {
			t.Fatalf("tiled PowerBatch[%d] = %v, sequential %v", b, gotP[b], want)
		}
	}
}

func TestTiledBatchMatchesSequential(t *testing.T) {
	w, us := batchTestWeights(t, 10, 25)
	tile := TileConfig{MaxRows: 4, MaxCols: 8}
	t.Run("ideal", func(t *testing.T) {
		checkTiledBatchMatches(t, func() *TiledArray {
			ta, err := ProgramTiled(w, DefaultDeviceConfig(), tile, nil)
			if err != nil {
				t.Fatal(err)
			}
			return ta
		}, us)
	})
	t.Run("read-noise", func(t *testing.T) {
		checkTiledBatchMatches(t, func() *TiledArray {
			ta, err := ProgramTiled(w, readNoiseConfig(), tile, rng.New(9))
			if err != nil {
				t.Fatal(err)
			}
			return ta
		}, us)
	})
}

func TestNetworkBatchMatchesSequential(t *testing.T) {
	w, us := batchTestWeights(t, 8, 20)
	net, err := nn.NewNetwork(8, 20, nn.ActSoftmax, nn.LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	net.W = w
	hw, err := NewNetwork(net, DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := hw.ForwardBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := hw.PredictBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	powers, err := hw.PowerBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b, u := range us {
		y, err := hw.Forward(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if ys[b][i] != y[i] {
				t.Fatalf("ForwardBatch[%d][%d] = %v, sequential %v", b, i, ys[b][i], y[i])
			}
		}
		label, err := hw.Predict(u)
		if err != nil {
			t.Fatal(err)
		}
		if labels[b] != label {
			t.Fatalf("PredictBatch[%d] = %d, sequential %d", b, labels[b], label)
		}
		p, err := hw.Power(u)
		if err != nil {
			t.Fatal(err)
		}
		if powers[b] != p {
			t.Fatalf("PowerBatch[%d] = %v, sequential %v", b, powers[b], p)
		}
	}
}

func TestMLPBatchMatchesSequential(t *testing.T) {
	src := rng.New(3)
	mlp, err := nn.NewMLP([]int{20, 12, 5}, nn.ActReLU, nn.ActSoftmax, nn.LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	mlp.InitXavier(src.Split("init"))
	_, us := batchTestWeights(t, 5, 20)
	program := func(cfg DeviceConfig, seed int64) *MLPNetwork {
		var psrc *rng.Source
		if seed != 0 {
			psrc = rng.New(seed)
		}
		hw, err := NewMLPNetwork(mlp, cfg, psrc)
		if err != nil {
			t.Fatal(err)
		}
		return hw
	}
	check := func(t *testing.T, fresh func() *MLPNetwork) {
		seq, bat := fresh(), fresh()
		ys, err := bat.ForwardBatch(us)
		if err != nil {
			t.Fatal(err)
		}
		for b, u := range us {
			y, err := seq.Forward(u)
			if err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if ys[b][i] != y[i] {
					t.Fatalf("MLP ForwardBatch[%d][%d] = %v, sequential %v", b, i, ys[b][i], y[i])
				}
			}
		}
		seq, bat = fresh(), fresh()
		ps, err := bat.PowerBatch(us)
		if err != nil {
			t.Fatal(err)
		}
		for b, u := range us {
			p, err := seq.Power(u)
			if err != nil {
				t.Fatal(err)
			}
			if ps[b] != p {
				t.Fatalf("MLP PowerBatch[%d] = %v, sequential %v", b, ps[b], p)
			}
		}
		seq, bat = fresh(), fresh()
		labels, err := bat.PredictBatch(us)
		if err != nil {
			t.Fatal(err)
		}
		for b, u := range us {
			label, err := seq.Predict(u)
			if err != nil {
				t.Fatal(err)
			}
			if labels[b] != label {
				t.Fatalf("MLP PredictBatch[%d] = %d, sequential %d", b, labels[b], label)
			}
		}
	}
	t.Run("ideal", func(t *testing.T) {
		check(t, func() *MLPNetwork { return program(DefaultDeviceConfig(), 0) })
	})
	t.Run("read-noise", func(t *testing.T) {
		check(t, func() *MLPNetwork { return program(readNoiseConfig(), 21) })
	})
}
