package crossbar

import (
	"fmt"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// MLPNetwork is a multi-layer perceptron deployed layer-per-array: each
// weight matrix occupies its own crossbar, activations are applied
// digitally between arrays, and the package-level supply current is the
// sum over arrays. This is the hardware substrate for the paper's
// future-work question (§V): what does the power channel still reveal
// when the network is deeper than one layer? Note that hidden-layer
// arrays see data-dependent inputs, so their currents no longer factor
// into input-independent column norms — only the first array's
// contribution retains the clean Eq. (5) structure.
type MLPNetwork struct {
	layers []*Crossbar
	mlp    *nn.MLP
}

// NewMLPNetwork programs every layer of m onto its own crossbar with the
// shared device configuration.
func NewMLPNetwork(m *nn.MLP, cfg DeviceConfig, src *rng.Source) (*MLPNetwork, error) {
	if m == nil || len(m.Layers) == 0 {
		return nil, fmt.Errorf("crossbar: empty MLP: %w", ErrNotProgrammed)
	}
	layers := make([]*Crossbar, len(m.Layers))
	for l, w := range m.Layers {
		var layerSrc *rng.Source
		if src != nil {
			layerSrc = src.SplitN("layer", l)
		}
		xb, err := Program(w, cfg, layerSrc)
		if err != nil {
			return nil, fmt.Errorf("crossbar: programming layer %d: %w", l, err)
		}
		layers[l] = xb
	}
	return &MLPNetwork{layers: layers, mlp: m}, nil
}

// Layers returns the number of crossbar arrays.
func (n *MLPNetwork) Layers() int { return len(n.layers) }

// Layer returns the l-th array.
func (n *MLPNetwork) Layer(l int) (*Crossbar, error) {
	if l < 0 || l >= len(n.layers) {
		return nil, fmt.Errorf("crossbar: layer %d out of %d", l, len(n.layers))
	}
	return n.layers[l], nil
}

// Inputs returns the input dimensionality.
func (n *MLPNetwork) Inputs() int { return n.layers[0].Cols() }

// Outputs returns the output dimensionality.
func (n *MLPNetwork) Outputs() int { return n.layers[len(n.layers)-1].Rows() }

// forwardActivations runs the analog pipeline and returns every layer's
// input vector (activations[l] feeds array l) plus the final output.
func (n *MLPNetwork) forwardActivations(u []float64) (inputs [][]float64, out []float64, err error) {
	inputs = make([][]float64, len(n.layers))
	cur := u
	for l, xb := range n.layers {
		inputs[l] = cur
		s, err := xb.Output(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("crossbar: layer %d: %w", l, err)
		}
		act := n.mlp.Hidden
		if l == len(n.layers)-1 {
			act = n.mlp.Out
		}
		cur = applyActivation(act, s)
	}
	return inputs, cur, nil
}

// Forward returns the network output for input u.
func (n *MLPNetwork) Forward(u []float64) ([]float64, error) {
	_, out, err := n.forwardActivations(u)
	return out, err
}

// Predict returns the argmax class for input u.
func (n *MLPNetwork) Predict(u []float64) (int, error) {
	y, err := n.Forward(u)
	if err != nil {
		return 0, err
	}
	return tensor.ArgMax(y), nil
}

// LayerPowers returns each array's read power for one inference of u.
// Hidden-layer powers depend on the data-dependent activations flowing
// into them.
func (n *MLPNetwork) LayerPowers(u []float64) ([]float64, error) {
	inputs, _, err := n.forwardActivations(u)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(n.layers))
	for l, xb := range n.layers {
		// Activations can exceed [0,1] for linear hidden units; the power
		// model is linear in the drive voltage either way.
		p, err := xb.Power(inputs[l])
		if err != nil {
			return nil, fmt.Errorf("crossbar: layer %d power: %w", l, err)
		}
		out[l] = p
	}
	return out, nil
}

// Power returns the package-level read power: the sum over arrays. An
// attacker with only one power rail sees this aggregate; per-layer rails
// would expose LayerPowers directly.
func (n *MLPNetwork) Power(u []float64) (float64, error) {
	ps, err := n.LayerPowers(u)
	if err != nil {
		return 0, err
	}
	return tensor.Sum(ps), nil
}

// FirstLayerMeter exposes layer 0 as a sidechannel.PowerMeter-compatible
// view: basis queries against it reveal the first layer's column norms,
// the quantity the depth ablation (A4) correlates with input sensitivity.
func (n *MLPNetwork) FirstLayerMeter() *Crossbar { return n.layers[0] }
