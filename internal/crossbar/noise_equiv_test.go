package crossbar

import (
	"math"
	"testing"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// This file pins the vectorized read-noise path to the original
// per-device scalar semantics by replaying the noise stream independently:
// the reference below reconstructs the programmed conductances and draws
// from the same "read-noise" child stream in the order the pre-refactor
// readConductance loop consumed it — G+ then G- per device, devices in
// row-major order, one extra pass for the masking dummy row. Every value
// must match bit for bit, across consecutive calls (the stream persists
// between reads).

// noisyReference mirrors Program (ideal devices, read noise + IR drop +
// masking only) and exposes raw per-read evaluation against a replayed
// stream.
type noisyReference struct {
	gp, gm *tensor.Matrix
	mask   []float64
	cfg    DeviceConfig
	reads  *rng.Source
}

func newNoisyReference(t *testing.T, w *tensor.Matrix, cfg DeviceConfig, seed int64) *noisyReference {
	t.Helper()
	maxAbs := w.MaxAbs()
	if maxAbs == 0 {
		maxAbs = 1
	}
	scale := (cfg.GOn - cfg.GOff) / maxAbs
	m, n := w.Rows(), w.Cols()
	ref := &noisyReference{gp: tensor.New(m, n), gm: tensor.New(m, n), cfg: cfg}
	for i := 0; i < m; i++ {
		for j, wij := range w.Row(i) {
			on := cfg.GOff + math.Abs(wij)*scale
			if on > cfg.GOn {
				on = cfg.GOn
			}
			if wij >= 0 {
				ref.gp.Set(i, j, on)
				ref.gm.Set(i, j, cfg.GOff)
			} else {
				ref.gp.Set(i, j, cfg.GOff)
				ref.gm.Set(i, j, on)
			}
		}
	}
	if cfg.PowerMasking {
		sums := make([]float64, n)
		var maxSum float64
		for i := 0; i < m; i++ {
			for j := range sums {
				sums[j] += ref.gp.At(i, j) + ref.gm.At(i, j)
			}
		}
		for _, s := range sums {
			if s > maxSum {
				maxSum = s
			}
		}
		ref.mask = make([]float64, n)
		for j, s := range sums {
			ref.mask[j] = maxSum - s
		}
	}
	// Program's stream layout: the read stream is the "read-noise" child.
	ref.reads = rng.New(seed).Split("read-noise")
	return ref
}

// read applies IR drop, one noise draw, and the clamp — the pre-refactor
// readConductance, consuming ref.reads.
func (ref *noisyReference) read(g float64, i, j int) float64 {
	if ref.cfg.IRDropAlpha > 0 {
		g *= 1 - ref.cfg.IRDropAlpha*float64(i+j)/float64(ref.gp.Rows()+ref.gp.Cols())
	}
	g *= 1 + ref.reads.Normal(0, ref.cfg.ReadNoiseStd)
	if g < 0 {
		g = 0
	}
	return g
}

func (ref *noisyReference) outputCurrents(u []float64) []float64 {
	m := ref.gp.Rows()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		var s float64
		for j, uj := range u {
			gp := ref.read(ref.gp.At(i, j), i, j)
			gm := ref.read(ref.gm.At(i, j), i, j)
			s += (gp - gm) * uj * ref.cfg.Vdd
		}
		out[i] = s
	}
	return out
}

func (ref *noisyReference) totalCurrent(u []float64) float64 {
	m := ref.gp.Rows()
	var total float64
	for i := 0; i < m; i++ {
		for j, uj := range u {
			gp := ref.read(ref.gp.At(i, j), i, j)
			gm := ref.read(ref.gm.At(i, j), i, j)
			total += (gp + gm) * uj * ref.cfg.Vdd
		}
	}
	if ref.mask != nil {
		for j, uj := range u {
			total += ref.read(ref.mask[j], m, j) * uj * ref.cfg.Vdd
		}
	}
	return total
}

func TestNoisyReadsMatchScalarStreamOrder(t *testing.T) {
	w, err := tensor.NewFromRows([][]float64{
		{0.5, -1.25, 0, 2.0, -0.75},
		{-0.1, 0.9, 1.5, -2.0, 0.3},
		{1.0, 0, -0.4, 0.8, -1.6},
		{0.25, -0.5, 0.75, -1.0, 1.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []DeviceConfig{
		{GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, ReadNoiseStd: 0.05},
		{GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, ReadNoiseStd: 0.08, IRDropAlpha: 0.1, PowerMasking: true},
	} {
		const seed = 99
		xb, err := Program(w, cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		ref := newNoisyReference(t, w, cfg, seed)
		u := []float64{0.2, 0, 1, 0.7, 0.4}
		// Interleave call types so cross-call stream continuity is pinned.
		for call := 0; call < 3; call++ {
			got, err := xb.OutputCurrents(u)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.outputCurrents(u)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("call %d: output %d: %v vs %v", call, i, got[i], want[i])
				}
			}
			gotT, err := xb.TotalCurrent(u)
			if err != nil {
				t.Fatal(err)
			}
			if wantT := ref.totalCurrent(u); math.Float64bits(gotT) != math.Float64bits(wantT) {
				t.Fatalf("call %d: total current %v vs %v", call, gotT, wantT)
			}
		}
	}
}

// TestOutputCurrentsAllocationFree pins the allocation budget of the hot
// read kernels: one output slice per call on the noise-free path, and no
// per-device allocations on the noisy path after its caches warm up.
func TestOutputCurrentsAllocationFree(t *testing.T) {
	w := tensor.Identity(8)
	u := make([]float64, 8)
	for j := range u {
		u[j] = 0.5
	}
	ideal, err := Program(w, DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ideal.OutputCurrents(u); err != nil {
		t.Fatal(err) // warm the effective-conductance cache
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ideal.OutputCurrents(u); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("noise-free OutputCurrents allocates %v per call, want <= 1 (the result)", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := ideal.TotalCurrent(u); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("noise-free TotalCurrent allocates %v per call, want 0", n)
	}

	cfg := DefaultDeviceConfig()
	cfg.ReadNoiseStd = 0.05
	noisy, err := Program(w, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noisy.OutputCurrents(u); err != nil {
		t.Fatal(err) // warm the IR cache and noise buffer
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := noisy.OutputCurrents(u); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("noisy OutputCurrents allocates %v per call, want <= 1 (the result)", n)
	}
}
