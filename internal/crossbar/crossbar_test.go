package crossbar

import (
	"math"
	"testing"
	"testing/quick"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func idealConfig() DeviceConfig {
	cfg := DefaultDeviceConfig()
	cfg.GOff = 0 // exact Eq. (3)-(6) behavior
	return cfg
}

func randWeights(src *rng.Source, m, n int) *tensor.Matrix {
	w := tensor.New(m, n)
	d := w.Data()
	for i := range d {
		d[i] = src.Normal(0, 1)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*DeviceConfig)
	}{
		{"GOn <= GOff", func(c *DeviceConfig) { c.GOn = c.GOff }},
		{"negative GOff", func(c *DeviceConfig) { c.GOff = -1 }},
		{"zero Vdd", func(c *DeviceConfig) { c.Vdd = 0 }},
		{"negative levels", func(c *DeviceConfig) { c.Levels = -2 }},
		{"negative noise", func(c *DeviceConfig) { c.ReadNoiseStd = -0.1 }},
		{"stuck fraction", func(c *DeviceConfig) { c.StuckFraction = 1.5 }},
		{"ir drop", func(c *DeviceConfig) { c.IRDropAlpha = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultDeviceConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if err := DefaultDeviceConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestProgramRejectsEmptyAndNilSrc(t *testing.T) {
	if _, err := Program(nil, idealConfig(), nil); err == nil {
		t.Fatal("nil weights must error")
	}
	cfg := idealConfig()
	cfg.ReadNoiseStd = 0.1
	if _, err := Program(tensor.Identity(2), cfg, nil); err == nil {
		t.Fatal("noisy config with nil src must error")
	}
}

// The core fidelity contract: an ideal crossbar computes exactly Wu.
func TestIdealOutputMatchesMatVec(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		m, n := 2+src.Intn(6), 2+src.Intn(10)
		w := randWeights(src, m, n)
		xb, err := Program(w, idealConfig(), nil)
		if err != nil {
			return false
		}
		u := src.UniformVec(n, 0, 1)
		got, err := xb.Output(u)
		if err != nil {
			return false
		}
		want := w.MatVec(u)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Eq. (5)/(6): with GOff = 0, the column conductance sums are exactly
// scale * column 1-norms of W, and basis queries reveal them.
func TestTotalCurrentRevealsColumnNorms(t *testing.T) {
	src := rng.New(42)
	w := randWeights(src, 5, 8)
	cfg := idealConfig()
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	norms := w.ColAbsSums()
	for j := 0; j < 8; j++ {
		// Drive input j at full Vdd, ground the rest.
		itotal, err := xb.TotalCurrent(tensor.Basis(8, j, 1))
		if err != nil {
			t.Fatal(err)
		}
		gj := itotal / cfg.Vdd
		wantNorm := gj / xb.Scale()
		if math.Abs(wantNorm-norms[j]) > 1e-9 {
			t.Fatalf("column %d: recovered %v, want %v", j, wantNorm, norms[j])
		}
	}
}

// Power is linear in the input: P(a+b) = P(a) + P(b) in ideal mode.
func TestPowerLinearity(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 3 + src.Intn(8)
		w := randWeights(src, 4, n)
		xb, err := Program(w, idealConfig(), nil)
		if err != nil {
			return false
		}
		a := src.UniformVec(n, 0, 0.5)
		b := src.UniformVec(n, 0, 0.5)
		pa, _ := xb.Power(a)
		pb, _ := xb.Power(b)
		pab, _ := xb.Power(tensor.AddVec(a, b))
		return math.Abs(pab-pa-pb) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnConductanceSumsMatchBasisQueries(t *testing.T) {
	src := rng.New(3)
	w := randWeights(src, 6, 5)
	cfg := DefaultDeviceConfig() // nonzero GOff
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := xb.ColumnConductanceSums()
	for j := range sums {
		itotal, err := xb.TotalCurrent(tensor.Basis(5, j, 1))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(itotal/cfg.Vdd-sums[j]) > 1e-12 {
			t.Fatalf("column %d: %v vs %v", j, itotal/cfg.Vdd, sums[j])
		}
	}
}

// With nonzero GOff the offset is 2M·GOff per column, uniform across
// columns — rankings are preserved (the property the attack relies on).
func TestGOffOffsetUniform(t *testing.T) {
	src := rng.New(8)
	w := randWeights(src, 7, 6)
	cfg := DefaultDeviceConfig()
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := xb.ColumnConductanceSums()
	norms := w.ColAbsSums()
	offset := 2 * float64(7) * cfg.GOff
	for j := range sums {
		reconstructed := (sums[j] - offset) / xb.Scale()
		if math.Abs(reconstructed-norms[j]) > 1e-9 {
			t.Fatalf("column %d: %v, want %v", j, reconstructed, norms[j])
		}
	}
}

func TestEffectiveWeightsIdeal(t *testing.T) {
	src := rng.New(5)
	w := randWeights(src, 4, 4)
	xb, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !xb.EffectiveWeights().Equal(w, 1e-9) {
		t.Fatal("ideal effective weights must equal programmed weights")
	}
}

func TestQuantizationLimitsPrecision(t *testing.T) {
	src := rng.New(6)
	w := randWeights(src, 4, 6)
	cfg := idealConfig()
	cfg.Levels = 4
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	eff := xb.EffectiveWeights()
	if eff.Equal(w, 1e-9) {
		t.Fatal("4-level quantization should distort weights")
	}
	// But the distortion must be bounded by half a step.
	step := (cfg.GOn - cfg.GOff) / float64(cfg.Levels-1) / xb.Scale()
	diff := eff.Clone()
	diff.SubMatrix(w)
	if diff.MaxAbs() > step/2+1e-9 {
		t.Fatalf("quantization error %v exceeds half step %v", diff.MaxAbs(), step/2)
	}
}

func TestReadNoisePerturbsRepeatedReads(t *testing.T) {
	src := rng.New(7)
	w := randWeights(src, 4, 6)
	cfg := idealConfig()
	cfg.ReadNoiseStd = 0.05
	xb, err := Program(w, cfg, src.Split("xbar"))
	if err != nil {
		t.Fatal(err)
	}
	u := src.UniformVec(6, 0.2, 1)
	a, _ := xb.Power(u)
	b, _ := xb.Power(u)
	if a == b {
		t.Fatal("read noise should vary across reads")
	}
	if math.Abs(a-b)/a > 0.5 {
		t.Fatalf("read noise implausibly large: %v vs %v", a, b)
	}
}

func TestProgramNoiseDeterministicPerSeed(t *testing.T) {
	src1, src2 := rng.New(9), rng.New(9)
	w := randWeights(rng.New(1), 4, 4)
	cfg := idealConfig()
	cfg.ProgramNoiseStd = 0.1
	a, err := Program(w, cfg, src1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Program(w, cfg, src2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EffectiveWeights().Equal(b.EffectiveWeights(), 0) {
		t.Fatal("programming must be deterministic per seed")
	}
}

func TestStuckFaultsChangeSomeDevices(t *testing.T) {
	src := rng.New(11)
	w := randWeights(src, 10, 10)
	cfg := idealConfig()
	cfg.StuckFraction = 0.2
	faulty, err := Program(w, cfg, src.Split("faulty"))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Program(w, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.EffectiveWeights().Equal(clean.EffectiveWeights(), 1e-12) {
		t.Fatal("20% stuck faults should alter the array")
	}
}

func TestIRDropAttenuatesFarCells(t *testing.T) {
	w := tensor.New(4, 4)
	w.Fill(1)
	cfg := idealConfig()
	cfg.IRDropAlpha = 0.3
	xb, err := Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{1, 1, 1, 1}
	got, err := xb.Output(u)
	if err != nil {
		t.Fatal(err)
	}
	// Every row's sum is attenuated, and later rows more than earlier.
	ideal := 4.0
	prev := math.Inf(1)
	for i, v := range got {
		if v >= ideal {
			t.Fatalf("row %d not attenuated: %v", i, v)
		}
		if v >= prev {
			t.Fatalf("row %d should be more attenuated than row %d", i, i-1)
		}
		prev = v
	}
}

func TestInputLengthErrors(t *testing.T) {
	xb, err := Program(tensor.Identity(3), idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Output([]float64{1}); err == nil {
		t.Fatal("short input must error")
	}
	if _, err := xb.TotalCurrent([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("long input must error")
	}
}

func TestAllZeroWeights(t *testing.T) {
	xb, err := Program(tensor.New(3, 3), idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := xb.Output([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero weights must give zero output, got %v", out)
		}
	}
}

func TestNetworkForwardMatchesSoftware(t *testing.T) {
	src := rng.New(21)
	for _, act := range []nn.Activation{nn.ActLinear, nn.ActSoftmax, nn.ActSigmoid, nn.ActReLU} {
		crit := nn.LossMSE
		if act == nn.ActSoftmax {
			crit = nn.LossCrossEntropy
		}
		soft, err := nn.NewNetwork(4, 7, act, crit)
		if err != nil {
			t.Fatal(err)
		}
		soft.InitXavier(src.Split(act.String()))
		hard, err := NewNetwork(soft, idealConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		u := src.UniformVec(7, 0, 1)
		want := soft.Forward(u)
		got, err := hard.Forward(u)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%v: crossbar %v vs software %v", act, got, want)
			}
		}
		pSoft := soft.Predict(u)
		pHard, err := hard.Predict(u)
		if err != nil {
			t.Fatal(err)
		}
		if pSoft != pHard {
			t.Fatalf("%v: prediction mismatch", act)
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	soft, _ := nn.NewNetwork(3, 5, nn.ActLinear, nn.LossMSE)
	hard, err := NewNetwork(soft, idealConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hard.Inputs() != 5 || hard.Outputs() != 3 {
		t.Fatal("shape accessors")
	}
	if hard.Activation() != nn.ActLinear {
		t.Fatal("activation accessor")
	}
	if hard.Crossbar() == nil {
		t.Fatal("crossbar accessor")
	}
	if _, err := hard.Power([]float64{1, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
}
