package crossbar

import (
	"fmt"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Real accelerators bound crossbar arrays to fixed physical sizes (128 x
// 128 is typical) and tile larger weight matrices across a grid of
// arrays: output rows are split across tile rows, input columns across
// tile columns, and partial currents are accumulated digitally. Tiling
// matters for the side channel: if each tile's supply current is
// measurable separately (per-tile power rails), the attacker learns the
// column 1-norms of every *block* of W rather than only their totals — a
// strictly finer-grained leak than the monolithic array the paper
// analyzes.

// TileConfig bounds the physical array size.
type TileConfig struct {
	// MaxRows and MaxCols are the largest physical array dimensions.
	MaxRows, MaxCols int
}

// DefaultTileConfig returns the common 128x128 tile bound.
func DefaultTileConfig() TileConfig { return TileConfig{MaxRows: 128, MaxCols: 128} }

// Validate checks the tile bounds.
func (c TileConfig) Validate() error {
	if c.MaxRows <= 0 || c.MaxCols <= 0 {
		return fmt.Errorf("crossbar: invalid tile bounds %dx%d", c.MaxRows, c.MaxCols)
	}
	return nil
}

// TiledArray is a weight matrix mapped across a grid of physical
// crossbars.
type TiledArray struct {
	tiles    [][]*Crossbar // [rowBlock][colBlock]
	rowStart []int         // output row offset per row block (plus final end)
	colStart []int         // input column offset per col block (plus final end)
	rows     int
	cols     int
}

// ProgramTiled maps w onto a grid of crossbars no larger than the tile
// bounds. Every tile shares the device configuration; src seeds per-tile
// programming randomness.
func ProgramTiled(w *tensor.Matrix, device DeviceConfig, tile TileConfig, src *rng.Source) (*TiledArray, error) {
	if err := tile.Validate(); err != nil {
		return nil, err
	}
	if w == nil || w.Size() == 0 {
		return nil, fmt.Errorf("crossbar: empty weight matrix: %w", ErrNotProgrammed)
	}
	rowBlocks := (w.Rows() + tile.MaxRows - 1) / tile.MaxRows
	colBlocks := (w.Cols() + tile.MaxCols - 1) / tile.MaxCols
	ta := &TiledArray{
		tiles:    make([][]*Crossbar, rowBlocks),
		rowStart: make([]int, rowBlocks+1),
		colStart: make([]int, colBlocks+1),
		rows:     w.Rows(),
		cols:     w.Cols(),
	}
	for rb := 0; rb <= rowBlocks; rb++ {
		off := rb * tile.MaxRows
		if off > w.Rows() {
			off = w.Rows()
		}
		ta.rowStart[rb] = off
	}
	for cb := 0; cb <= colBlocks; cb++ {
		off := cb * tile.MaxCols
		if off > w.Cols() {
			off = w.Cols()
		}
		ta.colStart[cb] = off
	}
	for rb := 0; rb < rowBlocks; rb++ {
		ta.tiles[rb] = make([]*Crossbar, colBlocks)
		for cb := 0; cb < colBlocks; cb++ {
			r0, r1 := ta.rowStart[rb], ta.rowStart[rb+1]
			c0, c1 := ta.colStart[cb], ta.colStart[cb+1]
			block := tensor.New(r1-r0, c1-c0)
			for i := r0; i < r1; i++ {
				copy(block.Row(i-r0), w.Row(i)[c0:c1])
			}
			var tileSrc *rng.Source
			if src != nil {
				tileSrc = src.SplitN(fmt.Sprintf("tile-%d", rb), cb)
			}
			xb, err := Program(block, device, tileSrc)
			if err != nil {
				return nil, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			ta.tiles[rb][cb] = xb
		}
	}
	return ta, nil
}

// Rows returns the logical output dimensionality.
func (t *TiledArray) Rows() int { return t.rows }

// Cols returns the logical input dimensionality.
func (t *TiledArray) Cols() int { return t.cols }

// RowBlocks returns the number of tile rows.
func (t *TiledArray) RowBlocks() int { return len(t.tiles) }

// ColBlocks returns the number of tile columns.
func (t *TiledArray) ColBlocks() int { return len(t.colStart) - 1 }

// Tile returns the physical array at grid position (rb, cb).
func (t *TiledArray) Tile(rb, cb int) (*Crossbar, error) {
	if rb < 0 || rb >= t.RowBlocks() || cb < 0 || cb >= t.ColBlocks() {
		return nil, fmt.Errorf("crossbar: tile (%d,%d) out of %dx%d grid", rb, cb, t.RowBlocks(), t.ColBlocks())
	}
	return t.tiles[rb][cb], nil
}

// Output computes the logical s ≈ Wu by accumulating partial tile
// outputs, mirroring the digital accumulation of real tiled accelerators.
// Note that each tile normalizes by its own programming scale, so in
// non-ideal modes tile-boundary effects differ from a monolithic array —
// exactly the behaviour tiling introduces in hardware.
func (t *TiledArray) Output(u []float64) ([]float64, error) {
	if len(u) != t.cols {
		return nil, fmt.Errorf("crossbar: input length %d, want %d", len(u), t.cols)
	}
	out := make([]float64, t.rows)
	for rb := range t.tiles {
		for cb, xb := range t.tiles[rb] {
			part, err := xb.Output(u[t.colStart[cb]:t.colStart[cb+1]])
			if err != nil {
				return nil, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			for i, v := range part {
				out[t.rowStart[rb]+i] += v
			}
		}
	}
	return out, nil
}

// TotalCurrent returns the summed supply current over all tiles — what a
// single package-level power rail exposes.
func (t *TiledArray) TotalCurrent(u []float64) (float64, error) {
	if len(u) != t.cols {
		return 0, fmt.Errorf("crossbar: input length %d, want %d", len(u), t.cols)
	}
	var total float64
	for rb := range t.tiles {
		for cb, xb := range t.tiles[rb] {
			i, err := xb.TotalCurrent(u[t.colStart[cb]:t.colStart[cb+1]])
			if err != nil {
				return 0, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			total += i
		}
	}
	return total, nil
}

// Power returns Vdd · total current, matching Crossbar.Power.
func (t *TiledArray) Power(u []float64) (float64, error) {
	i, err := t.TotalCurrent(u)
	if err != nil {
		return 0, err
	}
	// All tiles share one device config, so one Vdd.
	return i * t.tiles[0][0].Config().Vdd, nil
}

// TilePowers returns the per-tile power map for input u — the
// finer-grained side channel exposed by per-tile power rails. The result
// is indexed [rowBlock][colBlock].
func (t *TiledArray) TilePowers(u []float64) ([][]float64, error) {
	if len(u) != t.cols {
		return nil, fmt.Errorf("crossbar: input length %d, want %d", len(u), t.cols)
	}
	out := make([][]float64, t.RowBlocks())
	for rb := range t.tiles {
		out[rb] = make([]float64, t.ColBlocks())
		for cb, xb := range t.tiles[rb] {
			p, err := xb.Power(u[t.colStart[cb]:t.colStart[cb+1]])
			if err != nil {
				return nil, fmt.Errorf("crossbar: tile (%d,%d): %w", rb, cb, err)
			}
			out[rb][cb] = p
		}
	}
	return out, nil
}

// BlockColumnNorms returns, for each row block rb, the per-column
// conductance sums of that block's tiles assembled into a length-Cols
// vector — the quantity per-tile basis queries reveal. Row block b
// exposes Σ_{i in block b} |w_ij| for every j: a strictly finer leak
// than the monolithic array's total column norms.
func (t *TiledArray) BlockColumnNorms() [][]float64 {
	out := make([][]float64, t.RowBlocks())
	for rb := range t.tiles {
		norms := make([]float64, t.cols)
		for cb, xb := range t.tiles[rb] {
			sums := xb.ColumnConductanceSums()
			copy(norms[t.colStart[cb]:t.colStart[cb+1]], sums)
		}
		out[rb] = norms
	}
	return out
}
