package crossbar

import (
	"testing"

	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

// checkFusedMatches pins the fused serving kernel to the sequential
// Forward-then-Power reads, per input in that order, on fresh
// identically-programmed twins (bit-identical, including the noise
// stream consumption order of noisy arrays).
func checkFusedMatches(t *testing.T, program func() *Crossbar, us [][]float64) {
	t.Helper()
	seq, fused := program(), program()
	wantOut := make([][]float64, len(us))
	wantTot := make([]float64, len(us))
	for b, u := range us {
		out, err := seq.OutputCurrents(u)
		if err != nil {
			t.Fatal(err)
		}
		tot, err := seq.TotalCurrent(u)
		if err != nil {
			t.Fatal(err)
		}
		wantOut[b], wantTot[b] = out, tot
	}
	gotOut, gotTot, err := fused.OutputTotalCurrentBatch(us)
	if err != nil {
		t.Fatal(err)
	}
	for b := range us {
		if gotTot[b] != wantTot[b] {
			t.Fatalf("fused total[%d] = %v, sequential %v", b, gotTot[b], wantTot[b])
		}
		for i := range wantOut[b] {
			if gotOut[b][i] != wantOut[b][i] {
				t.Fatalf("fused out[%d][%d] = %v, sequential %v", b, i, gotOut[b][i], wantOut[b][i])
			}
		}
	}
}

func TestOutputTotalCurrentBatchMatchesSequential(t *testing.T) {
	w, us := batchTestWeights(t, 9, 17)
	for name, cfg := range map[string]DeviceConfig{
		"ideal":            {GOn: 100e-6, GOff: 0, Vdd: 0.2},
		"default":          DefaultDeviceConfig(),
		"non-ideal":        nonIdealNoNoiseConfig(),
		"read-noise":       readNoiseConfig(),
		"masking-only":     {GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, PowerMasking: true},
		"irdrop-only":      {GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, IRDropAlpha: 0.15},
		"quantized":        {GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, Levels: 8},
		"noise-no-masking": {GOn: 100e-6, GOff: 1e-6, Vdd: 0.2, ReadNoiseStd: 0.05},
	} {
		t.Run(name, func(t *testing.T) {
			checkFusedMatches(t, func() *Crossbar {
				xb, err := Program(w, cfg, rng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				return xb
			}, us)
		})
	}
}

func TestForwardPowerBatchMatchesSequential(t *testing.T) {
	w, us := batchTestWeights(t, 10, 15)
	for _, act := range []nn.Activation{nn.ActLinear, nn.ActSoftmax, nn.ActSigmoid, nn.ActReLU} {
		for name, cfg := range map[string]DeviceConfig{
			"non-ideal":  nonIdealNoNoiseConfig(),
			"read-noise": readNoiseConfig(),
		} {
			t.Run(name+"/"+act.String(), func(t *testing.T) {
				program := func() *Network {
					net := &nn.Network{W: w.Clone(), Act: act}
					hw, err := NewNetwork(net, cfg, rng.New(78))
					if err != nil {
						t.Fatal(err)
					}
					return hw
				}
				seq, fused := program(), program()
				wantY := make([][]float64, len(us))
				wantP := make([]float64, len(us))
				for b, u := range us {
					y, err := seq.Forward(u)
					if err != nil {
						t.Fatal(err)
					}
					p, err := seq.Power(u)
					if err != nil {
						t.Fatal(err)
					}
					wantY[b], wantP[b] = y, p
				}
				gotY, gotP, err := fused.ForwardPowerBatch(us)
				if err != nil {
					t.Fatal(err)
				}
				for b := range us {
					if gotP[b] != wantP[b] {
						t.Fatalf("fused power[%d] = %v, sequential %v", b, gotP[b], wantP[b])
					}
					for i := range wantY[b] {
						if gotY[b][i] != wantY[b][i] {
							t.Fatalf("fused y[%d][%d] = %v, sequential %v", b, i, gotY[b][i], wantY[b][i])
						}
					}
				}
			})
		}
	}
}

// TestOutputTotalCurrentBatchAllocsBounded pins the hot-path contract on
// the fused serving kernel: once the effective-conductance cache is warm,
// a noise-free batch costs a constant number of allocations — the two
// result headers plus the one backing slab — independent of batch size.
func TestOutputTotalCurrentBatchAllocsBounded(t *testing.T) {
	w, us := batchTestWeights(t, 9, 17)
	for name, cfg := range map[string]DeviceConfig{
		"default":   DefaultDeviceConfig(),
		"non-ideal": nonIdealNoNoiseConfig(),
	} {
		t.Run(name, func(t *testing.T) {
			xb, err := Program(w, cfg, rng.New(79))
			if err != nil {
				t.Fatal(err)
			}
			run := func(batch [][]float64) float64 {
				return testing.AllocsPerRun(20, func() {
					if _, _, err := xb.OutputTotalCurrentBatch(batch); err != nil {
						t.Fatal(err)
					}
				})
			}
			run(us) // warm the effective-conductance cache
			small, full := run(us[:2]), run(us)
			if small != full {
				t.Errorf("allocations scale with batch size: %v for 2 inputs, %v for %d",
					small, full, len(us))
			}
			if full > 3 {
				t.Errorf("fused batch costs %v allocations, want at most 3 (outs+totals+slab)", full)
			}
		})
	}
}

func TestNoisyReporting(t *testing.T) {
	w, _ := batchTestWeights(t, 4, 6)
	quiet, err := Program(w, DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Noisy() {
		t.Fatal("noise-free array reported noisy")
	}
	loud, err := Program(w, readNoiseConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !loud.Noisy() {
		t.Fatal("read-noise array reported noise-free")
	}
	net := &nn.Network{W: w.Clone(), Act: nn.ActLinear}
	hw, err := NewNetwork(net, readNoiseConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !hw.Noisy() {
		t.Fatal("network over noisy array must report noisy")
	}
	if _, _, err := hw.ForwardPowerBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("bad input length must error")
	}
}
