// Package wal implements the crash-safe append-only log under the
// service layer's job journal: length-prefixed, CRC-framed records on an
// fsync'd file. The format is deliberately dumb — one file, sequential
// frames, no index — because the journal is replayed in full at startup
// and rewritten compacted afterwards; durability and torn-write
// detection are the whole job.
//
// Frame format (little-endian):
//
//	[4 bytes payload length][4 bytes CRC-32C of payload][payload]
//
// A crash can tear the final frame (a prefix of it reached the disk);
// Replay detects this — a short header, short payload, or CRC mismatch
// at the tail — stops cleanly, and reports the torn tail so the caller
// can count it. Every frame before the tear is intact by construction:
// frames are appended by a single writer and (with Options.Fsync) each
// append is durable before Append returns.
//
// All filesystem access goes through the FS interface so the
// fault-injection harness (internal/faultinject) can drive the recovery
// paths with deterministic torn writes and disk errors.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the log (and the artifact spill store)
// uses. OSFS is the real implementation; faultinject.FS wraps any FS
// with deterministic injected faults.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
}

// File is one open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile opens a real file.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames a real file.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a real file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates a real directory tree.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Stat stats a real file.
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// ReadDir lists a real directory.
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// castagnoli is the CRC-32C table; CRC-32C is the storage-stack
// convention (iSCSI, ext4, Btrfs) and detects torn frames just as well
// as anything stronger would at a fraction of the cost.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8

// ErrFull indicates an append would grow the log past Options.MaxBytes;
// the caller must shed the work (the service maps this to a typed
// "unavailable" with Retry-After) rather than accept what it cannot
// persist.
var ErrFull = errors.New("wal: log full")

// ErrClosed indicates an append on a closed writer.
var ErrClosed = errors.New("wal: writer closed")

// ErrTooLarge indicates a single record larger than MaxRecordBytes.
var ErrTooLarge = errors.New("wal: record too large")

// MaxRecordBytes bounds one record's payload — far above any job spec,
// and the replay-side allocation guard: a corrupt length prefix must
// not make Replay allocate gigabytes.
const MaxRecordBytes = 16 << 20

// Options configures a Writer.
type Options struct {
	// Fsync makes every Append durable before it returns. On by
	// default in the service (it is the point of a write-ahead log);
	// disabling trades the tail of the journal on power loss for
	// append latency.
	Fsync bool
	// MaxBytes bounds the log file size; appends beyond it fail with
	// ErrFull. 0 means unbounded.
	MaxBytes int64
}

// Writer appends CRC-framed records to one log file. Not safe for
// concurrent use — callers serialize (the job journal holds a mutex).
type Writer struct {
	fs     FS
	f      File
	opts   Options
	size   int64
	closed bool
	// buf is the reusable frame assembly buffer: header and payload are
	// written with a single Write call so a torn write is always a
	// contiguous prefix of one frame, never an interleaving.
	buf []byte
}

// Create opens a fresh log at path, truncating anything there. The
// usual lifecycle is Replay (read the previous generation) then Create
// (start the compacted next one, via CreateAtomic).
func Create(fsys FS, path string, opts Options) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", path, err)
	}
	return &Writer{fs: fsys, f: f, opts: opts}, nil
}

// Append frames and writes one record, fsyncing when configured. The
// payload is owned by the caller and copied into the frame buffer
// before any I/O.
func (w *Writer) Append(payload []byte) error {
	if w.closed {
		return ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: %d-byte record: %w", len(payload), ErrTooLarge)
	}
	frame := int64(headerSize + len(payload))
	if w.opts.MaxBytes > 0 && w.size+frame > w.opts.MaxBytes {
		return fmt.Errorf("wal: %d+%d bytes exceeds bound %d: %w", w.size, frame, w.opts.MaxBytes, ErrFull)
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	n, err := w.f.Write(w.buf)
	// Whatever prefix reached the file is there to stay; account for it
	// so the size bound keeps meaning "bytes in the file" even after a
	// torn write.
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if w.opts.Fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	return nil
}

// Size returns the bytes written so far (including any torn prefix from
// a failed append).
func (w *Writer) Size() int64 { return w.size }

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	if w.closed {
		return ErrClosed
	}
	return w.f.Sync()
}

// Close syncs and closes the log. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: close sync: %w", syncErr)
	}
	return closeErr
}

// ReplayStats reports what Replay found.
type ReplayStats struct {
	// Records is the number of intact records delivered.
	Records int
	// Torn reports a torn or corrupt tail: a trailing partial frame (the
	// signature of a crash mid-append) or a CRC mismatch. Everything
	// before it was delivered; everything after it is unreachable and
	// lost by design.
	Torn bool
}

// Replay reads every intact record of the log at path in append order,
// calling fn for each. The record slice is reused between calls — fn
// must not retain it. A missing file is an empty log, not an error. A
// torn or corrupt tail stops replay cleanly (see ReplayStats.Torn); an
// error from fn aborts replay and is returned.
func Replay(fsys FS, path string, fn func(record []byte) error) (ReplayStats, error) {
	var st ReplayStats
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return st, nil
		}
		return st, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	var header [headerSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return st, nil // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true
				return st, nil
			}
			return st, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if n > MaxRecordBytes {
			// A length this absurd is a corrupt header, not a record.
			st.Torn = true
			return st, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				st.Torn = true
				return st, nil
			}
			return st, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			st.Torn = true
			return st, nil
		}
		if err := fn(payload); err != nil {
			return st, err
		}
		st.Records++
	}
}

// AtomicWriter is a new log generation that replaces path only on
// Commit: records append to path+".tmp", and Commit fsyncs and renames
// it over path — keeping the handle open, so the caller continues
// appending to the committed file. A crash before Commit leaves the
// previous generation intact; a crash after leaves the new one — never
// a half-written mix. This is how the journal compacts at recovery:
// replay the old generation, write the still-live records to the next,
// commit, keep journaling.
type AtomicWriter struct {
	*Writer
	fsys      FS
	path      string
	committed bool
}

// CreateAtomic opens the temporary next generation of the log at path.
func CreateAtomic(fsys FS, path string, opts Options) (*AtomicWriter, error) {
	w, err := Create(fsys, path+".tmp", opts)
	if err != nil {
		return nil, err
	}
	return &AtomicWriter{Writer: w, fsys: fsys, path: path}, nil
}

// Commit makes the new generation live: sync, then rename over the
// previous log. The handle stays open (the rename redirects the path,
// not the open file), so Append keeps working on the committed file.
func (a *AtomicWriter) Commit() error {
	if a.committed {
		return nil
	}
	if err := a.Writer.Sync(); err != nil {
		return fmt.Errorf("wal: commit sync: %w", err)
	}
	if err := a.fsys.Rename(a.path+".tmp", a.path); err != nil {
		return fmt.Errorf("wal: committing %s: %w", a.path, err)
	}
	a.committed = true
	return nil
}

// Abort discards an uncommitted generation: close and remove the
// temporary file. After Commit it is a no-op (the generation is live).
func (a *AtomicWriter) Abort() error {
	if a.committed {
		return nil
	}
	_ = a.Writer.Close()
	return a.fsys.Remove(a.path + ".tmp")
}
