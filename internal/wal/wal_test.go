package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xbarsec/internal/wal"
)

func replayAll(t *testing.T, path string) ([][]byte, wal.ReplayStats) {
	t.Helper()
	var recs [][]byte
	st, err := wal.Replay(wal.OSFS{}, path, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append(%q): %v", rec, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, path)
	if st.Torn {
		t.Error("clean log reported torn")
	}
	if st.Records != len(want) || len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", st.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	recs, st := replayAll(t, filepath.Join(t.TempDir(), "absent.wal"))
	if len(recs) != 0 || st.Torn || st.Records != 0 {
		t.Fatalf("missing file: got %d records, torn=%v", len(recs), st.Torn)
	}
}

// TestTornTail truncates the log at every possible byte boundary inside
// the final frame: replay must deliver every earlier record intact and
// report the tear, never an error and never a wrong record — the exact
// contract crash recovery leans on.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("intact-record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed-record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstFrame := 8 + len("intact-record")
	// cut == firstFrame would be a clean one-record log; every cut
	// strictly inside the second frame is a tear.
	for cut := firstFrame + 1; cut < len(full); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, st := replayAll(t, torn)
		if len(recs) != 1 || string(recs[0]) != "intact-record" {
			t.Fatalf("cut %d: got %d records %q, want the intact one", cut, len(recs), recs)
		}
		if !st.Torn {
			t.Errorf("cut %d: torn tail not reported", cut)
		}
	}
}

// TestCorruptFrame flips one byte in each region of the first frame:
// replay must stop before delivering the corrupt record.
func TestCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 4, 8, len(full) - 1} { // length, crc, payload head, payload tail
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0xFF
		cpath := filepath.Join(dir, fmt.Sprintf("corrupt-%d.wal", pos))
		if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, st := replayAll(t, cpath)
		if len(recs) != 0 {
			t.Errorf("byte %d corrupt: delivered %q, want nothing", pos, recs)
		}
		if !st.Torn {
			t.Errorf("byte %d corrupt: not reported torn", pos)
		}
	}
}

func TestMaxBytesBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := bytes.Repeat([]byte{1}, 20) // 28-byte frame
	if err := w.Append(rec); err != nil {
		t.Fatalf("first append within bound: %v", err)
	}
	if err := w.Append(rec); err != nil {
		t.Fatalf("second append within bound: %v", err)
	}
	if err := w.Append(rec); !errors.Is(err, wal.ErrFull) {
		t.Fatalf("append past bound: got %v, want ErrFull", err)
	}
	// The refused append wrote nothing: the log replays clean.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, path)
	if len(recs) != 2 || st.Torn {
		t.Fatalf("after ErrFull: %d records, torn=%v; want 2 clean", len(recs), st.Torn)
	}
}

func TestRecordTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, wal.MaxRecordBytes+1)); !errors.Is(err, wal.ErrTooLarge) {
		t.Fatalf("oversized record: got %v, want ErrTooLarge", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append([]byte("x")); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}
}

// TestAtomicGeneration pins the compaction lifecycle: the new
// generation is invisible until Commit, the handle keeps appending to
// the committed file, and Abort leaves the old generation untouched.
func TestAtomicGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	old, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Append([]byte("old-gen")); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	aborted, err := wal.CreateAtomic(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aborted.Append([]byte("never-lands")); err != nil {
		t.Fatal(err)
	}
	if err := aborted.Abort(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 1 || string(recs[0]) != "old-gen" {
		t.Fatalf("after abort: %q, want the old generation", recs)
	}

	next, err := wal.CreateAtomic(wal.OSFS{}, path, wal.Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Append([]byte("compacted")); err != nil {
		t.Fatal(err)
	}
	// Until Commit, the live path still replays the old generation.
	recs, _ = replayAll(t, path)
	if len(recs) != 1 || string(recs[0]) != "old-gen" {
		t.Fatalf("before commit: %q, want the old generation", recs)
	}
	if err := next.Commit(); err != nil {
		t.Fatal(err)
	}
	// The handle survives the rename: post-commit appends land in the
	// committed file.
	if err := next.Append([]byte("post-commit")); err != nil {
		t.Fatal(err)
	}
	if err := next.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, path)
	if st.Torn || len(recs) != 2 || string(recs[0]) != "compacted" || string(recs[1]) != "post-commit" {
		t.Fatalf("after commit: %q (torn=%v), want [compacted post-commit]", recs, st.Torn)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp file survived commit: %v", err)
	}
}
