// Package trace models the *temporal* dimension of the crossbar power
// side channel. Practical mixed-signal accelerators do not apply analog
// input voltages directly: they stream each input value bit-serially over
// B cycles through 1-bit DACs and accumulate shifted partial sums
// digitally. Power is therefore a per-cycle waveform, not one number —
// and each cycle's supply current is Σ_j bit_jb · G_j for the binary bit
// plane b. A trace of a single known input yields B linear constraints on
// the column conductances instead of the one constraint the paper's
// static model provides, making trace-based recovery far more query-
// efficient. This package provides the bit-serial encoder, a trace
// recorder, and the least-squares trace analyzer.
package trace

import (
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/linalg"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/tensor"
)

// Encoder quantizes inputs in [0, 1] to Bits-bit fixed point and expands
// them into per-cycle binary bit planes (MSB first).
type Encoder struct {
	// Bits is the DAC resolution (1-16).
	Bits int
}

// NewEncoder validates the resolution.
func NewEncoder(bits int) (Encoder, error) {
	if bits < 1 || bits > 16 {
		return Encoder{}, fmt.Errorf("trace: DAC resolution %d out of [1,16]", bits)
	}
	return Encoder{Bits: bits}, nil
}

// Quantize returns the Bits-bit fixed-point approximation of u (values
// clamped into [0, 1]).
func (e Encoder) Quantize(u []float64) []float64 {
	levels := float64(int(1)<<e.Bits) - 1
	out := make([]float64, len(u))
	for j, v := range u {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[j] = math.Round(v*levels) / levels
	}
	return out
}

// Encode expands u into Bits binary planes, MSB first: plane b holds bit
// (Bits-1-b) of each quantized value.
func (e Encoder) Encode(u []float64) [][]float64 {
	levels := int(1)<<e.Bits - 1
	codes := make([]int, len(u))
	for j, v := range u {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		codes[j] = int(math.Round(v * float64(levels)))
	}
	planes := make([][]float64, e.Bits)
	for b := 0; b < e.Bits; b++ {
		bit := e.Bits - 1 - b
		plane := make([]float64, len(u))
		for j, c := range codes {
			if c&(1<<bit) != 0 {
				plane[j] = 1
			}
		}
		planes[b] = plane
	}
	return planes
}

// Decode reconstructs the quantized value vector from bit planes.
func (e Encoder) Decode(planes [][]float64) ([]float64, error) {
	if len(planes) != e.Bits {
		return nil, fmt.Errorf("trace: got %d planes, want %d", len(planes), e.Bits)
	}
	n := len(planes[0])
	levels := float64(int(1)<<e.Bits) - 1
	out := make([]float64, n)
	for b, plane := range planes {
		if len(plane) != n {
			return nil, fmt.Errorf("trace: ragged plane %d", b)
		}
		weight := float64(int(1) << (e.Bits - 1 - b))
		for j, bit := range plane {
			if bit != 0 && bit != 1 {
				return nil, fmt.Errorf("trace: non-binary value %v in plane %d", bit, b)
			}
			out[j] += bit * weight
		}
	}
	for j := range out {
		out[j] /= levels
	}
	return out, nil
}

// Trace is one recorded per-cycle power waveform.
type Trace struct {
	// Cycles holds the measured power per bit-serial cycle, MSB first.
	Cycles []float64
}

// Recorder drives a power meter bit-serially and captures traces.
type Recorder struct {
	meter    sidechannel.PowerMeter
	enc      Encoder
	noiseStd float64
	src      *rng.Source
	queries  int
}

// NewRecorder wraps meter with a bit-serial driver. noiseStd is the
// relative per-cycle measurement noise; src may be nil when it is zero.
func NewRecorder(meter sidechannel.PowerMeter, bits int, noiseStd float64, src *rng.Source) (*Recorder, error) {
	if meter == nil {
		return nil, errors.New("trace: nil meter")
	}
	enc, err := NewEncoder(bits)
	if err != nil {
		return nil, err
	}
	if noiseStd < 0 {
		return nil, fmt.Errorf("trace: negative noise std %v", noiseStd)
	}
	if noiseStd > 0 && src == nil {
		return nil, errors.New("trace: noise requested but src is nil")
	}
	return &Recorder{meter: meter, enc: enc, noiseStd: noiseStd, src: src}, nil
}

// Queries returns the number of full bit-serial inferences recorded.
func (r *Recorder) Queries() int { return r.queries }

// Bits returns the DAC resolution.
func (r *Recorder) Bits() int { return r.enc.Bits }

// Record runs one bit-serial inference of u and returns its power trace.
func (r *Recorder) Record(u []float64) (Trace, error) {
	if len(u) != r.meter.Inputs() {
		return Trace{}, fmt.Errorf("trace: input length %d, want %d", len(u), r.meter.Inputs())
	}
	planes := r.enc.Encode(u)
	cycles := make([]float64, len(planes))
	for b, plane := range planes {
		p, err := r.meter.Power(plane)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: cycle %d: %w", b, err)
		}
		if r.noiseStd > 0 {
			p *= 1 + r.src.Normal(0, r.noiseStd)
		}
		cycles[b] = p
	}
	r.queries++
	return Trace{Cycles: cycles}, nil
}

// RecoverColumnSignals solves for the per-column power signals from
// recorded traces of known inputs. Every cycle of every trace contributes
// one linear equation P_cycle = Σ_j bit_j · s_j, so Q inputs yield Q·Bits
// equations — recovery needs only ceil(N/Bits) inferences instead of the
// static channel's N. The returned signals rank columns like the 1-norms
// (sidechannel.CalibrateColumnNorms applies unchanged).
func (r *Recorder) RecoverColumnSignals(inputs *tensor.Matrix) ([]float64, error) {
	if inputs == nil || inputs.Rows() == 0 {
		return nil, errors.New("trace: no inputs")
	}
	n := r.meter.Inputs()
	if inputs.Cols() != n {
		return nil, fmt.Errorf("trace: inputs have %d columns, want %d", inputs.Cols(), n)
	}
	rows := inputs.Rows() * r.enc.Bits
	if rows < n {
		return nil, fmt.Errorf("trace: %d trace cycles underdetermine %d columns", rows, n)
	}
	design := tensor.New(rows, n)
	rhs := make([]float64, rows)
	for q := 0; q < inputs.Rows(); q++ {
		tr, err := r.Record(inputs.Row(q))
		if err != nil {
			return nil, err
		}
		planes := r.enc.Encode(inputs.Row(q))
		for b, plane := range planes {
			row := q*r.enc.Bits + b
			design.SetRow(row, plane)
			rhs[row] = tr.Cycles[b]
		}
	}
	signals, err := linalg.LeastSquares(design, rhs)
	if err != nil {
		return nil, fmt.Errorf("trace: solving for signals: %w", err)
	}
	return signals, nil
}

// TotalEnergy returns the sum of the per-cycle powers — the scalar an
// integrating (static) power meter would see for the whole inference.
func (t Trace) TotalEnergy() float64 { return tensor.Sum(t.Cycles) }
