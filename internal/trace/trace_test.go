package trace

import (
	"math"
	"testing"
	"testing/quick"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0); err == nil {
		t.Fatal("0 bits must error")
	}
	if _, err := NewEncoder(17); err == nil {
		t.Fatal("17 bits must error")
	}
	if _, err := NewEncoder(8); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		bits := 1 + src.Intn(12)
		enc, err := NewEncoder(bits)
		if err != nil {
			return false
		}
		u := src.UniformVec(1+src.Intn(20), 0, 1)
		planes := enc.Encode(u)
		if len(planes) != bits {
			return false
		}
		decoded, err := enc.Decode(planes)
		if err != nil {
			return false
		}
		quant := enc.Quantize(u)
		for j := range u {
			if math.Abs(decoded[j]-quant[j]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeClampsAndBounds(t *testing.T) {
	enc, _ := NewEncoder(4)
	q := enc.Quantize([]float64{-0.5, 0, 0.5, 1, 1.5})
	if q[0] != 0 || q[1] != 0 || q[3] != 1 || q[4] != 1 {
		t.Fatalf("clamping broken: %v", q)
	}
	// 4-bit quantization error <= 1/(2*15).
	if math.Abs(q[2]-0.5) > 1.0/30+1e-12 {
		t.Fatalf("quantization error too large: %v", q[2])
	}
}

func TestDecodeValidation(t *testing.T) {
	enc, _ := NewEncoder(2)
	if _, err := enc.Decode([][]float64{{1, 0}}); err == nil {
		t.Fatal("wrong plane count must error")
	}
	if _, err := enc.Decode([][]float64{{1, 0}, {1}}); err == nil {
		t.Fatal("ragged planes must error")
	}
	if _, err := enc.Decode([][]float64{{1, 0}, {0.5, 0}}); err == nil {
		t.Fatal("non-binary plane must error")
	}
}

func buildMeter(t *testing.T, seed int64, m, n int) (sidechannel.PowerMeter, *tensor.Matrix, *crossbar.Crossbar) {
	t.Helper()
	src := rng.New(seed)
	w := tensor.New(m, n)
	d := w.Data()
	for i := range d {
		d[i] = src.Normal(0, 1)
	}
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	xb, err := crossbar.Program(w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sidechannel.MeterFromCrossbar(xb), w, xb
}

func TestNewRecorderValidation(t *testing.T) {
	meter, _, _ := buildMeter(t, 1, 3, 4)
	if _, err := NewRecorder(nil, 8, 0, nil); err == nil {
		t.Fatal("nil meter must error")
	}
	if _, err := NewRecorder(meter, 0, 0, nil); err == nil {
		t.Fatal("bad bits must error")
	}
	if _, err := NewRecorder(meter, 8, -1, nil); err == nil {
		t.Fatal("negative noise must error")
	}
	if _, err := NewRecorder(meter, 8, 0.1, nil); err == nil {
		t.Fatal("noise without src must error")
	}
}

func TestRecordTraceShape(t *testing.T) {
	meter, _, _ := buildMeter(t, 2, 4, 6)
	rec, err := NewRecorder(meter, 6, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Record(rng.New(3).UniformVec(6, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Cycles) != 6 {
		t.Fatalf("cycles = %d", len(tr.Cycles))
	}
	for _, p := range tr.Cycles {
		if p < 0 {
			t.Fatalf("negative cycle power %v", p)
		}
	}
	if rec.Queries() != 1 || rec.Bits() != 6 {
		t.Fatal("accounting broken")
	}
	if _, err := rec.Record([]float64{1}); err == nil {
		t.Fatal("wrong input length must error")
	}
	if tr.TotalEnergy() <= 0 {
		t.Fatal("energy must be positive for a nonzero input")
	}
}

// The core claim: traces recover column signals with ~N/Bits inferences,
// far fewer than the N basis queries of the static channel.
func TestRecoverColumnSignalsQueryEfficiency(t *testing.T) {
	const n = 24
	meter, w, xb := buildMeter(t, 4, 5, n)
	const bits = 8
	rec, err := NewRecorder(meter, bits, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(24/8) = 3 inferences suffice; use 4 for conditioning.
	src := rng.New(5)
	inputs := tensor.New(4, n)
	for i := 0; i < inputs.Rows(); i++ {
		inputs.SetRow(i, src.UniformVec(n, 0, 1))
	}
	signals, err := rec.RecoverColumnSignals(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Queries() != 4 {
		t.Fatalf("used %d inferences", rec.Queries())
	}
	// Signals must rank columns exactly like the true 1-norms.
	rho, err := stats.Spearman(signals, w.ColAbsSums())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-9 {
		t.Fatalf("trace recovery ranking broken: rho = %v", rho)
	}
	// And calibrate to absolute norms.
	cfg := xb.Config()
	norms := sidechannel.CalibrateColumnNorms(signals, cfg, 5, xb.Scale())
	want := w.ColAbsSums()
	for j := range want {
		if math.Abs(norms[j]-want[j]) > 1e-6 {
			t.Fatalf("column %d: %v, want %v", j, norms[j], want[j])
		}
	}
}

func TestRecoverColumnSignalsValidation(t *testing.T) {
	meter, _, _ := buildMeter(t, 6, 3, 16)
	rec, err := NewRecorder(meter, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RecoverColumnSignals(nil); err == nil {
		t.Fatal("nil inputs must error")
	}
	if _, err := rec.RecoverColumnSignals(tensor.New(2, 5)); err == nil {
		t.Fatal("wrong width must error")
	}
	// 3 inputs x 4 bits = 12 < 16 columns: underdetermined.
	if _, err := rec.RecoverColumnSignals(tensor.New(3, 16)); err == nil {
		t.Fatal("underdetermined system must error")
	}
}

func TestRecoverUnderNoiseDegradesGracefully(t *testing.T) {
	const n = 16
	meter, w, _ := buildMeter(t, 7, 4, n)
	src := rng.New(8)
	rec, err := NewRecorder(meter, 8, 0.05, src.Split("rec"))
	if err != nil {
		t.Fatal(err)
	}
	inputs := tensor.New(12, n) // 96 equations for 16 unknowns
	for i := 0; i < inputs.Rows(); i++ {
		inputs.SetRow(i, src.UniformVec(n, 0, 1))
	}
	signals, err := rec.RecoverColumnSignals(inputs)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := stats.Spearman(signals, w.ColAbsSums())
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 {
		t.Fatalf("noisy trace recovery rank corr %v too low", rho)
	}
}

// Bit-serial evaluation is functionally exact on quantized inputs:
// Σ_b 2^{-b} W·plane_b == W·quantize(u).
func TestBitSerialFunctionalEquivalence(t *testing.T) {
	meter, w, _ := buildMeter(t, 9, 4, 10)
	_ = meter
	enc, _ := NewEncoder(8)
	src := rng.New(10)
	u := src.UniformVec(10, 0, 1)
	planes := enc.Encode(u)
	levels := float64(int(1)<<enc.Bits - 1)
	acc := make([]float64, 4)
	for b, plane := range planes {
		part := w.MatVec(plane)
		weight := float64(int(1)<<(enc.Bits-1-b)) / levels
		tensor.AxpyInPlace(weight, part, acc)
	}
	want := w.MatVec(enc.Quantize(u))
	for i := range want {
		if math.Abs(acc[i]-want[i]) > 1e-9 {
			t.Fatalf("bit-serial accumulation mismatch at %d: %v vs %v", i, acc[i], want[i])
		}
	}
}
