package linalg

import (
	"math"
	"math/rand"
	"testing"

	"xbarsec/internal/tensor"
)

// referenceQR is the element-wise (At/Add/Set) Householder QR exactly as
// shipped before the row-slice rewrite (linalg.go @ PR 1). The rewrite
// must reproduce Q and R bit for bit — it only removes bounds-checked
// element access and batches the per-column reflections into row sweeps
// with the same per-element accumulation order.
func referenceQR(a *tensor.Matrix) (q, rr *tensor.Matrix) {
	m, n := a.Rows(), a.Cols()
	r := a.Clone()
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		var norm float64
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, m-k)
		v[0] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		vnorm := tensor.Norm2(v)
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		vs = append(vs, v)
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Add(i, j, -dot*v[i-k])
			}
		}
	}
	q = tensor.New(m, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		col[j] = 1
		for k := len(vs) - 1; k >= 0; k-- {
			v := vs[k]
			if v == nil {
				continue
			}
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * col[i]
			}
			dot *= 2
			for i := k; i < m; i++ {
				col[i] -= dot * v[i-k]
			}
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	rr = tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.Set(i, j, r.At(i, j))
		}
	}
	return q, rr
}

func requireBitsEqual(t *testing.T, name string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d: %v vs %v", name, i, g[i], w[i])
		}
	}
}

// TestQRMatchesElementwiseReference pins the row-slice QR to the old
// element-wise formulation, bit for bit, across shapes including rank
// deficiency (zero column) and tall-thin systems.
func TestQRMatchesElementwiseReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	shapes := [][2]int{{4, 4}, {12, 5}, {60, 17}, {9, 1}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		a := tensor.New(m, n)
		d := a.Data()
		for i := range d {
			d[i] = r.NormFloat64()
		}
		if n > 2 {
			// Zero a column to hit the norm == 0 reflection skip.
			for i := 0; i < m; i++ {
				a.Set(i, 2, 0)
			}
		}
		wantQ, wantR := referenceQR(a)
		f, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		requireBitsEqual(t, "Q", f.Q(), wantQ)
		requireBitsEqual(t, "R", f.R(), wantR)
	}
}

// TestPseudoInverseMatchesTransposedColumns pins the row-reading
// PseudoInverse to the old formulation that materialized Qᵀ and copied
// each of its columns: column j of Qᵀ IS row j of Q, so results must be
// bit-identical while the O(m·n) per-column copies disappear.
func TestPseudoInverseMatchesTransposedColumns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, sh := range [][2]int{{20, 6}, {6, 20}, {8, 8}} {
		a := tensor.New(sh[0], sh[1])
		d := a.Data()
		for i := range d {
			d[i] = r.NormFloat64()
		}
		inv, err := PseudoInverse(a)
		if err != nil {
			t.Fatal(err)
		}
		// Old formulation, on top of the (bit-identical) factorization.
		base := a
		if a.Rows() < a.Cols() {
			base = a.T()
		}
		f, err := NewQR(base)
		if err != nil {
			t.Fatal(err)
		}
		n := base.Cols()
		want := tensor.New(n, base.Rows())
		qt := f.q.T()
		for j := 0; j < base.Rows(); j++ {
			x := make([]float64, n)
			if err := backSubstituteInto(x, f.r, qt.Col(j)); err != nil {
				t.Fatal(err)
			}
			for i, v := range x {
				want.Set(i, j, v)
			}
		}
		if a.Rows() < a.Cols() {
			want = want.T()
		}
		requireBitsEqual(t, "pseudoinverse", inv, want)
	}
}
