package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xbarsec/internal/tensor"
)

func randMatrix(r *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = r.NormFloat64()
	}
	return m
}

func TestQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := 3 + r.Intn(8)
		n := 1 + r.Intn(m)
		a := randMatrix(r, m, n)
		f, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		qr := f.Q().MatMul(f.R())
		if !qr.Equal(a, 1e-9) {
			t.Fatalf("trial %d: QR does not reconstruct A", trial)
		}
	}
}

func TestQROrthonormalColumns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMatrix(r, 7, 4)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	q := f.Q()
	qtq := q.T().MatMul(q)
	if !qtq.Equal(tensor.Identity(4), 1e-9) {
		t.Fatal("QᵀQ != I")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randMatrix(r, 6, 4)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	rr := f.R()
	for i := 1; i < rr.Rows(); i++ {
		for j := 0; j < i; j++ {
			if math.Abs(rr.At(i, j)) > 1e-12 {
				t.Fatalf("R(%d,%d) = %v, want 0", i, j, rr.At(i, j))
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := NewQR(tensor.New(2, 3)); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}

func TestSolveExactSquareSystem(t *testing.T) {
	a, _ := tensor.NewFromRows([][]float64{{2, 1}, {1, 3}})
	// x = [1, 2] → b = [4, 7]
	x, err := LeastSquares(a, []float64{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 exactly through noiseless points.
	ts := []float64{0, 1, 2, 3, 4}
	a := tensor.New(len(ts), 2)
	b := make([]float64, len(ts))
	for i, tv := range ts {
		a.Set(i, 0, tv)
		a.Set(i, 1, 1)
		b[i] = 2*tv + 1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := tensor.NewFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	_, err := LeastSquares(a, []float64{1, 2, 3})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveRHSLengthMismatch(t *testing.T) {
	f, err := NewQR(tensor.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestPseudoInverseTall(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randMatrix(r, 8, 3)
	ainv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// A† A = I for full column rank.
	if !ainv.MatMul(a).Equal(tensor.Identity(3), 1e-8) {
		t.Fatal("A†A != I")
	}
}

func TestPseudoInverseWide(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMatrix(r, 3, 8)
	ainv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// A A† = I for full row rank.
	if !a.MatMul(ainv).Equal(tensor.Identity(3), 1e-8) {
		t.Fatal("AA† != I")
	}
}

// The paper's §IV observation: with Q >= N independent queries and raw
// outputs, the weight matrix is exactly recoverable as W = (U† Ŷ)ᵀ where
// rows of U are queries and rows of Ŷ the corresponding outputs.
func TestWeightRecoveryFromQueries(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const (
		nInputs  = 12
		nOutputs = 4
		nQueries = 20
	)
	w := randMatrix(r, nOutputs, nInputs)
	u := randMatrix(r, nQueries, nInputs)
	y := u.MatMul(w.T()) // each row: W u

	uinv, err := PseudoInverse(u)
	if err != nil {
		t.Fatal(err)
	}
	west := uinv.MatMul(y).T()
	if !west.Equal(w, 1e-8) {
		t.Fatal("W = U†Ŷ recovery failed")
	}
}

func TestSolveMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 6, 3)
	xTrue := randMatrix(r, 3, 2)
	b := a.MatMul(xTrue)
	x, err := SolveMatrix(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(xTrue, 1e-8) {
		t.Fatal("SolveMatrix failed to recover X")
	}
	if _, err := SolveMatrix(tensor.New(3, 2), tensor.New(4, 2)); err == nil {
		t.Fatal("row mismatch must error")
	}
}

func TestRidgeRegression(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randMatrix(r, 10, 3)
	b := make([]float64, 10)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x0, err := RidgeRegression(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := RidgeRegression(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm2(xr) >= tensor.Norm2(x0) {
		t.Fatal("ridge penalty must shrink the solution norm")
	}
	if _, err := RidgeRegression(a, b, -1); err == nil {
		t.Fatal("negative lambda must error")
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(6)
		n := 1 + r.Intn(3)
		a := randMatrix(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient draw; skip
		}
		res := tensor.SubVec(b, a.MatVec(x))
		// Aᵀ r should be ~0.
		atr := a.VecMat(res)
		return tensor.NormInf(atr) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
