// Package linalg supplies the dense numerical linear algebra the paper's
// Case-2 analysis needs: Householder QR, least-squares solves and the
// Moore-Penrose pseudoinverse. Section IV of the paper observes that with
// Q >= N independent queries and access to raw linear outputs the weight
// matrix is exactly recoverable as W = U† Ŷ; the algebraic extraction
// baseline in internal/surrogate is built on these routines.
//
// The factorization kernels sweep matrices row-major through raw row
// slices with a single column-sized workspace — no element-wise At/Set
// bounds checks in inner loops — while keeping the floating-point
// accumulation order of the straightforward column-at-a-time formulation
// (reflections contract over the row index in increasing order for every
// column simultaneously), so Q, R and every downstream solve are
// bit-identical to it.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/tensor"
)

// ErrSingular indicates the system is (numerically) rank deficient where a
// full-rank factorization was required.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// QR holds a Householder QR factorization A = Q·R with A m x n, m >= n,
// Q m x n with orthonormal columns (thin form) and R n x n upper
// triangular.
type QR struct {
	q *tensor.Matrix
	r *tensor.Matrix
}

// NewQR computes the thin QR factorization of a. It returns an error if a
// has more columns than rows.
func NewQR(a *tensor.Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	// Work on a copy; accumulate Householder vectors in-place.
	r := a.Clone()
	vs := make([][]float64, 0, n)
	w := make([]float64, n) // per-reflection column workspace
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := r.Row(i)[k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if r.Row(k)[k] < 0 {
			alpha = norm
		}
		v := make([]float64, m-k)
		v[0] = r.Row(k)[k] - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.Row(i)[k]
		}
		vnorm := tensor.Norm2(v)
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		vs = append(vs, v)
		// Apply H = I - 2vvᵀ to the trailing submatrix of R: first
		// w = 2·vᵀR (all trailing columns in one row-major sweep,
		// contracting over rows in increasing order), then R -= v·wᵀ.
		wk := w[k:]
		for j := range wk {
			wk[j] = 0
		}
		for i := k; i < m; i++ {
			vi := v[i-k]
			row := r.Row(i)[k:]
			for j, rv := range row {
				wk[j] += vi * rv
			}
		}
		for j := range wk {
			wk[j] *= 2
		}
		for i := k; i < m; i++ {
			vi := v[i-k]
			row := r.Row(i)[k:]
			for j := range row {
				row[j] -= vi * wk[j]
			}
		}
	}
	// Form thin Q by applying the Householder reflections to the first n
	// columns of the identity, in reverse order — all columns advance
	// together through row-major sweeps.
	q := tensor.New(m, n)
	for j := 0; j < n; j++ {
		q.Row(j)[j] = 1
	}
	for k := len(vs) - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := range w {
			w[j] = 0
		}
		for i := k; i < m; i++ {
			vi := v[i-k]
			row := q.Row(i)
			for j, qv := range row {
				w[j] += vi * qv
			}
		}
		for j := range w {
			w[j] *= 2
		}
		for i := k; i < m; i++ {
			vi := v[i-k]
			row := q.Row(i)
			for j := range row {
				row[j] -= vi * w[j]
			}
		}
	}
	rr := tensor.New(n, n)
	for i := 0; i < n; i++ {
		copy(rr.Row(i)[i:], r.Row(i)[i:n])
	}
	return &QR{q: q, r: rr}, nil
}

// Q returns the thin orthonormal factor (a copy).
func (f *QR) Q() *tensor.Matrix { return f.q.Clone() }

// R returns the upper-triangular factor (a copy).
func (f *QR) R() *tensor.Matrix { return f.r.Clone() }

// Solve returns x minimizing ||Ax - b||₂ using the factorization.
// It returns ErrSingular if R has a (numerically) zero diagonal entry.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.q.Rows(), f.q.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), m)
	}
	// x = R⁻¹ Qᵀ b.
	qtb := make([]float64, n)
	tensor.VecMatInto(qtb, b, f.q)
	x := make([]float64, n)
	if err := backSubstituteInto(x, f.r, qtb); err != nil {
		return nil, err
	}
	return x, nil
}

// backSubstituteInto solves the upper-triangular system R·x = y into the
// caller-provided dst (len n); y is read up to n and not modified. dst
// and y may not alias.
func backSubstituteInto(dst []float64, r *tensor.Matrix, y []float64) error {
	n := len(dst)
	scale := r.MaxAbs()
	tol := 1e-12 * math.Max(scale, 1)
	for i := n - 1; i >= 0; i-- {
		row := r.Row(i)
		d := row[i]
		if math.Abs(d) <= tol {
			return fmt.Errorf("linalg: zero pivot at %d: %w", i, ErrSingular)
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / d
	}
	return nil
}

// LeastSquares returns x minimizing ||Ax - b||₂ for a with full column
// rank.
func LeastSquares(a *tensor.Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveMatrix solves AX = B in the least-squares sense column by column,
// returning the n x k matrix X for A m x n and B m x k. B is transposed
// once up front so each right-hand side is a contiguous row.
func SolveMatrix(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("linalg: SolveMatrix row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	bt := b.T()
	x := tensor.New(a.Cols(), b.Cols())
	for j := 0; j < b.Cols(); j++ {
		xj, err := f.Solve(bt.Row(j))
		if err != nil {
			return nil, fmt.Errorf("linalg: column %d: %w", j, err)
		}
		for i, v := range xj {
			x.Row(i)[j] = v
		}
	}
	return x, nil
}

// PseudoInverse returns the Moore-Penrose pseudoinverse of a full-column-
// rank matrix a (m x n, m >= n): A† = (AᵀA)⁻¹Aᵀ computed stably through
// QR as R⁻¹Qᵀ. For m < n the pseudoinverse of the transpose is used,
// (A†)ᵀ = (Aᵀ)†. Column j of A† is R⁻¹·(row j of Q) — the rows of Q are
// read directly, with one reused solve buffer, instead of materializing
// Qᵀ and copying each of its columns.
func PseudoInverse(a *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Rows() < a.Cols() {
		pt, err := PseudoInverse(a.T())
		if err != nil {
			return nil, err
		}
		return pt.T(), nil
	}
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	n := a.Cols()
	inv := tensor.New(n, a.Rows())
	x := make([]float64, n)
	for j := 0; j < a.Rows(); j++ {
		if err := backSubstituteInto(x, f.r, f.q.Row(j)); err != nil {
			return nil, err
		}
		for i, v := range x {
			inv.Row(i)[j] = v
		}
	}
	return inv, nil
}

// RidgeRegression returns x minimizing ||Ax-b||² + lambda||x||², solved
// through the augmented least-squares system. lambda must be >= 0.
func RidgeRegression(a *tensor.Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %v", lambda)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := tensor.New(m+n, n)
	for i := 0; i < m; i++ {
		aug.SetRow(i, a.Row(i))
	}
	s := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(m+i, i, s)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}
