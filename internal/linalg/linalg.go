// Package linalg supplies the dense numerical linear algebra the paper's
// Case-2 analysis needs: Householder QR, least-squares solves and the
// Moore-Penrose pseudoinverse. Section IV of the paper observes that with
// Q >= N independent queries and access to raw linear outputs the weight
// matrix is exactly recoverable as W = U† Ŷ; the algebraic extraction
// baseline in internal/surrogate is built on these routines.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/tensor"
)

// ErrSingular indicates the system is (numerically) rank deficient where a
// full-rank factorization was required.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// QR holds a Householder QR factorization A = Q·R with A m x n, m >= n,
// Q m x n with orthonormal columns (thin form) and R n x n upper
// triangular.
type QR struct {
	q *tensor.Matrix
	r *tensor.Matrix
}

// NewQR computes the thin QR factorization of a. It returns an error if a
// has more columns than rows.
func NewQR(a *tensor.Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	// Work on a copy; accumulate Householder vectors in-place.
	r := a.Clone()
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, m-k)
		v[0] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		vnorm := tensor.Norm2(v)
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		vs = append(vs, v)
		// Apply H = I - 2vvᵀ to the trailing submatrix of R.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Add(i, j, -dot*v[i-k])
			}
		}
	}
	// Form thin Q by applying the Householder reflections to the first n
	// columns of the identity, in reverse order.
	q := tensor.New(m, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		col[j] = 1
		for k := len(vs) - 1; k >= 0; k-- {
			v := vs[k]
			if v == nil {
				continue
			}
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * col[i]
			}
			dot *= 2
			for i := k; i < m; i++ {
				col[i] -= dot * v[i-k]
			}
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	rr := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.Set(i, j, r.At(i, j))
		}
	}
	return &QR{q: q, r: rr}, nil
}

// Q returns the thin orthonormal factor (a copy).
func (f *QR) Q() *tensor.Matrix { return f.q.Clone() }

// R returns the upper-triangular factor (a copy).
func (f *QR) R() *tensor.Matrix { return f.r.Clone() }

// Solve returns x minimizing ||Ax - b||₂ using the factorization.
// It returns ErrSingular if R has a (numerically) zero diagonal entry.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.q.Rows(), f.q.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), m)
	}
	// x = R⁻¹ Qᵀ b.
	qtb := f.q.VecMat(b)
	return backSubstitute(f.r, qtb, n)
}

func backSubstitute(r *tensor.Matrix, y []float64, n int) ([]float64, error) {
	x := make([]float64, n)
	scale := r.MaxAbs()
	tol := 1e-12 * math.Max(scale, 1)
	for i := n - 1; i >= 0; i-- {
		d := r.At(i, i)
		if math.Abs(d) <= tol {
			return nil, fmt.Errorf("linalg: zero pivot at %d: %w", i, ErrSingular)
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares returns x minimizing ||Ax - b||₂ for a with full column
// rank.
func LeastSquares(a *tensor.Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveMatrix solves AX = B in the least-squares sense column by column,
// returning the n x k matrix X for A m x n and B m x k.
func SolveMatrix(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("linalg: SolveMatrix row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	x := tensor.New(a.Cols(), b.Cols())
	for j := 0; j < b.Cols(); j++ {
		xj, err := f.Solve(b.Col(j))
		if err != nil {
			return nil, fmt.Errorf("linalg: column %d: %w", j, err)
		}
		for i, v := range xj {
			x.Set(i, j, v)
		}
	}
	return x, nil
}

// PseudoInverse returns the Moore-Penrose pseudoinverse of a full-column-
// rank matrix a (m x n, m >= n): A† = (AᵀA)⁻¹Aᵀ computed stably through
// QR as R⁻¹Qᵀ. For m < n the pseudoinverse of the transpose is used,
// (A†)ᵀ = (Aᵀ)†.
func PseudoInverse(a *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Rows() < a.Cols() {
		pt, err := PseudoInverse(a.T())
		if err != nil {
			return nil, err
		}
		return pt.T(), nil
	}
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	n := a.Cols()
	inv := tensor.New(n, a.Rows())
	qt := f.q.T()
	for j := 0; j < a.Rows(); j++ {
		x, err := backSubstitute(f.r, qt.Col(j), n)
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			inv.Set(i, j, v)
		}
	}
	return inv, nil
}

// RidgeRegression returns x minimizing ||Ax-b||² + lambda||x||², solved
// through the augmented least-squares system. lambda must be >= 0.
func RidgeRegression(a *tensor.Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %v", lambda)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := tensor.New(m+n, n)
	for i := 0; i < m; i++ {
		aug.SetRow(i, a.Row(i))
	}
	s := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(m+i, i, s)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}
