// Package report renders experiment results as aligned ASCII tables, CSV
// series and ASCII heatmaps, so every figure and table of the paper can be
// regenerated as text from the CLI and the benchmarks.
package report

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with space-padded alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes the table as RFC-4180-style CSV (header row first,
// cells quoted only when they contain a comma, quote or newline) so any
// rendered table — service stats, campaign sweeps — can be exported for
// plotting without reparsing the aligned text form.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Series is a named sequence of (x, y) points, one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteSeriesCSV writes one or more series sharing an x-axis as CSV:
// a header "x,name1,name2,..." followed by one row per x value. All series
// must have the same X values.
func WriteSeriesCSV(w io.Writer, xLabel string, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0].X)
	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Name)
		}
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, strconv.FormatFloat(series[0].X[i], 'g', -1, 64))
		for _, s := range series {
			cells = append(cells, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// heatShades orders glyphs from low to high intensity.
const heatShades = " .:-=+*#%@"

// Heatmap renders values (row-major, width x height) as an ASCII image
// normalized to the data range. It is used to eyeball the Figure 3
// sensitivity/1-norm maps in a terminal.
func Heatmap(values []float64, width, height int) string {
	if width <= 0 || height <= 0 || len(values) < width*height {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values[:width*height] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := values[y*width+x]
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(heatShades)-1))
				if idx < 0 {
					idx = 0
				} else if idx >= len(heatShades) {
					idx = len(heatShades) - 1
				}
			}
			b.WriteByte(heatShades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SignificanceMark returns "*" when p < alpha, the paper's Figure 5
// annotation, and "" otherwise.
func SignificanceMark(p, alpha float64) string {
	if p < alpha {
		return "*"
	}
	return ""
}
