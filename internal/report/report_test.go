package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22.5")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Fatalf("header %q", lines[1])
	}
	// Columns align: "alpha" is the widest cell in column 0.
	if !strings.HasPrefix(lines[3], "alpha  ") || !strings.HasPrefix(lines[4], "b      ") {
		t.Fatalf("misaligned rows: %q / %q", lines[3], lines[4])
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if F(math.NaN(), 2) != "nan" {
		t.Fatal("NaN must print as nan")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := WriteSeriesCSV(&b, "q", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{0.7, 0.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "q,a,b\n1,0.5,0.7\n2,0.6,0.8\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "x", nil); err == nil {
		t.Fatal("empty series must error")
	}
	err := WriteSeriesCSV(&b, "x", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{0.5}},
	})
	if err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([]float64{0, 0.5, 1, 0.25}, 2, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("heatmap shape: %q", out)
	}
	// Min maps to the lightest shade, max to the darkest.
	if lines[0][0] != ' ' {
		t.Fatalf("min shade %q", lines[0][0])
	}
	if lines[1][0] != '@' {
		t.Fatalf("max shade %q", lines[1][0])
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if Heatmap(nil, 2, 2) != "" {
		t.Fatal("short input must return empty")
	}
	out := Heatmap([]float64{3, 3, 3, 3}, 2, 2)
	if !strings.Contains(out, "  ") {
		t.Fatal("constant map should render lightest shade")
	}
}

func TestSignificanceMark(t *testing.T) {
	if SignificanceMark(0.01, 0.05) != "*" {
		t.Fatal("significant must mark")
	}
	if SignificanceMark(0.2, 0.05) != "" {
		t.Fatal("insignificant must not mark")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{
		Header: []string{"name", "value"},
		Rows: [][]string{
			{"plain", "1.5"},
			{"needs,quoting", `has "quotes"`},
		},
	}
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1.5\n\"needs,quoting\",\"has \"\"quotes\"\"\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}
