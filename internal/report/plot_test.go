package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestLinePlotRendersAllSeries(t *testing.T) {
	p := &LinePlot{
		Title:  "demo",
		XLabel: "strength",
		YLabel: "accuracy",
		Width:  30, Height: 8,
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{1, 0.5, 0}},
		},
	}
	out := p.String()
	for _, want := range []string{"demo", "*=up", "o=down", "accuracy", "strength"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Extremes: the rising series must put a '*' in the top row area and
	// one at the bottom-left.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") && !strings.Contains(top, "o") {
		t.Fatalf("no glyph in top row: %q", top)
	}
}

func TestLinePlotDegenerate(t *testing.T) {
	p := &LinePlot{Title: "empty"}
	if !strings.Contains(p.String(), "no data") {
		t.Fatal("empty plot should say so")
	}
	flat := &LinePlot{Series: []Series{{Name: "c", X: []float64{1, 2}, Y: []float64{3, 3}}}}
	if flat.String() == "" {
		t.Fatal("constant series must still render")
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	err := WritePGM(&buf, []float64{0, 0.5, 1, 0.25}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	px := out[len(out)-4:]
	if px[0] != 0 || px[2] != 255 {
		t.Fatalf("normalization wrong: %v", px)
	}
}

func TestWritePGMValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, []float64{1}, 2, 2); err == nil {
		t.Fatal("short data must error")
	}
	if err := WritePGM(&buf, nil, 0, 2); err == nil {
		t.Fatal("zero width must error")
	}
}
