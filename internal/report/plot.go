package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LinePlot renders one or more series sharing an x-axis as an ASCII chart
// so the CLI can show Figure 4/5-style curves directly in a terminal.
type LinePlot struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plotting area size in characters
	// (defaults 60x16).
	Width, Height int
	// Series holds the curves; all must share X values.
	Series []Series
}

// seriesGlyphs distinguish up to six curves.
const seriesGlyphs = "*o+x#@"

// String renders the chart.
func (p *LinePlot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	if len(p.Series) == 0 || len(p.Series[0].X) == 0 {
		return p.Title + "\n(no data)\n"
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(h-1))
			row := h - 1 - cy
			grid[row][cx] = glyph
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.3f ┤", ymax)
	b.Write(grid[0])
	b.WriteByte('\n')
	for r := 1; r < h-1; r++ {
		b.WriteString("         │")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.3f ┤", ymin)
	b.Write(grid[h-1])
	b.WriteByte('\n')
	b.WriteString("         └")
	b.WriteString(strings.Repeat("─", w))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "          %-*g%*g\n", w/2, xmin, w-w/2, xmax)
	legend := make([]string, 0, len(p.Series))
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	if p.YLabel != "" || p.XLabel != "" {
		fmt.Fprintf(&b, "          y: %s, x: %s\n", p.YLabel, p.XLabel)
	}
	b.WriteString("          " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// WritePGM writes values (row-major, width x height, normalized to the
// data range) as a binary 8-bit PGM image — a dependency-free way to
// export the Figure 3 heatmaps as real image files.
func WritePGM(w io.Writer, values []float64, width, height int) error {
	if width <= 0 || height <= 0 || len(values) < width*height {
		return fmt.Errorf("report: invalid PGM geometry %dx%d for %d values", width, height, len(values))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values[:width*height] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	buf := make([]byte, width*height)
	for i, v := range values[:width*height] {
		if span > 0 {
			buf[i] = byte(math.Round((v - lo) / span * 255))
		}
	}
	_, err := w.Write(buf)
	return err
}
