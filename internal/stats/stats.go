// Package stats implements the statistical machinery the paper's evaluation
// relies on: sample moments, Pearson and Spearman correlation (Table I),
// and Student's t-tests with exact p-values (Figure 5 significance
// asterisks). The t distribution CDF is computed through the regularized
// incomplete beta function, so no external dependency is required.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData indicates a statistic was requested on a sample that
// is too small to define it.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error if the lengths differ, fewer than 2 points are given,
// or either sample is constant (correlation undefined).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: pearson length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: pearson undefined for constant sample: %w", ErrInsufficientData)
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient, i.e. the
// Pearson correlation of the rank-transformed samples (average ranks for
// ties).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: spearman length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of xs, assigning tied values the average
// of the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// TTestResult holds the outcome of a two-sample t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // degrees of freedom (possibly fractional for Welch)
	P  float64 // two-sided p-value
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchTTest performs a two-sample t-test without assuming equal variances
// (Welch's test), returning the two-sided p-value. This matches the
// "Student's t-test" used for the asterisks in Figure 5 of the paper.
func WelchTTest(a, b []float64) (TTestResult, error) {
	na, nb := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	sea, seb := va/na, vb/nb
	se := sea + seb
	if se == 0 {
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	tstat := (ma - mb) / math.Sqrt(se)
	// Welch–Satterthwaite degrees of freedom.
	df := se * se / (sea*sea/(na-1) + seb*seb/(nb-1))
	p := 2 * StudentTSurvival(math.Abs(tstat), df)
	return TTestResult{T: tstat, DF: df, P: p}, nil
}

// PooledTTest performs the classic equal-variance two-sample Student
// t-test.
func PooledTTest(a, b []float64) (TTestResult, error) {
	na, nb := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	df := na + nb - 2
	sp2 := ((na-1)*Variance(a) + (nb-1)*Variance(b)) / df
	if sp2 == 0 {
		if Mean(a) == Mean(b) {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(Mean(a) - Mean(b))), DF: df, P: 0}, nil
	}
	tstat := (Mean(a) - Mean(b)) / math.Sqrt(sp2*(1/na+1/nb))
	p := 2 * StudentTSurvival(math.Abs(tstat), df)
	return TTestResult{T: tstat, DF: df, P: p}, nil
}

// PairedTTest performs a paired two-sample t-test on equal-length samples.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("stats: paired t-test length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	n := float64(len(d))
	sd := StdDev(d)
	df := n - 1
	if sd == 0 {
		if Mean(d) == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(Mean(d))), DF: df, P: 0}, nil
	}
	tstat := Mean(d) / (sd / math.Sqrt(n))
	p := 2 * StudentTSurvival(math.Abs(tstat), df)
	return TTestResult{T: tstat, DF: df, P: p}, nil
}

// StudentTSurvival returns P(T > t) for a Student t distribution with df
// degrees of freedom, for t >= 0.
func StudentTSurvival(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	if t < 0 {
		return 1 - StudentTSurvival(-t, df)
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
