package stats

import (
	"errors"
	"testing"

	"xbarsec/internal/rng"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	src := rng.New(1)
	// Sample from N(5, 1); the CI should cover 5 and be reasonably tight.
	xs := src.NormalVec(200, 5, 1)
	iv, err := BootstrapMeanCI(xs, 0.95, 500, src.Split("boot"))
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(Mean(xs)) {
		t.Fatalf("CI %+v must contain the point estimate %v", iv, Mean(xs))
	}
	if !iv.Contains(5) {
		t.Fatalf("CI %+v should cover the true mean 5 for this seed", iv)
	}
	width := iv.Hi - iv.Lo
	if width <= 0 || width > 1 {
		t.Fatalf("implausible CI width %v", width)
	}
}

func TestBootstrapCIMonotoneInLevel(t *testing.T) {
	src := rng.New(2)
	xs := src.NormalVec(100, 0, 1)
	narrow, err := BootstrapMeanCI(xs, 0.5, 400, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := BootstrapMeanCI(xs, 0.99, 400, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Hi-wide.Lo <= narrow.Hi-narrow.Lo {
		t.Fatalf("99%% CI (%v) should be wider than 50%% CI (%v)", wide, narrow)
	}
}

func TestBootstrapValidation(t *testing.T) {
	src := rng.New(4)
	xs := []float64{1, 2, 3, 4}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 100, src); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("want ErrInsufficientData")
	}
	if _, err := BootstrapMeanCI(xs, 1.5, 100, src); err == nil {
		t.Fatal("bad level must error")
	}
	if _, err := BootstrapMeanCI(xs, 0.95, 2, src); err == nil {
		t.Fatal("tiny resample count must error")
	}
	if _, err := BootstrapMeanCI(xs, 0.95, 100, nil); err == nil {
		t.Fatal("nil src must error")
	}
	if _, err := BootstrapCI(xs, nil, 0.95, 100, src); err == nil {
		t.Fatal("nil statistic must error")
	}
}

func TestBootstrapDiffCI(t *testing.T) {
	src := rng.New(5)
	a := src.NormalVec(80, 1, 0.5)
	b := src.NormalVec(80, 0, 0.5)
	iv, err := BootstrapDiffCI(a, b, 0.95, 500, src.Split("boot"))
	if err != nil {
		t.Fatal(err)
	}
	// A clear 1-unit separation: CI should exclude 0 and cover ~1.
	if iv.Contains(0) {
		t.Fatalf("CI %+v should exclude 0 for well-separated samples", iv)
	}
	if !iv.Contains(Mean(a) - Mean(b)) {
		t.Fatalf("CI %+v must contain the point estimate", iv)
	}
	if _, err := BootstrapDiffCI([]float64{1}, b, 0.95, 100, src); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("want ErrInsufficientData")
	}
	if _, err := BootstrapDiffCI(a, b, 0, 100, src); err == nil {
		t.Fatal("bad level must error")
	}
	if _, err := BootstrapDiffCI(a, b, 0.95, 1, src); err == nil {
		t.Fatal("tiny resamples must error")
	}
	if _, err := BootstrapDiffCI(a, b, 0.95, 100, nil); err == nil {
		t.Fatal("nil src must error")
	}
}
