package stats

import "math"

// Special functions needed for exact t-distribution p-values. The
// implementations follow the classic Numerical Recipes formulations
// (Lentz's continued fraction for the incomplete beta function).

// LogGamma returns ln Γ(x) for x > 0, delegating to math.Lgamma.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1]. Values of x outside [0,1] are clamped.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := LogGamma(a+b) - LogGamma(a) - LogGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	// Use the continued fraction in its rapidly-converging region.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
