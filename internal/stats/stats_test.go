package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (tol %v)", label, got, want, tol)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	tests := []struct {
		name               string
		xs                 []float64
		mean, variance, sd float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{4}, 4, 0, 0},
		{"symmetric", []float64{-1, 1}, 0, 2, math.Sqrt2},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, 32.0 / 7, math.Sqrt(32.0 / 7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			approx(t, Mean(tt.xs), tt.mean, 1e-12, "Mean")
			approx(t, Variance(tt.xs), tt.variance, 1e-12, "Variance")
			approx(t, StdDev(tt.xs), tt.sd, 1e-12, "StdDev")
		})
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, 1, 1e-12, "Pearson")

	yneg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, yneg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, -1, 1e-12, "Pearson negative")
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-derived: sxy=16, sxx=17.5, syy=70/3 → r = 16/sqrt(17.5*70/3).
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 7, 5}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, 16/math.Sqrt(17.5*70.0/3.0), 1e-12, "Pearson")
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("constant sample: want ErrInsufficientData, got %v", err)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform has Spearman rho exactly 1.
	x := []float64{1, 5, 2, 9, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 1, 1e-12, "Spearman")
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("bounds must be exact")
	}
	if RegIncBeta(2, 3, -1) != 0 || RegIncBeta(2, 3, 2) != 1 {
		t.Fatal("out-of-range x must clamp")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-12, "I_x(1,1)")
	}
	// I_x(2,2) = 3x² - 2x³ (Beta(2,2) CDF).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		approx(t, RegIncBeta(2, 2, x), 3*x*x-2*x*x*x, 1e-10, "I_x(2,2)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, RegIncBeta(3.5, 1.25, 0.3), 1-RegIncBeta(1.25, 3.5, 0.7), 1e-12, "symmetry")
}

func TestStudentTSurvivalKnownValues(t *testing.T) {
	// With df=1 the t distribution is Cauchy: P(T>t) = 1/2 - atan(t)/pi.
	for _, tv := range []float64{0, 0.5, 1, 2, 10} {
		want := 0.5 - math.Atan(tv)/math.Pi
		approx(t, StudentTSurvival(tv, 1), want, 1e-10, "Cauchy survival")
	}
	// Large df approaches the normal distribution.
	approx(t, StudentTSurvival(1.959964, 1e7), 0.025, 1e-4, "normal limit")
	// Symmetry for negative t.
	approx(t, StudentTSurvival(-1.5, 5), 1-StudentTSurvival(1.5, 5), 1e-12, "negative t")
	if StudentTSurvival(math.Inf(1), 3) != 0 {
		t.Fatal("survival at +inf must be 0")
	}
}

func TestWelchTTestKnown(t *testing.T) {
	// Hand-derived: means 3 and 5, both variances 2.5, n=5 each →
	// t = -2/sqrt(0.5+0.5) = -2, Welch df = 1/(2·0.25/4) = 8.
	// Two-sided p for |t|=2, df=8 is 0.0805 (standard t table).
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.T, -2, 1e-12, "Welch t")
	approx(t, res.DF, 8, 1e-12, "Welch df")
	approx(t, res.P, 0.0805, 5e-4, "Welch p")
}

func TestPooledTTestKnown(t *testing.T) {
	// Equal-size equal-variance case agrees with Welch.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6}
	pooled, err := PooledTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	welch, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pooled.T, welch.T, 1e-12, "t equality")
	approx(t, pooled.P, welch.P, 1e-9, "p equality")
}

func TestPairedTTest(t *testing.T) {
	a := []float64{10, 12, 9, 11, 13}
	b := []float64{9, 11, 8, 10, 12}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// All differences are exactly 1 with zero variance → p = 0.
	if !math.IsInf(res.T, 1) || res.P != 0 {
		t.Fatalf("constant positive differences should be infinitely significant: %+v", res)
	}

	b2 := []float64{10, 13, 8, 12, 12}
	res2, err := PairedTTest(a, b2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.P <= 0 || res2.P > 1 {
		t.Fatalf("p out of range: %v", res2.P)
	}
}

func TestTTestDegenerateCases(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
	res, err := WelchTTest([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical constant samples: p = %v, want 1", res.P)
	}
	res, err = WelchTTest([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("distinct constant samples: p = %v, want 0", res.P)
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("paired length mismatch must error")
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959964), 0.975, 1e-5, "Phi(1.96)")
	approx(t, NormalCDF(-1.959964), 0.025, 1e-5, "Phi(-1.96)")
}

// Property: Pearson is within [-1, 1] and invariant to affine transforms
// with positive scale.
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		rho, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draw, skip
		}
		if rho < -1-1e-12 || rho > 1+1e-12 {
			return false
		}
		// Affine invariance: y' = 3y + 7.
		y2 := make([]float64, n)
		for i := range y {
			y2[i] = 3*y[i] + 7
		}
		rho2, err := Pearson(x, y2)
		if err != nil {
			return false
		}
		return math.Abs(rho-rho2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: t-test p-values live in [0, 1] and the test is symmetric in
// its arguments up to the sign of t.
func TestWelchSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64() + 0.3
		}
		ab, err1 := WelchTTest(a, b)
		ba, err2 := WelchTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab.P < 0 || ab.P > 1 {
			return false
		}
		return math.Abs(ab.T+ba.T) < 1e-9 && math.Abs(ab.P-ba.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
