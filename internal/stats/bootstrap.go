package stats

import (
	"fmt"
	"sort"

	"xbarsec/internal/rng"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the closed interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapCI estimates a percentile-bootstrap confidence interval for an
// arbitrary statistic of xs. level is the coverage (e.g. 0.95); resamples
// controls the bootstrap replicate count. The experiment harness uses
// this to put intervals on the small-run Figure 5 means, where the t-test
// normality assumption is shakiest.
func BootstrapCI(xs []float64, statistic func([]float64) float64, level float64, resamples int, src *rng.Source) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: resample count %d too small", resamples)
	}
	if statistic == nil {
		return Interval{}, fmt.Errorf("stats: nil statistic")
	}
	if src == nil {
		return Interval{}, fmt.Errorf("stats: nil random source")
	}
	reps := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := range reps {
		for i := range buf {
			buf[i] = xs[src.Intn(len(xs))]
		}
		reps[r] = statistic(buf)
	}
	sort.Float64s(reps)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return Interval{Lo: reps[lo], Hi: reps[hi]}, nil
}

// BootstrapMeanCI is BootstrapCI specialized to the sample mean.
func BootstrapMeanCI(xs []float64, level float64, resamples int, src *rng.Source) (Interval, error) {
	return BootstrapCI(xs, Mean, level, resamples, src)
}

// BootstrapDiffCI bootstraps the difference of means mean(a) - mean(b)
// with independent resampling of each sample — the nonparametric
// companion to WelchTTest for the Figure 5 improvement panels.
func BootstrapDiffCI(a, b []float64, level float64, resamples int, src *rng.Source) (Interval, error) {
	if len(a) < 2 || len(b) < 2 {
		return Interval{}, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: resample count %d too small", resamples)
	}
	if src == nil {
		return Interval{}, fmt.Errorf("stats: nil random source")
	}
	reps := make([]float64, resamples)
	bufA := make([]float64, len(a))
	bufB := make([]float64, len(b))
	for r := range reps {
		for i := range bufA {
			bufA[i] = a[src.Intn(len(a))]
		}
		for i := range bufB {
			bufB[i] = b[src.Intn(len(b))]
		}
		reps[r] = Mean(bufA) - Mean(bufB)
	}
	sort.Float64s(reps)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return Interval{Lo: reps[lo], Hi: reps[hi]}, nil
}
