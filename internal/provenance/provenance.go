// Package provenance stores and checks the Merkle provenance chains
// that accompany spilled artifacts.
//
// The chain itself — spec hash → code hash → result hash → root — is
// defined in the wire package (api/provenance.go) so third-party
// clients can verify with the standard library alone; this package
// adds what only the server needs: a durable record store alongside
// the spill directory, and the Verify entry point a node uses before
// accepting a peer's artifact in place of recomputing.
//
// Records are one JSON file per artifact, named <content-address>.json
// under their own directory, written tmp+rename atomic through the
// same wal.FS abstraction as the journal and spill store — so the
// fault-injection harness crashes them the same way, and a record can
// never exist half-written at its live name.
package provenance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"xbarsec/api"
	"xbarsec/internal/memo"
	"xbarsec/internal/wal"
)

// Record is one artifact's stored provenance chain — exactly the wire
// proof, persisted next to the artifact it describes.
type Record = api.ArtifactProof

// New derives the full chain for an artifact about to be spilled.
func New(specKey, code string, payload []byte) Record {
	return api.BuildProof(specKey, code, payload)
}

// Verify checks a record against the spec key and code identity the
// verifier would itself have used, and the payload it was handed. It
// accepts iff the chain is internally consistent (every link
// re-derives, the payload hashes to the result link) AND the leaf
// preimages are the expected ones — a proof that is valid for some
// other spec or some other build of the code is rejected, which is
// what makes peer fetch safe: a node only serves bytes it can prove
// are what it would have computed.
func Verify(rec Record, specKey, code string, payload []byte) error {
	if rec.SpecKey != specKey {
		return fmt.Errorf("provenance: record is for spec key %q, want %q", rec.SpecKey, specKey)
	}
	if rec.Code != code {
		return fmt.Errorf("provenance: record computed by %q, want %q", rec.Code, code)
	}
	return rec.Verify(payload)
}

const (
	recSuffix = ".json"
	tmpSuffix = ".tmp"
)

// Store persists records under one directory, one JSON file per
// artifact named by content address. Safe for concurrent use.
type Store struct {
	fsys wal.FS
	dir  string

	putMu   sync.Mutex
	records atomic.Int64
}

// OpenStore opens (creating if needed) a record store rooted at dir,
// seeding the record counter with what earlier runs left behind and
// sweeping temporaries from crashed writes.
func OpenStore(fsys wal.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("provenance: creating record dir %s: %w", dir, err)
	}
	st := &Store{fsys: fsys, dir: dir}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("provenance: scanning record dir %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, tmpSuffix) {
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, recSuffix) {
			st.records.Add(1)
		}
	}
	return st, nil
}

// Put persists one record, atomically, keyed by its content address.
// An address already on disk is left alone: records are pure functions
// of (spec key, code, payload), so the bytes would be identical.
func (st *Store) Put(rec Record) error {
	if !memo.ValidAddr(rec.ID) {
		return fmt.Errorf("provenance: record id %q is not a content address", rec.ID)
	}
	st.putMu.Lock()
	defer st.putMu.Unlock()
	path := filepath.Join(st.dir, rec.ID+recSuffix)
	if _, err := st.fsys.Stat(path); err == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("provenance: encoding record: %w", err)
	}
	tmp := path + tmpSuffix
	f, err := st.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("provenance: record create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("provenance: record write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("provenance: record sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("provenance: record close: %w", err)
	}
	if err := st.fsys.Rename(tmp, path); err != nil {
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("provenance: record rename: %w", err)
	}
	st.records.Add(1)
	return nil
}

// Get loads the record at a content address. A missing or invalid
// address is (Record{}, false, nil); a record that fails to decode or
// whose stored id disagrees with its filename is removed and reported
// missing — the store never returns a record it cannot trust, the
// chain gets re-derived at the next spill instead.
func (st *Store) Get(addr string) (Record, bool, error) {
	if !memo.ValidAddr(addr) {
		return Record{}, false, nil
	}
	path := filepath.Join(st.dir, addr+recSuffix)
	f, err := st.fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("provenance: record open: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return Record{}, false, fmt.Errorf("provenance: record read: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil || rec.ID != addr {
		st.records.Add(-1)
		_ = st.fsys.Remove(path)
		return Record{}, false, nil
	}
	return rec, true, nil
}

// Count returns the number of live records.
func (st *Store) Count() int64 { return st.records.Load() }
