package provenance

import (
	"strings"
	"testing"

	"xbarsec/api"
	"xbarsec/internal/faultinject"
	"xbarsec/internal/wal"
)

const (
	testKey  = "experiment|fig4|7|0.01|1|tb:fast"
	testCode = "registry:deadbeef|tensor:fast"
)

var testPayload = []byte(`{"name":"fig4","seed":7,"render":"ok"}`)

// The chain accepts exactly what was built and nothing else.
func TestVerifyAcceptsOwnChain(t *testing.T) {
	rec := New(testKey, testCode, testPayload)
	if err := Verify(rec, testKey, testCode, testPayload); err != nil {
		t.Fatalf("fresh chain rejected: %v", err)
	}
	if rec.ID != api.ArtifactID(testKey) || len(rec.Root) != 64 {
		t.Fatalf("chain shape = %+v", rec)
	}
	// The four hashes are pairwise distinct — domain separation works.
	seen := map[string]bool{rec.SpecHash: true}
	for _, h := range []string{rec.CodeHash, rec.ResultHash, rec.Root} {
		if seen[h] {
			t.Fatalf("hash collision across chain links: %+v", rec)
		}
		seen[h] = true
	}
}

// A tampered payload fails at the result link.
func TestVerifyRejectsTamperedPayload(t *testing.T) {
	rec := New(testKey, testCode, testPayload)
	bad := append([]byte(nil), testPayload...)
	bad[len(bad)-2] ^= 0x01
	err := Verify(rec, testKey, testCode, bad)
	if err == nil {
		t.Fatal("tampered payload accepted")
	}
	if !strings.Contains(err.Error(), "result hash") {
		t.Fatalf("tampered payload failed at the wrong link: %v", err)
	}
}

// A proof transplanted onto a different spec fails — both when the
// verifier expects a different key and when the chain's own spec link
// was forged.
func TestVerifyRejectsWrongSpecHash(t *testing.T) {
	rec := New(testKey, testCode, testPayload)
	if err := Verify(rec, "experiment|fig5|7|0.01|1", testCode, testPayload); err == nil {
		t.Fatal("proof for another spec key accepted")
	}
	forged := rec
	forged.SpecHash = strings.Repeat("ab", 32)
	err := Verify(forged, testKey, testCode, testPayload)
	if err == nil {
		t.Fatal("forged spec hash accepted")
	}
	if !strings.Contains(err.Error(), "spec hash") {
		t.Fatalf("forged spec hash failed at the wrong link: %v", err)
	}
	// Forging the preimage instead of the hash trips the id/address check.
	forged = rec
	forged.SpecKey = "experiment|fig5|7|0.01|1"
	if err := Verify(forged, "experiment|fig5|7|0.01|1", testCode, testPayload); err == nil {
		t.Fatal("re-keyed proof accepted under its forged key")
	}
}

// A result computed by different code — other registry digest, other
// tensor backend — fails at the code link.
func TestVerifyRejectsWrongCodeHash(t *testing.T) {
	rec := New(testKey, testCode, testPayload)
	if err := Verify(rec, testKey, "registry:deadbeef|tensor:reference", testPayload); err == nil {
		t.Fatal("proof from another code identity accepted")
	}
	forged := rec
	forged.CodeHash = strings.Repeat("cd", 32)
	err := Verify(forged, testKey, testCode, testPayload)
	if err == nil {
		t.Fatal("forged code hash accepted")
	}
	if !strings.Contains(err.Error(), "code hash") {
		t.Fatalf("forged code hash failed at the wrong link: %v", err)
	}
}

// Forging the root itself is caught by the final binding check.
func TestVerifyRejectsForgedRoot(t *testing.T) {
	rec := New(testKey, testCode, testPayload)
	rec.Root = strings.Repeat("00", 32)
	err := Verify(rec, testKey, testCode, testPayload)
	if err == nil {
		t.Fatal("forged root accepted")
	}
	if !strings.Contains(err.Error(), "root") {
		t.Fatalf("forged root failed at the wrong link: %v", err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(wal.OSFS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := New(testKey, testCode, testPayload)
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Duplicate puts are no-ops.
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 1 {
		t.Fatalf("count = %d, want 1", st.Count())
	}
	got, ok, err := st.Get(rec.ID)
	if err != nil || !ok || got != rec {
		t.Fatalf("Get = %+v, %v, %v", got, ok, err)
	}
	if _, ok, err := st.Get(api.ArtifactID("other")); ok || err != nil {
		t.Fatalf("absent record = %v, %v", ok, err)
	}
	// Invalid addresses are a miss, never a path lookup.
	for _, addr := range []string{"", "..", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, ok, err := st.Get(addr); ok || err != nil {
			t.Fatalf("Get(%q) = %v, %v", addr, ok, err)
		}
	}
	if err := st.Put(Record{ID: "../evil"}); err == nil {
		t.Fatal("Put accepted a non-address id")
	}
}

// Restart inventory: a second open counts the records the first wrote
// and sweeps crashed temporaries.
func TestStoreRestartInventory(t *testing.T) {
	dir := t.TempDir()
	fsys := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{Seed: 1})
	st1, err := OpenStore(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Put(New(testKey, testCode, testPayload)); err != nil {
		t.Fatal(err)
	}
	if err := st1.Put(New("other-key", testCode, testPayload)); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != 2 {
		t.Fatalf("restart inventory = %d, want 2", st2.Count())
	}
}
