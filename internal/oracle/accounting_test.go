package oracle

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// flakyHW injects power-read failures on top of a real crossbar network:
// the error-injection harness for the query-accounting contract.
type flakyHW struct {
	*crossbar.Network
	failPower  bool
	powerCalls int
}

var errMeter = errors.New("power meter fault")

func (f *flakyHW) Power(u []float64) (float64, error) {
	f.powerCalls++
	if f.failPower {
		return 0, errMeter
	}
	return f.Network.Power(u)
}

// fusedHW exposes the ForwardPowerer fast path by delegating to the
// sequential reads, optionally failing.
type fusedHW struct {
	*crossbar.Network
	fail  bool
	calls int
}

func (f *fusedHW) ForwardPower(u []float64) ([]float64, float64, error) {
	f.calls++
	if f.fail {
		return nil, 0, errMeter
	}
	y, err := f.Network.Forward(u)
	if err != nil {
		return nil, 0, err
	}
	p, err := f.Network.Power(u)
	if err != nil {
		return nil, 0, err
	}
	return y, p, nil
}

func TestQueryPowerErrorRollsBackBudget(t *testing.T) {
	_, net, ds := buildOracle(t, 21, RawOutput, true)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyHW{Network: hw, failPower: true}
	o, err := New(flaky, Config{Mode: RawOutput, MeasurePower: true, Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ds.Sample(0)
	if _, err := o.Query(u); !errors.Is(err, errMeter) {
		t.Fatalf("want injected meter error, got %v", err)
	}
	// The failed query delivered no response, so nothing may be charged.
	if q := o.Queries(); q != 0 {
		t.Fatalf("failed power read charged the budget: queries = %d", q)
	}
	if r := o.Remaining(); r != 5 {
		t.Fatalf("remaining = %d, want 5", r)
	}
	// After the fault clears, the full budget is still available.
	flaky.failPower = false
	for i := 0; i < 5; i++ {
		if _, err := o.Query(u); err != nil {
			t.Fatalf("query %d after fault cleared: %v", i, err)
		}
	}
	if q := o.Queries(); q != 5 {
		t.Fatalf("queries = %d, want 5", q)
	}
	if _, err := o.Query(u); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestQueryForwardErrorRollsBackBudget(t *testing.T) {
	_, net, _ := buildOracle(t, 22, LabelOnly, false)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(hw, Config{Mode: LabelOnly, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Query([]float64{1, 2}); err == nil {
		t.Fatal("short input must error")
	}
	if q := o.Queries(); q != 0 {
		t.Fatalf("failed forward charged the budget: queries = %d", q)
	}
}

func TestQueryUsesFusedPathAndRollsBack(t *testing.T) {
	_, net, ds := buildOracle(t, 23, RawOutput, true)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fused := &fusedHW{Network: hw}
	o, err := New(fused, Config{Mode: RawOutput, MeasurePower: true, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(hw, Config{Mode: RawOutput, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ds.Sample(2)
	got, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if fused.calls != 1 {
		t.Fatalf("fused path used %d times, want 1", fused.calls)
	}
	want, err := ref.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != want.Label || got.Power != want.Power {
		t.Fatalf("fused response %+v != sequential %+v", got, want)
	}
	for i := range want.Raw {
		if got.Raw[i] != want.Raw[i] {
			t.Fatalf("raw[%d]: %v != %v", i, got.Raw[i], want.Raw[i])
		}
	}
	fused.fail = true
	if _, err := o.Query(u); !errors.Is(err, errMeter) {
		t.Fatalf("want injected error, got %v", err)
	}
	if q := o.Queries(); q != 1 {
		t.Fatalf("failed fused read charged the budget: queries = %d", q)
	}
}

func TestRawResponseIsCallerOwned(t *testing.T) {
	o, _, ds := buildOracle(t, 24, RawOutput, false)
	u, _ := ds.Sample(0)
	first, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.CloneVec(first.Raw)
	// An attacker scribbling over a response must not disturb the oracle
	// or any later response.
	for i := range first.Raw {
		first.Raw[i] = -1e9
	}
	second, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if second.Raw[i] != want[i] {
			t.Fatalf("raw[%d] changed after caller mutation: %v != %v", i, second.Raw[i], want[i])
		}
	}
}

func TestBudgetCannotOverAdmitUnderContention(t *testing.T) {
	_, net, ds := buildOracle(t, 25, LabelOnly, false)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const (
		budget     = 100
		goroutines = 8
		perG       = 50 // 8*50 = 400 attempts against budget 100
	)
	o, err := New(hw, Config{Mode: LabelOnly, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ds.Sample(0)
	var wg sync.WaitGroup
	granted := make([]int, goroutines)
	refused := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := o.Query(u)
				switch {
				case err == nil:
					granted[g]++
				case errors.Is(err, ErrBudgetExhausted):
					refused[g]++
				default:
					panic(fmt.Sprintf("unexpected error: %v", err))
				}
			}
		}(g)
	}
	wg.Wait()
	var totalGranted, totalRefused int
	for g := range granted {
		totalGranted += granted[g]
		totalRefused += refused[g]
	}
	if totalGranted != budget {
		t.Fatalf("granted %d queries, want exactly %d", totalGranted, budget)
	}
	if totalRefused != goroutines*perG-budget {
		t.Fatalf("refused %d queries, want %d", totalRefused, goroutines*perG-budget)
	}
	if q := o.Queries(); q != budget {
		t.Fatalf("counter = %d, want %d", q, budget)
	}
	if r := o.Remaining(); r != 0 {
		t.Fatalf("remaining = %d, want 0", r)
	}
}

func TestCollectBudgetExhaustedMidCollection(t *testing.T) {
	_, net, ds := buildOracle(t, 26, LabelOnly, false)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(hw, Config{Mode: LabelOnly, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Collect(o, ds, 20, rng.New(26))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want wrapped ErrBudgetExhausted, got %v", err)
	}
	// All-or-nothing: partial rows are discarded...
	if qs != nil {
		t.Fatal("failed Collect must not return partial data")
	}
	// ...but the queries that were answered stay charged.
	if q := o.Queries(); q != 10 {
		t.Fatalf("queries = %d, want 10 (delivered responses stay charged)", q)
	}
	if r := o.Remaining(); r != 0 {
		t.Fatalf("remaining = %d, want 0", r)
	}
	// A collection that exactly fits the remaining budget succeeds.
	o.ResetQueries()
	qs, err = Collect(o, ds, 10, rng.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 10 || o.Queries() != 10 || o.Remaining() != 0 {
		t.Fatalf("boundary collect: len=%d queries=%d remaining=%d", qs.Len(), o.Queries(), o.Remaining())
	}
}
