package oracle

import (
	"errors"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

func buildOracle(t *testing.T, seed int64, mode Mode, power bool) (*Oracle, *nn.Network, *dataset.Dataset) {
	t.Helper()
	src := rng.New(seed)
	ds, err := dataset.GenerateMNISTLike(src.Split("data"), 80, dataset.MNISTLikeConfig{
		Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := nn.TrainNew(ds, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9,
	}, src.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(hw, Config{Mode: mode, MeasurePower: power})
	if err != nil {
		t.Fatal(err)
	}
	return o, net, ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{Mode: LabelOnly}); err == nil {
		t.Fatal("nil hw must error")
	}
	_, net, _ := buildOracle(t, 1, LabelOnly, false)
	cfg := crossbar.DefaultDeviceConfig()
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(hw, Config{Mode: Mode(0)}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := New(hw, Config{Mode: LabelOnly, PowerNoiseStd: -1}); err == nil {
		t.Fatal("negative noise must error")
	}
	if _, err := New(hw, Config{Mode: LabelOnly, PowerNoiseStd: 0.1}); err == nil {
		t.Fatal("noise without src must error")
	}
}

func TestModeString(t *testing.T) {
	if LabelOnly.String() != "label-only" || RawOutput.String() != "raw-output" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should print")
	}
}

func TestQueryLabelOnlyHidesRaw(t *testing.T) {
	o, net, ds := buildOracle(t, 2, LabelOnly, false)
	u, _ := ds.Sample(0)
	resp, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Raw != nil {
		t.Fatal("label-only mode must not reveal raw outputs")
	}
	if resp.Label != net.Predict(u) {
		t.Fatal("oracle label must match the software twin on an ideal crossbar")
	}
	if resp.Power != 0 {
		t.Fatal("power must be zero when not measured")
	}
	if o.Queries() != 1 {
		t.Fatalf("queries = %d", o.Queries())
	}
}

func TestQueryRawModeRevealsOutputsAndPower(t *testing.T) {
	o, net, ds := buildOracle(t, 3, RawOutput, true)
	u, _ := ds.Sample(1)
	resp, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Raw) != 10 {
		t.Fatalf("raw length %d", len(resp.Raw))
	}
	want := net.Forward(u)
	for i := range want {
		if diff := resp.Raw[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("raw output %d: %v vs %v", i, resp.Raw[i], want[i])
		}
	}
	if resp.Power <= 0 {
		t.Fatalf("power = %v, want positive", resp.Power)
	}
}

func TestCollectShapesAndCounting(t *testing.T) {
	o, _, ds := buildOracle(t, 4, RawOutput, true)
	qs, err := Collect(o, ds, 25, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 25 || qs.U.Cols() != o.Inputs() || qs.Y.Cols() != o.Outputs() {
		t.Fatalf("shapes U=%dx%d Y=%dx%d", qs.U.Rows(), qs.U.Cols(), qs.Y.Rows(), qs.Y.Cols())
	}
	if len(qs.P) != 25 || len(qs.Labels) != 25 {
		t.Fatal("power/labels lengths")
	}
	if o.Queries() != 25 {
		t.Fatalf("queries = %d", o.Queries())
	}
	o.ResetQueries()
	if o.Queries() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCollectLabelOnlyOneHot(t *testing.T) {
	o, _, ds := buildOracle(t, 6, LabelOnly, false)
	qs, err := Collect(o, ds, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if qs.P != nil {
		t.Fatal("no power requested but P is set")
	}
	for i := 0; i < qs.Len(); i++ {
		row := qs.Y.Row(i)
		var ones, sum int
		for c, v := range row {
			if v == 1 {
				ones++
				if c != qs.Labels[i] {
					t.Fatal("one-hot position must match label")
				}
			}
			if v != 0 && v != 1 {
				t.Fatal("one-hot values must be 0/1")
			}
			sum += int(v)
		}
		if ones != 1 || sum != 1 {
			t.Fatal("exactly one hot entry per row")
		}
	}
}

func TestCollectClampsBudget(t *testing.T) {
	o, _, ds := buildOracle(t, 7, LabelOnly, false)
	qs, err := Collect(o, ds, 10_000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != ds.Len() {
		t.Fatalf("len = %d, want %d", qs.Len(), ds.Len())
	}
	if _, err := Collect(o, ds, 0, rng.New(7)); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestAccuracyMatchesSoftwareTwin(t *testing.T) {
	o, net, ds := buildOracle(t, 8, LabelOnly, false)
	hwAcc, err := o.AccuracyOn(ds)
	if err != nil {
		t.Fatal(err)
	}
	swAcc := net.Accuracy(ds)
	if hwAcc != swAcc {
		t.Fatalf("ideal crossbar accuracy %v != software %v", hwAcc, swAcc)
	}
	// Accuracy evaluation must not consume attacker queries.
	if o.Queries() != 0 {
		t.Fatal("accuracy evaluation must not count queries")
	}
}

func TestAccuracyOnPerturbed(t *testing.T) {
	o, _, ds := buildOracle(t, 9, LabelOnly, false)
	clean, err := o.AccuracyOn(ds)
	if err != nil {
		t.Fatal(err)
	}
	same, err := o.AccuracyOnPerturbed(ds, func(_ int, u []float64) []float64 { return u })
	if err != nil {
		t.Fatal(err)
	}
	if same != clean {
		t.Fatal("identity perturbation must preserve accuracy")
	}
	zeroed, err := o.AccuracyOnPerturbed(ds, func(_ int, u []float64) []float64 {
		for j := range u {
			u[j] = 0
		}
		return u
	})
	if err != nil {
		t.Fatal(err)
	}
	if zeroed > clean {
		t.Fatalf("zeroing all pixels should not improve accuracy: %v > %v", zeroed, clean)
	}
	empty := &dataset.Dataset{X: ds.X.Clone(), Labels: nil, NumClasses: 10, Width: ds.Width, Height: ds.Height, Channels: 1}
	empty.X = empty.X.Clone()
	_ = empty
}

func TestPowerNoiseApplied(t *testing.T) {
	_, net, ds := buildOracle(t, 10, RawOutput, true)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(hw, Config{Mode: RawOutput, MeasurePower: true, PowerNoiseStd: 0.1, Src: rng.New(11)})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ds.Sample(0)
	a, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Query(u)
	if err != nil {
		t.Fatal(err)
	}
	if a.Power == b.Power {
		t.Fatal("noisy power readings should differ across queries")
	}
}

func TestQueryBudgetEnforced(t *testing.T) {
	_, net, ds := buildOracle(t, 12, LabelOnly, false)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(hw, Config{Mode: LabelOnly, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if o.Budget() != 3 || o.Remaining() != 3 {
		t.Fatal("budget accounting")
	}
	u, _ := ds.Sample(0)
	for i := 0; i < 3; i++ {
		if _, err := o.Query(u); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if o.Remaining() != 0 {
		t.Fatalf("remaining = %d", o.Remaining())
	}
	if _, err := o.Query(u); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// Reset restores the budget.
	o.ResetQueries()
	if _, err := o.Query(u); err != nil {
		t.Fatalf("after reset: %v", err)
	}
	// Unlimited oracle reports -1 remaining.
	u2, err := New(hw, Config{Mode: LabelOnly})
	if err != nil {
		t.Fatal(err)
	}
	if u2.Remaining() != -1 {
		t.Fatal("unlimited oracle must report -1 remaining")
	}
	if _, err := New(hw, Config{Mode: LabelOnly, Budget: -1}); err == nil {
		t.Fatal("negative budget must error")
	}
}
