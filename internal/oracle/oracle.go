// Package oracle implements the black-box query interface of the paper's
// Section IV: the attacked model (the "oracle") runs on a crossbar, and an
// attacker submits inputs and observes some combination of the predicted
// label, the raw output vector, and the power consumption — never the
// weights. Query accounting lives here so experiments can report attack
// cost in oracle queries exactly as the paper's Figure 5 does.
package oracle

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Hardware is the device interface an Oracle queries: a crossbar-hosted
// network (the concrete *crossbar.Network) or any proxy in front of one,
// such as the service layer's query coalescer. The Crossbar accessor
// exposes the underlying array so power readings can be normalized to the
// paper's weight-unit convention.
type Hardware interface {
	// Forward returns the network output for input u.
	Forward(u []float64) ([]float64, error)
	// Power returns the read power consumed while processing u.
	Power(u []float64) (float64, error)
	// Predict returns the argmax class label for input u.
	Predict(u []float64) (int, error)
	// Inputs returns the input dimensionality.
	Inputs() int
	// Outputs returns the number of classes.
	Outputs() int
	// Crossbar returns the underlying programmed array.
	Crossbar() *crossbar.Crossbar
}

// ForwardPowerer is optionally implemented by Hardware that can serve a
// forward pass and its power measurement as one operation — one array
// read instead of two. The service layer's coalescer implements it so a
// power-measuring query costs a single batched round trip. Results must
// be bit-identical to calling Forward then Power in that order on a
// noise-free array.
type ForwardPowerer interface {
	ForwardPower(u []float64) ([]float64, float64, error)
}

// Compile-time check that the crossbar network satisfies Hardware.
var _ Hardware = (*crossbar.Network)(nil)

// Mode selects how much of the oracle's output a query reveals.
type Mode int

const (
	// LabelOnly reveals just the argmax class (paper Fig. 5 rows 1 and 3).
	LabelOnly Mode = iota + 1
	// RawOutput reveals the full output vector (rows 2 and 4).
	RawOutput
)

// ParseMode is the inverse of Mode.String, for CLI flags and JSON wire
// formats.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "label-only":
		return LabelOnly, nil
	case "raw-output":
		return RawOutput, nil
	default:
		return 0, fmt.Errorf("oracle: unknown mode %q (want label-only or raw-output)", s)
	}
}

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case LabelOnly:
		return "label-only"
	case RawOutput:
		return "raw-output"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MarshalJSON emits the mode name, the form experiment results carry on
// the wire.
func (m Mode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON accepts the mode name.
func (m *Mode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Response is what one query reveals to the attacker.
type Response struct {
	// Label is the oracle's predicted class.
	Label int
	// Raw is the full output vector; nil in LabelOnly mode. It is an
	// independent copy owned by the caller — mutating it never affects
	// the oracle or other sessions.
	Raw []float64
	// Power is the measured crossbar power for this query in the paper's
	// normalized convention (Section II-B normalizes all voltages,
	// currents and conductances): physical watts divided by Vdd²·scale,
	// i.e. Σ_j u_j Σ_i |w_ij| for an ideal array. 0 when the oracle was
	// constructed without power measurement.
	Power float64
}

// ErrBudgetExhausted indicates the oracle's query budget has been spent;
// further queries are refused until ResetQueries.
var ErrBudgetExhausted = errors.New("oracle: query budget exhausted")

// Oracle wraps a crossbar-hosted network behind a query-counting
// interface. It is safe for concurrent use: the query counter is atomic
// and the budget admission check can never over-admit, so N goroutines
// hammering one oracle with budget B get exactly B responses. When
// PowerNoiseStd is set, concurrent queries draw instrument noise from one
// shared stream in arrival order — race-free, but the per-query noise
// values then depend on goroutine scheduling; fixed-seed replay of noisy
// power readings requires serial use.
type Oracle struct {
	hw           Hardware
	mode         Mode
	measurePower bool
	powerNoise   float64
	noiseSrc     *rng.Source
	noiseMu      sync.Mutex // guards noiseSrc under concurrent queries
	queries      atomic.Int64
	budget       int
}

// Config controls what an Oracle exposes.
type Config struct {
	// Mode selects label-only or raw-output responses.
	Mode Mode
	// MeasurePower attaches a power meter to every query.
	MeasurePower bool
	// PowerNoiseStd is the relative instrument noise on power readings;
	// requires Src when positive.
	PowerNoiseStd float64
	// Src supplies measurement noise randomness.
	Src *rng.Source
	// Budget caps the number of attacker queries; 0 means unlimited.
	// Exceeding it makes Query return ErrBudgetExhausted — useful for
	// enforcing the query-efficiency comparisons of Figure 5.
	Budget int
}

// New wraps hw as a query-counting oracle.
func New(hw Hardware, cfg Config) (*Oracle, error) {
	if hw == nil {
		return nil, errors.New("oracle: nil hardware network")
	}
	switch cfg.Mode {
	case LabelOnly, RawOutput:
	default:
		return nil, fmt.Errorf("oracle: unknown mode %v", cfg.Mode)
	}
	if cfg.PowerNoiseStd < 0 {
		return nil, fmt.Errorf("oracle: negative power noise %v", cfg.PowerNoiseStd)
	}
	if cfg.PowerNoiseStd > 0 && cfg.Src == nil {
		return nil, errors.New("oracle: power noise requires a random source")
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("oracle: negative query budget %d", cfg.Budget)
	}
	return &Oracle{
		hw: hw, mode: cfg.Mode, measurePower: cfg.MeasurePower,
		powerNoise: cfg.PowerNoiseStd, noiseSrc: cfg.Src, budget: cfg.Budget,
	}, nil
}

// Mode returns the configured disclosure mode.
func (o *Oracle) Mode() Mode { return o.mode }

// Inputs returns the input dimensionality.
func (o *Oracle) Inputs() int { return o.hw.Inputs() }

// Outputs returns the number of classes.
func (o *Oracle) Outputs() int { return o.hw.Outputs() }

// Queries returns the number of attacker queries charged so far. Under
// concurrent use this includes queries currently in flight (they hold a
// budget reservation until they either deliver a response or roll back).
func (o *Oracle) Queries() int { return int(o.queries.Load()) }

// ResetQueries zeroes the attacker query counter.
func (o *Oracle) ResetQueries() { o.queries.Store(0) }

// Budget returns the configured query cap (0 = unlimited).
func (o *Oracle) Budget() int { return o.budget }

// Remaining returns how many queries are left, or -1 when unlimited.
func (o *Oracle) Remaining() int {
	if o.budget == 0 {
		return -1
	}
	r := o.budget - int(o.queries.Load())
	if r < 0 {
		r = 0
	}
	return r
}

// reserve atomically claims one budget slot. The compare-and-swap loop
// makes admission exact under contention: the counter can never exceed
// the budget, so N racing goroutines against budget B get exactly B
// reservations and N-B ErrBudgetExhausted refusals.
func (o *Oracle) reserve() error {
	for {
		q := o.queries.Load()
		if o.budget > 0 && q >= int64(o.budget) {
			return ErrBudgetExhausted
		}
		if o.queries.CompareAndSwap(q, q+1) {
			return nil
		}
	}
}

// release returns a reserved budget slot after a failed query.
func (o *Oracle) release() { o.queries.Add(-1) }

// Query runs one attacker query against the oracle.
//
// Accounting contract: a query is charged if and only if it delivers a
// Response. The budget slot is reserved atomically up front and rolled
// back on any hardware error — including a power-read failure after a
// successful forward pass — so Queries()/Remaining() always agree with
// the number of responses the attacker actually received, serially and
// under concurrency alike.
//
// The returned Response is owned by the caller: Raw is an independent
// copy, so mutating it cannot affect the oracle, the underlying
// hardware, or any other session sharing the same array.
func (o *Oracle) Query(u []float64) (Response, error) {
	if err := o.reserve(); err != nil {
		return Response{}, err
	}
	resp, err := o.execute(u)
	if err != nil {
		o.release()
		return Response{}, err
	}
	return resp, nil
}

// execute performs the hardware reads for one admitted query.
func (o *Oracle) execute(u []float64) (Response, error) {
	var (
		y   []float64
		p   float64
		err error
	)
	if o.measurePower {
		if fp, ok := o.hw.(ForwardPowerer); ok {
			// One fused read serves both observables (coalesced path).
			y, p, err = fp.ForwardPower(u)
		} else {
			y, err = o.hw.Forward(u)
			if err == nil {
				p, err = o.hw.Power(u)
			}
		}
	} else {
		y, err = o.hw.Forward(u)
	}
	if err != nil {
		return Response{}, err
	}
	resp := Response{Label: tensor.ArgMax(y)}
	if o.mode == RawOutput {
		resp.Raw = tensor.CloneVec(y)
	}
	if o.measurePower {
		if o.powerNoise > 0 {
			o.noiseMu.Lock()
			p *= 1 + o.noiseSrc.Normal(0, o.powerNoise)
			o.noiseMu.Unlock()
		}
		// Normalize to weight units (paper §II-B convention).
		xb := o.hw.Crossbar()
		vdd := xb.Config().Vdd
		resp.Power = p / (vdd * vdd * xb.Scale())
	}
	return resp, nil
}

// QuerySet holds the attacker's accumulated query data, ready for
// surrogate training: one row of U per query, matching rows of Y (targets)
// and entries of P (power).
type QuerySet struct {
	// U is the Q x N matrix of query inputs.
	U *tensor.Matrix
	// Y is the Q x M matrix of targets: raw outputs in RawOutput mode,
	// one-hot oracle labels in LabelOnly mode.
	Y *tensor.Matrix
	// P holds the power measurement per query (nil when power was not
	// measured).
	P []float64
	// Labels holds the oracle's predicted label per query.
	Labels []int
}

// Len returns the number of collected queries.
func (q *QuerySet) Len() int { return q.U.Rows() }

// Collect submits the first q rows of ds (after a shuffle drawn from src)
// to the oracle and assembles the attacker's training set. This mirrors
// the paper's protocol: queries are drawn from the training distribution,
// and responses plus power readings become the surrogate's dataset.
//
// If the oracle's budget runs out mid-collection, Collect fails with an
// error wrapping ErrBudgetExhausted and discards the partial rows — the
// attacker gets all q responses or none. The queries answered before the
// refusal remain charged (the oracle delivered them); only the refused
// query is free.
func Collect(o *Oracle, ds *dataset.Dataset, q int, src *rng.Source) (*QuerySet, error) {
	if q <= 0 {
		return nil, fmt.Errorf("oracle: query budget %d must be positive", q)
	}
	if q > ds.Len() {
		q = ds.Len()
	}
	sub := ds.SampleN(src, q)
	u := tensor.New(q, o.Inputs())
	y := tensor.New(q, o.Outputs())
	labels := make([]int, q)
	var p []float64
	if o.measurePower {
		p = make([]float64, q)
	}
	for i := 0; i < q; i++ {
		row := sub.X.Row(i)
		resp, err := o.Query(row)
		if err != nil {
			return nil, fmt.Errorf("oracle: query %d: %w", i, err)
		}
		u.SetRow(i, row)
		labels[i] = resp.Label
		if o.mode == RawOutput {
			y.SetRow(i, resp.Raw)
		} else {
			y.Set(i, resp.Label, 1)
		}
		if o.measurePower {
			p[i] = resp.Power
		}
	}
	return &QuerySet{U: u, Y: y, P: p, Labels: labels}, nil
}

// AccuracyOn evaluates the oracle network's clean accuracy on ds. This is
// the experimenter's (not the attacker's) measurement and does not count
// queries.
func (o *Oracle) AccuracyOn(ds *dataset.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		label, err := o.hw.Predict(ds.X.Row(i))
		if err != nil {
			return 0, err
		}
		if label == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// AccuracyOnPerturbed evaluates oracle accuracy when each test input is
// perturbed by perturb before classification (the adversarial test
// accuracy of Figures 4 and 5).
func (o *Oracle) AccuracyOnPerturbed(ds *dataset.Dataset, perturb func(i int, u []float64) []float64) (float64, error) {
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		u := perturb(i, tensor.CloneVec(ds.X.Row(i)))
		label, err := o.hw.Predict(u)
		if err != nil {
			return 0, err
		}
		if label == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}
