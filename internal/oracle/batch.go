package oracle

import (
	"fmt"

	"xbarsec/internal/tensor"
)

// ForwardBatcher is optionally implemented by Hardware that can serve
// many forward passes as one batched operation — one array pass (or one
// coalesced round trip) instead of len(us) scalar reads. Results must
// be bit-identical to calling Forward per input in order on a
// noise-free array; on a noisy array they must consume the noise stream
// in exactly the per-input order. Both *crossbar.Network and the
// service layer's coalescer satisfy it.
type ForwardBatcher interface {
	ForwardBatch(us [][]float64) ([][]float64, error)
}

// ForwardPowerBatcher is the fused batched analogue of ForwardPowerer:
// both attacker observables for a whole batch in one operation.
type ForwardPowerBatcher interface {
	ForwardPowerBatch(us [][]float64) ([][]float64, []float64, error)
}

// reserveN atomically claims up to n budget slots, returning how many
// were granted — the prefix-admission analogue of reserve. Under
// contention the CAS loop keeps the counter exact: concurrent batches
// against remaining budget r are granted slots summing to at most r.
func (o *Oracle) reserveN(n int) int {
	if o.budget == 0 {
		o.queries.Add(int64(n))
		return n
	}
	for {
		q := o.queries.Load()
		free := int64(o.budget) - q
		if free <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > free {
			grant = free
		}
		if o.queries.CompareAndSwap(q, q+grant) {
			return int(grant)
		}
	}
}

// releaseN returns n reserved budget slots after a failed batch.
func (o *Oracle) releaseN(n int) { o.queries.Add(-int64(n)) }

// QueryBatch runs the queries in us as one batched hardware operation,
// charging the budget per delivered response.
//
// Admission is an atomic prefix reservation: with r budget remaining,
// the first min(len(us), r) queries are admitted and answered — in
// input order, bit-identical to calling Query sequentially on the same
// hardware (noise-free and noisy alike, absent concurrent traffic) —
// and the rest are refused exactly as sequential calls after
// exhaustion would be. The returned slice holds one Response per
// admitted query; when any query was refused, err wraps
// ErrBudgetExhausted (so resps and err can both be non-nil).
//
// If the batched hardware read itself fails, every reservation is
// rolled back and no query is charged: the batch is all-or-nothing at
// the hardware level, the batched form of the accounting contract that
// a query is charged iff it delivers a response.
func (o *Oracle) QueryBatch(us [][]float64) ([]Response, error) {
	if len(us) == 0 {
		return nil, nil
	}
	n := o.reserveN(len(us))
	if n == 0 {
		return nil, ErrBudgetExhausted
	}
	resps, err := o.executeBatch(us[:n])
	if err != nil {
		o.releaseN(n)
		return nil, err
	}
	if n < len(us) {
		return resps, fmt.Errorf("oracle: batch queries %d..%d refused: %w", n, len(us)-1, ErrBudgetExhausted)
	}
	return resps, nil
}

// executeBatch performs the hardware reads for one admitted batch,
// preferring the batched interfaces and falling back to per-input reads
// in input order (same results, scalar cost) on hardware without them.
func (o *Oracle) executeBatch(us [][]float64) ([]Response, error) {
	var (
		ys  [][]float64
		ps  []float64
		err error
	)
	switch {
	case o.measurePower:
		if fpb, ok := o.hw.(ForwardPowerBatcher); ok {
			ys, ps, err = fpb.ForwardPowerBatch(us)
		} else {
			ys = make([][]float64, len(us))
			ps = make([]float64, len(us))
			for i, u := range us {
				if fp, ok := o.hw.(ForwardPowerer); ok {
					ys[i], ps[i], err = fp.ForwardPower(u)
				} else {
					ys[i], err = o.hw.Forward(u)
					if err == nil {
						ps[i], err = o.hw.Power(u)
					}
				}
				if err != nil {
					return nil, err
				}
			}
		}
	default:
		if fb, ok := o.hw.(ForwardBatcher); ok {
			ys, err = fb.ForwardBatch(us)
		} else {
			ys = make([][]float64, len(us))
			for i, u := range us {
				if ys[i], err = o.hw.Forward(u); err != nil {
					return nil, err
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	resps := make([]Response, len(us))
	if o.measurePower {
		if o.powerNoise > 0 {
			// One lock for the whole batch, draws applied in input order —
			// the exact stream consumption of sequential queries.
			o.noiseMu.Lock()
			for i := range ps {
				ps[i] *= 1 + o.noiseSrc.Normal(0, o.powerNoise)
			}
			o.noiseMu.Unlock()
		}
		xb := o.hw.Crossbar()
		vdd := xb.Config().Vdd
		norm := vdd * vdd * xb.Scale()
		for i := range resps {
			resps[i].Power = ps[i] / norm
		}
	}
	for i := range resps {
		resps[i].Label = tensor.ArgMax(ys[i])
		if o.mode == RawOutput {
			resps[i].Raw = tensor.CloneVec(ys[i])
		}
	}
	return resps, nil
}
