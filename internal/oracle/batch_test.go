package oracle

import (
	"errors"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/rng"
)

// batchFailHW fails the batched fused read, to pin the all-or-nothing
// rollback.
type batchFailHW struct {
	*crossbar.Network
}

func (f *batchFailHW) ForwardPowerBatch(us [][]float64) ([][]float64, []float64, error) {
	return nil, nil, errMeter
}

// scalarOnlyHW hides the crossbar's batch methods, forcing QueryBatch's
// per-input fallback.
type scalarOnlyHW struct {
	hw *crossbar.Network
}

func (s scalarOnlyHW) Forward(u []float64) ([]float64, error) { return s.hw.Forward(u) }
func (s scalarOnlyHW) Power(u []float64) (float64, error)     { return s.hw.Power(u) }
func (s scalarOnlyHW) Predict(u []float64) (int, error)       { return s.hw.Predict(u) }
func (s scalarOnlyHW) Inputs() int                            { return s.hw.Inputs() }
func (s scalarOnlyHW) Outputs() int                           { return s.hw.Outputs() }
func (s scalarOnlyHW) Crossbar() *crossbar.Crossbar           { return s.hw.Crossbar() }

// TestQueryBatchMatchesSequential pins QueryBatch == N sequential
// Query calls on the raw hardware, across disclosure/power modes and
// with the batched interfaces both present and absent.
func TestQueryBatchMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		power bool
		noise float64
		bare  bool // strip the batch interfaces
	}{
		{"label-only", LabelOnly, false, 0, false},
		{"raw", RawOutput, false, 0, false},
		{"raw+power", RawOutput, true, 0, false},
		{"raw+power+noise", RawOutput, true, 0.03, false},
		{"scalar-fallback", RawOutput, true, 0.03, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, net, ds := buildOracle(t, 31, tc.mode, tc.power)
			cfg := crossbar.DefaultDeviceConfig()
			cfg.GOff = 0
			mk := func() *Oracle {
				hwNet, err := crossbar.NewNetwork(net, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				var hw Hardware = hwNet
				if tc.bare {
					hw = scalarOnlyHW{hw: hwNet}
				}
				ocfg := Config{Mode: tc.mode, MeasurePower: tc.power, Budget: 32}
				if tc.noise > 0 {
					ocfg.PowerNoiseStd = tc.noise
					ocfg.Src = rng.New(99).Split("noise")
				}
				o, err := New(hw, ocfg)
				if err != nil {
					t.Fatal(err)
				}
				return o
			}
			seq, batch := mk(), mk()
			inputs := make([][]float64, 9)
			for i := range inputs {
				inputs[i], _ = ds.Sample(i)
			}
			want := make([]Response, len(inputs))
			var err error
			for i, u := range inputs {
				if want[i], err = seq.Query(u); err != nil {
					t.Fatal(err)
				}
			}
			got, err := batch.QueryBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Label != want[i].Label || got[i].Power != want[i].Power {
					t.Fatalf("response %d = %+v, want %+v", i, got[i], want[i])
				}
				for j := range want[i].Raw {
					if got[i].Raw[j] != want[i].Raw[j] {
						t.Fatalf("response %d raw[%d] diverged", i, j)
					}
				}
			}
			if seq.Queries() != batch.Queries() {
				t.Fatalf("accounting: %d vs %d", seq.Queries(), batch.Queries())
			}
		})
	}
}

// TestQueryBatchHardwareErrorChargesNothing pins the batched accounting
// contract's error side: a failed batched read rolls back every
// reservation.
func TestQueryBatchHardwareErrorChargesNothing(t *testing.T) {
	_, net, ds := buildOracle(t, 33, RawOutput, true)
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(&batchFailHW{Network: hw}, Config{Mode: RawOutput, MeasurePower: true, Budget: 7})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 4)
	for i := range inputs {
		inputs[i], _ = ds.Sample(i)
	}
	if _, err := o.QueryBatch(inputs); !errors.Is(err, errMeter) {
		t.Fatalf("err = %v, want injected meter error", err)
	}
	if o.Queries() != 0 || o.Remaining() != 7 {
		t.Fatalf("failed batch charged budget: %d queries, %d remaining", o.Queries(), o.Remaining())
	}
	// An empty batch is a no-op.
	if resps, err := o.QueryBatch(nil); resps != nil || err != nil {
		t.Fatalf("empty batch: %v, %v", resps, err)
	}
}

// TestQueryBatchUnlimitedBudget pins the unlimited (budget 0) path:
// everything is admitted and counted.
func TestQueryBatchUnlimitedBudget(t *testing.T) {
	o, _, ds := buildOracle(t, 35, RawOutput, false)
	inputs := make([][]float64, 5)
	for i := range inputs {
		inputs[i], _ = ds.Sample(i)
	}
	resps, err := o.QueryBatch(inputs)
	if err != nil || len(resps) != 5 {
		t.Fatalf("unlimited batch: %d responses, %v", len(resps), err)
	}
	if o.Queries() != 5 || o.Remaining() != -1 {
		t.Fatalf("unlimited accounting: %d queries, %d remaining", o.Queries(), o.Remaining())
	}
}
