package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := true
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestSplitIndependentOfParentConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume from a before splitting; b splits immediately.
	for i := 0; i < 50; i++ {
		a.Float64()
	}
	ca := a.Split("component")
	cb := b.Split("component")
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("Split must not depend on parent stream position")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	s := New(7)
	a, b := s.Split("alpha"), s.Split("beta")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("different labels should give different streams")
	}
}

func TestSplitNDistinct(t *testing.T) {
	s := New(7)
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		v := s.SplitN("run", i).Float64()
		if seen[v] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(5)
	got := s.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", got)
		}
		seen[v] = true
	}
	if got := s.SampleWithoutReplacement(3, 99); len(got) != 3 {
		t.Fatalf("k>n should return n items, got %d", len(got))
	}
}

func TestVecHelpers(t *testing.T) {
	s := New(9)
	u := s.UniformVec(100, 0, 1)
	if len(u) != 100 {
		t.Fatalf("UniformVec len %d", len(u))
	}
	for _, v := range u {
		if v < 0 || v >= 1 {
			t.Fatalf("UniformVec out of range: %v", v)
		}
	}
	g := s.NormalVec(10, 0, 1)
	if len(g) != 10 {
		t.Fatalf("NormalVec len %d", len(g))
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(123).Seed() != 123 {
		t.Fatal("Seed() must round-trip")
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(1)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n/2-300 || trues > n/2+300 {
		t.Fatalf("Bool imbalance: %d/%d", trues, n)
	}
}
