// Package rng provides deterministic, splittable random number streams.
//
// Every experiment in this module takes an explicit seed. Components derive
// their own independent sub-streams with Split, keyed by a label, so that
// adding a new randomness consumer to an experiment never perturbs the
// values drawn by existing consumers — a requirement for reproducing the
// paper's multi-run averages bit-for-bit across refactors.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. Drawing values is not safe
// for concurrent use; Split child streams for concurrent goroutines
// instead. Split and SplitN themselves ARE safe to call concurrently on
// a shared parent: they only read the parent's immutable seed and never
// consume its stream, a property the service layer relies on when many
// clients derive session streams from one root source at once.
type Source struct {
	r    *rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream keyed by label. Two Sources
// with the same seed and label always produce identical child streams,
// regardless of how much of the parent stream has been consumed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	// Mix the parent seed into the hash so distinct parents disagree.
	var buf [8]byte
	v := uint64(s.seed)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return New(int64(h.Sum64()))
}

// SplitN derives an independent child stream keyed by label and an index,
// for per-run or per-item streams.
func (s *Source) SplitN(label string, n int) *Source {
	h := fnv.New64a()
	var buf [8]byte
	v := uint64(s.seed)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	v = uint64(n)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return New(int64(h.Sum64()))
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, std float64) float64 { return mean + std*s.r.NormFloat64() }

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Bool returns true with probability 0.5.
func (s *Source) Bool() bool { return s.r.Intn(2) == 0 }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle swaps elements with the given swap function, as rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// NormalVec fills a fresh slice of length n with Normal(mean, std) draws.
func (s *Source) NormalVec(n int, mean, std float64) []float64 {
	out := make([]float64, n)
	s.FillNormal(out, mean, std)
	return out
}

// FillNormal fills dst with Normal(mean, std) draws without allocating —
// the vectorized form of calling Normal len(dst) times: the stream
// consumption order and every value are identical.
func (s *Source) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = mean + std*s.r.NormFloat64()
	}
}

// UniformVec fills a fresh slice of length n with Uniform(lo, hi) draws.
func (s *Source) UniformVec(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Uniform(lo, hi)
	}
	return out
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0,n). If k >= n it returns a permutation of all n indices.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	p := s.Perm(n)
	if k > n {
		k = n
	}
	return p[:k]
}
