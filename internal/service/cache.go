package service

import (
	"sync"
	"sync/atomic"
)

// artifactCache memoizes finished campaign artifacts by their exact
// deterministic key and collapses concurrent identical requests onto a
// single computation (singleflight): because every cached job is a pure
// function of its spec, the first caller's result is every caller's
// result, and repeated extractions are served from memory. The cache is
// bounded: beyond maxEntries, the oldest completed artifacts are
// evicted FIFO, so a client sweeping distinct specs can cost compute
// but never unbounded memory.
type artifactCache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	order      []string // insertion order, the FIFO eviction queue
	maxEntries int

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
	done  bool // set under mu when the computation finished
}

func newArtifactCache(maxEntries int) *artifactCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &artifactCache{entries: make(map[string]*cacheEntry), maxEntries: maxEntries}
}

// do returns the cached value for key, computing it with compute on a
// miss. Concurrent callers with the same key wait for the one in-flight
// computation instead of duplicating it. Failed computations are not
// cached (the entry is removed so a later retry can succeed); waiters
// joined to a failed flight receive its error.
func (c *artifactCache) do(key string, compute func() (any, error)) (val any, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.val, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.mu.Unlock()
	c.misses.Add(1)
	e.val, e.err = compute()
	c.mu.Lock()
	e.done = true
	if e.err != nil {
		delete(c.entries, key)
	}
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	return e.val, false, e.err
}

// evictLocked drops the oldest completed artifacts until the cache fits
// its bound. In-flight entries are never evicted (their waiters hold
// the entry anyway, and their count is bounded by the job gate); a
// stale queue head whose key was re-inserted after an error just costs
// that key an early eviction — a cache miss, never a wrong result.
func (c *artifactCache) evictLocked() {
	for len(c.entries) > c.maxEntries && len(c.order) > 0 {
		k := c.order[0]
		if e, ok := c.entries[k]; ok {
			if !e.done {
				return
			}
			delete(c.entries, k)
		}
		c.order = c.order[1:]
	}
}

// stats returns cumulative hit/miss counters.
func (c *artifactCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// size returns the number of cached artifacts.
func (c *artifactCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
