package service

// The cluster suite: ring-aware routing end to end (redirects followed
// by the SDK, sessions pinned to their owner), peer artifact fetch with
// Merkle provenance verification (accept the honest peer, reject every
// forged or tampered chain), the metrics endpoint, and — under
// TestChaosCluster* so `make chaos` picks it up — a crash of the owning
// node mid-job whose journal replay must still yield a verifiable
// artifact.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/cluster"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/faultinject"
	"xbarsec/internal/memo"
	"xbarsec/internal/provenance"
	"xbarsec/internal/wal"
)

// clusterBlockGate holds the cluster chaos experiment mid-run until
// closed (durBlockGate is already closed by the durability suite, so
// the cluster crash test needs its own gate).
var clusterBlockGate = make(chan struct{})

var registerClusterExperiments = sync.OnceFunc(func() {
	engine.Register(engine.Experiment{
		Name:  "svc-test-cluster-block",
		Title: "blocks until the cluster gate closes (cluster tests only)",
		Run: func(opts engine.Options) (engine.Result, error) {
			<-clusterBlockGate
			return durCompute("svc-test-cluster-block", opts.Seed), nil
		},
	})
})

// clusterListeners reserves one loopback address per node id BEFORE any
// service exists, so the ring (which needs every member's URL) can be
// built first and handed to all nodes.
func clusterListeners(t *testing.T, ids []string) ([]net.Listener, []cluster.Member) {
	t.Helper()
	lns := make([]net.Listener, len(ids))
	ms := make([]cluster.Member, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[i] = ln
		ms[i] = cluster.Member{ID: id, URL: "http://" + ln.Addr().String()}
	}
	return lns, ms
}

// startNode serves a node on its reserved listener.
func startNode(t *testing.T, s *Service, ln net.Listener) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return ts
}

// specOwnedBy scans seeds until the ring places a svc-test-quick spec
// on the wanted node.
func specOwnedBy(t *testing.T, ring *cluster.Ring, nodeID string) ExperimentSpec {
	t.Helper()
	for seed := int64(1); seed <= 1000; seed++ {
		spec := ExperimentSpec{Name: "svc-test-quick", Seed: seed}
		if ring.Owner(specKey(specDefaults(spec))).ID == nodeID {
			return spec
		}
	}
	t.Fatalf("no seed in 1..1000 places the spec on node %s", nodeID)
	return ExperimentSpec{}
}

// TestClusterRedirectExperiment is the two-node acceptance test: a
// client pointed at the WRONG node runs an experiment, the SDK follows
// the node_redirect to the owner, and the result is bit-identical to a
// single-node run of the same spec.
func TestClusterRedirectExperiment(t *testing.T) {
	registerDurabilityExperiments()
	lns, members := clusterListeners(t, []string{"a", "b"})
	ring, err := cluster.New(members, 0, 11)
	if err != nil {
		t.Fatal(err)
	}

	// The single-node ground truth.
	spec := specOwnedBy(t, ring, "b")
	solo := newTestService(t, Config{Seed: 11, Workers: 2})
	want, err := solo.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*Service, 2)
	for i, id := range []string{"a", "b"} {
		nodes[i] = newTestService(t, Config{Seed: 11, Workers: 2,
			Cluster: &ClusterConfig{NodeID: id, Ring: ring}})
		startNode(t, nodes[i], lns[i])
	}
	ctx := context.Background()
	// members[1] ("b") owns the spec; the client talks to "a".
	c, err := client.New(members[0].URL)
	if err != nil {
		t.Fatal(err)
	}

	info, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || len(info.Members) != 2 || info.RingHash != ring.Hash() {
		t.Fatalf("cluster info = %+v", info)
	}
	if !info.Members[0].Self || info.Members[1].Self {
		t.Fatalf("self marks = %+v, want only node a", info.Members)
	}

	res, err := c.RunExperiment(ctx, api.ExperimentSpec{Name: spec.Name, Seed: spec.Seed})
	if err != nil {
		t.Fatalf("redirected experiment: %v", err)
	}
	if res.Render != want.Render || !bytes.Equal(res.Result, want.Result) {
		t.Fatal("redirected result differs from the single-node run")
	}
	if got := nodes[0].Stats().RedirectsIssued; got < 1 {
		t.Fatalf("wrong node issued %d redirects, want >= 1", got)
	}
	if got := nodes[1].Stats().RedirectsIssued; got != 0 {
		t.Fatalf("owner issued %d redirects, want 0", got)
	}

	// The async path: launch lands on the owner (id carries its node),
	// and polls through the wrong node redirect to it.
	job, err := c.LaunchExperiment(ctx, api.ExperimentSpec{Name: spec.Name, Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(job.ID, "@b") {
		t.Fatalf("job id = %q, want the owner's @b suffix", job.ID)
	}
	done, err := c.WaitJob(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Result == nil || done.Result.Render != want.Render || !bytes.Equal(done.Result.Result, want.Result) {
		t.Fatal("polled job result differs from the single-node run")
	}
}

// TestClusterSessionRouting pins victim-scoped routing: a session open
// against the wrong node lands on the victim's owner and stays pinned
// there; campaigns route by the same key.
func TestClusterSessionRouting(t *testing.T) {
	lns, members := clusterListeners(t, []string{"a", "b"})
	ring, err := cluster.New(members, 0, 23)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Service, 2)
	victims := make([]*Victim, 2)
	for i, id := range []string{"a", "b"} {
		// Every node trains the victim from the shared seed — the cluster
		// contract that makes ownership a pure routing question.
		victims[i] = buildTestVictim(t, "mnist-toy", 23)
		nodes[i] = newTestService(t, Config{Seed: 23, Workers: 2,
			Cluster: &ClusterConfig{NodeID: id, Ring: ring}}, victims[i])
		startNode(t, nodes[i], lns[i])
	}
	ownerID := ring.Owner(victimKey("mnist-toy")).ID
	wrong, owner := 0, 1
	if members[0].ID == ownerID {
		wrong, owner = 1, 0
	}
	ctx := context.Background()
	c, err := client.New(members[wrong].URL)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
		Victim: "mnist-toy", Mode: api.ModeRawOutput, Budget: 3,
	})
	if err != nil {
		t.Fatalf("redirected open: %v", err)
	}
	qr, err := sess.Query(ctx, victims[owner].test.X.Row(0))
	if err != nil {
		t.Fatalf("query on the pinned handle: %v", err)
	}
	if qr.Remaining != 2 {
		t.Fatalf("remaining = %d, want 2", qr.Remaining)
	}
	if got := nodes[owner].Stats().Sessions; got != 1 {
		t.Fatalf("owner holds %d sessions, want 1", got)
	}
	if got := nodes[wrong].Stats().Sessions; got != 0 {
		t.Fatalf("wrong node holds %d sessions, want 0", got)
	}

	// Campaigns ride the same victim key.
	cres, err := c.RunCampaign(ctx, api.CampaignRequest{Victim: "mnist-toy", Mode: api.ModeLabelOnly, Queries: 40})
	if err != nil {
		t.Fatalf("redirected campaign: %v", err)
	}
	if cres.QueriesCharged != 40 {
		t.Fatalf("campaign charged %d, want 40", cres.QueriesCharged)
	}
	if got := nodes[owner].Stats().Campaigns; got != 1 {
		t.Fatalf("owner served %d campaigns, want 1", got)
	}
	if got := nodes[wrong].Stats().Campaigns; got != 0 {
		t.Fatalf("wrong node served %d campaigns, want 0", got)
	}
}

// TestClusterPeerFetchVerified pins the artifact exchange: a node that
// owns a key another node already computed fetches the artifact, checks
// the Merkle chain against its own spec key and code identity, persists
// it, and serves the identical bytes from then on — no recompute.
func TestClusterPeerFetchVerified(t *testing.T) {
	registerDurabilityExperiments()
	lns, members := clusterListeners(t, []string{"a", "b"})
	ring, err := cluster.New(members, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec := specOwnedBy(t, ring, "b")
	key := specKey(specDefaults(spec))
	id := memo.Addr(key)

	// Node a computed the artifact while it ran solo (before the cluster
	// grew): payload spilled, provenance record alongside.
	dirA, dirB := t.TempDir(), t.TempDir()
	solo, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	solo.Close()

	sa, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirA,
		Cluster: &ClusterConfig{NodeID: "a", Ring: ring}})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	startNode(t, sa, lns[0])
	sb, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirB,
		Cluster: &ClusterConfig{NodeID: "b", Ring: ring}})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	startNode(t, sb, lns[1])

	res, err := sb.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("peer-fetched artifact not marked cached — the owner recomputed")
	}
	if res.Render != want.Render || !bytes.Equal(res.Result, want.Result) {
		t.Fatal("peer-fetched result differs from the originating node's run")
	}
	st := sb.Stats()
	if st.PeerFetches < 1 || st.PeerFetchVerified != 1 || st.PeerFetchRejected != 0 {
		t.Fatalf("peer fetch counters = %d/%d/%d, want >=1 fetches, 1 verified, 0 rejected",
			st.PeerFetches, st.PeerFetchVerified, st.PeerFetchRejected)
	}
	if st.SpilledArtifacts != 1 || st.ProvenanceRecords != 1 {
		t.Fatalf("fetched artifact not persisted: %d spilled, %d records",
			st.SpilledArtifacts, st.ProvenanceRecords)
	}

	// Both nodes now serve the SAME bytes under the SAME proof, and the
	// client-side chain check accepts them.
	ctx := context.Background()
	var payloads [][]byte
	for _, m := range members {
		cc, err := client.New(m.URL)
		if err != nil {
			t.Fatal(err)
		}
		art, proof, err := cc.VerifiedArtifact(ctx, id)
		if err != nil {
			t.Fatalf("verified fetch from %s: %v", m.ID, err)
		}
		if proof.SpecKey != key || proof.Code != codeIdentity() {
			t.Fatalf("proof leaves = %q / %q, want %q / %q", proof.SpecKey, proof.Code, key, codeIdentity())
		}
		payloads = append(payloads, art.Payload)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Fatal("the two nodes serve different bytes for one content address")
	}
}

// TestClusterPeerFetchRejectsBadProofs drives the verifier against a
// malicious peer: a proof for another spec, a proof from other code, a
// tampered payload, and a self-consistent chain over bytes that are not
// an experiment result must all be rejected, with the owner falling
// back to a local compute that matches the honest reference.
func TestClusterPeerFetchRejectsBadProofs(t *testing.T) {
	registerDurabilityExperiments()
	spec := ExperimentSpec{Name: "svc-test-quick", Seed: 5}
	ref := newTestService(t, Config{Seed: 11, Workers: 2})
	want, err := ref.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := specKey(specDefaults(spec))
	code := codeIdentity()
	payload, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper inside a numeric literal so the bytes stay valid JSON (the
	// fake peer serves the payload as a json.RawMessage) but the result
	// hash no longer matches.
	tampered := append([]byte(nil), payload...)
	for i, ch := range tampered {
		if ch >= '1' && ch <= '8' {
			tampered[i] = ch + 1
			break
		}
	}
	if bytes.Equal(tampered, payload) {
		t.Fatal("no digit to tamper in the payload")
	}
	notAResult := []byte(`[1,2,3]`)

	cases := []struct {
		name    string
		proof   provenance.Record
		payload []byte
	}{
		{"wrong spec key", provenance.New("experiment|other|1|1|0", code, payload), payload},
		{"wrong code", provenance.New(key, "registry:0000|tensor:ref", payload), payload},
		{"tampered payload", provenance.New(key, code, payload), tampered},
		{"unparseable payload", provenance.New(key, code, notAResult), notAResult},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "-"), func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("GET "+api.PathPrefix+"/artifacts/{id}", func(w http.ResponseWriter, r *http.Request) {
				_ = json.NewEncoder(w).Encode(api.Artifact{ID: r.PathValue("id"), Payload: tc.payload})
			})
			mux.HandleFunc("GET "+api.PathPrefix+"/artifacts/{id}/proof", func(w http.ResponseWriter, r *http.Request) {
				_ = json.NewEncoder(w).Encode(tc.proof)
			})
			evil := httptest.NewServer(mux)
			defer evil.Close()
			members := []cluster.Member{
				{ID: "a", URL: evil.URL},
				{ID: "b", URL: "http://127.0.0.1:9"}, // never dialed: b is self
			}
			// Scan ring seeds until b owns the key, so b computes (and
			// therefore peer-fetches) instead of redirecting.
			var ring *cluster.Ring
			for rs := int64(0); rs < 64; rs++ {
				r, err := cluster.New(members, 0, rs)
				if err != nil {
					t.Fatal(err)
				}
				if r.Owner(key).ID == "b" {
					ring = r
					break
				}
			}
			if ring == nil {
				t.Fatal("no ring seed in 0..63 places the key on b")
			}
			s := newTestService(t, Config{Seed: 11, Workers: 2,
				Cluster: &ClusterConfig{NodeID: "b", Ring: ring}})
			res, err := s.RunExperiment(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cached {
				t.Error("rejected peer artifact served as cached")
			}
			if res.Render != want.Render || !bytes.Equal(res.Result, want.Result) {
				t.Fatal("local fallback differs from the honest reference")
			}
			st := s.Stats()
			if st.PeerFetches < 1 || st.PeerFetchVerified != 0 || st.PeerFetchRejected != 1 {
				t.Fatalf("counters = %d/%d/%d, want >=1 fetches, 0 verified, 1 rejected",
					st.PeerFetches, st.PeerFetchVerified, st.PeerFetchRejected)
			}
		})
	}
}

// TestClusterTamperedSpillNotServed pins the serving side: a node whose
// on-disk payload was corrupted refuses to serve the artifact at all
// (unknown_artifact, never bytes whose chain does not bind), and the
// owner degrades to a clean local recompute.
func TestClusterTamperedSpillNotServed(t *testing.T) {
	registerDurabilityExperiments()
	lns, members := clusterListeners(t, []string{"a", "b"})
	ring, err := cluster.New(members, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec := specOwnedBy(t, ring, "b")
	id := memo.Addr(specKey(specDefaults(spec)))

	dirA, dirB := t.TempDir(), t.TempDir()
	solo, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	solo.Close()

	// Flip one payload byte on disk.
	path := filepath.Join(dirA, "spill", id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sa, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirA,
		Cluster: &ClusterConfig{NodeID: "a", Ring: ring}})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	startNode(t, sa, lns[0])

	ctx := context.Background()
	ca, err := client.New(members[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Artifact(ctx, id); api.CodeOf(err) != api.CodeUnknownArtifact {
		t.Fatalf("tampered artifact fetch = %v, want typed unknown_artifact", err)
	}

	sb, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dirB,
		Cluster: &ClusterConfig{NodeID: "b", Ring: ring}})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	res, err := sb.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("owner served a result it could not have fetched")
	}
	if res.Render != want.Render || !bytes.Equal(res.Result, want.Result) {
		t.Fatal("recomputed result differs from the uncorrupted run")
	}
	st := sb.Stats()
	if st.PeerFetches < 1 || st.PeerFetchVerified != 0 {
		t.Fatalf("counters = %d fetches / %d verified, want >=1 / 0", st.PeerFetches, st.PeerFetchVerified)
	}
}

// TestArtifactEndpoints covers the artifact surface on one node: every
// spilled artifact round-trips through GET /v2/artifacts/{id} (+proof)
// and passes the client-side chain check; malformed and unknown
// addresses answer with their typed codes.
func TestArtifactEndpoints(t *testing.T) {
	registerDurabilityExperiments()
	s, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	specs := []ExperimentSpec{
		{Name: "svc-test-quick", Seed: 1},
		{Name: "svc-test-quick", Seed: 2},
		{Name: "ablate-trace", Seed: 29, Scale: 0.01},
	}
	for _, spec := range specs {
		if _, err := s.RunExperiment(spec); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, spec := range specs {
		key := specKey(specDefaults(spec))
		art, proof, err := c.VerifiedArtifact(ctx, memo.Addr(key))
		if err != nil {
			t.Fatalf("spilled artifact %s fails the verified fetch: %v", key, err)
		}
		if proof.SpecKey != key || proof.Code != codeIdentity() || art.ID != memo.Addr(key) {
			t.Fatalf("proof = %+v for key %q", proof, key)
		}
	}
	if _, err := c.Artifact(ctx, "not-a-content-address"); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("malformed id = %v, want typed bad_request", err)
	}
	if _, err := c.Artifact(ctx, memo.Addr("experiment|never-ran")); api.CodeOf(err) != api.CodeUnknownArtifact {
		t.Fatalf("unknown id = %v, want typed unknown_artifact", err)
	}
	// A single-node server reports the cluster disabled.
	info, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Enabled || len(info.Members) != 0 {
		t.Fatalf("single-node cluster info = %+v", info)
	}
}

// TestMetricsEndpoint pins the scrape surface: Prometheus text format,
// fixed series set, deterministic byte-identical output for an
// unchanged server.
func TestMetricsEndpoint(t *testing.T) {
	c, ts, v := httpFixture(t)
	ctx := context.Background()
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "mnist-toy", Mode: api.ModeRawOutput, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, v.test.X.Row(0)); err != nil {
		t.Fatal(err)
	}

	scrape := func() (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + api.PathPrefix + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status = %d", resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ctype := scrape()
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE xbarsec_sessions gauge",
		"\nxbarsec_sessions 1\n",
		"# TYPE xbarsec_artifact_cache_hits_total counter",
		"# TYPE xbarsec_artifact_cache_hit_ratio gauge",
		"# TYPE xbarsec_victim_store_hits_total counter",
		"# TYPE xbarsec_victim_store_bytes gauge",
		"# TYPE xbarsec_spill_artifacts gauge",
		"# TYPE xbarsec_provenance_records gauge",
		"# TYPE xbarsec_batched_queries_total counter",
		"# TYPE xbarsec_cluster_redirects_total counter",
		"\nxbarsec_cluster_redirects_total 0\n",
		"\nxbarsec_cluster_peer_fetches_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	// Deterministic: an idle server scrapes byte-identically.
	if again, _ := scrape(); again != body {
		t.Fatal("two idle scrapes differ")
	}
}

// TestChaosClusterKillOwnerMidJob is the cluster chaos variant: the
// node that OWNS a job crashes mid-run; after a restart on the same
// state dir, journal replay must finish the job locally (replay never
// consults the ring) and the artifact it lands must carry a provenance
// chain that verifies — locally and over the wire.
func TestChaosClusterKillOwnerMidJob(t *testing.T) {
	registerClusterExperiments()
	lns, members := clusterListeners(t, []string{"a", "b"})
	ring, err := cluster.New(members, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	// A spec node a owns, of the gated blocking experiment.
	var spec ExperimentSpec
	found := false
	for seed := int64(1); seed <= 1000; seed++ {
		cand := ExperimentSpec{Name: "svc-test-cluster-block", Seed: seed}
		if ring.Owner(specKey(specDefaults(cand))).ID == "a" {
			spec, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no seed in 1..1000 places the blocking spec on node a")
	}

	dir := t.TempDir()
	cc := &ClusterConfig{NodeID: "a", Ring: ring}
	fsys := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{Seed: 1})
	s1, _, err := Open(Config{Seed: 11, Workers: 2, StateDir: dir, JournalFsync: true, FS: fsys, Cluster: cc})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s1.LaunchExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(job.ID(), "@a") {
		t.Fatalf("job id = %q, want the @a suffix", job.ID())
	}
	// The owner dies mid-job: the launch record is journaled, nothing
	// else reaches disk.
	fsys.Crash()
	close(clusterBlockGate)
	<-job.Done()
	s1.Close()

	s2, rec, err := Open(Config{Seed: 11, Workers: 2, StateDir: dir, JournalFsync: true, Cluster: cc})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.ReplayedJobs != 1 || rec.Relaunched != 1 {
		t.Fatalf("recovery = %+v, want the crashed job relaunched", rec)
	}
	job2, err := s2.ExperimentJobByID(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job2.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("replayed job never finished")
	}
	if _, _, jerr := job2.Snapshot(); jerr != nil {
		t.Fatalf("replayed job failed: %v", jerr)
	}

	// The replayed artifact's chain verifies: in process...
	key := specKey(specDefaults(spec))
	id := memo.Addr(key)
	payload, prec, err := s2.artifactAt(id)
	if err != nil {
		t.Fatalf("replayed artifact not servable: %v", err)
	}
	if err := provenance.Verify(prec, key, codeIdentity(), payload); err != nil {
		t.Fatalf("replayed artifact's chain rejected: %v", err)
	}
	// ...and over the wire, through the client-side verifier.
	startNode(t, s2, lns[0])
	c, err := client.New(members[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.VerifiedArtifact(context.Background(), id); err != nil {
		t.Fatalf("wire-verified fetch of the replayed artifact: %v", err)
	}
}
