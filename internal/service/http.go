package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"xbarsec/api"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/memo"
	"xbarsec/internal/oracle"
	"xbarsec/internal/report"
	"xbarsec/internal/tensor"
)

// Handler returns the service's HTTP JSON API — protocol v2, with every
// request/response body and error envelope defined by the public
// xbarsec/api package (see its package comment for the endpoint table
// and versioning policy). Every versioned route hangs off
// api.PathPrefix, so a protocol bump moves the whole surface at once:
//
//	GET    /healthz                    liveness probe
//	GET    /v2/version                 protocol version + registry hash
//	GET    /v2/victims                 registered victims with serving stats
//	POST   /v2/sessions                open an attacker session
//	GET    /v2/sessions/{id}           session accounting
//	DELETE /v2/sessions/{id}           close a session
//	POST   /v2/sessions/{id}/query     one oracle query
//	POST   /v2/sessions/{id}/queries   a batched slice of oracle queries
//	POST   /v2/campaigns               run (or fetch cached) campaign job
//	POST   /v2/extract                 run (or fetch cached) extraction job
//	GET    /v2/experiments             registered experiments with axes
//	POST   /v2/experiments             launch an experiment job (async;
//	                                   ?wait=1 blocks for the result)
//	GET    /v2/experiments/jobs/{id}   poll an experiment job
//	GET    /v2/stats                   service snapshot (?format=csv for CSV)
//	GET    /v2/cluster                 static cluster membership + ring hash
//	GET    /v2/artifacts/{id}          spilled artifact by content address
//	GET    /v2/artifacts/{id}/proof    its Merkle provenance chain
//	GET    /v2/metrics                 Prometheus text exposition
//
// Every handler is safe for concurrent use — the service layer does the
// synchronization, the handlers only translate between api types and
// service calls.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	p := api.PathPrefix
	mux.HandleFunc("GET "+p+"/version", s.handleVersion)
	mux.HandleFunc("GET "+p+"/victims", s.handleVictims)
	mux.HandleFunc("POST "+p+"/sessions", s.handleOpenSession)
	mux.HandleFunc("GET "+p+"/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE "+p+"/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST "+p+"/sessions/{id}/query", s.handleQuery)
	mux.HandleFunc("POST "+p+"/sessions/{id}/queries", s.handleQueryBatch)
	mux.HandleFunc("POST "+p+"/campaigns", s.handleCampaign)
	mux.HandleFunc("POST "+p+"/extract", s.handleExtract)
	mux.HandleFunc("GET "+p+"/experiments", s.handleExperimentList)
	mux.HandleFunc("POST "+p+"/experiments", s.handleExperimentLaunch)
	mux.HandleFunc("GET "+p+"/experiments/jobs/{id}", s.handleExperimentJob)
	mux.HandleFunc("GET "+p+"/stats", s.handleStats)
	mux.HandleFunc("GET "+p+"/cluster", s.handleCluster)
	mux.HandleFunc("GET "+p+"/artifacts/{id}", s.handleArtifact)
	mux.HandleFunc("GET "+p+"/artifacts/{id}/proof", s.handleArtifactProof)
	mux.HandleFunc("GET "+p+"/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorCode maps a service error onto its protocol code — the one
// mapping from the internal error taxonomy to the wire (the HTTP status
// is derived from the code, api.ErrorCode.HTTPStatus).
func errorCode(err error) api.ErrorCode {
	switch {
	case errors.Is(err, ErrVictimUnknown):
		return api.CodeUnknownVictim
	case errors.Is(err, ErrSessionUnknown):
		return api.CodeUnknownSession
	case errors.Is(err, ErrExperimentUnknown):
		return api.CodeUnknownExperiment
	case errors.Is(err, ErrJobUnknown):
		return api.CodeUnknownJob
	case errors.Is(err, ErrArtifactUnknown):
		return api.CodeUnknownArtifact
	case errors.Is(err, oracle.ErrBudgetExhausted):
		return api.CodeBudgetExhausted
	case errors.Is(err, ErrSessionLimit):
		return api.CodeSessionLimit
	case errors.Is(err, ErrJobLimit):
		return api.CodeJobLimit
	case errors.Is(err, ErrUnavailable):
		return api.CodeUnavailable
	case errors.Is(err, ErrServiceClosed):
		return api.CodeServiceClosed
	case errors.Is(err, ErrVictimClosed):
		return api.CodeVictimClosed
	case errors.Is(err, errBadRequest):
		return api.CodeBadRequest
	default:
		return api.CodeInternal
	}
}

// apiError wraps a service error into the wire envelope. An error that
// already is an *api.Error (a decode failure, say) passes through
// untouched.
func apiError(err error) *api.Error {
	var e *api.Error
	if errors.As(err, &e) {
		return e
	}
	var pe *memo.PanicError
	if errors.As(err, &pe) {
		// A recovered job panic: the code says "internal", the detail
		// says what blew up — visible through GET jobs/{id}, no log dig.
		return &api.Error{
			Code:    api.CodeInternal,
			Message: "experiment job panicked",
			Detail:  fmt.Sprint(pe.Value),
		}
	}
	var re *RedirectError
	if errors.As(err, &re) {
		// A ring miss: the envelope names the owner so the SDK (or any
		// client) can re-issue the request there instead of retrying here.
		return &api.Error{
			Code:       api.CodeNodeRedirect,
			Message:    fmt.Sprintf("key owned by node %s", re.NodeID),
			Detail:     re.Key,
			RedirectTo: re.URL,
		}
	}
	out := &api.Error{Code: errorCode(err), Message: err.Error()}
	var ue *UnavailableError
	if errors.As(err, &ue) {
		out.RetryAfter = ue.RetryAfter
	}
	return out
}

// writeError emits the uniform machine-readable error envelope with the
// status its code implies, mirroring any RetryAfter hint into the
// standard Retry-After header (the mapping is part of the protocol).
func writeError(w http.ResponseWriter, err error) {
	e := apiError(err)
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Code.HTTPStatus(), e)
}

// errBadRequest marks client-side validation failures for status
// mapping.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errBadRequest)...)
}

// maxRequestBody bounds every request body BEFORE it is decoded: the
// allocation cap the batch/option limits assume. 128 MiB fits the
// largest legitimate payload (a maxQueryBatch slice of 784-dim inputs
// is ~60 MiB of JSON) with headroom; anything larger is a typed 400,
// so one unauthenticated request can never materialize an unbounded
// input slab.
const maxRequestBody = 128 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &api.Error{
			Code:    api.CodeBadRequest,
			Message: "malformed request body",
			Detail:  err.Error(),
		}
	}
	return nil
}

// RegistryHash digests the experiment registry: sha256 over the sorted
// names. Two servers with equal hashes accept the same experiment
// specs. Exposed so clients and tests can compute the expected value.
func RegistryHash() string {
	sum := sha256.Sum256([]byte(strings.Join(engine.Names(), "\n")))
	return hex.EncodeToString(sum[:])
}

func (s *Service) handleVersion(w http.ResponseWriter, r *http.Request) {
	names := engine.Names()
	writeJSON(w, http.StatusOK, api.VersionInfo{
		Version:         api.VersionString(),
		Major:           api.Major,
		Minor:           api.Minor,
		Experiments:     len(names),
		ExperimentsHash: RegistryHash(),
		TensorBackend:   tensor.ActiveName(),
	})
}

func (s *Service) handleVictims(w http.ResponseWriter, r *http.Request) {
	victims := s.Stats().Victims
	if victims == nil {
		victims = []api.VictimStats{}
	}
	writeJSON(w, http.StatusOK, victims)
}

func sessionInfo(sess *Session) api.Session {
	return api.Session{
		ID:        sess.ID(),
		Victim:    sess.Victim(),
		Mode:      api.Mode(sess.Mode().String()),
		Budget:    sess.Budget(),
		Queries:   sess.Queries(),
		Remaining: sess.Remaining(),
	}
}

func (s *Service) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req api.OpenSessionRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	cfg := SessionConfig{
		MeasurePower:  req.MeasurePower,
		PowerNoiseStd: req.PowerNoiseStd,
		Budget:        req.Budget,
	}
	if req.Mode != "" {
		mode, err := oracle.ParseMode(string(req.Mode))
		if err != nil {
			writeError(w, badRequestf("%v", err))
			return
		}
		cfg.Mode = mode
	}
	sess, err := s.OpenSession(req.Victim, cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Service) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Service) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SessionClosed{Status: "closed"})
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req api.QueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Input) != sess.victim.Inputs() {
		writeError(w, badRequestf("input length %d, want %d", len(req.Input), sess.victim.Inputs()))
		return
	}
	resp, err := sess.Query(req.Input)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Label:     resp.Label,
		Raw:       resp.Raw,
		Power:     resp.Power,
		Queries:   sess.Queries(),
		Remaining: sess.Remaining(),
	})
}

// maxQueryBatch bounds one batched request; a single unauthenticated
// request must not be able to make the server materialize an unbounded
// input slab.
const maxQueryBatch = 4096

func (s *Service) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req api.QueryBatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, badRequestf("empty query batch"))
		return
	}
	if len(req.Inputs) > maxQueryBatch {
		writeError(w, badRequestf("batch of %d queries exceeds the limit %d", len(req.Inputs), maxQueryBatch))
		return
	}
	// Validate every input before any budget charge: a malformed batch is
	// rejected whole, exactly like a malformed single query.
	for i, u := range req.Inputs {
		if len(u) != sess.victim.Inputs() {
			writeError(w, badRequestf("input %d length %d, want %d", i, len(u), sess.victim.Inputs()))
			return
		}
	}
	resps, err := sess.QueryBatch(req.Inputs)
	if err != nil && !errors.Is(err, oracle.ErrBudgetExhausted) {
		writeError(w, err)
		return
	}
	if len(resps) == 0 && err != nil {
		// Nothing was admitted: the whole batch fails exactly as a single
		// query against an exhausted session would.
		writeError(w, err)
		return
	}
	out := api.QueryBatchResponse{
		Results:   make([]api.QueryOutcome, len(req.Inputs)),
		Queries:   sess.Queries(),
		Remaining: sess.Remaining(),
	}
	for i := range req.Inputs {
		if i < len(resps) {
			out.Results[i] = api.QueryOutcome{
				Label: resps[i].Label,
				Raw:   resps[i].Raw,
				Power: resps[i].Power,
			}
		} else {
			out.Results[i] = api.QueryOutcome{Error: apiError(err)}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req api.CampaignRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	mode, err := oracle.ParseMode(string(req.Mode))
	if err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	if req.Queries <= 0 {
		writeError(w, badRequestf("query budget %d must be positive", req.Queries))
		return
	}
	res, err := s.RunCampaign(CampaignSpec{
		Victim:          req.Victim,
		Mode:            mode,
		Seed:            req.Seed,
		Queries:         req.Queries,
		Lambda:          req.Lambda,
		SurrogateEpochs: req.SurrogateEpochs,
		AttackEps:       req.AttackEps,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleExtract(w http.ResponseWriter, r *http.Request) {
	var spec api.ExtractRequest
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, err)
		return
	}
	if spec.NoiseStd < 0 {
		writeError(w, badRequestf("negative probe noise %v", spec.NoiseStd))
		return
	}
	res, err := s.RunExtract(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Experiments(api.ExperimentSpec{}))
}

func jobInfo(j *ExperimentJob) api.Job {
	out := api.Job{ID: j.ID(), Spec: j.Spec()}
	status, res, err := j.Snapshot()
	out.Status = status
	out.Result = res
	if err != nil {
		out.Error = err.Error()
	}
	return out
}

func (s *Service) handleExperimentLaunch(w http.ResponseWriter, r *http.Request) {
	var spec api.ExperimentSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, err)
		return
	}
	job, err := s.LaunchExperiment(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Honor client disconnects: the job keeps running (its result
		// lands in the artifact cache and stays pollable by id), but the
		// handler goroutine must not stay pinned to a dead connection.
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, jobInfo(job))
		case <-r.Context().Done():
		}
		return
	}
	writeJSON(w, http.StatusAccepted, jobInfo(job))
}

func (s *Service) handleExperimentJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.ExperimentJobByID(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobInfo(job))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	if r.URL.Query().Get("format") != "csv" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	tbl := &report.Table{
		Header: []string{"victim", "inputs", "outputs", "noisy", "requests", "batches", "max_batch", "queue_depth_peak", "open_sessions"},
	}
	for _, v := range st.Victims {
		tbl.AddRow(v.Name,
			fmt.Sprint(v.Inputs), fmt.Sprint(v.Outputs), fmt.Sprint(v.Noisy),
			fmt.Sprint(v.Requests), fmt.Sprint(v.Batches), fmt.Sprint(v.MaxBatch),
			fmt.Sprint(v.QueueDepthPeak), fmt.Sprint(v.OpenSessions))
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := tbl.WriteCSV(w); err != nil {
		// Headers already sent; nothing recoverable.
		return
	}
}
