package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"xbarsec/internal/oracle"
	"xbarsec/internal/report"
)

// Handler returns the service's HTTP JSON API:
//
//	GET    /healthz                  liveness probe
//	GET    /v1/victims               registered victims with serving stats
//	POST   /v1/sessions              open an attacker session
//	GET    /v1/sessions/{id}         session accounting
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/query   one oracle query
//	POST   /v1/campaigns             run (or fetch cached) campaign job
//	POST   /v1/extract               run (or fetch cached) extraction job
//	GET    /v1/experiments           registered experiments with axes
//	POST   /v1/experiments           launch an experiment job (async;
//	                                 ?wait=1 blocks for the result)
//	GET    /v1/experiments/jobs/{id} poll an experiment job
//	GET    /v1/stats                 service snapshot (?format=csv for CSV)
//
// Every handler is safe for concurrent use — the service layer does the
// synchronization, the handlers only translate JSON.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/victims", s.handleVictims)
	mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaign)
	mux.HandleFunc("POST /v1/extract", s.handleExtract)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments", s.handleExperimentLaunch)
	mux.HandleFunc("GET /v1/experiments/jobs/{id}", s.handleExperimentJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP status codes: unknown
// resources are 404, an exhausted budget is 429 (the attacker is being
// rate-limited by their own contract), shutdown is 503, malformed input
// is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrVictimUnknown), errors.Is(err, ErrSessionUnknown),
		errors.Is(err, ErrExperimentUnknown), errors.Is(err, ErrJobUnknown):
		status = http.StatusNotFound
	case errors.Is(err, oracle.ErrBudgetExhausted), errors.Is(err, ErrSessionLimit),
		errors.Is(err, ErrJobLimit):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrServiceClosed), errors.Is(err, ErrVictimClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// errBadRequest marks client-side validation failures for status
// mapping.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errBadRequest)...)
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding request body (%v)", err)
	}
	return nil
}

func (s *Service) handleVictims(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats().Victims)
}

// sessionWire is the JSON shape of a session request/response.
type sessionWire struct {
	ID            string  `json:"id,omitempty"`
	Victim        string  `json:"victim"`
	Mode          string  `json:"mode,omitempty"`
	MeasurePower  bool    `json:"measure_power,omitempty"`
	PowerNoiseStd float64 `json:"power_noise_std,omitempty"`
	Budget        int     `json:"budget,omitempty"`
	Queries       int     `json:"queries"`
	Remaining     int     `json:"remaining"`
}

func sessionInfo(sess *Session) sessionWire {
	return sessionWire{
		ID:        sess.ID(),
		Victim:    sess.Victim(),
		Mode:      sess.Mode().String(),
		Budget:    sess.Budget(),
		Queries:   sess.Queries(),
		Remaining: sess.Remaining(),
	}
}

func (s *Service) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req sessionWire
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	cfg := SessionConfig{
		MeasurePower:  req.MeasurePower,
		PowerNoiseStd: req.PowerNoiseStd,
		Budget:        req.Budget,
	}
	if req.Mode != "" {
		mode, err := oracle.ParseMode(req.Mode)
		if err != nil {
			writeError(w, badRequestf("%v", err))
			return
		}
		cfg.Mode = mode
	}
	sess, err := s.OpenSession(req.Victim, cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Service) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Service) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// queryWire is the JSON shape of one oracle query exchange.
type queryWire struct {
	Input []float64 `json:"input"`
}

type responseWire struct {
	Label     int       `json:"label"`
	Raw       []float64 `json:"raw,omitempty"`
	Power     float64   `json:"power,omitempty"`
	Queries   int       `json:"queries"`
	Remaining int       `json:"remaining"`
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req queryWire
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Input) != sess.victim.Inputs() {
		writeError(w, badRequestf("input length %d, want %d", len(req.Input), sess.victim.Inputs()))
		return
	}
	resp, err := sess.Query(req.Input)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, responseWire{
		Label:     resp.Label,
		Raw:       resp.Raw,
		Power:     resp.Power,
		Queries:   sess.Queries(),
		Remaining: sess.Remaining(),
	})
}

// campaignWire mirrors CampaignSpec with a string mode for the wire.
type campaignWire struct {
	Victim          string  `json:"victim"`
	Mode            string  `json:"mode"`
	Seed            int64   `json:"seed"`
	Queries         int     `json:"queries"`
	Lambda          float64 `json:"lambda"`
	SurrogateEpochs int     `json:"surrogate_epochs,omitempty"`
	AttackEps       float64 `json:"attack_eps,omitempty"`
}

func (s *Service) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignWire
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	mode, err := oracle.ParseMode(req.Mode)
	if err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	if req.Queries <= 0 {
		writeError(w, badRequestf("query budget %d must be positive", req.Queries))
		return
	}
	res, err := s.RunCampaign(CampaignSpec{
		Victim:          req.Victim,
		Mode:            mode,
		Seed:            req.Seed,
		Queries:         req.Queries,
		Lambda:          req.Lambda,
		SurrogateEpochs: req.SurrogateEpochs,
		AttackEps:       req.AttackEps,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleExtract(w http.ResponseWriter, r *http.Request) {
	var spec ExtractSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	if spec.NoiseStd < 0 {
		writeError(w, badRequestf("negative probe noise %v", spec.NoiseStd))
		return
	}
	res, err := s.RunExtract(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Experiments(ExperimentSpec{}))
}

// jobWire is the JSON shape of an experiment-job snapshot.
type jobWire struct {
	ID     string            `json:"id"`
	Spec   ExperimentSpec    `json:"spec"`
	Status JobStatus         `json:"status"`
	Error  string            `json:"error,omitempty"`
	Result *ExperimentResult `json:"result,omitempty"`
}

func jobInfo(j *ExperimentJob) jobWire {
	out := jobWire{ID: j.ID(), Spec: j.Spec()}
	status, res, err := j.Snapshot()
	out.Status = status
	out.Result = res
	if err != nil {
		out.Error = err.Error()
	}
	return out
}

func (s *Service) handleExperimentLaunch(w http.ResponseWriter, r *http.Request) {
	var spec ExperimentSpec
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	job, err := s.LaunchExperiment(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Honor client disconnects: the job keeps running (its result
		// lands in the artifact cache and stays pollable by id), but the
		// handler goroutine must not stay pinned to a dead connection.
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, jobInfo(job))
		case <-r.Context().Done():
		}
		return
	}
	writeJSON(w, http.StatusAccepted, jobInfo(job))
}

func (s *Service) handleExperimentJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.ExperimentJobByID(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobInfo(job))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	if r.URL.Query().Get("format") != "csv" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	tbl := &report.Table{
		Header: []string{"victim", "inputs", "outputs", "noisy", "requests", "batches", "max_batch", "open_sessions"},
	}
	for _, v := range st.Victims {
		tbl.AddRow(v.Name,
			fmt.Sprint(v.Inputs), fmt.Sprint(v.Outputs), fmt.Sprint(v.Noisy),
			fmt.Sprint(v.Requests), fmt.Sprint(v.Batches), fmt.Sprint(v.MaxBatch),
			fmt.Sprint(v.OpenSessions))
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := tbl.WriteCSV(w); err != nil {
		// Headers already sent; nothing recoverable.
		return
	}
}
