package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

// ErrVictimExists indicates a Register with an already-taken name.
var ErrVictimExists = errors.New("service: victim already registered")

// ErrVictimUnknown indicates a lookup for an unregistered victim.
var ErrVictimUnknown = errors.New("service: unknown victim")

// Victim is one programmed network hosted by the service: the shared
// oracle hardware many attacker sessions and campaign jobs hit at once.
// The crossbar itself is read-only for noise-free devices; all query
// traffic is funneled through the victim's coalescing batcher so noisy
// (stateful) arrays are serialized and noise-free ones are served in
// fused batches.
type Victim struct {
	name  string
	net   *nn.Network
	hw    *crossbar.Network
	train *dataset.Dataset
	test  *dataset.Dataset

	batcher    *batcher
	sessionSeq atomic.Int64
	open       atomic.Int64 // currently open sessions

	cleanOnce sync.Once
	cleanAcc  float64
	cleanErr  error
}

// NewVictim bundles a trained network, its crossbar realization and the
// data splits campaigns draw queries from. train and test may be nil for
// session-only victims; campaigns against such a victim are refused.
func NewVictim(name string, net *nn.Network, hw *crossbar.Network, train, test *dataset.Dataset) (*Victim, error) {
	if name == "" {
		return nil, errors.New("service: empty victim name")
	}
	if hw == nil {
		return nil, errors.New("service: nil victim hardware")
	}
	if train != nil && train.Dim() != hw.Inputs() {
		return nil, fmt.Errorf("service: train dim %d != hardware inputs %d", train.Dim(), hw.Inputs())
	}
	if test != nil && test.Dim() != hw.Inputs() {
		return nil, fmt.Errorf("service: test dim %d != hardware inputs %d", test.Dim(), hw.Inputs())
	}
	return &Victim{name: name, net: net, hw: hw, train: train, test: test}, nil
}

// Name returns the victim's registry key.
func (v *Victim) Name() string { return v.name }

// Inputs returns the input dimensionality.
func (v *Victim) Inputs() int { return v.hw.Inputs() }

// Outputs returns the number of classes.
func (v *Victim) Outputs() int { return v.hw.Outputs() }

// Noisy reports whether the victim's array draws per-read noise (making
// every read stateful).
func (v *Victim) Noisy() bool { return v.hw.Noisy() }

// Hardware returns the victim's crossbar network.
func (v *Victim) Hardware() *crossbar.Network { return v.hw }

// Train returns the victim's training split (nil for session-only
// victims). Campaign queries are drawn from it, mirroring the paper's
// protocol.
func (v *Victim) Train() *dataset.Dataset { return v.train }

// Test returns the victim's test split (nil for session-only victims).
func (v *Victim) Test() *dataset.Dataset { return v.test }

// clean returns the victim's clean test accuracy, computed once. It goes
// through the batcher so noisy arrays stay serialized against session
// traffic.
func (v *Victim) clean() (float64, error) {
	v.cleanOnce.Do(func() {
		if v.test == nil || v.test.Len() == 0 {
			v.cleanErr = errors.New("service: victim has no test split")
			return
		}
		labels, err := predictAll(v, datasetRows(v.test))
		if err != nil {
			v.cleanErr = err
			return
		}
		correct := 0
		for i, l := range labels {
			if l == v.test.Labels[i] {
				correct++
			}
		}
		v.cleanAcc = float64(correct) / float64(v.test.Len())
	})
	return v.cleanAcc, v.cleanErr
}

// datasetRows exposes a dataset's design matrix as a batch of row views
// (read-only — callers must not mutate them).
func datasetRows(ds *dataset.Dataset) [][]float64 {
	rows := make([][]float64, ds.Len())
	for i := range rows {
		rows[i] = ds.X.Row(i)
	}
	return rows
}

// VictimSpec describes a demo victim to train and program from scratch:
// a linear+MSE single-layer network on one of the synthetic dataset
// families, the configuration of the paper's Section IV black-box attack.
type VictimSpec struct {
	// Name is the registry key; defaults to the kind name.
	Name string
	// Kind selects the dataset family (dataset.MNIST or dataset.CIFAR10).
	Kind dataset.Kind
	// Seed drives data generation, training and programming.
	Seed int64
	// TrainN and TestN size the splits (0 = 600/200).
	TrainN, TestN int
	// Epochs is the victim's training length (0 = 30).
	Epochs int
	// DataDir, when set, is searched for real MNIST/CIFAR files.
	DataDir string
	// Device is the crossbar device model; zero value = ideal default.
	Device crossbar.DeviceConfig
}

// TrainVictim builds a demo victim end to end: load (or synthesize) the
// data, train the software network, program it onto a crossbar.
// Deterministic given the spec.
func TrainVictim(spec VictimSpec) (*Victim, error) {
	if spec.Name == "" {
		spec.Name = spec.Kind.String()
	}
	if spec.TrainN <= 0 {
		spec.TrainN = 600
	}
	if spec.TestN <= 0 {
		spec.TestN = 200
	}
	if spec.Epochs <= 0 {
		spec.Epochs = 30
	}
	if spec.Device == (crossbar.DeviceConfig{}) {
		spec.Device = crossbar.DefaultDeviceConfig()
	}
	src := rng.New(spec.Seed).Split("victim:" + spec.Name)
	train, test, err := dataset.Load(spec.Kind, src.Split("data"), dataset.LoadOptions{
		DataDir: spec.DataDir, TrainN: spec.TrainN, TestN: spec.TestN,
	})
	if err != nil {
		return nil, fmt.Errorf("service: loading %s: %w", spec.Kind, err)
	}
	tc := nn.TrainConfig{Epochs: spec.Epochs, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true}
	if spec.Kind == dataset.CIFAR10 {
		// Dense 3072-dim inputs need a far smaller MSE learning rate
		// (see experiment.trainCfgFor's rationale).
		tc.LearningRate = 0.001
		tc.WeightDecay = 0.05
	}
	net, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, tc, src.Split("train"))
	if err != nil {
		return nil, fmt.Errorf("service: training %s: %w", spec.Name, err)
	}
	var devSrc *rng.Source
	if spec.Device.ProgramNoiseStd > 0 || spec.Device.StuckFraction > 0 || spec.Device.ReadNoiseStd > 0 {
		devSrc = src.Split("device")
	}
	hw, err := crossbar.NewNetwork(net, spec.Device, devSrc)
	if err != nil {
		return nil, fmt.Errorf("service: programming %s: %w", spec.Name, err)
	}
	return NewVictim(spec.Name, net, hw, train, test)
}

// shardCount is the registry fan-out. Victim and session lookups hash to
// one of these independently locked shards so a hot victim's query path
// never contends with registrations or other victims' lookups.
const shardCount = 16

// shardFor hashes a key onto a shard index.
func shardFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % shardCount)
}

// shardedMap is a string-keyed map sharded across independently locked
// buckets — the registry substrate for victims and sessions.
type shardedMap[T any] struct {
	shards [shardCount]struct {
		mu sync.RWMutex
		m  map[string]T
	}
}

// put stores val under key; it reports false (and stores nothing) when
// the key is taken.
func (s *shardedMap[T]) put(key string, val T) bool {
	sh := &s.shards[shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[string]T)
	}
	if _, ok := sh.m[key]; ok {
		return false
	}
	sh.m[key] = val
	return true
}

// get returns the value under key.
func (s *shardedMap[T]) get(key string) (T, bool) {
	sh := &s.shards[shardFor(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[key]
	return v, ok
}

// remove deletes key, returning the removed value.
func (s *shardedMap[T]) remove(key string) (T, bool) {
	sh := &s.shards[shardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	return v, ok
}

// keys returns all keys in sorted order.
func (s *shardedMap[T]) keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// each calls fn for every entry (shard by shard, under the read lock).
func (s *shardedMap[T]) each(fn func(key string, val T)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			fn(k, v)
		}
		sh.mu.RUnlock()
	}
}

// size returns the entry count.
func (s *shardedMap[T]) size() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
