package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
)

// buildTestVictimDevice is buildTestVictim with a chosen device config
// — twin victims built from the same seed are bit-identical, including
// their read-noise streams, so a batched serving path can be compared
// against a sequential one on separate services without shared state.
func buildTestVictimDevice(t testing.TB, name string, seed int64, dev crossbar.DeviceConfig) *Victim {
	t.Helper()
	src := rng.New(seed)
	gen := func(label string, n int) *dataset.Dataset {
		ds, err := dataset.GenerateMNISTLike(src.Split(label), n, dataset.MNISTLikeConfig{
			Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	train, test := gen("train", 120), gen("test", 60)
	net, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9, ZeroInit: true,
	}, src.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	var devSrc *rng.Source
	if dev.ReadNoiseStd > 0 || dev.ProgramNoiseStd > 0 || dev.StuckFraction > 0 {
		devSrc = src.Split("device")
	}
	hw, err := crossbar.NewNetwork(net, dev, devSrc)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVictim(name, net, hw, train, test)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// testDevices returns the two device regimes the bit-identity contract
// covers: noise-free (stateless array) and read-noisy (stateful array,
// where only input ORDER preserves the stream).
func testDevices() map[string]crossbar.DeviceConfig {
	ideal := crossbar.DefaultDeviceConfig()
	ideal.GOff = 0
	noisy := crossbar.DefaultDeviceConfig()
	noisy.ReadNoiseStd = 0.05
	return map[string]crossbar.DeviceConfig{"noise-free": ideal, "noisy": noisy}
}

// TestQueryBatchBitIdenticalToSequential pins the batched query path's
// core contract: QueryBatch(xs) returns exactly the responses of
// len(xs) sequential Query calls — labels, raw vectors and power
// readings bit for bit — on noise-free AND noisy victims, in every
// disclosure/power mode, including session-level instrument noise.
// Twin services (same seed) isolate the two paths: their victims,
// session streams and noise states are bit-identical by construction.
func TestQueryBatchBitIdenticalToSequential(t *testing.T) {
	modes := []SessionConfig{
		{Mode: oracle.LabelOnly, Budget: 64},
		{Mode: oracle.RawOutput, Budget: 64},
		{Mode: oracle.RawOutput, MeasurePower: true, Budget: 64},
		{Mode: oracle.RawOutput, MeasurePower: true, PowerNoiseStd: 0.02, Budget: 64},
	}
	for devName, dev := range testDevices() {
		for mi, cfg := range modes {
			t.Run(fmt.Sprintf("%s/mode%d", devName, mi), func(t *testing.T) {
				seqV := buildTestVictimDevice(t, "twin", 41, dev)
				batchV := buildTestVictimDevice(t, "twin", 41, dev)
				seqS := newTestService(t, Config{Seed: 41}, seqV)
				batchS := newTestService(t, Config{Seed: 41}, batchV)
				seqSess, err := seqS.OpenSession("twin", cfg)
				if err != nil {
					t.Fatal(err)
				}
				batchSess, err := batchS.OpenSession("twin", cfg)
				if err != nil {
					t.Fatal(err)
				}
				inputs := make([][]float64, 17)
				for i := range inputs {
					inputs[i] = seqV.test.X.Row(i)
				}
				want := make([]oracle.Response, len(inputs))
				for i, u := range inputs {
					if want[i], err = seqSess.Query(u); err != nil {
						t.Fatal(err)
					}
				}
				got, err := batchSess.QueryBatch(inputs)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("batch returned %d responses, want %d", len(got), len(want))
				}
				for i := range want {
					assertResponseEqual(t, i, got[i], want[i])
				}
				if seqSess.Queries() != batchSess.Queries() {
					t.Fatalf("accounting diverged: %d vs %d", seqSess.Queries(), batchSess.Queries())
				}
			})
		}
	}
}

func assertResponseEqual(t *testing.T, i int, got, want oracle.Response) {
	t.Helper()
	if got.Label != want.Label {
		t.Fatalf("response %d label = %d, want %d", i, got.Label, want.Label)
	}
	if got.Power != want.Power {
		t.Fatalf("response %d power = %v, want %v (diff %g)", i, got.Power, want.Power, got.Power-want.Power)
	}
	if len(got.Raw) != len(want.Raw) {
		t.Fatalf("response %d raw len = %d, want %d", i, len(got.Raw), len(want.Raw))
	}
	for j := range want.Raw {
		if got.Raw[j] != want.Raw[j] {
			t.Fatalf("response %d raw[%d] = %v, want %v", i, j, got.Raw[j], want.Raw[j])
		}
	}
}

// TestQueryBatchConcurrentBitIdentical runs many concurrent sessions
// each submitting batches against ONE shared noise-free victim, while a
// twin service serves the same inputs sequentially — every session's
// batch must still match its sequential twin bit for bit, no matter how
// the coalescer interleaves the concurrent batches. (Noise-free only:
// on a noisy array concurrent interleaving legitimately changes the
// stream, exactly as contended physical hardware would.) Run under
// -race this is also the batched path's data-race gate.
func TestQueryBatchConcurrentBitIdentical(t *testing.T) {
	dev := crossbar.DefaultDeviceConfig()
	dev.GOff = 0
	sharedV := buildTestVictimDevice(t, "twin", 43, dev)
	refV := buildTestVictimDevice(t, "twin", 43, dev)
	shared := newTestService(t, Config{Seed: 43}, sharedV)
	ref := newTestService(t, Config{Seed: 43}, refV)

	const sessions = 8
	cfg := SessionConfig{Mode: oracle.RawOutput, MeasurePower: true, Budget: 128}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		// Open in order so twin session streams pair up; the queries run
		// concurrently below.
		batchSess, err := shared.OpenSession("twin", cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqSess, err := ref.OpenSession("twin", cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int, batchSess, seqSess *Session) {
			defer wg.Done()
			inputs := make([][]float64, 11)
			for i := range inputs {
				inputs[i] = sharedV.test.X.Row((s*7 + i) % sharedV.test.Len())
			}
			got, err := batchSess.QueryBatch(inputs)
			if err != nil {
				errs <- err
				return
			}
			for i, u := range inputs {
				want, err := seqSess.Query(u)
				if err != nil {
					errs <- err
					return
				}
				if want.Label != got[i].Label || want.Power != got[i].Power {
					errs <- fmt.Errorf("session %d response %d diverged under concurrency", s, i)
					return
				}
				for j := range want.Raw {
					if want.Raw[j] != got[i].Raw[j] {
						errs <- fmt.Errorf("session %d response %d raw[%d] diverged", s, i, j)
						return
					}
				}
			}
		}(s, batchSess, seqSess)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryBatchPrefixAdmission pins the batched budget contract: the
// admitted prefix answers, the tail is refused with ErrBudgetExhausted,
// and a fully-exhausted batch fails whole.
func TestQueryBatchPrefixAdmission(t *testing.T) {
	v := buildTestVictim(t, "m", 47)
	s := newTestService(t, Config{Seed: 47}, v)
	sess, err := s.OpenSession("m", SessionConfig{Mode: oracle.RawOutput, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 5)
	for i := range inputs {
		inputs[i] = v.test.X.Row(i)
	}
	resps, err := sess.QueryBatch(inputs)
	if !errors.Is(err, oracle.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if len(resps) != 3 || sess.Queries() != 3 || sess.Remaining() != 0 {
		t.Fatalf("prefix = %d responses, %d charged, %d remaining", len(resps), sess.Queries(), sess.Remaining())
	}
	if resps, err = sess.QueryBatch(inputs[:2]); err == nil || len(resps) != 0 {
		t.Fatalf("exhausted batch: %d responses, err %v", len(resps), err)
	}
}

// TestQueryBatchConcurrentAdmissionExact hammers one budgeted session
// with concurrent batches: the total responses delivered must equal the
// budget exactly — batched reservation can never over- or under-admit.
func TestQueryBatchConcurrentAdmissionExact(t *testing.T) {
	v := buildTestVictim(t, "m", 48)
	s := newTestService(t, Config{Seed: 48}, v)
	const budget = 57
	sess, err := s.OpenSession("m", SessionConfig{Mode: oracle.RawOutput, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 9
	var wg sync.WaitGroup
	delivered := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				inputs := make([][]float64, 3)
				for i := range inputs {
					inputs[i] = v.test.X.Row((g + i + k) % v.test.Len())
				}
				resps, err := sess.QueryBatch(inputs)
				if err != nil && !errors.Is(err, oracle.ErrBudgetExhausted) {
					t.Error(err)
					return
				}
				delivered[g] += len(resps)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range delivered {
		total += n
	}
	if total != budget {
		t.Fatalf("delivered %d responses on budget %d", total, budget)
	}
	if sess.Queries() != budget {
		t.Fatalf("charged %d on budget %d", sess.Queries(), budget)
	}
}
