package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	// Imported for its side effect: experiment's init populates the
	// engine registry this layer dispatches through.
	_ "xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
)

// The experiment-job layer turns every experiment in the engine
// registry into a server-side job: any registered grid can be launched,
// listed and polled remotely, with results memoized in the service's
// artifact cache. Registry experiments build their victims through the
// process-wide victim store, so repeated launches of the same spec —
// the common case for a result-serving deployment — cost one training
// and then memory reads.

// ErrExperimentUnknown indicates a launch for an unregistered
// experiment name.
var ErrExperimentUnknown = errors.New("service: unknown experiment")

// ErrJobUnknown indicates a poll for an unknown (or evicted) job.
var ErrJobUnknown = errors.New("service: unknown experiment job")

// ExperimentSpec fully determines one experiment job. Registry
// experiments are pure functions of (name, seed, scale, runs) plus the
// server's DataDir, so the spec doubles as the artifact-cache key;
// Workers is deliberately excluded (results are bit-identical at any
// worker count).
type ExperimentSpec struct {
	// Name is the registry name, e.g. "table1" or "ablate-noise".
	Name string `json:"name"`
	// Seed roots every random choice of the experiment.
	Seed int64 `json:"seed"`
	// Scale in (0, 1] shrinks the sweep; 0 selects 1.0 (paper-sized).
	Scale float64 `json:"scale,omitempty"`
	// Runs overrides the repetition count (0 = scaled default).
	Runs int `json:"runs,omitempty"`
}

// withDefaults normalizes the spec so equivalent requests share one
// cache key: Scale 0 means full scale (the engine's Normalized
// contract), so {"scale":0} and {"scale":1} must not recompute.
func (e ExperimentSpec) withDefaults() ExperimentSpec {
	if e.Scale == 0 {
		e.Scale = 1
	}
	return e
}

// validate rejects specs the engine would reject, before any job record
// or cache flight exists.
func (e ExperimentSpec) validate() error {
	if _, ok := engine.Lookup(e.Name); !ok {
		return fmt.Errorf("service: experiment %q (have %s): %w",
			e.Name, strings.Join(engine.Names(), ", "), ErrExperimentUnknown)
	}
	if e.Scale < 0 || e.Scale > 1 {
		return badRequestf("scale %v outside (0, 1]", e.Scale)
	}
	// Runs sizes grid allocations (configs x runs cells); an absurd value
	// in one unauthenticated request must not be able to OOM the server.
	// The paper's largest grid uses 10 runs; 1000 is generous headroom.
	if e.Runs < 0 || e.Runs > maxExperimentRuns {
		return badRequestf("runs %d outside [0, %d]", e.Runs, maxExperimentRuns)
	}
	return nil
}

// maxExperimentRuns bounds the server-side repetition count.
const maxExperimentRuns = 1000

// key is the artifact-cache identity of the normalized spec.
func (e ExperimentSpec) key() string {
	return fmt.Sprintf("experiment|%s|%d|%g|%d", e.Name, e.Seed, e.Scale, e.Runs)
}

// options resolves the spec into engine options on this service's
// worker budget and data directory.
func (s *Service) options(spec ExperimentSpec) engine.Options {
	return engine.Options{
		Seed:    spec.Seed,
		Scale:   spec.Scale,
		Runs:    spec.Runs,
		Workers: s.cfg.Workers,
		DataDir: s.cfg.DataDir,
	}
}

// ExperimentInfo describes one registry entry for listings.
type ExperimentInfo struct {
	Name  string        `json:"name"`
	Title string        `json:"title"`
	Axes  []engine.Axis `json:"axes,omitempty"`
}

// Experiments lists the registry with each grid's axes at the given
// spec defaults (zero spec = full scale).
func (s *Service) Experiments(spec ExperimentSpec) []ExperimentInfo {
	opts := s.options(spec)
	var out []ExperimentInfo
	for _, exp := range engine.All() {
		info := ExperimentInfo{Name: exp.Name, Title: exp.Title}
		if exp.Axes != nil {
			info.Axes = exp.Axes(opts)
		}
		out = append(out, info)
	}
	return out
}

// ExperimentResult is the deliverable of one experiment job.
type ExperimentResult struct {
	Name  string  `json:"name"`
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	Runs  int     `json:"runs,omitempty"`
	// Render is the experiment's human-readable report — byte-identical
	// to `xbarattack <name>` at the same options.
	Render string `json:"render"`
	// Result is the experiment's structured JSON form.
	Result json.RawMessage `json:"result"`
	// Cached reports whether the result came from the artifact cache.
	Cached bool `json:"cached"`
}

// RunExperiment executes (or serves from cache) one experiment job
// synchronously. Jobs are admitted through the service gate, so at most
// Config.MaxConcurrentJobs run at once.
func (s *Service) RunExperiment(spec ExperimentSpec) (*ExperimentResult, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	exp, _ := engine.Lookup(spec.Name)
	compute := func() (any, error) {
		var res *ExperimentResult
		err := s.gate.RunErr(func() error {
			out, err := exp.Run(s.options(spec))
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := out.WriteJSON(&buf); err != nil {
				return err
			}
			res = &ExperimentResult{
				Name: spec.Name, Seed: spec.Seed, Scale: spec.Scale, Runs: spec.Runs,
				Render: out.Render(),
				Result: json.RawMessage(buf.Bytes()),
			}
			return nil
		})
		return res, err
	}
	val, cached, err := s.cache.Do(spec.key(), compute)
	if err != nil {
		return nil, err
	}
	res := *(val.(*ExperimentResult)) // copy so Cached can differ per caller
	res.Cached = cached
	return &res, nil
}

// JobStatus is an experiment job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// ExperimentJob tracks one asynchronous experiment launch.
type ExperimentJob struct {
	id   string
	spec ExperimentSpec
	done chan struct{}

	mu     sync.Mutex
	result *ExperimentResult
	err    error
}

// ID returns the job's poll handle.
func (j *ExperimentJob) ID() string { return j.id }

// Spec returns the job's launch spec.
func (j *ExperimentJob) Spec() ExperimentSpec { return j.spec }

// Done returns a channel closed when the job finishes.
func (j *ExperimentJob) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current status and, once done, its result
// or error.
func (j *ExperimentJob) Snapshot() (JobStatus, *ExperimentResult, error) {
	select {
	case <-j.done:
	default:
		return JobRunning, nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return JobFailed, nil, j.err
	}
	return JobDone, j.result, nil
}

// LaunchExperiment starts one experiment job in the background and
// returns its poll handle. Identical concurrent launches collapse onto
// one computation through the artifact cache; each keeps its own job
// record.
func (s *Service) LaunchExperiment(spec ExperimentSpec) (*ExperimentJob, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = spec.withDefaults()
	// Validate before creating any job record, so a malformed spec is an
	// immediate 400 on the launch path, exactly as on the synchronous one.
	if err := spec.validate(); err != nil {
		return nil, err
	}
	job := &ExperimentJob{spec: spec, done: make(chan struct{})}
	// add assigns job.id under the table lock before publishing the job;
	// concurrent pollers may read ID() the moment add returns.
	if err := s.jobs.add(job); err != nil {
		return nil, err
	}
	go func() {
		res, err := s.RunExperiment(spec)
		job.mu.Lock()
		job.result, job.err = res, err
		job.mu.Unlock()
		close(job.done)
	}()
	return job, nil
}

// ExperimentJobByID returns a tracked job.
func (s *Service) ExperimentJobByID(id string) (*ExperimentJob, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		return nil, fmt.Errorf("service: job %q: %w", id, ErrJobUnknown)
	}
	return j, nil
}

// jobTable tracks experiment jobs with a bounded FIFO of finished
// entries: running jobs are never evicted; beyond the bound the oldest
// finished jobs are forgotten (their cached artifacts remain in the
// artifact cache, so re-launching the same spec is instant). The bound
// also backpressures admission: when every tracked job is still
// running, further launches are refused rather than growing the table
// (and its goroutines) without limit.
type jobTable struct {
	mu    sync.Mutex
	seq   int64
	jobs  map[string]*ExperimentJob
	order []string
	bound int
}

// ErrJobLimit indicates the experiment-job table is full of running
// jobs (Config.MaxExperimentJobs); the client should retry after some
// finish.
var ErrJobLimit = errors.New("service: experiment job limit reached")

func newJobTable(bound int) *jobTable {
	if bound <= 0 {
		bound = 1024
	}
	return &jobTable{jobs: make(map[string]*ExperimentJob), bound: bound}
}

// add registers a job, assigns its id under the lock (pollers may read
// it the moment the job is published), and evicts old finished jobs.
// It refuses the job when the table is at its bound with nothing
// finished to evict.
func (t *jobTable) add(j *ExperimentJob) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.jobs) >= t.bound {
		evicted := false
		for i, oid := range t.order {
			oj, ok := t.jobs[oid]
			if !ok {
				continue
			}
			select {
			case <-oj.done:
				delete(t.jobs, oid)
				t.order = append(t.order[:i:i], t.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			// Everything tracked is still running: admitting more would
			// grow the table and its launch goroutines without bound.
			return fmt.Errorf("service: %d jobs running: %w", len(t.jobs), ErrJobLimit)
		}
	}
	t.seq++
	j.id = fmt.Sprintf("job-%d", t.seq)
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return nil
}

func (t *jobTable) get(id string) (*ExperimentJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}
