package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"xbarsec/api"
	// The experiment import is load-bearing twice over: its init
	// populates the engine registry this layer dispatches through, and
	// RunFig5 serves specs carrying typed fig5 options.
	"xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/tensor"
)

// The experiment-job layer turns every experiment in the engine
// registry into a server-side job: any registered grid can be launched,
// listed and polled remotely, with results memoized in the service's
// artifact cache. Registry experiments build their victims through the
// process-wide victim store, so repeated launches of the same spec —
// the common case for a result-serving deployment — cost one training
// and then memory reads.

// ErrExperimentUnknown indicates a launch for an unregistered
// experiment name.
var ErrExperimentUnknown = errors.New("service: unknown experiment")

// ErrJobUnknown indicates a poll for an unknown (or evicted) job.
var ErrJobUnknown = errors.New("service: unknown experiment job")

// ExperimentSpec fully determines one experiment job. Registry
// experiments are pure functions of (name, seed, scale, runs, options)
// plus the server's DataDir, so the spec doubles as the artifact-cache
// key; Workers is deliberately excluded (results are bit-identical at
// any worker count). It is served verbatim on the wire, so it is
// defined by the public protocol package.
type ExperimentSpec = api.ExperimentSpec

// specDefaults normalizes the spec so equivalent requests share one
// cache key: Scale 0 means full scale (the engine's Normalized
// contract), so {"scale":0} and {"scale":1} must not recompute; an
// all-default fig5 envelope means no fig5 options; a tensor-backend
// assertion this server satisfies is rewritten to its canonical
// spelling, so {"tensor_backend":""} and {"tensor_backend":"fast"} on
// a fast server are one spec (and the echoed result records which
// backend computed it); and an options envelope with nothing left in
// it means no options. The copy of *e.Options keeps the caller's
// envelope unmutated.
func specDefaults(e ExperimentSpec) ExperimentSpec {
	if e.Scale == 0 {
		e.Scale = 1
	}
	if e.Options != nil {
		o := *e.Options
		if f := o.Fig5; f != nil && len(f.Queries) == 0 && len(f.Lambdas) == 0 && f.SurrogateEpochs == 0 {
			o.Fig5 = nil
		}
		e.Options = &o
	}
	if canon := canonicalBackend(); e.Options == nil {
		if canon != "" {
			e.Options = &api.ExperimentOptions{TensorBackend: canon}
		}
	} else if tb := e.Options.TensorBackend; (tb == "" || tb == tensor.ActiveName()) && tb != canon {
		e.Options.TensorBackend = canon
	}
	if e.Options != nil && *e.Options == (api.ExperimentOptions{}) {
		e.Options = nil
	}
	return e
}

// canonicalBackend is the canonical ExperimentOptions.TensorBackend
// spelling for specs this server satisfies: "" under the bit-exact
// reference default — so pre-v2.1 specs, their journal records and
// their spilled artifacts keep their historical identity — and the
// backend name otherwise.
func canonicalBackend() string {
	if n := tensor.ActiveName(); n != tensor.RefName {
		return n
	}
	return ""
}

// backendKeySuffix distinguishes artifacts computed under a
// non-reference tensor backend in every cache/spill key. Reference
// keys keep their historical (unsuffixed) form, so artifacts spilled
// by pre-v2.1 servers stay servable; non-bit-exact artifacts never
// collide with them across restarts that change the serving mode.
func backendKeySuffix() string {
	if canon := canonicalBackend(); canon != "" {
		return "|tb:" + canon
	}
	return ""
}

// fig5OptionsOf extracts the typed fig5 options, nil when absent.
func fig5OptionsOf(e ExperimentSpec) *api.Fig5Options {
	if e.Options == nil {
		return nil
	}
	return e.Options.Fig5
}

// Option-grid bounds: one unauthenticated request must not be able to
// size server allocations arbitrarily. The paper's densest fig5 grid is
// 7 budgets x 6 lambdas.
const (
	maxOptionGrid       = 64
	maxSurrogateEpochs  = 10000
	maxExperimentRuns   = 1000
	maxOptionQueryValue = 1 << 20
)

// validateSpec rejects specs the engine would reject — and option
// payloads outside the server's bounds — before any job record or
// cache flight exists, returning the registry entry a valid spec names
// (so callers never repeat the lookup).
func validateSpec(e ExperimentSpec) (engine.Experiment, error) {
	exp, ok := engine.Lookup(e.Name)
	if !ok {
		return engine.Experiment{}, fmt.Errorf("service: experiment %q (have %s): %w",
			e.Name, strings.Join(engine.Names(), ", "), ErrExperimentUnknown)
	}
	if e.Scale < 0 || e.Scale > 1 {
		return engine.Experiment{}, badRequestf("scale %v outside (0, 1]", e.Scale)
	}
	// Runs sizes grid allocations (configs x runs cells); an absurd value
	// in one unauthenticated request must not be able to OOM the server.
	// The paper's largest grid uses 10 runs; 1000 is generous headroom.
	if e.Runs < 0 || e.Runs > maxExperimentRuns {
		return engine.Experiment{}, badRequestf("runs %d outside [0, %d]", e.Runs, maxExperimentRuns)
	}
	if e.Options == nil {
		return exp, nil
	}
	// A backend assertion must name a backend this binary knows and the
	// one this process actually computes with: the backend is selected
	// once at startup (xbarserve -fast), not per job, so a mismatched
	// spec is refused rather than silently served from the wrong one.
	if tb := e.Options.TensorBackend; tb != "" {
		if _, err := tensor.ByName(tb); err != nil {
			return engine.Experiment{}, badRequestf("unknown tensor backend %q (want %q or %q)",
				tb, tensor.RefName, tensor.FastName)
		}
		if tb != tensor.ActiveName() {
			return engine.Experiment{}, badRequestf("tensor backend %q not active (server runs %q)",
				tb, tensor.ActiveName())
		}
	}
	f := e.Options.Fig5
	if f != nil && e.Name != "fig5" {
		return engine.Experiment{}, badRequestf("options.fig5 requires experiment fig5, not %q", e.Name)
	}
	if f == nil {
		return exp, nil
	}
	if len(f.Queries) > maxOptionGrid || len(f.Lambdas) > maxOptionGrid {
		return engine.Experiment{}, badRequestf("fig5 option grids capped at %d points (got %d queries, %d lambdas)",
			maxOptionGrid, len(f.Queries), len(f.Lambdas))
	}
	for _, q := range f.Queries {
		if q <= 0 || q > maxOptionQueryValue {
			return engine.Experiment{}, badRequestf("fig5 query budget %d outside [1, %d]", q, maxOptionQueryValue)
		}
	}
	for _, l := range f.Lambdas {
		if l < 0 {
			return engine.Experiment{}, badRequestf("fig5 lambda %v must be non-negative", l)
		}
	}
	if f.SurrogateEpochs < 0 || f.SurrogateEpochs > maxSurrogateEpochs {
		return engine.Experiment{}, badRequestf("fig5 surrogate epochs %d outside [0, %d]", f.SurrogateEpochs, maxSurrogateEpochs)
	}
	return exp, nil
}

// specKey is the artifact-cache identity of the normalized spec,
// including any option grids (two specs with different grids are
// different experiments) and any non-reference tensor backend (its
// numbers differ from the reference artifact's within the tolerance
// bound, so they must never alias it in the spill store).
func specKey(e ExperimentSpec) string {
	key := fmt.Sprintf("experiment|%s|%d|%g|%d", e.Name, e.Seed, e.Scale, e.Runs)
	if f := fig5OptionsOf(e); f != nil {
		key += fmt.Sprintf("|fig5|%v|%v|%d", f.Queries, f.Lambdas, f.SurrogateEpochs)
	}
	if e.Options != nil && e.Options.TensorBackend != "" {
		key += "|tb:" + e.Options.TensorBackend
	}
	return key
}

// options resolves the spec into engine options on this service's
// worker budget and data directory.
func (s *Service) options(spec ExperimentSpec) engine.Options {
	return engine.Options{
		Seed:    spec.Seed,
		Scale:   spec.Scale,
		Runs:    spec.Runs,
		Workers: s.cfg.Workers,
		DataDir: s.cfg.DataDir,
	}
}

// runnerFor resolves a validated spec to its runner: the registry entry
// itself, or — when the spec carries typed options — the experiment's
// optioned run path (fig5's custom query/λ grids).
func runnerFor(exp engine.Experiment, spec ExperimentSpec) func(engine.Options) (engine.Result, error) {
	f := fig5OptionsOf(spec)
	if f == nil {
		return exp.Run
	}
	return func(opts engine.Options) (engine.Result, error) {
		return experiment.RunFig5(experiment.Fig5Options{
			Options:         opts,
			Queries:         f.Queries,
			Lambdas:         f.Lambdas,
			SurrogateEpochs: f.SurrogateEpochs,
		})
	}
}

// ExperimentInfo describes one registry entry for listings (the wire
// type).
type ExperimentInfo = api.ExperimentInfo

// Experiments lists the registry with each grid's axes at the given
// spec defaults (zero spec = full scale).
func (s *Service) Experiments(spec ExperimentSpec) []ExperimentInfo {
	opts := s.options(spec)
	out := []ExperimentInfo{}
	for _, exp := range engine.All() {
		info := ExperimentInfo{Name: exp.Name, Title: exp.Title}
		if exp.Axes != nil {
			for _, ax := range exp.Axes(opts) {
				info.Axes = append(info.Axes, api.Axis{Name: ax.Name, Values: ax.Values})
			}
		}
		out = append(out, info)
	}
	return out
}

// ExperimentResult is the deliverable of one experiment job (the wire
// type).
type ExperimentResult = api.ExperimentResult

// RunExperiment executes (or serves from cache) one experiment job
// synchronously. Jobs are admitted through the service gate, so at most
// Config.MaxConcurrentJobs run at once. In a cluster, the spec's ring
// owner computes (and serves) it; other nodes answer with a redirect.
func (s *Service) RunExperiment(spec ExperimentSpec) (*ExperimentResult, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = specDefaults(spec)
	exp, err := validateSpec(spec)
	if err != nil {
		return nil, err
	}
	// Ring admission after validation: a malformed spec is a 400 on
	// every node, never a redirect to the owner's 400.
	if err := s.routeKey(specKey(spec)); err != nil {
		return nil, err
	}
	return s.runExperimentLocal(spec, exp)
}

// runExperimentReplay is RunExperiment minus ring admission — the path
// journal replay (runJob at recovery) takes, because a journaled job is
// this node's to finish regardless of how the membership looked when it
// was accepted.
func (s *Service) runExperimentReplay(spec ExperimentSpec) (*ExperimentResult, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = specDefaults(spec)
	exp, err := validateSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.runExperimentLocal(spec, exp)
}

// runExperimentLocal computes (or serves) a validated spec on this
// node, unconditionally.
func (s *Service) runExperimentLocal(spec ExperimentSpec, exp engine.Experiment) (*ExperimentResult, error) {
	run := runnerFor(exp, spec)
	key := specKey(spec)
	// fromSpill is only written by the one computing flight (cache.Do is
	// singleflight) and only read after Do returns in that same caller.
	var fromSpill bool
	compute := func() (any, error) {
		// Read-through: a previous process may have finished this exact
		// spec — serve its verified artifact instead of recomputing.
		if res := spillLoad[ExperimentResult](s, key); res != nil {
			fromSpill = true
			return res, nil
		}
		// A peer may already hold this artifact (it owned the key before a
		// membership change, or served it pre-cluster): fetch-and-verify
		// beats recomputing, and a failed fetch just falls through.
		if res := s.peerFetchExperiment(key); res != nil {
			fromSpill = true
			return res, nil
		}
		var res *ExperimentResult
		err := s.gate.RunErr(func() error {
			out, err := run(s.options(spec))
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := out.WriteJSON(&buf); err != nil {
				return err
			}
			// Compact to the canonical artifact form: a JSON round trip
			// through the spill store compacts embedded RawMessage, so
			// storing compact bytes from the start keeps results
			// bit-identical whether served from memory, from disk, or
			// from a post-restart replay.
			var compact bytes.Buffer
			if err := json.Compact(&compact, buf.Bytes()); err != nil {
				return err
			}
			res = &ExperimentResult{
				Name: spec.Name, Seed: spec.Seed, Scale: spec.Scale, Runs: spec.Runs,
				Options: spec.Options,
				Render:  out.Render(),
				Result:  json.RawMessage(compact.Bytes()),
			}
			return nil
		})
		if err == nil {
			// Write-through: completion is durable the moment it exists, so
			// a crash right after never forces this spec to recompute.
			s.spillArtifact(key, res)
		}
		return res, err
	}
	val, cached, err := s.cache.Do(key, compute)
	if err != nil {
		return nil, err
	}
	res := *(val.(*ExperimentResult)) // copy so Cached can differ per caller
	res.Cached = cached || fromSpill
	return &res, nil
}

// JobStatus is an experiment job's lifecycle state (the wire type).
type JobStatus = api.JobStatus

// Job lifecycle states.
const (
	JobRunning = api.JobRunning
	JobDone    = api.JobDone
	JobFailed  = api.JobFailed
)

// ExperimentJob tracks one asynchronous experiment launch.
type ExperimentJob struct {
	id   string
	spec ExperimentSpec
	done chan struct{}

	mu     sync.Mutex
	result *ExperimentResult
	err    error
}

// ID returns the job's poll handle.
func (j *ExperimentJob) ID() string { return j.id }

// Spec returns the job's launch spec.
func (j *ExperimentJob) Spec() ExperimentSpec { return j.spec }

// Done returns a channel closed when the job finishes.
func (j *ExperimentJob) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current status and, once done, its result
// or error.
func (j *ExperimentJob) Snapshot() (JobStatus, *ExperimentResult, error) {
	select {
	case <-j.done:
	default:
		return JobRunning, nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return JobFailed, nil, j.err
	}
	return JobDone, j.result, nil
}

// LaunchExperiment starts one experiment job in the background and
// returns its poll handle. Identical concurrent launches collapse onto
// one computation through the artifact cache; each keeps its own job
// record.
func (s *Service) LaunchExperiment(spec ExperimentSpec) (*ExperimentJob, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = specDefaults(spec)
	// Validate before creating any job record, so a malformed spec is an
	// immediate 400 on the launch path, exactly as on the synchronous one.
	if _, err := validateSpec(spec); err != nil {
		return nil, err
	}
	if err := s.routeKey(specKey(spec)); err != nil {
		return nil, err
	}
	job := &ExperimentJob{spec: spec, done: make(chan struct{})}
	// add assigns job.id under the table lock before publishing the job;
	// concurrent pollers may read ID() the moment add returns.
	if err := s.jobs.add(job); err != nil {
		return nil, err
	}
	// Journal before launch: a job the journal cannot record is refused
	// (typed unavailable), never accepted without restart safety.
	if err := s.journalLaunch(journalRecord{Op: opLaunch, ID: job.id, Spec: &job.spec}); err != nil {
		s.jobs.remove(job.id)
		return nil, err
	}
	s.runJob(job)
	return job, nil
}

// runJob runs one accepted job to completion in the background. A
// panicking run — inside the compute (recovered by the cache into a
// typed memo.PanicError) or anywhere else in the runner (recovered
// here) — marks the job failed instead of leaving it running forever
// with its done channel never closed.
func (s *Service) runJob(job *ExperimentJob) {
	go func() {
		var res *ExperimentResult
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("service: job runner panicked: %v", r)
				}
			}()
			res, err = s.runExperimentReplay(job.spec)
		}()
		job.mu.Lock()
		job.result, job.err = res, err
		job.mu.Unlock()
		close(job.done)
		if err != nil {
			s.failedJobs.Add(1)
		}
		s.journalFinish(job.id, err)
	}()
}

// ExperimentJobByID returns a tracked job. In a cluster, an id minted
// by another node (its "@node" suffix names a ring member) redirects
// the poll there instead of 404ing.
func (s *Service) ExperimentJobByID(id string) (*ExperimentJob, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		if err := s.jobRedirect(id); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("service: job %q: %w", id, ErrJobUnknown)
	}
	return j, nil
}

// jobTable tracks experiment jobs with a bounded FIFO of finished
// entries: running jobs are never evicted; beyond the bound the oldest
// finished jobs are forgotten (their cached artifacts remain in the
// artifact cache, so re-launching the same spec is instant). The bound
// also backpressures admission: when every tracked job is still
// running, further launches are refused rather than growing the table
// (and its goroutines) without limit.
type jobTable struct {
	mu    sync.Mutex
	seq   int64
	jobs  map[string]*ExperimentJob
	order []string
	bound int
	// suffix ("@<node-id>" in a cluster, "" otherwise) marks every
	// minted id with the node that owns the job, so any node can route a
	// poll for an id it does not track.
	suffix string
}

// ErrJobLimit indicates the experiment-job table is full of running
// jobs (Config.MaxExperimentJobs); the client should retry after some
// finish.
var ErrJobLimit = errors.New("service: experiment job limit reached")

func newJobTable(bound int) *jobTable {
	if bound <= 0 {
		bound = 1024
	}
	return &jobTable{jobs: make(map[string]*ExperimentJob), bound: bound}
}

// add registers a job, assigns its id under the lock (pollers may read
// it the moment the job is published), and evicts old finished jobs.
// It refuses the job when the table is at its bound with nothing
// finished to evict.
func (t *jobTable) add(j *ExperimentJob) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.jobs) >= t.bound {
		evicted := false
		for i, oid := range t.order {
			oj, ok := t.jobs[oid]
			if !ok {
				continue
			}
			select {
			case <-oj.done:
				delete(t.jobs, oid)
				t.order = append(t.order[:i:i], t.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			// Everything tracked is still running: admitting more would
			// grow the table and its launch goroutines without bound.
			return fmt.Errorf("service: %d jobs running: %w", len(t.jobs), ErrJobLimit)
		}
	}
	t.seq++
	j.id = fmt.Sprintf("job-%d%s", t.seq, t.suffix)
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return nil
}

// addExisting registers a restored job under its original id (journal
// recovery), advancing the sequence past it so freshly assigned ids
// never collide with replayed ones.
func (t *jobTable) addExisting(j *ExperimentJob) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.jobs[j.id]; ok {
		return fmt.Errorf("service: job %q already tracked", j.id)
	}
	var n int64
	if _, err := fmt.Sscanf(j.id, "job-%d", &n); err == nil && n > t.seq {
		t.seq = n
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return nil
}

// remove untracks a job whose acceptance was rolled back (journal
// refusal). Scans order from the tail: the job was just added.
func (t *jobTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.jobs, id)
	for i := len(t.order) - 1; i >= 0; i-- {
		if t.order[i] == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}

func (t *jobTable) get(id string) (*ExperimentJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}
