package service

import (
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// ErrSessionUnknown indicates a lookup for a closed, expired or
// never-opened session.
var ErrSessionUnknown = errors.New("service: unknown session")

// ErrSessionLimit indicates a victim is at its per-victim open-session
// cap (Config.MaxSessionsPerVictim).
var ErrSessionLimit = errors.New("service: victim session limit reached")

// coalescedHW adapts a victim's batcher to the oracle.Hardware interface:
// every read becomes one coalesced round trip through the shared array.
// It also implements oracle.ForwardPowerer, so a power-measuring query
// costs a single fused batched read instead of two.
type coalescedHW struct {
	v *Victim
}

func (c coalescedHW) Forward(u []float64) ([]float64, error) {
	r := &batchRequest{u: u}
	if err := c.v.batcher.submit(r); err != nil {
		return nil, err
	}
	return r.y, nil
}

func (c coalescedHW) Power(u []float64) (float64, error) {
	r := &batchRequest{u: u, wantPower: true}
	if err := c.v.batcher.submit(r); err != nil {
		return 0, err
	}
	return r.power, nil
}

func (c coalescedHW) ForwardPower(u []float64) ([]float64, float64, error) {
	r := &batchRequest{u: u, wantPower: true}
	if err := c.v.batcher.submit(r); err != nil {
		return nil, 0, err
	}
	return r.y, r.power, nil
}

// ForwardBatch serves a whole query slice through the coalescer in one
// submission: the flusher sees the slice contiguously, so a batched
// client query costs a constant number of array passes instead of
// len(us) round trips.
func (c coalescedHW) ForwardBatch(us [][]float64) ([][]float64, error) {
	rs := make([]*batchRequest, len(us))
	for i, u := range us {
		rs[i] = &batchRequest{u: u}
	}
	if err := c.v.batcher.submitAll(rs); err != nil {
		return nil, err
	}
	ys := make([][]float64, len(us))
	for i, r := range rs {
		ys[i] = r.y
	}
	return ys, nil
}

// ForwardPowerBatch is the fused batched read: both observables for the
// whole slice in one submission.
func (c coalescedHW) ForwardPowerBatch(us [][]float64) ([][]float64, []float64, error) {
	rs := make([]*batchRequest, len(us))
	for i, u := range us {
		rs[i] = &batchRequest{u: u, wantPower: true}
	}
	if err := c.v.batcher.submitAll(rs); err != nil {
		return nil, nil, err
	}
	ys := make([][]float64, len(us))
	ps := make([]float64, len(us))
	for i, r := range rs {
		ys[i], ps[i] = r.y, r.power
	}
	return ys, ps, nil
}

func (c coalescedHW) Predict(u []float64) (int, error) {
	y, err := c.Forward(u)
	if err != nil {
		return 0, err
	}
	return tensor.ArgMax(y), nil
}

func (c coalescedHW) Inputs() int                  { return c.v.hw.Inputs() }
func (c coalescedHW) Outputs() int                 { return c.v.hw.Outputs() }
func (c coalescedHW) Crossbar() *crossbar.Crossbar { return c.v.hw.Crossbar() }

// Compile-time checks: the coalescer is oracle hardware with the fused
// and batched fast paths.
var (
	_ oracle.Hardware            = coalescedHW{}
	_ oracle.ForwardPowerer      = coalescedHW{}
	_ oracle.ForwardBatcher      = coalescedHW{}
	_ oracle.ForwardPowerBatcher = coalescedHW{}
)

// SessionConfig controls what one attacker session may observe and spend.
type SessionConfig struct {
	// Mode selects label-only or raw-output disclosure (0 = label-only).
	Mode oracle.Mode
	// MeasurePower attaches the power side channel to every query.
	MeasurePower bool
	// PowerNoiseStd is the relative instrument noise on power readings.
	PowerNoiseStd float64
	// Budget caps the session's oracle queries. 0 selects the service
	// default; negative means unlimited.
	Budget int
}

// Session is one attacker's budgeted handle on a shared victim. All its
// queries flow through the victim's coalescer, its budget is enforced
// atomically by the oracle layer (exact under any concurrency), and its
// instrument-noise randomness comes from a session-private stream
// derived with rng.Split from the service root — so no session's draws
// ever perturb another's.
type Session struct {
	id     string
	victim *Victim
	oracle *oracle.Oracle
	// lastUsed is the unix-nano time of the session's last query (or
	// its open), read by the idle-TTL janitor.
	lastUsed atomic.Int64
}

// OpenSession admits a new attacker session against a registered victim.
// In a cluster the victim's ring owner hosts all of its sessions (their
// state — budgets, noise streams — is node-local); other nodes redirect,
// and the SDK pins the session handle to the node that opened it.
func (s *Service) OpenSession(victim string, cfg SessionConfig) (*Session, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	if err := s.routeVictim(victim); err != nil {
		return nil, err
	}
	v, err := s.Victim(victim)
	if err != nil {
		return nil, err
	}
	if cfg.Mode == 0 {
		cfg.Mode = oracle.LabelOnly
	}
	budget := cfg.Budget
	switch {
	case budget == 0:
		budget = s.cfg.DefaultSessionBudget
	case budget < 0:
		budget = 0 // unlimited in oracle terms
	}
	// Admission against the per-victim cap: optimistically increment,
	// then undo on overshoot. Concurrent opens can transiently exceed
	// the cap inside this window but never both remain admitted.
	if max := s.cfg.MaxSessionsPerVictim; max > 0 {
		if v.open.Add(1) > int64(max) {
			v.open.Add(-1)
			return nil, fmt.Errorf("service: victim %q: %w", v.name, ErrSessionLimit)
		}
	} else {
		v.open.Add(1)
	}
	admitted := false
	defer func() {
		if !admitted {
			v.open.Add(-1)
		}
	}()
	ord := v.sessionSeq.Add(1)
	// The id doubles as the session's only credential on the HTTP API,
	// so it carries an unguessable token — a sequential id would let
	// any client spend or close another attacker's budget.
	var token [8]byte
	if _, err := cryptorand.Read(token[:]); err != nil {
		return nil, fmt.Errorf("service: generating session token: %w", err)
	}
	id := fmt.Sprintf("%s-s%d-%x", v.name, ord, token)
	src := s.root.Split("victim:"+v.name).SplitN("session", int(ord))
	var noiseSrc *rng.Source
	if cfg.PowerNoiseStd > 0 {
		noiseSrc = src.Split("power-noise")
	}
	orc, err := oracle.New(coalescedHW{v: v}, oracle.Config{
		Mode:          cfg.Mode,
		MeasurePower:  cfg.MeasurePower,
		PowerNoiseStd: cfg.PowerNoiseStd,
		Src:           noiseSrc,
		Budget:        budget,
	})
	if err != nil {
		return nil, err
	}
	sess := &Session{id: id, victim: v, oracle: orc}
	sess.lastUsed.Store(time.Now().UnixNano()) //xbar:allow session idle-TTL bookkeeping: wall time drives eviction only, never results
	if !s.sessions.put(id, sess) {
		return nil, fmt.Errorf("service: session id collision %q", id)
	}
	admitted = true
	return sess, nil
}

// Session returns an open session by id.
func (s *Service) Session(id string) (*Session, error) {
	sess, ok := s.sessions.get(id)
	if !ok {
		return nil, fmt.Errorf("service: session %q: %w", id, ErrSessionUnknown)
	}
	return sess, nil
}

// CloseSession removes a session; its remaining budget is forfeited.
func (s *Service) CloseSession(id string) error {
	sess, ok := s.sessions.remove(id)
	if !ok {
		return fmt.Errorf("service: session %q: %w", id, ErrSessionUnknown)
	}
	sess.victim.open.Add(-1)
	return nil
}

// ID returns the session identifier.
func (sess *Session) ID() string { return sess.id }

// Victim returns the attacked victim's name.
func (sess *Session) Victim() string { return sess.victim.name }

// Mode returns the session's disclosure mode.
func (sess *Session) Mode() oracle.Mode { return sess.oracle.Mode() }

// Query runs one attacker query through the victim's coalescer, charging
// the session budget if and only if a response is delivered (the oracle
// accounting contract). Every query marks the session live for the
// idle-TTL janitor.
func (sess *Session) Query(u []float64) (oracle.Response, error) {
	sess.lastUsed.Store(time.Now().UnixNano()) //xbar:allow session idle-TTL bookkeeping: wall time drives eviction only, never results
	return sess.oracle.Query(u)
}

// QueryBatch runs a whole query slice as one coalesced submission,
// with per-query budget accounting (prefix admission — see
// oracle.QueryBatch). Responses are bit-identical to calling Query
// sequentially with the same inputs, but the victim serves the batch
// in a constant number of array passes.
func (sess *Session) QueryBatch(us [][]float64) ([]oracle.Response, error) {
	sess.lastUsed.Store(time.Now().UnixNano()) //xbar:allow session idle-TTL bookkeeping: wall time drives eviction only, never results
	return sess.oracle.QueryBatch(us)
}

// Queries returns how many queries the session has been charged.
func (sess *Session) Queries() int { return sess.oracle.Queries() }

// Budget returns the session's query cap (0 = unlimited).
func (sess *Session) Budget() int { return sess.oracle.Budget() }

// Remaining returns the unspent budget, or -1 when unlimited.
func (sess *Session) Remaining() int { return sess.oracle.Remaining() }
