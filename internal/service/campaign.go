package service

import (
	"errors"
	"fmt"

	"xbarsec/api"
	"xbarsec/internal/attack"
	"xbarsec/internal/oracle"
	"xbarsec/internal/pool"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

// CampaignSpec fully determines one model-extraction-plus-evasion
// campaign: collect a budgeted query set from the victim, train a
// surrogate with the paper's joint loss (Eq. 9), craft FGSM adversarial
// examples on the surrogate, and measure the oracle's accuracy on them —
// one cell of the paper's Figure 5 grid, as a service job. Every random
// choice derives from Seed via rng.Split, so against a noise-free
// victim a spec is also the campaign's cache key and replaying it is
// bit-identical at any worker count. Noisy victims' reads depend on
// concurrent traffic, so their campaigns run uncached.
// CampaignSpec is the internal job spec; its wire form is
// api.CampaignRequest (the HTTP layer converts, parsing the mode).
type CampaignSpec struct {
	// Victim names the registered victim to attack.
	Victim string
	// Mode is the disclosure mode (label-only or raw-output).
	Mode oracle.Mode
	// Seed drives collection shuffling, surrogate init and SGD order.
	Seed int64
	// Queries is the attacker's oracle budget (Figure 5's cost axis).
	Queries int
	// Lambda is the power-loss weight λ of Eq. (9); 0 ignores power.
	Lambda float64
	// SurrogateEpochs overrides surrogate training length (0 = default).
	SurrogateEpochs int
	// AttackEps is the FGSM strength (0 = the paper's Figure 5 value 0.1).
	AttackEps float64
}

// withDefaults normalizes the optional fields.
func (c CampaignSpec) withDefaults() CampaignSpec {
	if c.AttackEps == 0 {
		c.AttackEps = 0.1
	}
	return c
}

// key is the artifact-cache identity: every field that influences the
// result, nothing that doesn't (worker count deliberately excluded — the
// result is bit-identical at any). A non-reference tensor backend
// shifts the numbers within its tolerance bound, so it suffixes the
// key rather than aliasing the reference artifact.
func (c CampaignSpec) key() string {
	return fmt.Sprintf("campaign|%s|%s|%d|%d|%g|%d|%g",
		c.Victim, c.Mode, c.Seed, c.Queries, c.Lambda, c.SurrogateEpochs, c.AttackEps) +
		backendKeySuffix()
}

// CampaignResult is the deliverable of one campaign job — served
// verbatim on the wire, so it is defined by the public protocol
// package.
type CampaignResult = api.CampaignResult

// RunCampaign executes (or serves from cache) one campaign job. Jobs are
// admitted through the service gate, so at most Config.MaxConcurrentJobs
// run at once; within a job the per-sample attack evaluation fans out
// across Config.Workers via the deterministic pool. In a cluster the
// victim's ring owner serves all of its campaigns; other nodes redirect.
func (s *Service) RunCampaign(spec CampaignSpec) (*CampaignResult, error) {
	if err := s.routeVictim(spec.Victim); err != nil {
		return nil, err
	}
	return s.runCampaignJob(spec)
}

// runCampaignJob is RunCampaign minus ring admission — the journal
// replay path (drainPendingSync) takes it, because a journaled job is
// this node's to finish regardless of membership changes across the
// restart.
func (s *Service) runCampaignJob(spec CampaignSpec) (*CampaignResult, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = spec.withDefaults()
	v, err := s.Victim(spec.Victim)
	if err != nil {
		return nil, err
	}
	if v.train == nil || v.test == nil {
		return nil, fmt.Errorf("service: victim %q has no data splits for campaigns", v.name)
	}
	if spec.Queries <= 0 {
		return nil, fmt.Errorf("service: campaign query budget %d must be positive", spec.Queries)
	}
	switch spec.Mode {
	case oracle.LabelOnly, oracle.RawOutput:
	default:
		return nil, fmt.Errorf("service: unknown disclosure mode %v", spec.Mode)
	}
	compute := func() (*CampaignResult, error) {
		var res *CampaignResult
		err := s.gate.RunErr(func() error {
			var err error
			res, err = s.runCampaign(spec, v)
			return err
		})
		return res, err
	}
	// A noisy victim's reads depend on concurrent traffic, so its
	// results are not functions of the spec — never cache them.
	if v.Noisy() {
		res, err := compute()
		if err != nil {
			return nil, err
		}
		s.campaigns.Add(1)
		return res, nil
	}
	key := spec.key()
	var fromSpill bool
	val, cached, err := s.cache.Do(key, func() (any, error) {
		if res := spillLoad[CampaignResult](s, key); res != nil {
			fromSpill = true
			return res, nil
		}
		// Journal the launch before computing, exactly like an experiment
		// job: a crash mid-campaign replays the spec at the next Open
		// (once the victim registers) instead of losing the work. The key
		// doubles as the journal id — sync jobs have no poll handle.
		if err := s.journalLaunch(journalRecord{Op: opLaunch, ID: key, Campaign: &spec}); err != nil {
			return nil, err
		}
		res, err := compute()
		if err == nil {
			s.spillArtifact(key, res)
		}
		s.journalFinish(key, err)
		return res, err
	})
	if err != nil {
		return nil, err
	}
	res := *(val.(*CampaignResult)) // copy so Cached can differ per caller
	res.Cached = cached || fromSpill
	s.campaigns.Add(1)
	return &res, nil
}

// runCampaign is the deterministic pipeline body.
func (s *Service) runCampaign(spec CampaignSpec, v *Victim) (*CampaignResult, error) {
	root := rng.New(spec.Seed).Split("campaign").Split(v.name)
	hw := v.oracleHardware()
	orc, err := oracle.New(hw, oracle.Config{
		Mode: spec.Mode, MeasurePower: true, Budget: spec.Queries,
	})
	if err != nil {
		return nil, err
	}
	qs, err := oracle.Collect(orc, v.train, spec.Queries, root.Split("collect"))
	if err != nil {
		return nil, fmt.Errorf("service: campaign collection: %w", err)
	}
	sCfg := surrogate.DefaultConfig()
	sCfg.Lambda = spec.Lambda
	if spec.SurrogateEpochs > 0 {
		sCfg.Epochs = spec.SurrogateEpochs
	}
	model, err := surrogate.Train(qs, sCfg, root.Split("surrogate"))
	if err != nil {
		return nil, fmt.Errorf("service: surrogate training: %w", err)
	}
	clean, err := v.clean()
	if err != nil {
		return nil, err
	}
	oh := v.test.OneHot()
	advs := make([][]float64, v.test.Len())
	err = pool.DoErr(s.cfg.Workers, v.test.Len(), func(i int) error {
		adv, err := attack.FGSM(model.Net, tensor.CloneVec(v.test.X.Row(i)), oh.Row(i), spec.AttackEps)
		if err != nil {
			return err
		}
		advs[i] = adv
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("service: crafting adversarial examples: %w", err)
	}
	labels, err := predictAll(v, advs)
	if err != nil {
		return nil, err
	}
	correct := 0
	for i, l := range labels {
		if l == v.test.Labels[i] {
			correct++
		}
	}
	return &CampaignResult{
		Victim:            v.name,
		Mode:              api.Mode(spec.Mode.String()),
		Seed:              spec.Seed,
		Queries:           spec.Queries,
		Lambda:            spec.Lambda,
		AttackEps:         spec.AttackEps,
		CleanAccuracy:     clean,
		SurrogateAccuracy: model.Accuracy(v.test.X, v.test.Labels),
		AdvAccuracy:       float64(correct) / float64(v.test.Len()),
		QueriesCharged:    orc.Queries(),
	}, nil
}

// oracleHardware returns the hardware view campaign jobs query: always
// the coalescer. For a noise-free victim coalesced reads are
// bit-identical to direct scalar reads, so replay determinism is
// unaffected, and the coalescer's fused ForwardPower path serves each
// power-measuring collection query with one array pass instead of two —
// halving the dominant cost of a campaign's collection phase. For a
// noisy victim the coalescer is also the required serializer (every
// read mutates the noise stream; results then depend on concurrent
// traffic, as real shared noisy hardware does).
func (v *Victim) oracleHardware() oracle.Hardware {
	return coalescedHW{v: v}
}

// predictAll classifies a batch of inputs on the victim, routing through
// the batched predictor (noise-free) or the coalescer (noisy).
func predictAll(v *Victim, us [][]float64) ([]int, error) {
	if !v.Noisy() {
		return v.hw.PredictBatch(us)
	}
	c := coalescedHW{v: v}
	labels := make([]int, len(us))
	for i, u := range us {
		l, err := c.Predict(u)
		if err != nil {
			return nil, err
		}
		labels[i] = l
	}
	return labels, nil
}

// ExtractSpec determines one power-side-channel extraction job: basis
// queries through a measurement probe (Section III's procedure), with
// optional instrument noise. It is served verbatim on the wire, so it
// is defined by the public protocol package.
type ExtractSpec = api.ExtractRequest

// extractDefaults normalizes an extraction spec's optional fields.
func extractDefaults(e ExtractSpec) ExtractSpec {
	if e.Repeats <= 0 {
		e.Repeats = 1
	}
	return e
}

// extractKey is the artifact-cache identity: (victim, probe config,
// seed), backend-suffixed like campaign keys.
func extractKey(e ExtractSpec) string {
	return fmt.Sprintf("extract|%s|%d|%g|%d", e.Victim, e.Repeats, e.NoiseStd, e.Seed) +
		backendKeySuffix()
}

// ExtractResult carries the recovered power-channel signals (the wire
// type).
type ExtractResult = api.ExtractResult

// probeMeter adapts the coalescer to the sidechannel.PowerMeter
// interface so extraction jobs ride the same batched serving path as
// sessions.
type probeMeter struct{ c coalescedHW }

func (m probeMeter) Power(u []float64) (float64, error) { return m.c.Power(u) }
func (m probeMeter) Inputs() int                        { return m.c.Inputs() }

// RunExtract executes (or serves from cache) one extraction job. In a
// cluster the victim's ring owner serves it; other nodes redirect.
func (s *Service) RunExtract(spec ExtractSpec) (*ExtractResult, error) {
	if err := s.routeVictim(spec.Victim); err != nil {
		return nil, err
	}
	return s.runExtractJob(spec)
}

// runExtractJob is RunExtract minus ring admission (see runCampaignJob).
func (s *Service) runExtractJob(spec ExtractSpec) (*ExtractResult, error) {
	if s.isClosed() {
		return nil, ErrServiceClosed
	}
	spec = extractDefaults(spec)
	v, err := s.Victim(spec.Victim)
	if err != nil {
		return nil, err
	}
	if spec.NoiseStd < 0 {
		return nil, fmt.Errorf("service: negative probe noise %v", spec.NoiseStd)
	}
	compute := func() (*ExtractResult, error) {
		var res *ExtractResult
		err := s.gate.RunErr(func() error {
			var err error
			res, err = s.runExtract(spec, v)
			return err
		})
		return res, err
	}
	if v.Noisy() {
		// Not a function of the spec (see RunCampaign) — never cached.
		return compute()
	}
	key := extractKey(spec)
	var fromSpill bool
	val, cached, err := s.cache.Do(key, func() (any, error) {
		if res := spillLoad[ExtractResult](s, key); res != nil {
			fromSpill = true
			return res, nil
		}
		// Same restart-safety contract as campaigns: launch journaled
		// before compute, completion marked after (see RunCampaign).
		if err := s.journalLaunch(journalRecord{Op: opLaunch, ID: key, Extract: &spec}); err != nil {
			return nil, err
		}
		res, err := compute()
		if err == nil {
			s.spillArtifact(key, res)
		}
		s.journalFinish(key, err)
		return res, err
	})
	if err != nil {
		return nil, err
	}
	res := *(val.(*ExtractResult))
	// Deep-copy the slices: the cached artifact is shared by every
	// future caller, so handing out aliases would let one client's
	// in-place post-processing corrupt everyone else's results — the
	// same ownership bug class Response.Raw had.
	res.Signals = append([]float64(nil), res.Signals...)
	res.Norms = append([]float64(nil), res.Norms...)
	res.Cached = cached || fromSpill
	return &res, nil
}

func (s *Service) runExtract(spec ExtractSpec, v *Victim) (*ExtractResult, error) {
	var src *rng.Source
	if spec.NoiseStd > 0 {
		src = rng.New(spec.Seed).Split("extract").Split(v.name)
	}
	probe, err := sidechannel.NewProbe(probeMeter{c: coalescedHW{v: v}}, spec.NoiseStd, src)
	if err != nil {
		return nil, err
	}
	signals, err := probe.ExtractColumnSignals(spec.Repeats)
	if err != nil {
		if errors.Is(err, ErrVictimClosed) {
			return nil, err
		}
		return nil, fmt.Errorf("service: extraction: %w", err)
	}
	xb := v.hw.Crossbar()
	norms := sidechannel.CalibrateColumnNorms(signals, xb.Config(), v.Outputs(), xb.Scale())
	return &ExtractResult{
		Victim:       v.name,
		Repeats:      spec.Repeats,
		NoiseStd:     spec.NoiseStd,
		Seed:         spec.Seed,
		Signals:      signals,
		Norms:        norms,
		ProbeQueries: probe.Queries(),
	}, nil
}
