package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xbarsec/api"
	"xbarsec/client"
)

// decodeBody decodes one raw HTTP response body.
func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// The HTTP layer is tested through the client SDK: the tests below
// exercise the same protocol surface an external consumer uses (typed
// api structs in, typed api errors out). Raw net/http appears only
// where the wire itself is the point (unknown-field rejection, CSV
// export). The SDK's own round-trip suite lives in xbarsec/client.

// httpFixture boots a service with one victim behind httptest and
// returns an SDK client for it.
func httpFixture(t *testing.T) (*client.Client, *httptest.Server, *Victim) {
	t.Helper()
	v := buildTestVictim(t, "mnist-toy", 11)
	s := newTestService(t, Config{Seed: 11, Workers: 2}, v)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts, v
}

func TestHTTPSessionLifecycle(t *testing.T) {
	c, _, v := httpFixture(t)
	ctx := context.Background()

	victims, err := c.Victims(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0].Name != "mnist-toy" || victims[0].Inputs != 100 {
		t.Fatalf("victims = %+v", victims)
	}

	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
		Victim: "mnist-toy", Mode: api.ModeRawOutput, MeasurePower: true, Budget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" || sess.Info().Remaining != 2 || sess.Info().Mode != api.ModeRawOutput {
		t.Fatalf("session = %+v", sess.Info())
	}

	qr, err := sess.Query(ctx, v.test.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Raw) != 10 || qr.Power <= 0 || qr.Queries != 1 || qr.Remaining != 1 {
		t.Fatalf("query response = %+v", qr)
	}
	// Responses must match the direct in-process session path exactly
	// (modulo JSON float round-trip, which is exact for float64).
	wantLabel, err := v.hw.Predict(v.test.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if qr.Label != wantLabel {
		t.Fatalf("label = %d, want %d", qr.Label, wantLabel)
	}

	if _, err := sess.Query(ctx, v.test.X.Row(1)); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted -> typed code, 429 on the wire.
	if _, err := sess.Query(ctx, v.test.X.Row(2)); api.CodeOf(err) != api.CodeBudgetExhausted {
		t.Fatalf("exhausted query err = %v, want code %s", err, api.CodeBudgetExhausted)
	}

	info, err := sess.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Queries != 2 || info.Remaining != 0 {
		t.Fatalf("session info = %+v", info)
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Refresh(ctx); api.CodeOf(err) != api.CodeUnknownSession {
		t.Fatalf("closed session err = %v, want code %s", err, api.CodeUnknownSession)
	}
}

func TestHTTPValidationAndErrors(t *testing.T) {
	c, ts, v := httpFixture(t)
	ctx := context.Background()
	// Unknown victim.
	if _, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "nope"}); api.CodeOf(err) != api.CodeUnknownVictim {
		t.Fatalf("unknown victim err = %v", err)
	}
	// Bad mode.
	if _, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "mnist-toy", Mode: "psychic"}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("bad mode err = %v", err)
	}
	// Unknown fields rejected, with the envelope carrying the typed code
	// and the decoder detail.
	resp, err := http.Post(ts.URL+api.PathPrefix+"/sessions", "application/json",
		strings.NewReader(`{"victim":"mnist-toy","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var envelope api.Error
	if err := decodeBody(resp, &envelope); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || envelope.Code != api.CodeBadRequest || envelope.Detail == "" {
		t.Fatalf("unknown field: status %d envelope %+v", resp.StatusCode, envelope)
	}
	// Short input is a typed bad request, not a 500, and charges nothing.
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "mnist-toy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, []float64{1, 2}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("short input err = %v", err)
	}
	info, err := sess.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Queries != 0 {
		t.Fatalf("malformed query charged budget: %+v", info)
	}
	// Campaign validation.
	if _, err := c.RunCampaign(ctx, api.CampaignRequest{Victim: "mnist-toy", Mode: api.ModeLabelOnly}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("campaign validation err = %v", err)
	}
	_ = v
}

func TestHTTPVersion(t *testing.T) {
	c, _, _ := httpFixture(t)
	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Major != api.Major || v.Version != api.VersionString() {
		t.Fatalf("version = %+v", v)
	}
	if v.ExperimentsHash != RegistryHash() || v.Experiments == 0 {
		t.Fatalf("registry digest = %+v, want hash %s", v, RegistryHash())
	}
}

func TestHTTPCampaignAndExtract(t *testing.T) {
	c, ts, _ := httpFixture(t)
	ctx := context.Background()
	spec := api.CampaignRequest{Victim: "mnist-toy", Mode: api.ModeLabelOnly, Seed: 5, Queries: 25, SurrogateEpochs: 3}
	res, err := c.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.QueriesCharged != 25 || res.Mode != api.ModeLabelOnly {
		t.Fatalf("campaign = %+v", res)
	}
	again, err := c.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("replayed campaign must be cached")
	}
	again.Cached = res.Cached
	if *again != *res {
		t.Fatalf("cached campaign differs: %+v vs %+v", again, res)
	}

	ex, err := c.RunExtract(ctx, api.ExtractRequest{Victim: "mnist-toy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Signals) != 100 || len(ex.Norms) != 100 || ex.ProbeQueries != 100 {
		t.Fatalf("extract = signals:%d norms:%d queries:%d", len(ex.Signals), len(ex.Norms), ex.ProbeQueries)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 2 || st.CacheHits < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CachedArtifactBytes <= 0 {
		t.Fatalf("artifact byte gauge not populated: %+v", st)
	}

	// CSV stats export (raw wire: the SDK is JSON-only).
	resp, err := http.Get(ts.URL + api.PathPrefix + "/stats?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "victim,") || !strings.HasPrefix(lines[1], "mnist-toy,") {
		t.Fatalf("csv stats = %q", buf.String())
	}
}
