package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// httpFixture boots a service with one victim behind httptest.
func httpFixture(t *testing.T) (*httptest.Server, *Victim) {
	t.Helper()
	v := buildTestVictim(t, "mnist-toy", 11)
	s := newTestService(t, Config{Seed: 11, Workers: 2}, v)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, v
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPSessionLifecycle(t *testing.T) {
	ts, v := httpFixture(t)

	var victims []VictimStats
	doJSON(t, "GET", ts.URL+"/v1/victims", nil, http.StatusOK, &victims)
	if len(victims) != 1 || victims[0].Name != "mnist-toy" || victims[0].Inputs != 100 {
		t.Fatalf("victims = %+v", victims)
	}

	var sess sessionWire
	doJSON(t, "POST", ts.URL+"/v1/sessions", sessionWire{
		Victim: "mnist-toy", Mode: "raw-output", MeasurePower: true, Budget: 2,
	}, http.StatusCreated, &sess)
	if sess.ID == "" || sess.Remaining != 2 {
		t.Fatalf("session = %+v", sess)
	}

	queryURL := fmt.Sprintf("%s/v1/sessions/%s/query", ts.URL, sess.ID)
	var qr responseWire
	doJSON(t, "POST", queryURL, queryWire{Input: v.test.X.Row(0)}, http.StatusOK, &qr)
	if len(qr.Raw) != 10 || qr.Power <= 0 || qr.Queries != 1 || qr.Remaining != 1 {
		t.Fatalf("query response = %+v", qr)
	}
	// Responses must match the direct in-process session path exactly
	// (modulo JSON float round-trip, which is exact for float64).
	wantLabel, err := v.hw.Predict(v.test.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if qr.Label != wantLabel {
		t.Fatalf("label = %d, want %d", qr.Label, wantLabel)
	}

	doJSON(t, "POST", queryURL, queryWire{Input: v.test.X.Row(1)}, http.StatusOK, &qr)
	// Budget exhausted -> 429.
	doJSON(t, "POST", queryURL, queryWire{Input: v.test.X.Row(2)}, http.StatusTooManyRequests, nil)

	var info sessionWire
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Queries != 2 || info.Remaining != 0 {
		t.Fatalf("session info = %+v", info)
	}

	doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusNotFound, nil)
}

func TestHTTPValidationAndErrors(t *testing.T) {
	ts, v := httpFixture(t)
	// Unknown victim.
	doJSON(t, "POST", ts.URL+"/v1/sessions", sessionWire{Victim: "nope"}, http.StatusNotFound, nil)
	// Bad mode.
	doJSON(t, "POST", ts.URL+"/v1/sessions", sessionWire{Victim: "mnist-toy", Mode: "psychic"}, http.StatusBadRequest, nil)
	// Unknown fields rejected.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"victim":"mnist-toy","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	// Short input is 400, not 500, and charges nothing.
	var sess sessionWire
	doJSON(t, "POST", ts.URL+"/v1/sessions", sessionWire{Victim: "mnist-toy"}, http.StatusCreated, &sess)
	queryURL := fmt.Sprintf("%s/v1/sessions/%s/query", ts.URL, sess.ID)
	doJSON(t, "POST", queryURL, queryWire{Input: []float64{1, 2}}, http.StatusBadRequest, nil)
	var info sessionWire
	doJSON(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, http.StatusOK, &info)
	if info.Queries != 0 {
		t.Fatalf("malformed query charged budget: %+v", info)
	}
	// Campaign validation.
	doJSON(t, "POST", ts.URL+"/v1/campaigns", campaignWire{Victim: "mnist-toy", Mode: "label-only"}, http.StatusBadRequest, nil)
	_ = v
}

func TestHTTPCampaignAndExtract(t *testing.T) {
	ts, _ := httpFixture(t)
	spec := campaignWire{Victim: "mnist-toy", Mode: "label-only", Seed: 5, Queries: 25, SurrogateEpochs: 3}
	var res CampaignResult
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, http.StatusOK, &res)
	if res.Cached || res.QueriesCharged != 25 || res.Mode != "label-only" {
		t.Fatalf("campaign = %+v", res)
	}
	var again CampaignResult
	doJSON(t, "POST", ts.URL+"/v1/campaigns", spec, http.StatusOK, &again)
	if !again.Cached {
		t.Fatal("replayed campaign must be cached")
	}
	again.Cached = res.Cached
	if again != res {
		t.Fatalf("cached campaign differs: %+v vs %+v", again, res)
	}

	var ex ExtractResult
	doJSON(t, "POST", ts.URL+"/v1/extract", ExtractSpec{Victim: "mnist-toy"}, http.StatusOK, &ex)
	if len(ex.Signals) != 100 || len(ex.Norms) != 100 || ex.ProbeQueries != 100 {
		t.Fatalf("extract = signals:%d norms:%d queries:%d", len(ex.Signals), len(ex.Norms), ex.ProbeQueries)
	}

	var st Stats
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &st)
	if st.Campaigns != 2 || st.CacheHits < 1 {
		t.Fatalf("stats = %+v", st)
	}

	// CSV stats export.
	resp, err := http.Get(ts.URL + "/v1/stats?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "victim,") || !strings.HasPrefix(lines[1], "mnist-toy,") {
		t.Fatalf("csv stats = %q", buf.String())
	}
}
