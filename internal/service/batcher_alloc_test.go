package service

import (
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// TestFlushReusesScratch pins the hot-path contract on the coalescer's
// flush: in steady state (scratch buffers and the array's
// effective-conductance cache warm) a flush adds no allocations of its
// own on top of the underlying batched kernels — the partition and input
// buffers all come from flushScratch. The flusher goroutine is not
// involved: flush is driven directly on a hand-built batcher.
func TestFlushReusesScratch(t *testing.T) {
	src := rng.New(33)
	w := tensor.New(5, 9)
	for i := 0; i < 5; i++ {
		for j := 0; j < 9; j++ {
			w.Set(i, j, src.Uniform(-1, 1))
		}
	}
	net := &nn.Network{W: w, Act: nn.ActLinear}
	hw, err := crossbar.NewNetwork(net, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &batcher{hw: hw}
	batch := make([]*batchRequest, 8)
	for i := range batch {
		u := make([]float64, 9)
		for j := range u {
			u[j] = src.Float64()
		}
		// Mixed batch so both the plain and the fused partition run.
		batch[i] = &batchRequest{u: u, wantPower: i%3 == 0}
	}
	var sc flushScratch
	run := func() {
		for _, r := range batch {
			r.done.Add(1) // flush calls Done; re-arm for the next run
		}
		b.flush(batch, &sc)
	}
	run() // warm scratch and the effective-conductance cache

	// Baseline: the two batched kernels on the same partition, without
	// the coalescer around them.
	var plainUs, fusedUs [][]float64
	for _, r := range batch {
		if r.wantPower {
			fusedUs = append(fusedUs, r.u)
		} else {
			plainUs = append(plainUs, r.u)
		}
	}
	kernels := testing.AllocsPerRun(20, func() {
		if _, err := hw.ForwardBatch(plainUs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := hw.ForwardPowerBatch(fusedUs); err != nil {
			t.Fatal(err)
		}
	})
	flush := testing.AllocsPerRun(20, run)
	if flush > kernels+1 {
		t.Errorf("flush allocates %v per run, underlying kernels %v: scratch is not being reused",
			flush, kernels)
	}
	// The batch's results must actually have been served.
	for _, r := range batch {
		if r.err != nil {
			t.Fatalf("flush left request error: %v", r.err)
		}
		if len(r.y) != 5 {
			t.Fatalf("flush left result length %d, want 5", len(r.y))
		}
	}
}
