package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
)

// TestConcurrentSessionLoad is the service-layer load test: ten sessions
// (two goroutines each) hammer one victim through the coalescer while
// extraction and campaign jobs run alongside. Every delivered response
// is checked bit-for-bit against a serial reference oracle, every
// session budget must be admitted exactly, and the batcher's served
// count must equal the queries that were actually granted — refused
// queries may never reach the array. Run under -race this is the
// honesty check for the whole concurrent layer.
func TestConcurrentSessionLoad(t *testing.T) {
	v := buildTestVictim(t, "m", 42)
	s := newTestService(t, Config{Seed: 42, Workers: 2, MaxConcurrentJobs: 2}, v)

	// Serial reference responses for every test row, computed on the
	// same (read-only, noise-free) array before the load starts.
	ref, err := oracle.New(v.hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]oracle.Response, v.test.Len())
	for i := range want {
		resp, err := ref.Query(v.test.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp
	}

	const (
		sessions             = 10
		goroutinesPerSession = 2
		attemptsPerGoroutine = 25
		budget               = 30 // < 2*25, so every session sees refusals
	)
	sess := make([]*Session, sessions)
	for i := range sess {
		sess[i], err = s.OpenSession("m", SessionConfig{
			Mode: oracle.RawOutput, MeasurePower: true, Budget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	granted := make([]int64, sessions)
	errCh := make(chan error, sessions*goroutinesPerSession+4)
	var grantedMu sync.Mutex
	for si, se := range sess {
		for g := 0; g < goroutinesPerSession; g++ {
			wg.Add(1)
			go func(si, g int, se *Session) {
				defer wg.Done()
				for k := 0; k < attemptsPerGoroutine; k++ {
					row := (g*attemptsPerGoroutine + k) % v.test.Len()
					resp, err := se.Query(v.test.X.Row(row))
					if errors.Is(err, oracle.ErrBudgetExhausted) {
						continue
					}
					if err != nil {
						errCh <- err
						return
					}
					w := want[row]
					if resp.Label != w.Label || resp.Power != w.Power {
						errCh <- fmt.Errorf("session %d row %d: (%d,%v) != reference (%d,%v)",
							si, row, resp.Label, resp.Power, w.Label, w.Power)
						return
					}
					for j := range w.Raw {
						if resp.Raw[j] != w.Raw[j] {
							errCh <- fmt.Errorf("session %d row %d raw[%d] mismatch", si, row, j)
							return
						}
					}
					grantedMu.Lock()
					granted[si]++
					grantedMu.Unlock()
				}
			}(si, g, se)
		}
	}
	// Mixed job traffic while sessions hammer the array: two identical
	// extraction specs (singleflight collapses them to one compute) plus
	// one distinct, and a campaign.
	jobs := []func() error{
		func() error { _, err := s.RunExtract(ExtractSpec{Victim: "m"}); return err },
		func() error { _, err := s.RunExtract(ExtractSpec{Victim: "m"}); return err },
		func() error { _, err := s.RunExtract(ExtractSpec{Victim: "m", Repeats: 2}); return err },
		func() error {
			_, err := s.RunCampaign(CampaignSpec{
				Victim: "m", Mode: oracle.LabelOnly, Seed: 7, Queries: 20, SurrogateEpochs: 2,
			})
			return err
		},
	}
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			if err := job(); err != nil {
				errCh <- err
			}
		}(job)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	var totalGranted int64
	for si, se := range sess {
		if granted[si] != budget {
			t.Fatalf("session %d: granted %d queries, want exactly %d", si, granted[si], budget)
		}
		if se.Queries() != budget || se.Remaining() != 0 {
			t.Fatalf("session %d accounting: queries=%d remaining=%d", si, se.Queries(), se.Remaining())
		}
		totalGranted += granted[si]
	}

	st := s.Stats()
	if len(st.Victims) != 1 {
		t.Fatalf("stats victims = %d", len(st.Victims))
	}
	vs := st.Victims[0]
	// Exactly the granted session queries, plus the two unique
	// extraction sweeps — N basis reads for the deduplicated repeats=1
	// spec, 2N for the repeats=2 spec — plus the campaign's 20
	// collection queries (all jobs ride the coalescer; only batched
	// post-hoc evaluation like PredictBatch reads the noise-free array
	// directly) — and nothing for the refused queries, which must never
	// reach the array.
	wantRequests := totalGranted + int64(v.Inputs()) + int64(2*v.Inputs()) + 20
	if vs.Requests != wantRequests {
		t.Fatalf("batcher served %d requests, want %d", vs.Requests, wantRequests)
	}
	if vs.Batches <= 0 || vs.Batches > vs.Requests {
		t.Fatalf("batches = %d out of range (requests %d)", vs.Batches, vs.Requests)
	}
	if vs.MaxBatch < 1 {
		t.Fatalf("max batch = %d", vs.MaxBatch)
	}
	if vs.OpenSessions != sessions {
		t.Fatalf("open sessions = %d, want %d", vs.OpenSessions, sessions)
	}
	t.Logf("coalescing: %d requests in %d batches (max %d, mean %.2f)",
		vs.Requests, vs.Batches, vs.MaxBatch, float64(vs.Requests)/float64(vs.Batches))
}

// benchVictim trains a production-geometry victim (28x28 = 784 inputs,
// the real MNIST shape) so the serving benchmarks measure array-read
// cost at realistic dimensions rather than toy-fixture overhead.
func benchVictim(b *testing.B, name string) *Victim {
	b.Helper()
	src := rng.New(77)
	gen := func(label string, n int) *dataset.Dataset {
		ds, err := dataset.GenerateMNISTLike(src.Split(label), n, dataset.DefaultMNISTLikeConfig())
		if err != nil {
			b.Fatal(err)
		}
		return ds
	}
	train, test := gen("train", 120), gen("test", 40)
	net, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 4, BatchSize: 16, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("fit"))
	if err != nil {
		b.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(net, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	v, err := NewVictim(name, net, hw, train, test)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// benchInputs returns dense inputs (every pixel driven, as CIFAR-like
// traffic is) so the benchmark measures array-read cost rather than the
// sparse-input fast path.
func benchInputs(v *Victim, n int) [][]float64 {
	src := rng.New(177)
	us := make([][]float64, n)
	for i := range us {
		us[i] = src.UniformVec(v.Inputs(), 0, 1)
	}
	return us
}

// BenchmarkServingPerCallScalar is the baseline the service replaces:
// every concurrent client holds its own oracle on the shared array and
// each power-measuring query costs two scalar reads (forward + power).
func BenchmarkServingPerCallScalar(b *testing.B) {
	v := benchVictim(b, "bench-scalar")
	rows := benchInputs(v, 64)
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		orc, err := oracle.New(v.hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			if _, err := orc.Query(rows[i%len(rows)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkServingCoalesced routes the same concurrent power-measuring
// traffic through the service: in-flight queries coalesce into fused
// ForwardPowerBatch reads (one array pass per query instead of two, and
// per-batch rather than per-call overhead).
func BenchmarkServingCoalesced(b *testing.B) {
	v := benchVictim(b, "bench-coal")
	s := New(Config{Seed: 77})
	if err := s.Register(v); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rows := benchInputs(v, 64)
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess, err := s.OpenSession("bench-coal", SessionConfig{
			Mode: oracle.RawOutput, MeasurePower: true, Budget: -1,
		})
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			if _, err := sess.Query(rows[i%len(rows)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
