package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"xbarsec/internal/experiment"
)

// handleMetrics serves GET /v2/metrics: the service counters in the
// Prometheus text exposition format, for scraping a deployment that
// GET /v2/stats (JSON, human-shaped) does not fit. The metric set and
// its order are fixed — two scrapes of an idle server are byte-equal —
// and every value is a plain float gauge or monotone counter; no
// labels, no timestamps.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	vs := experiment.StoreStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := metricsWriter{w: w}

	// Artifact cache: the in-memory singleflight tier.
	m.counter("xbarsec_artifact_cache_hits_total", "Artifact cache hits.", float64(st.CacheHits))
	m.counter("xbarsec_artifact_cache_misses_total", "Artifact cache misses (computations).", float64(st.CacheMisses))
	m.gauge("xbarsec_artifact_cache_hit_ratio", "Hits over lookups, 0 before the first lookup.", hitRatio(st.CacheHits, st.CacheMisses))
	m.gauge("xbarsec_artifact_cache_entries", "Artifacts resident in memory.", float64(st.CachedArtifacts))
	m.gauge("xbarsec_artifact_cache_bytes", "Approximate resident bytes of cached artifacts.", float64(st.CachedArtifactBytes))

	// Victim store: process-wide trained-victim memoization.
	m.counter("xbarsec_victim_store_hits_total", "Victim store hits (trainings avoided).", float64(vs.Hits))
	m.counter("xbarsec_victim_store_misses_total", "Victim store misses.", float64(vs.Misses))
	m.gauge("xbarsec_victim_store_hit_ratio", "Hits over lookups, 0 before the first lookup.", hitRatio(vs.Hits, vs.Misses))
	m.counter("xbarsec_victim_store_trainings_total", "Victim trainings performed.", float64(vs.Trainings))
	m.gauge("xbarsec_victim_store_victims", "Trained victims resident in memory.", float64(vs.Cached))
	m.gauge("xbarsec_victim_store_bytes", "Approximate resident bytes of stored victims.", float64(vs.Bytes))

	// Spill store: the on-disk artifact tier (zero when memory-only).
	m.gauge("xbarsec_spill_artifacts", "Artifacts on disk.", float64(st.SpilledArtifacts))
	m.gauge("xbarsec_spill_bytes", "Payload bytes on disk.", float64(st.SpilledArtifactBytes))
	m.counter("xbarsec_spill_hits_total", "Artifacts served from disk.", float64(st.SpillHits))
	m.gauge("xbarsec_provenance_records", "Provenance records on disk.", float64(st.ProvenanceRecords))

	// Serving.
	m.gauge("xbarsec_sessions", "Open attacker sessions.", float64(st.Sessions))
	m.counter("xbarsec_batched_queries_total", "Oracle queries served through coalescers.", float64(st.BatchedQueries))
	m.counter("xbarsec_batch_flushes_total", "Coalescer batch flushes.", float64(st.BatchFlushes))
	m.counter("xbarsec_campaigns_total", "Campaign jobs served.", float64(st.Campaigns))
	m.counter("xbarsec_failed_jobs_total", "Experiment jobs that failed.", float64(st.FailedJobs))

	// Cluster (zero on a single-node server).
	m.counter("xbarsec_cluster_redirects_total", "Requests redirected to their owning node.", float64(st.RedirectsIssued))
	m.counter("xbarsec_cluster_peer_fetches_total", "Artifact fetch attempts against peers.", float64(st.PeerFetches))
	m.counter("xbarsec_cluster_peer_fetch_verified_total", "Peer artifacts accepted after provenance verification.", float64(st.PeerFetchVerified))
	m.counter("xbarsec_cluster_peer_fetch_rejected_total", "Peer artifacts rejected by provenance verification.", float64(st.PeerFetchRejected))
}

// metricsWriter emits one metric family at a time. Write errors are
// ignored — the scraper hung up, nothing to recover.
type metricsWriter struct{ w io.Writer }

func (m metricsWriter) counter(name, help string, v float64) { m.emit(name, "counter", help, v) }
func (m metricsWriter) gauge(name, help string, v float64)   { m.emit(name, "gauge", help, v) }

func (m metricsWriter) emit(name, typ, help string, v float64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// hitRatio is hits/(hits+misses), 0 before the first lookup.
func hitRatio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
