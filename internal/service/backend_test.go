package service

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"xbarsec/api"
	"xbarsec/internal/tensor"
)

// useFast swaps the process backend to fast for one test, restoring the
// previous backend on cleanup. Service tests never run in parallel, so
// the process-global swap is race-free here.
func useFast(t *testing.T) {
	t.Helper()
	prev := tensor.Use(tensor.NewFast(1))
	t.Cleanup(func() { tensor.Use(prev) })
}

// TestTensorBackendSpecNormalization pins the canonicalization contract:
// on a reference server pre-v2.1 specs keep their historical identity
// (no options, unsuffixed key), and on a fast server "", the explicit
// name and an absent envelope all canonicalize to one backend-suffixed
// spec.
func TestTensorBackendSpecNormalization(t *testing.T) {
	// Reference server: "" and "reference" collapse to no options.
	ref := specDefaults(ExperimentSpec{Name: "table1", Seed: 1})
	named := specDefaults(ExperimentSpec{Name: "table1", Seed: 1,
		Options: &api.ExperimentOptions{TensorBackend: tensor.RefName}})
	if named.Options != nil {
		t.Fatalf("explicit %q assertion not canonicalized away: %+v", tensor.RefName, named.Options)
	}
	if specKey(ref) != specKey(named) {
		t.Fatalf("reference spellings split the cache key: %q vs %q", specKey(ref), specKey(named))
	}
	if strings.Contains(specKey(ref), "|tb:") {
		t.Fatalf("reference key lost its historical form: %q", specKey(ref))
	}

	useFast(t)
	bare := specDefaults(ExperimentSpec{Name: "table1", Seed: 1})
	empty := specDefaults(ExperimentSpec{Name: "table1", Seed: 1,
		Options: &api.ExperimentOptions{}})
	fast := specDefaults(ExperimentSpec{Name: "table1", Seed: 1,
		Options: &api.ExperimentOptions{TensorBackend: tensor.FastName}})
	for _, s := range []ExperimentSpec{bare, empty, fast} {
		if s.Options == nil || s.Options.TensorBackend != tensor.FastName {
			t.Fatalf("fast-server spec not canonicalized to %q: %+v", tensor.FastName, s.Options)
		}
	}
	if specKey(bare) != specKey(fast) || specKey(bare) != specKey(empty) {
		t.Fatalf("fast spellings split the cache key: %q vs %q vs %q",
			specKey(bare), specKey(empty), specKey(fast))
	}
	if specKey(bare) == specKey(ref) {
		t.Fatalf("fast artifact aliases the reference key: %q", specKey(bare))
	}
	if !strings.Contains(specKey(bare), "|tb:"+tensor.FastName) {
		t.Fatalf("fast key missing backend suffix: %q", specKey(bare))
	}
	// Canonicalization must not mutate the caller's envelope.
	orig := &api.ExperimentOptions{}
	specDefaults(ExperimentSpec{Name: "table1", Seed: 1, Options: orig})
	if orig.TensorBackend != "" {
		t.Fatalf("specDefaults mutated the caller's options: %+v", orig)
	}
}

// TestTensorBackendValidation pins the refusal contract: unknown
// backend names and assertions the server cannot satisfy are immediate
// bad requests, while a satisfied assertion runs normally and echoes
// the canonical backend in the result.
func TestTensorBackendValidation(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	withTB := func(name string) ExperimentSpec {
		s := expSpec(23)
		s.Options = &api.ExperimentOptions{TensorBackend: name}
		return s
	}
	if _, err := svc.RunExperiment(withTB("blas")); !errors.Is(err, errBadRequest) {
		t.Fatalf("unknown backend: err = %v, want bad request", err)
	}
	if _, err := svc.RunExperiment(withTB(tensor.FastName)); !errors.Is(err, errBadRequest) {
		t.Fatalf("inactive backend: err = %v, want bad request", err)
	}
	res, err := svc.RunExperiment(withTB(tensor.RefName))
	if err != nil {
		t.Fatalf("satisfied assertion refused: %v", err)
	}
	if res.Options != nil && res.Options.TensorBackend != "" {
		t.Fatalf("reference result carries non-canonical backend: %+v", res.Options)
	}

	useFast(t)
	if _, err := svc.RunExperiment(withTB(tensor.RefName)); !errors.Is(err, errBadRequest) {
		t.Fatalf("reference assertion on fast server: err = %v, want bad request", err)
	}
	fastRes, err := svc.RunExperiment(withTB(tensor.FastName))
	if err != nil {
		t.Fatalf("fast assertion on fast server refused: %v", err)
	}
	if fastRes.Options == nil || fastRes.Options.TensorBackend != tensor.FastName {
		t.Fatalf("fast result does not record its backend: %+v", fastRes.Options)
	}
	if fastRes.Cached {
		t.Fatal("fast run served from the reference artifact")
	}
}

// TestTensorBackendKeySeparation pins the cache/spill identity rule for
// the sync job specs: reference keys keep their historical form, fast
// keys are suffixed, so a state directory shared across serving modes
// never aliases their numbers.
func TestTensorBackendKeySeparation(t *testing.T) {
	cSpec := CampaignSpec{Victim: "mnist", Seed: 3, Queries: 50}.withDefaults()
	eSpec := extractDefaults(ExtractSpec{Victim: "mnist", Seed: 3})
	cRef, eRef := cSpec.key(), extractKey(eSpec)
	if strings.Contains(cRef, "|tb:") || strings.Contains(eRef, "|tb:") {
		t.Fatalf("reference keys lost their historical form: %q, %q", cRef, eRef)
	}
	useFast(t)
	cFast, eFast := cSpec.key(), extractKey(eSpec)
	if cFast == cRef || eFast == eRef {
		t.Fatalf("fast keys alias reference artifacts: %q, %q", cFast, eFast)
	}
	suffix := "|tb:" + tensor.FastName
	if !strings.HasSuffix(cFast, suffix) || !strings.HasSuffix(eFast, suffix) {
		t.Fatalf("fast keys missing backend suffix: %q, %q", cFast, eFast)
	}
}

// TestTensorBackendSurfaced pins the observability surface added in
// v2.1: GET /v2/version and GET /v2/stats both report the backend the
// server computes with.
func TestTensorBackendSurfaced(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	if got := svc.Stats().TensorBackend; got != tensor.RefName {
		t.Fatalf("Stats().TensorBackend = %q, want %q", got, tensor.RefName)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	get := func(path string, v any) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	var vi api.VersionInfo
	get(api.PathPrefix+"/version", &vi)
	if vi.TensorBackend != tensor.RefName {
		t.Fatalf("/version tensor_backend = %q, want %q", vi.TensorBackend, tensor.RefName)
	}
	var st api.Stats
	get(api.PathPrefix+"/stats", &st)
	if st.TensorBackend != tensor.RefName {
		t.Fatalf("/stats tensor_backend = %q, want %q", st.TensorBackend, tensor.RefName)
	}

	useFast(t)
	get(api.PathPrefix+"/version", &vi)
	if vi.TensorBackend != tensor.FastName {
		t.Fatalf("fast /version tensor_backend = %q, want %q", vi.TensorBackend, tensor.FastName)
	}
	if got := svc.Stats().TensorBackend; got != tensor.FastName {
		t.Fatalf("fast Stats().TensorBackend = %q, want %q", got, tensor.FastName)
	}
}
