package service

// The durability layer: a write-ahead job journal plus the disk spill
// tier behind the artifact cache. Every accepted experiment job is
// journaled before its goroutine launches and marked on completion; on
// startup Open replays the journal, restores every journaled job under
// its original id, and re-launches the unfinished ones — which is cheap
// for jobs that had completed, because their artifacts are served from
// the content-addressed spill store instead of recomputed. The jobs are
// pure functions of their specs (the repository's core determinism
// contract), which is what makes "re-launch" a correct recovery
// strategy: a job interrupted mid-run produces bit-identical results
// when run again.

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"xbarsec/internal/memo"
	"xbarsec/internal/provenance"
	"xbarsec/internal/wal"
)

// ErrUnavailable marks transient refusals: the server cannot durably
// accept the work right now (journal full or unwritable, disk full) but
// expects to recover. The HTTP layer maps it to the protocol's
// "unavailable" code with a Retry-After hint.
var ErrUnavailable = errors.New("service: temporarily unavailable")

// UnavailableError carries the refusal reason and the backoff hint.
type UnavailableError struct {
	// Reason says what the server cannot do.
	Reason string
	// RetryAfter is the suggested backoff in seconds.
	RetryAfter int
}

// Error renders the refusal.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("service: %s (retry after %ds)", e.Reason, e.RetryAfter)
}

// Unwrap ties the type to the ErrUnavailable sentinel for errors.Is.
func (e *UnavailableError) Unwrap() error { return ErrUnavailable }

// Journal record ops. A job's journal life is one "launch" record
// (carrying the spec) followed by at most one completion mark.
const (
	opLaunch = "launch"
	opDone   = "done"
	opFailed = "failed"
)

// journalRecord is the JSON payload of one WAL frame. Exactly one of
// Spec/Campaign/Extract is set on a launch record and identifies the
// job family; completion marks carry the ID alone. Campaign and extract
// jobs are synchronous (the requesting client holds the connection), so
// their journal ID is the artifact-cache key — recovery needs no poll
// handle for them, only the spec to recompute the artifact into spill.
type journalRecord struct {
	Op       string          `json:"op"`
	ID       string          `json:"id"`
	Spec     *ExperimentSpec `json:"spec,omitempty"`     // experiment launch only
	Campaign *CampaignSpec   `json:"campaign,omitempty"` // campaign launch only
	Extract  *ExtractSpec    `json:"extract,omitempty"`  // extract launch only
	Err      string          `json:"err,omitempty"`      // failed only
}

// victimName returns the victim a sync (campaign/extract) launch record
// targets, or "" for experiment records.
func (r journalRecord) victimName() string {
	switch {
	case r.Campaign != nil:
		return r.Campaign.Victim
	case r.Extract != nil:
		return r.Extract.Victim
	}
	return ""
}

// jobJournal serializes appends to the WAL (launches and completions
// race from many goroutines).
type jobJournal struct {
	mu sync.Mutex
	w  *wal.AtomicWriter
}

func (jn *jobJournal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding journal record: %w", err)
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.w.Append(payload)
}

func (jn *jobJournal) close() error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.w.Close()
}

// Recovery reports what Open restored, so operators (and the kill-and-
// restart test) can see recovery happen without reading logs.
type Recovery struct {
	// TornJournalTail reports a torn/corrupt journal tail — the signature
	// of a crash mid-append. Records before the tear were recovered.
	TornJournalTail bool
	// ReplayedJobs is how many journaled jobs were restored under their
	// original ids.
	ReplayedJobs int
	// Relaunched is how many restored jobs were re-run through the
	// compute path (completed ones are served from spill, not recomputed).
	Relaunched int
	// FailedJobs is how many restored jobs had already failed and were
	// restored directly into the failed state.
	FailedJobs int
	// ReplayedCampaigns / ReplayedExtracts count journaled synchronous
	// jobs (campaign / extraction) found unfinished — launched but never
	// marked done or failed, the signature of a crash mid-compute. They
	// re-run automatically once their victim registers, landing their
	// artifacts in spill so the client's retry is served instantly.
	ReplayedCampaigns int
	ReplayedExtracts  int
	// SpilledArtifacts is the on-disk artifact inventory found at open.
	SpilledArtifacts int64
}

const defaultMaxJournalBytes = 64 << 20

// Open is New plus durability: it roots the job journal and the
// artifact spill store in Config.StateDir, replays any journal a
// previous process left (restoring its jobs), compacts it into a fresh
// generation, and wires artifact-cache eviction to spill to disk.
// The returned Recovery describes what was restored.
func Open(cfg Config) (*Service, *Recovery, error) {
	if cfg.StateDir == "" {
		return nil, nil, errors.New("service: Open requires Config.StateDir")
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	if err := fsys.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating state dir: %w", err)
	}
	spill, err := memo.OpenSpill(fsys, filepath.Join(cfg.StateDir, "spill"))
	if err != nil {
		return nil, nil, err
	}
	// Provenance records live next to the artifacts they describe; the
	// same durable-mode switch governs both.
	prov, err := provenance.OpenStore(fsys, filepath.Join(cfg.StateDir, "prov"))
	if err != nil {
		return nil, nil, err
	}

	// Replay the previous generation. Completion marks fold into their
	// launch records; unparseable payloads (a future schema) are skipped,
	// not fatal — losing one job record must not brick the server.
	type jobState struct {
		spec   ExperimentSpec
		done   bool
		failed bool
		errMsg string
	}
	states := map[string]*jobState{}
	var order []string
	// Synchronous (campaign/extract) jobs track separately: their journal
	// life is the same launch/finish pair, but recovery only cares about
	// the unfinished ones — a finished sync job's artifact is in spill and
	// its client connection is long gone.
	type syncState struct {
		launch   journalRecord
		finished bool
	}
	syncStates := map[string]*syncState{}
	var syncOrder []string
	jpath := filepath.Join(cfg.StateDir, "jobs.wal")
	st, err := wal.Replay(fsys, jpath, func(b []byte) error {
		var rec journalRecord
		if json.Unmarshal(b, &rec) != nil || rec.ID == "" {
			return nil
		}
		switch rec.Op {
		case opLaunch:
			switch {
			case rec.Spec != nil:
				if _, ok := states[rec.ID]; !ok {
					states[rec.ID] = &jobState{spec: *rec.Spec}
					order = append(order, rec.ID)
				}
			case rec.Campaign != nil || rec.Extract != nil:
				if _, ok := syncStates[rec.ID]; !ok {
					syncStates[rec.ID] = &syncState{launch: rec}
					syncOrder = append(syncOrder, rec.ID)
				}
			}
		case opDone:
			if js, ok := states[rec.ID]; ok {
				js.done = true
			} else if ss, ok := syncStates[rec.ID]; ok {
				ss.finished = true
			}
		case opFailed:
			if js, ok := states[rec.ID]; ok {
				js.failed, js.errMsg = true, rec.Err
			} else if ss, ok := syncStates[rec.ID]; ok {
				// A failed sync job's error already reached its client;
				// nothing to restore.
				ss.finished = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	s := New(cfg)
	s.fsys = fsys
	s.spill = spill
	s.prov = prov
	// Evicted artifacts leave memory but stay servable from disk; write-
	// through at compute time already persisted most, so this mainly
	// catches artifacts computed before the spill dir had space.
	s.cache.SetOnEvict(s.spillArtifact)

	// Restore at most the job-table bound, newest first — the same FIFO
	// discipline the live table applies. Dropped jobs lose their poll
	// handle but not their artifacts (spec-addressed in spill).
	if len(order) > s.jobs.bound {
		order = order[len(order)-s.jobs.bound:]
	}

	// Compact into the next journal generation: one launch record per
	// restored job plus its completion mark, atomically replacing the
	// old log. The handle stays open — this is the live journal now.
	aw, err := wal.CreateAtomic(fsys, jpath, wal.Options{
		Fsync:    cfg.JournalFsync,
		MaxBytes: cfg.maxJournalBytes(),
	})
	if err != nil {
		s.Close()
		return nil, nil, err
	}
	writeRec := func(rec journalRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		return aw.Append(payload)
	}
	for _, id := range order {
		js := states[id]
		if err := writeRec(journalRecord{Op: opLaunch, ID: id, Spec: &js.spec}); err != nil {
			_ = aw.Abort()
			s.Close()
			return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
		}
		switch {
		case js.failed:
			err = writeRec(journalRecord{Op: opFailed, ID: id, Err: js.errMsg})
		case js.done:
			err = writeRec(journalRecord{Op: opDone, ID: id})
		}
		if err != nil {
			_ = aw.Abort()
			s.Close()
			return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
		}
	}
	// Unfinished sync launches survive compaction — another crash before
	// their re-run completes must still replay them. Finished ones are
	// dropped: the artifact lives in spill under the same key.
	for _, id := range syncOrder {
		if ss := syncStates[id]; !ss.finished {
			if err := writeRec(ss.launch); err != nil {
				_ = aw.Abort()
				s.Close()
				return nil, nil, fmt.Errorf("service: compacting journal: %w", err)
			}
		}
	}
	if err := aw.Commit(); err != nil {
		_ = aw.Abort()
		s.Close()
		return nil, nil, err
	}
	s.journal = &jobJournal{w: aw}

	// Restore the jobs. Failed ones are restored failed; everything else
	// — unfinished or done — re-runs through the normal compute path,
	// where completed specs hit the spill store instead of recomputing.
	rec := &Recovery{
		TornJournalTail:  st.Torn,
		SpilledArtifacts: spill.Stats().Artifacts,
	}
	// Queue unfinished sync jobs for replay. Their victims register after
	// Open (campaigns need trained data splits), so the records wait in
	// pendingSync until Register drains them per victim.
	for _, id := range syncOrder {
		ss := syncStates[id]
		if ss.finished {
			continue
		}
		name := ss.launch.victimName()
		s.pendingSync[name] = append(s.pendingSync[name], ss.launch)
		if ss.launch.Campaign != nil {
			rec.ReplayedCampaigns++
		} else {
			rec.ReplayedExtracts++
		}
	}
	for _, id := range order {
		js := states[id]
		job := &ExperimentJob{id: id, spec: js.spec, done: make(chan struct{})}
		if err := s.jobs.addExisting(job); err != nil {
			continue
		}
		s.replayedJobs.Add(1)
		rec.ReplayedJobs++
		if js.failed {
			msg := js.errMsg
			if msg == "" {
				msg = "job failed before restart"
			}
			job.err = errors.New(msg)
			close(job.done)
			s.failedJobs.Add(1)
			rec.FailedJobs++
			continue
		}
		rec.Relaunched++
		s.runJob(job)
	}
	return s, rec, nil
}

func (c Config) maxJournalBytes() int64 {
	if c.MaxJournalBytes > 0 {
		return c.MaxJournalBytes
	}
	return defaultMaxJournalBytes
}

// journalLaunch persists a job acceptance — an experiment job before
// its goroutine exists, a campaign/extract job before its compute
// starts. Failure refuses the work: accepting a job the journal cannot
// record would silently break the restart-safety contract.
func (s *Service) journalLaunch(rec journalRecord) error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.append(rec)
	if err == nil {
		return nil
	}
	reason := "job journal unwritable"
	retry := 10
	if errors.Is(err, wal.ErrFull) {
		// The journal compacts at restart; until then the table is the
		// bound that has been hit, so back off longer.
		reason = "job journal full"
		retry = 30
	}
	return fmt.Errorf("%w: %w", &UnavailableError{Reason: reason, RetryAfter: retry}, err)
}

// journalFinish records a job's completion mark. Errors are swallowed:
// a lost completion mark only means the job is re-launched on the next
// restart, where it is served from spill — re-deriving the mark is
// strictly cheaper than failing completed work retroactively.
func (s *Service) journalFinish(id string, jobErr error) {
	if s.journal == nil {
		return
	}
	rec := journalRecord{Op: opDone, ID: id}
	if jobErr != nil {
		rec.Op, rec.Err = opFailed, jobErr.Error()
	}
	_ = s.journal.append(rec)
}

// spillArtifact persists one artifact to the spill store, best-effort:
// a full disk degrades the server to memory-only caching rather than
// failing the computation that produced the artifact.
func (s *Service) spillArtifact(key string, val any) {
	if s.spill == nil {
		return
	}
	payload, err := json.Marshal(val)
	if err != nil {
		return
	}
	if s.spill.Put(key, payload) != nil {
		return
	}
	if s.prov != nil {
		// The record is a pure function of (key, code identity, payload):
		// losing it (full disk, crash) only disables serving this artifact
		// to peers until the next spill re-derives it, never correctness.
		_ = s.prov.Put(provenance.New(key, codeIdentity(), payload))
	}
}

// spillLoad reloads a typed artifact from the spill store; nil on any
// miss, corruption (quarantined inside the store) or decode failure —
// every failure path degrades to recomputation, never a wrong result.
func spillLoad[T any](s *Service, key string) *T {
	if s.spill == nil {
		return nil
	}
	payload, ok, err := s.spill.Get(key)
	if err != nil || !ok {
		return nil
	}
	var v T
	if json.Unmarshal(payload, &v) != nil {
		return nil
	}
	return &v
}
