package service

import (
	"errors"
	"testing"
	"time"

	"xbarsec/internal/dataset"
)

// ttlService builds a service hosting one tiny victim.
func ttlService(t *testing.T, cfg Config) (*Service, *Victim) {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(svc.Close)
	v, err := TrainVictim(VictimSpec{
		Name: "mnist", Kind: dataset.MNIST, Seed: 1,
		TrainN: 200, TestN: 100, Epochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Register(v); err != nil {
		t.Fatal(err)
	}
	return svc, v
}

func TestIdleSessionIsReaped(t *testing.T) {
	svc, v := ttlService(t, Config{Seed: 1, SessionTTL: time.Hour})
	sess, err := svc.OpenSession("mnist", SessionConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, v.Inputs())
	if _, err := sess.Query(input); err != nil {
		t.Fatal(err)
	}
	// Still live: a sweep at the current time reaps nothing.
	if n := svc.ReapIdleSessions(time.Now()); n != 0 {
		t.Fatalf("reaped %d live sessions", n)
	}
	if _, err := svc.Session(sess.ID()); err != nil {
		t.Fatal(err)
	}
	// Abandoned: a sweep from the far future reaps it and cleans the
	// victim's open-session gauge.
	if n := svc.ReapIdleSessions(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	if _, err := svc.Session(sess.ID()); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("reaped session still resolvable: %v", err)
	}
	if open := v.open.Load(); open != 0 {
		t.Fatalf("victim open-session gauge %d after reap, want 0", open)
	}
	if got := svc.Stats().ReapedSessions; got != 1 {
		t.Fatalf("stats report %d reaped sessions, want 1", got)
	}
	// The victim's flusher state is intact: a new session on the same
	// victim still serves queries through the coalescer.
	sess2, err := svc.OpenSession("mnist", SessionConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Query(input); err != nil {
		t.Fatalf("coalescer broken after reap: %v", err)
	}
	// Reaping an already-reaped or closed session is idempotent.
	if n := svc.ReapIdleSessions(time.Now().Add(-time.Minute)); n != 0 {
		t.Fatalf("stale sweep reaped %d", n)
	}
}

func TestSessionJanitorReapsInBackground(t *testing.T) {
	svc, _ := ttlService(t, Config{Seed: 1, SessionTTL: 20 * time.Millisecond})
	sess, err := svc.OpenSession("mnist", SessionConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := svc.Session(sess.ID()); errors.Is(err, ErrSessionUnknown) {
			return // reaped by the janitor
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never reaped the abandoned session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueryKeepsSessionAlive(t *testing.T) {
	svc, v := ttlService(t, Config{Seed: 1, SessionTTL: time.Hour})
	sess, err := svc.OpenSession("mnist", SessionConfig{Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.lastUsed.Load()
	time.Sleep(2 * time.Millisecond)
	if _, err := sess.Query(make([]float64, v.Inputs())); err != nil {
		t.Fatal(err)
	}
	if after := sess.lastUsed.Load(); after <= before {
		t.Fatal("query must refresh the idle clock")
	}
}

func TestPerVictimSessionCap(t *testing.T) {
	svc, _ := ttlService(t, Config{Seed: 1, MaxSessionsPerVictim: 2})
	a, err := svc.OpenSession("mnist", SessionConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third open: err = %v, want ErrSessionLimit", err)
	}
	// Closing a session frees a slot.
	if err := svc.CloseSession(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestReapFreesCapSlot(t *testing.T) {
	svc, _ := ttlService(t, Config{Seed: 1, SessionTTL: time.Hour, MaxSessionsPerVictim: 1})
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("err = %v, want ErrSessionLimit", err)
	}
	if n := svc.ReapIdleSessions(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if _, err := svc.OpenSession("mnist", SessionConfig{Budget: 10}); err != nil {
		t.Fatalf("open after reap: %v", err)
	}
}
