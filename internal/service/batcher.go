package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xbarsec/internal/crossbar"
)

// ErrVictimClosed indicates a query against a victim whose batcher has
// been shut down (service closed or victim removed).
var ErrVictimClosed = errors.New("service: victim closed")

// batchRequest is one in-flight query travelling through a victim's
// coalescer. The submitting goroutine owns the request before submit and
// after done fires; the flusher owns it in between. done is a WaitGroup
// rather than a channel: it lives inside the request, so a query costs
// one allocation, not two.
type batchRequest struct {
	u         []float64
	wantPower bool
	y         []float64
	power     float64
	err       error
	done      sync.WaitGroup
}

// batcher coalesces concurrent queries against one victim into batched
// crossbar calls. A single background flusher drains everything queued
// since the previous flush and serves it with one ForwardBatch (plain
// queries) plus one fused ForwardPowerBatch (power-measuring queries) —
// so under load, N in-flight queries cost two batched array passes
// instead of up to 2N scalar reads, and a noisy (stateful) array is
// automatically serialized without a per-read lock.
//
// Results are bit-identical to scalar per-call serving for noise-free
// arrays (the batched kernels pin this); for noisy arrays the flusher's
// serialization makes results depend on arrival order, exactly as
// contended scalar reads would.
type batcher struct {
	hw   *crossbar.Network
	reqs chan *batchRequest
	stop chan struct{}
	exit chan struct{}

	sendMu sync.RWMutex
	closed bool

	// Serving statistics, exported via Service.Stats.
	requests atomic.Int64
	batches  atomic.Int64
	maxBatch atomic.Int64
	// queueDepthPeak is the deepest the request channel has been at
	// submit time — how close the coalescer has come to exerting
	// backpressure (the channel's capacity bounds it).
	queueDepthPeak atomic.Int64
}

// notePeak raises queueDepthPeak to depth if it exceeds the recorded
// high-water mark.
func (b *batcher) notePeak(depth int64) {
	for {
		m := b.queueDepthPeak.Load()
		if depth <= m || b.queueDepthPeak.CompareAndSwap(m, depth) {
			return
		}
	}
}

// newBatcher starts the flusher for hw. depth bounds how many requests
// can queue while a flush is in progress.
func newBatcher(hw *crossbar.Network, depth int) *batcher {
	if depth <= 0 {
		depth = 256
	}
	b := &batcher{
		hw:   hw,
		reqs: make(chan *batchRequest, depth),
		stop: make(chan struct{}),
		exit: make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues one request and blocks until it is served. The input
// must stay unmutated until submit returns; the returned y (if any) is
// backed by the flush's batch slab — per-request distinct, but cloned by
// the oracle layer before reaching attackers.
func (b *batcher) submit(r *batchRequest) error {
	if len(r.u) != b.hw.Inputs() {
		// Reject before batching so one malformed query can never fail
		// the flush it would have ridden in.
		return fmt.Errorf("service: query input length %d, want %d", len(r.u), b.hw.Inputs())
	}
	r.done.Add(1)
	b.sendMu.RLock()
	if b.closed {
		b.sendMu.RUnlock()
		return ErrVictimClosed
	}
	b.reqs <- r
	b.notePeak(int64(len(b.reqs)))
	b.sendMu.RUnlock()
	r.done.Wait()
	return r.err
}

// submitAll enqueues every request in rs and blocks until all are
// served — the one-slice feed behind the batched query endpoint. The
// requests enter the flusher's channel contiguously in slice order, so
// with no interleaving traffic they ride one flush (or an ordered run
// of flushes, which serves a noisy array in exactly the same per-input
// order); either way the victim sees len(rs) queries for a constant
// number of array passes instead of len(rs) round trips. Returns the
// first request error, if any.
func (b *batcher) submitAll(rs []*batchRequest) error {
	for _, r := range rs {
		if len(r.u) != b.hw.Inputs() {
			return fmt.Errorf("service: query input length %d, want %d", len(r.u), b.hw.Inputs())
		}
	}
	b.sendMu.RLock()
	if b.closed {
		b.sendMu.RUnlock()
		return ErrVictimClosed
	}
	for _, r := range rs {
		r.done.Add(1)
		b.reqs <- r
	}
	b.notePeak(int64(len(b.reqs)))
	b.sendMu.RUnlock()
	var err error
	for _, r := range rs {
		r.done.Wait()
		if err == nil {
			err = r.err
		}
	}
	return err
}

// close stops the flusher after it drains every already-submitted
// request; later submits fail with ErrVictimClosed. Idempotent.
func (b *batcher) close() {
	b.sendMu.Lock()
	if b.closed {
		b.sendMu.Unlock()
		return
	}
	b.closed = true
	b.sendMu.Unlock()
	close(b.stop)
	<-b.exit
}

// loop is the flusher: it blocks for one request, then drains whatever
// else arrived and serves the whole set as one batch. Queries arriving
// during a flush buffer in the channel and form the next batch — the
// combining that makes throughput scale with the batch engine.
//
//xbar:hotpath
func (b *batcher) loop() {
	defer close(b.exit)
	// Flusher-private scratch, reused across flushes (the flusher is the
	// only goroutine touching it).
	var batch []*batchRequest
	var scratch flushScratch
	for {
		var first *batchRequest
		select {
		case first = <-b.reqs:
		case <-b.stop:
			// closed was set before stop closed and every successful
			// submit happened before closed was set, so the channel now
			// holds the complete set of unserved requests.
			for {
				select {
				case r := <-b.reqs:
					r.err = ErrVictimClosed
					r.done.Done()
				default:
					return
				}
			}
		}
		batch = append(batch[:0], first)
	drain:
		for {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		b.flush(batch, &scratch)
	}
}

// flushScratch holds the flusher's reusable partition and input buffers.
type flushScratch struct {
	plain, fused []*batchRequest
	us           [][]float64
}

// flush serves one coalesced batch: fused forward+power for the
// power-measuring requests, plain forward for the rest.
//
//xbar:hotpath
func (b *batcher) flush(batch []*batchRequest, sc *flushScratch) {
	b.batches.Add(1)
	b.requests.Add(int64(len(batch)))
	for {
		m := b.maxBatch.Load()
		if int64(len(batch)) <= m || b.maxBatch.CompareAndSwap(m, int64(len(batch))) {
			break
		}
	}
	plain, fused := sc.plain[:0], sc.fused[:0]
	for _, r := range batch {
		if r.wantPower {
			fused = append(fused, r)
		} else {
			plain = append(plain, r)
		}
	}
	sc.plain, sc.fused = plain, fused
	if len(plain) > 0 {
		us := sc.us[:0]
		for _, r := range plain {
			us = append(us, r.u)
		}
		sc.us = us
		ys, err := b.hw.ForwardBatch(us)
		for i, r := range plain {
			if err != nil {
				r.err = err
			} else {
				r.y = ys[i]
			}
		}
	}
	if len(fused) > 0 {
		us := sc.us[:0]
		for _, r := range fused {
			us = append(us, r.u)
		}
		sc.us = us
		ys, ps, err := b.hw.ForwardPowerBatch(us)
		for i, r := range fused {
			if err != nil {
				r.err = err
			} else {
				r.y, r.power = ys[i], ps[i]
			}
		}
	}
	for _, r := range batch {
		r.done.Done()
	}
}
