package service

// The chaos suite for the durability layer: kill-and-restart recovery,
// torn journal tails, corrupt spill artifacts, journal-full refusal and
// panicking jobs — every test named TestChaos* so `make chaos` runs the
// whole suite under the race detector. The crash primitive is the
// fault-injection FS's crash switch: an in-process SIGKILL equivalent
// where abandoned goroutines keep running but nothing they do reaches
// the state directory anymore.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"xbarsec/api"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/faultinject"
	"xbarsec/internal/memo"
	"xbarsec/internal/oracle"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/wal"
)

// durResult is the registered test experiments' deliverable: small,
// deterministic, JSON-stable — cheap enough that chaos tests can launch
// many jobs without the suite crawling.
type durResult struct {
	Name string  `json:"name"`
	Seed int64   `json:"seed"`
	Sum  float64 `json:"sum"`
}

func (r *durResult) Render() string {
	return fmt.Sprintf("%s seed=%d sum=%.17g", r.Name, r.Seed, r.Sum)
}
func (r *durResult) Tables() []*report.Table     { return nil }
func (r *durResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

func durCompute(name string, seed int64) *durResult {
	src := rng.New(seed).Split(name)
	sum := 0.0
	for i := 0; i < 1000; i++ {
		sum += src.Float64()
	}
	return &durResult{Name: name, Seed: seed, Sum: sum}
}

// durBlockGate holds the blocking test experiment mid-run until closed;
// once closed, replays of the same experiment return immediately.
var durBlockGate = make(chan struct{})

var registerDurabilityExperiments = sync.OnceFunc(func() {
	engine.Register(engine.Experiment{
		Name:  "svc-test-quick",
		Title: "deterministic instant result (durability tests only)",
		Run: func(opts engine.Options) (engine.Result, error) {
			return durCompute("svc-test-quick", opts.Seed), nil
		},
	})
	engine.Register(engine.Experiment{
		Name:  "svc-test-block",
		Title: "blocks until the gate closes (durability tests only)",
		Run: func(opts engine.Options) (engine.Result, error) {
			<-durBlockGate
			return durCompute("svc-test-block", opts.Seed), nil
		},
	})
	engine.Register(engine.Experiment{
		Name:  "svc-test-panic",
		Title: "panics mid-run (durability tests only)",
		Run: func(opts engine.Options) (engine.Result, error) {
			panic("kaboom: injected test panic")
		},
	})
})

// TestChaosKillAndRestart is the acceptance test for the whole
// durability layer: launch jobs, kill the process mid-run (crash
// switch), restart on the same state dir, and require every job to
// reach done under its original id with results bit-identical to the
// uninterrupted run — completed ones served from spill, the in-flight
// one recomputed.
func TestChaosKillAndRestart(t *testing.T) {
	registerDurabilityExperiments()
	dir := t.TempDir()
	fsys := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{Seed: 1})
	s1, rec, err := Open(Config{Seed: 11, Workers: 2, StateDir: dir, JournalFsync: true, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ReplayedJobs != 0 || rec.SpilledArtifacts != 0 || rec.TornJournalTail {
		t.Fatalf("fresh open recovery = %+v", rec)
	}

	specs := []ExperimentSpec{
		{Name: "ablate-trace", Seed: 29, Scale: 0.01}, // a real registry experiment
		{Name: "svc-test-quick", Seed: 7},
		{Name: "svc-test-block", Seed: 3},
	}
	// The first two jobs finish before the crash: their completion marks
	// and spilled artifacts are on disk.
	var jobs []*ExperimentJob
	want := map[string]*ExperimentResult{}
	for _, spec := range specs[:2] {
		job, err := s1.LaunchExperiment(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		_, res, jerr := job.Snapshot()
		if jerr != nil {
			t.Fatal(jerr)
		}
		jobs = append(jobs, job)
		want[job.ID()] = res
	}
	// The third is mid-run at the crash: its launch record is journaled,
	// its completion mark and artifact can no longer land.
	blocked, err := s1.LaunchExperiment(specs[2])
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, blocked)
	fsys.Crash()
	close(durBlockGate)
	// The abandoned instance still finishes in memory — that is what a
	// real SIGKILL interrupts — but nothing it does reaches disk now.
	<-blocked.Done()
	if _, res, jerr := blocked.Snapshot(); jerr != nil {
		t.Fatal(jerr)
	} else {
		want[blocked.ID()] = res
	}
	s1.Close()

	// Restart on the same state dir with a healthy filesystem.
	s2, rec2, err := Open(Config{Seed: 11, Workers: 2, StateDir: dir, JournalFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.TornJournalTail {
		t.Error("clean journal reported torn")
	}
	if rec2.ReplayedJobs != 3 || rec2.Relaunched != 3 || rec2.FailedJobs != 0 {
		t.Fatalf("recovery = %+v, want 3 replayed / 3 relaunched / 0 failed", rec2)
	}
	if rec2.SpilledArtifacts != 2 {
		t.Fatalf("spill inventory at open = %d, want 2", rec2.SpilledArtifacts)
	}

	for _, orig := range jobs {
		job, err := s2.ExperimentJobByID(orig.ID())
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", orig.ID(), err)
		}
		if job.Spec() != orig.Spec() {
			t.Fatalf("job %s spec changed across restart: %+v vs %+v", orig.ID(), job.Spec(), orig.Spec())
		}
		select {
		case <-job.Done():
		case <-time.After(2 * time.Minute):
			t.Fatalf("job %s never finished after restart", orig.ID())
		}
		_, res, jerr := job.Snapshot()
		if jerr != nil {
			t.Fatalf("job %s failed after restart: %v", orig.ID(), jerr)
		}
		w := want[orig.ID()]
		if res.Render != w.Render || !bytes.Equal(res.Result, w.Result) {
			t.Fatalf("job %s result differs from the uninterrupted run", orig.ID())
		}
	}

	// The completed jobs were served from spill, not recomputed.
	st := s2.Stats()
	if st.ReplayedJobs != 3 || st.FailedJobs != 0 {
		t.Fatalf("stats = %d replayed / %d failed, want 3 / 0", st.ReplayedJobs, st.FailedJobs)
	}
	if st.SpillHits < 2 {
		t.Fatalf("spill hits = %d, want >= 2 (completed jobs must be served from disk)", st.SpillHits)
	}
	if st.SpilledArtifacts != 3 {
		t.Fatalf("spilled artifacts = %d, want 3 (recomputed job written through)", st.SpilledArtifacts)
	}
	for _, id := range []string{jobs[0].ID(), jobs[1].ID()} {
		job, _ := s2.ExperimentJobByID(id)
		_, res, _ := job.Snapshot()
		if !res.Cached {
			t.Errorf("job %s not marked cached — recomputed instead of spill-served", id)
		}
	}
}

// TestChaosCampaignKillAndRestart pins restart safety for the
// synchronous job family: a campaign (and an extraction) whose launch
// record is journaled but whose completion mark never lands — the exact
// bytes a SIGKILL mid-compute leaves behind — is replayed at the next
// Open as soon as its victim registers, lands its artifact in spill
// bit-identical to an uninterrupted run, and disappears from the
// journal once its completion mark folds at the following compaction.
func TestChaosCampaignKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 11, Workers: 2, StateDir: dir, JournalFsync: true}
	specA := CampaignSpec{Victim: "m", Mode: oracle.RawOutput, Seed: 3, Queries: 40, Lambda: 0.1}
	specB := CampaignSpec{Victim: "m", Mode: oracle.LabelOnly, Seed: 4, Queries: 40}
	specE := ExtractSpec{Victim: "m", Seed: 5}

	// Reference results from an uninterrupted memory-only run: campaigns
	// and extractions are pure functions of (spec, victim), so recovery
	// must reproduce these bit-for-bit.
	ref := newTestService(t, Config{Seed: 11, Workers: 2}, buildTestVictim(t, "m", 5))
	wantB, err := ref.RunCampaign(specB)
	if err != nil {
		t.Fatal(err)
	}
	wantE, err := ref.RunExtract(specE)
	if err != nil {
		t.Fatal(err)
	}

	s1, rec, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ReplayedCampaigns != 0 || rec.ReplayedExtracts != 0 {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	if err := s1.Register(buildTestVictim(t, "m", 5)); err != nil {
		t.Fatal(err)
	}
	// Campaign A completes before the crash: launch + done journaled,
	// artifact spilled.
	if _, err := s1.RunCampaign(specA); err != nil {
		t.Fatal(err)
	}
	// The crash signature for B and E: a launch record with no completion
	// mark (RunCampaign journals the defaulted spec, so mirror that).
	bd := specB.withDefaults()
	if err := s1.journalLaunch(journalRecord{Op: opLaunch, ID: bd.key(), Campaign: &bd}); err != nil {
		t.Fatal(err)
	}
	ed := extractDefaults(specE)
	if err := s1.journalLaunch(journalRecord{Op: opLaunch, ID: extractKey(ed), Extract: &ed}); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, rec2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ReplayedCampaigns != 1 || rec2.ReplayedExtracts != 1 {
		t.Fatalf("recovery = %+v, want 1 replayed campaign and 1 replayed extract", rec2)
	}
	// The replays wait for their victim; registering it triggers the
	// drain, which recomputes both jobs and writes them through to spill
	// (A's artifact + B + E = 3).
	if err := s2.Register(buildTestVictim(t, "m", 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for s2.Stats().SpilledArtifacts < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("replayed jobs never reached spill: %d artifacts", s2.Stats().SpilledArtifacts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The crashed client's retry is served from the artifact store.
	resB, err := s2.RunCampaign(specB)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Cached {
		t.Error("recovered campaign recomputed instead of served from the artifact store")
	}
	if resB.CleanAccuracy != wantB.CleanAccuracy || resB.SurrogateAccuracy != wantB.SurrogateAccuracy ||
		resB.AdvAccuracy != wantB.AdvAccuracy || resB.QueriesCharged != wantB.QueriesCharged {
		t.Fatalf("recovered campaign differs from the uninterrupted run:\n%+v\nvs\n%+v", resB, wantB)
	}
	resE, err := s2.RunExtract(specE)
	if err != nil {
		t.Fatal(err)
	}
	if !resE.Cached {
		t.Error("recovered extraction recomputed instead of served from the artifact store")
	}
	if !reflect.DeepEqual(resE.Signals, wantE.Signals) || !reflect.DeepEqual(resE.Norms, wantE.Norms) {
		t.Fatal("recovered extraction signals differ from the uninterrupted run")
	}
	s2.Close()

	// The completion marks fold at the next compaction: nothing left to
	// replay.
	s3, rec3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec3.ReplayedCampaigns != 0 || rec3.ReplayedExtracts != 0 {
		t.Fatalf("third open still replays sync jobs: %+v", rec3)
	}
}

// TestChaosTornJournalTail feeds Open a journal with a crash signature
// — valid records then half a frame — and requires the intact records
// recovered, the tear reported, and id assignment to continue past the
// replayed jobs.
func TestChaosTornJournalTail(t *testing.T) {
	registerDurabilityExperiments()
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.wal")
	w, err := wal.Create(wal.OSFS{}, path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := ExperimentSpec{Name: "svc-test-quick", Seed: 21, Scale: 1}
	for _, rec := range []journalRecord{
		{Op: opLaunch, ID: "job-1", Spec: &spec},
		{Op: opFailed, ID: "job-1", Err: "boom before restart"},
	} {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: three bytes of a frame header at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, rec, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !rec.TornJournalTail {
		t.Error("torn tail not reported")
	}
	if rec.ReplayedJobs != 1 || rec.FailedJobs != 1 || rec.Relaunched != 0 {
		t.Fatalf("recovery = %+v, want 1 replayed / 1 failed / 0 relaunched", rec)
	}
	job, err := s.ExperimentJobByID("job-1")
	if err != nil {
		t.Fatal(err)
	}
	status, _, jerr := job.Snapshot()
	if status != JobFailed || jerr == nil || !strings.Contains(jerr.Error(), "boom before restart") {
		t.Fatalf("restored job = %v / %v, want failed with the journaled message", status, jerr)
	}
	// Fresh launches continue past the replayed id.
	job2, err := s.LaunchExperiment(ExperimentSpec{Name: "svc-test-quick", Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if job2.ID() != "job-2" {
		t.Fatalf("post-recovery id = %s, want job-2", job2.ID())
	}
	<-job2.Done()
}

// TestChaosCorruptSpill flips a byte in a spilled artifact and requires
// the store to quarantine it and the service to recompute — a corrupt
// file must never surface as a result, silently wrong or otherwise.
func TestChaosCorruptSpill(t *testing.T) {
	registerDurabilityExperiments()
	dir := t.TempDir()
	spec := ExperimentSpec{Name: "svc-test-quick", Seed: 40}
	s1, _, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	spillDir := filepath.Join(dir, "spill")
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), ".") {
			continue
		}
		p := filepath.Join(spillDir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted != 1 {
		t.Fatalf("corrupted %d artifacts, want exactly 1", corrupted)
	}

	s2, rec, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.SpilledArtifacts != 1 {
		t.Fatalf("inventory = %d, want 1 (corruption is only detected on read)", rec.SpilledArtifacts)
	}
	res2, err := s2.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Error("corrupt artifact served as cached")
	}
	if res2.Render != res1.Render || !bytes.Equal(res2.Result, res1.Result) {
		t.Fatal("recomputed result differs from the original")
	}
	// The corrupt file is quarantined aside; the recompute wrote a fresh
	// good artifact at the live name.
	ents, err = os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	live, quarantined := 0, 0
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".quarantine"):
			quarantined++
		case !strings.Contains(e.Name(), "."):
			live++
		}
	}
	if live != 1 || quarantined != 1 {
		t.Fatalf("spill dir = %d live / %d quarantined, want 1 / 1", live, quarantined)
	}
	if st := s2.Stats(); st.SpilledArtifacts != 1 {
		t.Fatalf("stats count %d spilled artifacts, want 1", st.SpilledArtifacts)
	}
}

// TestChaosJournalFull pins graceful degradation: when the journal
// cannot record another launch, the server refuses with a typed
// "unavailable" plus Retry-After — over the API and on the wire — and
// rolls the job record back instead of accepting work without restart
// safety.
func TestChaosJournalFull(t *testing.T) {
	registerDurabilityExperiments()
	dir := t.TempDir()
	s, _, err := Open(Config{StateDir: dir, MaxJournalBytes: 220})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	launched := 0
	var launchErr error
	for seed := int64(1); seed <= 50; seed++ {
		job, err := s.LaunchExperiment(ExperimentSpec{Name: "svc-test-quick", Seed: seed})
		if err != nil {
			launchErr = err
			break
		}
		launched++
		<-job.Done()
	}
	if launchErr == nil {
		t.Fatal("50 launches fit in a 220-byte journal")
	}
	if launched == 0 {
		t.Fatal("the first launch must fit")
	}
	if !errors.Is(launchErr, ErrUnavailable) {
		t.Fatalf("refusal = %v, want ErrUnavailable", launchErr)
	}
	var ue *UnavailableError
	if !errors.As(launchErr, &ue) || ue.RetryAfter != 30 {
		t.Fatalf("refusal = %v, want UnavailableError with Retry-After 30", launchErr)
	}
	if e := apiError(launchErr); e.Code != api.CodeUnavailable || e.RetryAfter != 30 {
		t.Fatalf("envelope = %+v, want code unavailable, retry_after 30", e)
	}
	if api.CodeUnavailable.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("unavailable maps to %d, want 503", api.CodeUnavailable.HTTPStatus())
	}
	// The refused job's record was rolled back: the table holds exactly
	// the accepted jobs.
	if got := s.jobs.size(); got != launched {
		t.Fatalf("job table holds %d entries, want %d", got, launched)
	}

	// End to end: the wire response is a 503 with the Retry-After header
	// and the typed envelope.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(api.ExperimentSpec{Name: "svc-test-quick", Seed: 999})
	resp, err := http.Post(ts.URL+api.PathPrefix+"/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After header = %q, want \"30\"", got)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != api.CodeUnavailable || e.RetryAfter != 30 {
		t.Fatalf("wire envelope = %+v, %v", e, err)
	}
}

// TestChaosPanickingJob pins the stuck-job fix: a panic inside an
// experiment marks the job failed with a typed internal error (never
// running forever with its done channel unclosed), counts in stats, and
// survives a restart as failed rather than being re-launched into the
// same panic.
func TestChaosPanickingJob(t *testing.T) {
	registerDurabilityExperiments()
	dir := t.TempDir()
	s1, _, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s1.LaunchExperiment(ExperimentSpec{Name: "svc-test-panic", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(time.Minute):
		t.Fatal("panicking job stuck running — done channel never closed")
	}
	status, res, jerr := job.Snapshot()
	if status != JobFailed || res != nil || jerr == nil {
		t.Fatalf("job = %v / %v / %v, want failed with an error", status, res, jerr)
	}
	var pe *memo.PanicError
	if !errors.As(jerr, &pe) || !strings.Contains(fmt.Sprint(pe.Value), "injected test panic") {
		t.Fatalf("err = %v, want a typed memo.PanicError carrying the panic value", jerr)
	}
	// The wire shape a GET jobs/{id} poller sees.
	if e := apiError(jerr); e.Code != api.CodeInternal || e.Message != "experiment job panicked" ||
		!strings.Contains(e.Detail, "injected test panic") {
		t.Fatalf("envelope = %+v", e)
	}
	if got := s1.Stats().FailedJobs; got != 1 {
		t.Fatalf("failed_jobs = %d, want 1", got)
	}
	s1.Close()

	// The failure is durable: restart restores the job failed instead of
	// re-launching it into the same panic.
	s2, rec, err := Open(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.ReplayedJobs != 1 || rec.FailedJobs != 1 || rec.Relaunched != 0 {
		t.Fatalf("recovery = %+v, want the job restored failed, not relaunched", rec)
	}
	job2, err := s2.ExperimentJobByID(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if status, _, jerr := job2.Snapshot(); status != JobFailed || jerr == nil {
		t.Fatalf("restored job = %v / %v, want failed", status, jerr)
	}
	if got := s2.Stats().FailedJobs; got != 1 {
		t.Fatalf("failed_jobs after restart = %d, want 1", got)
	}
}
