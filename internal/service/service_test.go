package service

import (
	"errors"
	"math"
	"sync"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
)

// buildTestVictim trains a small 10x10-image victim on an ideal crossbar
// — the fast fixture every service test shares. Deterministic per seed.
func buildTestVictim(t testing.TB, name string, seed int64) *Victim {
	t.Helper()
	src := rng.New(seed)
	gen := func(label string, n int) *dataset.Dataset {
		ds, err := dataset.GenerateMNISTLike(src.Split(label), n, dataset.MNISTLikeConfig{
			Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	train, test := gen("train", 120), gen("test", 60)
	net, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9, ZeroInit: true,
	}, src.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVictim(name, net, hw, train, test)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newTestService(t testing.TB, cfg Config, victims ...*Victim) *Service {
	t.Helper()
	s := New(cfg)
	for _, v := range victims {
		if err := s.Register(v); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(s.Close)
	return s
}

func TestRegistryLifecycle(t *testing.T) {
	v := buildTestVictim(t, "m", 1)
	s := newTestService(t, Config{Seed: 1}, v)
	if _, err := s.Victim("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Victim("nope"); !errors.Is(err, ErrVictimUnknown) {
		t.Fatalf("want ErrVictimUnknown, got %v", err)
	}
	dup := buildTestVictim(t, "m", 2)
	if err := s.Register(dup); !errors.Is(err, ErrVictimExists) {
		t.Fatalf("want ErrVictimExists, got %v", err)
	}
	if names := s.VictimNames(); len(names) != 1 || names[0] != "m" {
		t.Fatalf("names = %v", names)
	}
	if err := s.Register(v); err == nil {
		t.Fatal("re-registering an attached victim must fail")
	}
}

// TestCoalescedServingBitIdentical pins the whole coalesced session path
// — forward, raw outputs, fused power — to a reference oracle reading
// the same array scalar-per-call.
func TestCoalescedServingBitIdentical(t *testing.T) {
	v := buildTestVictim(t, "m", 3)
	s := newTestService(t, Config{Seed: 3}, v)
	sess, err := s.OpenSession("m", SessionConfig{Mode: oracle.RawOutput, MeasurePower: true, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := oracle.New(v.hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.test.Len(); i++ {
		u := v.test.X.Row(i)
		got, err := sess.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query(u)
		if err != nil {
			t.Fatal(err)
		}
		if got.Label != want.Label || got.Power != want.Power {
			t.Fatalf("query %d: coalesced (%d, %v) != scalar (%d, %v)",
				i, got.Label, got.Power, want.Label, want.Power)
		}
		for j := range want.Raw {
			if got.Raw[j] != want.Raw[j] {
				t.Fatalf("query %d raw[%d]: %v != %v", i, j, got.Raw[j], want.Raw[j])
			}
		}
	}
}

func TestSessionBudgetAndIsolation(t *testing.T) {
	v := buildTestVictim(t, "m", 4)
	s := newTestService(t, Config{Seed: 4, DefaultSessionBudget: 7}, v)
	a, err := s.OpenSession("m", SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.OpenSession("m", SessionConfig{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Fatal("session ids must be unique")
	}
	if a.Budget() != 7 {
		t.Fatalf("default budget = %d, want 7", a.Budget())
	}
	u := v.test.X.Row(0)
	for i := 0; i < 2; i++ {
		if _, err := b.Query(u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Query(u); !errors.Is(err, oracle.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// Session a's budget is untouched by b's exhaustion.
	if a.Remaining() != 7 || a.Queries() != 0 {
		t.Fatalf("session a charged by session b: remaining=%d queries=%d", a.Remaining(), a.Queries())
	}
	if err := s.CloseSession(b.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Session(b.ID()); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("want ErrSessionUnknown, got %v", err)
	}
	if err := s.CloseSession(b.ID()); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("double close: want ErrSessionUnknown, got %v", err)
	}
}

func TestSessionRejectsBadInputWithoutCharge(t *testing.T) {
	v := buildTestVictim(t, "m", 5)
	s := newTestService(t, Config{Seed: 5}, v)
	sess, err := s.OpenSession("m", SessionConfig{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query([]float64{1, 2, 3}); err == nil {
		t.Fatal("short input must error")
	}
	if sess.Queries() != 0 {
		t.Fatalf("malformed query charged budget: %d", sess.Queries())
	}
	// A malformed query must not have poisoned the batcher for others.
	if _, err := sess.Query(v.test.X.Row(0)); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignReplayBitIdentical is the determinism acceptance test: the
// same campaign spec replayed on services with different worker counts
// (and again from the cache) yields bit-identical floats.
func TestCampaignReplayBitIdentical(t *testing.T) {
	spec := CampaignSpec{
		Victim: "m", Mode: oracle.RawOutput, Seed: 99,
		Queries: 40, Lambda: 0.004, SurrogateEpochs: 10, AttackEps: 0.6,
	}
	var results []*CampaignResult
	for _, workers := range []int{1, 8} {
		s := newTestService(t, Config{Seed: 6, Workers: workers}, buildTestVictim(t, "m", 6))
		res, err := s.RunCampaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("first run must not be cached")
		}
		again, err := s.RunCampaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatal("second identical run must be served from cache")
		}
		again.Cached = res.Cached
		if *again != *res {
			t.Fatalf("cached replay differs: %+v vs %+v", again, res)
		}
		results = append(results, res)
	}
	if *results[0] != *results[1] {
		t.Fatalf("campaign not worker-invariant:\n  w=1: %+v\n  w=8: %+v", results[0], results[1])
	}
	if results[0].QueriesCharged != spec.Queries {
		t.Fatalf("charged %d queries, want %d", results[0].QueriesCharged, spec.Queries)
	}
	if results[0].SurrogateAccuracy <= 0.2 {
		t.Fatalf("surrogate accuracy %v suspiciously low", results[0].SurrogateAccuracy)
	}
	if results[0].AdvAccuracy >= results[0].CleanAccuracy {
		t.Fatalf("FGSM did no damage: adv %v >= clean %v", results[0].AdvAccuracy, results[0].CleanAccuracy)
	}
}

func TestCampaignValidation(t *testing.T) {
	v := buildTestVictim(t, "m", 7)
	s := newTestService(t, Config{Seed: 7}, v)
	if _, err := s.RunCampaign(CampaignSpec{Victim: "nope", Mode: oracle.LabelOnly, Queries: 5}); !errors.Is(err, ErrVictimUnknown) {
		t.Fatalf("want ErrVictimUnknown, got %v", err)
	}
	if _, err := s.RunCampaign(CampaignSpec{Victim: "m", Mode: oracle.LabelOnly}); err == nil {
		t.Fatal("zero query budget must error")
	}
	if _, err := s.RunCampaign(CampaignSpec{Victim: "m", Mode: oracle.Mode(9), Queries: 5}); err == nil {
		t.Fatal("unknown mode must error")
	}
	// A campaign asking for more queries than the victim's training set
	// still works (Collect clamps), and charges only what it spent.
	res, err := s.RunCampaign(CampaignSpec{Victim: "m", Mode: oracle.LabelOnly, Queries: 1000, SurrogateEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesCharged != v.train.Len() {
		t.Fatalf("charged %d, want clamp to train size %d", res.QueriesCharged, v.train.Len())
	}
}

func TestCampaignSingleflight(t *testing.T) {
	s := newTestService(t, Config{Seed: 8, MaxConcurrentJobs: 4}, buildTestVictim(t, "m", 8))
	spec := CampaignSpec{Victim: "m", Mode: oracle.LabelOnly, Seed: 1, Queries: 30, SurrogateEpochs: 4}
	const callers = 6
	results := make([]*CampaignResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.RunCampaign(spec)
			if err != nil {
				panic(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	hits, misses := s.cache.Stats()
	if misses != 1 {
		t.Fatalf("computed %d times, want singleflight (1)", misses)
	}
	if hits != callers-1 {
		t.Fatalf("cache hits = %d, want %d", hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		a, b := *results[0], *results[i]
		a.Cached, b.Cached = false, false
		if a != b {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

func TestExtractCachedAndCalibrated(t *testing.T) {
	v := buildTestVictim(t, "m", 9)
	s := newTestService(t, Config{Seed: 9}, v)
	res, err := s.RunExtract(ExtractSpec{Victim: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first extraction must not be cached")
	}
	if res.ProbeQueries != v.Inputs() {
		t.Fatalf("probe spent %d queries, want %d basis reads", res.ProbeQueries, v.Inputs())
	}
	// The calibrated norms must recover the true column 1-norms of the
	// victim's weights on an ideal crossbar.
	want := v.net.W.ColAbsSums()
	for j := range want {
		if diff := math.Abs(res.Norms[j] - want[j]); diff > 1e-9*(1+math.Abs(want[j])) {
			t.Fatalf("norm[%d] = %v, want %v", j, res.Norms[j], want[j])
		}
	}
	again, err := s.RunExtract(ExtractSpec{Victim: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat extraction must be served from cache")
	}
	// A different probe config is a different artifact.
	other, err := s.RunExtract(ExtractSpec{Victim: "m", Repeats: 3, NoiseStd: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Fatal("different probe config must recompute")
	}
	if other.ProbeQueries != 3*v.Inputs() {
		t.Fatalf("averaged probe spent %d queries, want %d", other.ProbeQueries, 3*v.Inputs())
	}
}

func TestServiceCloseRefusesWork(t *testing.T) {
	v := buildTestVictim(t, "m", 10)
	s := New(Config{Seed: 10})
	if err := s.Register(v); err != nil {
		t.Fatal(err)
	}
	sess, err := s.OpenSession("m", SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.OpenSession("m", SessionConfig{}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("want ErrServiceClosed, got %v", err)
	}
	if _, err := s.RunCampaign(CampaignSpec{Victim: "m", Mode: oracle.LabelOnly, Queries: 3}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("want ErrServiceClosed, got %v", err)
	}
	if _, err := sess.Query(v.test.X.Row(0)); !errors.Is(err, ErrVictimClosed) {
		t.Fatalf("want ErrVictimClosed, got %v", err)
	}
}

func TestTrainVictimDeterministic(t *testing.T) {
	spec := VictimSpec{Kind: dataset.MNIST, Seed: 3, TrainN: 60, TestN: 30, Epochs: 2}
	a, err := TrainVictim(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainVictim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "mnist" || a.Inputs() != 28*28 || a.Outputs() != 10 {
		t.Fatalf("victim geometry: %s %dx%d", a.Name(), a.Inputs(), a.Outputs())
	}
	da, db := a.net.W.Data(), b.net.W.Data()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("TrainVictim not deterministic at weight %d", i)
		}
	}
	for i, w := range da {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight at %d: %v", i, w)
		}
	}
}

func TestExtractResultIsCallerOwned(t *testing.T) {
	v := buildTestVictim(t, "m", 12)
	s := newTestService(t, Config{Seed: 12}, v)
	first, err := s.RunExtract(ExtractSpec{Victim: "m"})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), first.Norms...)
	// A client post-processing its result in place must not corrupt the
	// cached artifact other clients receive.
	for i := range first.Norms {
		first.Norms[i] = -1
		first.Signals[i] = -1
	}
	second, err := s.RunExtract(ExtractSpec{Victim: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second extraction must be cached")
	}
	for i := range want {
		if second.Norms[i] != want[i] {
			t.Fatalf("cached norm[%d] corrupted by caller mutation: %v != %v", i, second.Norms[i], want[i])
		}
	}
}

func TestArtifactCacheBounded(t *testing.T) {
	v := buildTestVictim(t, "m", 13)
	s := newTestService(t, Config{Seed: 13, MaxCachedArtifacts: 3}, v)
	for seed := int64(1); seed <= 6; seed++ {
		if _, err := s.RunExtract(ExtractSpec{Victim: "m", NoiseStd: 0.01, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.cache.Size(); n > 3 {
		t.Fatalf("cache holds %d artifacts, bound is 3", n)
	}
	// The newest artifact survived; the oldest was evicted (recomputed
	// on request -> not cached).
	res, err := s.RunExtract(ExtractSpec{Victim: "m", NoiseStd: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("newest artifact should still be cached")
	}
	res, err = s.RunExtract(ExtractSpec{Victim: "m", NoiseStd: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("oldest artifact should have been evicted")
	}
}
