package service

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
)

// expSpec is a cheap experiment job for tests: one victim, three
// sequential strategies.
func expSpec(seed int64) ExperimentSpec {
	return ExperimentSpec{Name: "ablate-trace", Seed: seed, Scale: 0.01}
}

func TestRunExperimentServesRegistryEntry(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	res, err := svc.RunExperiment(expSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first run must not be cached")
	}
	if !strings.Contains(res.Render, "Extension A6") {
		t.Fatalf("render incomplete:\n%s", res.Render)
	}
	var decoded experiment.TraceAblationResult
	if err := json.Unmarshal(res.Result, &decoded); err != nil {
		t.Fatalf("structured result does not parse: %v", err)
	}
	if len(decoded.Rows) != 3 {
		t.Fatalf("structured result rows = %d", len(decoded.Rows))
	}
	// The job result is byte-identical to the Go API at the same
	// options (worker count excluded from the spec on purpose).
	direct, err := experiment.RunTraceAblation(experiment.Options{Seed: 21, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render != direct.Render() {
		t.Fatal("service render diverged from direct run")
	}
	if !reflect.DeepEqual(&decoded, direct) {
		t.Fatalf("service result diverged from direct run:\n%+v\nvs\n%+v", &decoded, direct)
	}
	// Replay is a cache hit with the same payload.
	again, err := svc.RunExperiment(expSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("replay must be served from the artifact cache")
	}
	if again.Render != res.Render {
		t.Fatal("cached replay diverged")
	}
}

func TestRunExperimentValidation(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "no-such-grid", Seed: 1}); !errors.Is(err, ErrExperimentUnknown) {
		t.Fatalf("err = %v, want ErrExperimentUnknown", err)
	}
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 7}); !errors.Is(err, errBadRequest) {
		t.Fatalf("err = %v, want bad request", err)
	}
	// An absurd runs value must be refused before any grid allocation.
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.01, Runs: 2_000_000_000}); !errors.Is(err, errBadRequest) {
		t.Fatalf("huge runs err = %v, want bad request", err)
	}
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.01, Runs: -1}); !errors.Is(err, errBadRequest) {
		t.Fatalf("negative runs err = %v, want bad request", err)
	}
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "no-such-grid", Seed: 1}); !errors.Is(err, ErrExperimentUnknown) {
		t.Fatalf("launch err = %v, want ErrExperimentUnknown", err)
	}
}

func TestExperimentsListsRegistry(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	infos := svc.Experiments(ExperimentSpec{Scale: 0.01})
	if len(infos) != len(engine.Names()) {
		t.Fatalf("listed %d experiments, registry has %d", len(infos), len(engine.Names()))
	}
	byName := map[string]ExperimentInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	tbl, ok := byName["table1"]
	if !ok {
		t.Fatal("table1 missing from listing")
	}
	if tbl.Title == "" || len(tbl.Axes) != 2 {
		t.Fatalf("table1 listing incomplete: %+v", tbl)
	}
}

func TestLaunchExperimentJobLifecycle(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	job, err := svc.LaunchExperiment(expSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == "" {
		t.Fatal("job has no id")
	}
	got, err := svc.ExperimentJobByID(job.ID())
	if err != nil || got != job {
		t.Fatalf("job lookup: %v", err)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("job never finished")
	}
	status, res, jerr := job.Snapshot()
	if status != JobDone || jerr != nil || res == nil {
		t.Fatalf("snapshot: status=%v res=%v err=%v", status, res, jerr)
	}
	if !strings.Contains(res.Render, "Extension A6") {
		t.Fatal("job result incomplete")
	}
	if _, err := svc.ExperimentJobByID("job-999999"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("unknown job err = %v", err)
	}
}

func TestLaunchExperimentValidatesLikeRun(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	// Invalid scale is rejected at launch time — an immediate 400, the
	// same behavior as the synchronous path, with no job record left
	// behind.
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "ablate-trace", Seed: 1, Scale: -3}); !errors.Is(err, errBadRequest) {
		t.Fatalf("err = %v, want bad request", err)
	}
	if n := svc.jobs.size(); n != 0 {
		t.Fatalf("rejected launch left %d job records", n)
	}
}

func TestJobTableBackpressureAndEviction(t *testing.T) {
	tb := newJobTable(2)
	running := func() *ExperimentJob {
		return &ExperimentJob{spec: ExperimentSpec{Name: "x"}, done: make(chan struct{})}
	}
	a, b := running(), running()
	if err := tb.add(a); err != nil {
		t.Fatal(err)
	}
	if err := tb.add(b); err != nil {
		t.Fatal(err)
	}
	// Table full of running jobs: admission is refused, nothing evicted.
	if err := tb.add(running()); !errors.Is(err, ErrJobLimit) {
		t.Fatalf("err = %v, want ErrJobLimit", err)
	}
	if tb.size() != 2 {
		t.Fatalf("size %d after refused add", tb.size())
	}
	// A finished job frees a slot; the oldest finished one is evicted.
	close(a.done)
	c := running()
	if err := tb.add(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.get(a.ID()); ok {
		t.Fatal("finished job not evicted")
	}
	if _, ok := tb.get(c.ID()); !ok {
		t.Fatal("admitted job not tracked")
	}
	if c.ID() == "" {
		t.Fatal("add must assign the id")
	}
}

func TestExperimentSpecNormalization(t *testing.T) {
	// Scale 0 means full scale; both spellings must share one cache key.
	a := ExperimentSpec{Name: "table1", Seed: 1}.withDefaults()
	b := ExperimentSpec{Name: "table1", Seed: 1, Scale: 1}.withDefaults()
	if a.key() != b.key() {
		t.Fatalf("equivalent specs have distinct keys: %q vs %q", a.key(), b.key())
	}
	if c := (ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.5}).withDefaults(); c.Scale != 0.5 {
		t.Fatalf("explicit scale mangled: %v", c.Scale)
	}
}

func TestExperimentHTTPEndToEnd(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// List.
	var infos []ExperimentInfo
	doJSON(t, "GET", srv.URL+"/v1/experiments", nil, 200, &infos)
	if len(infos) != len(engine.Names()) {
		t.Fatalf("HTTP listed %d experiments", len(infos))
	}

	// Launch with wait: the response carries the finished job.
	spec := ExperimentSpec{Name: "ablate-trace", Seed: 23, Scale: 0.01}
	var done jobWire
	doJSON(t, "POST", srv.URL+"/v1/experiments?wait=1", spec, 200, &done)
	if done.Status != JobDone || done.Result == nil {
		t.Fatalf("wait launch: %+v", done)
	}
	if !strings.Contains(done.Result.Render, "Extension A6") {
		t.Fatal("HTTP result render incomplete")
	}

	// Async launch + poll until done (same spec: served from cache).
	var launched jobWire
	doJSON(t, "POST", srv.URL+"/v1/experiments", spec, 202, &launched)
	if launched.ID == "" {
		t.Fatalf("async launch: %+v", launched)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var polled jobWire
		doJSON(t, "GET", srv.URL+"/v1/experiments/jobs/"+launched.ID, nil, 200, &polled)
		if polled.Status == JobDone {
			if polled.Result == nil || !polled.Result.Cached {
				t.Fatalf("replayed job must be cache-served: %+v", polled.Result)
			}
			break
		}
		if polled.Status == JobFailed {
			t.Fatalf("job failed: %s", polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("poll never saw the job finish")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown experiment → 404; unknown job → 404.
	doJSON(t, "POST", srv.URL+"/v1/experiments", ExperimentSpec{Name: "nope", Seed: 1}, 404, nil)
	doJSON(t, "GET", srv.URL+"/v1/experiments/jobs/job-999999", nil, 404, nil)
}
