package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
)

// expSpec is a cheap experiment job for tests: one victim, three
// sequential strategies.
func expSpec(seed int64) ExperimentSpec {
	return ExperimentSpec{Name: "ablate-trace", Seed: seed, Scale: 0.01}
}

func TestRunExperimentServesRegistryEntry(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	res, err := svc.RunExperiment(expSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first run must not be cached")
	}
	if !strings.Contains(res.Render, "Extension A6") {
		t.Fatalf("render incomplete:\n%s", res.Render)
	}
	var decoded experiment.TraceAblationResult
	if err := json.Unmarshal(res.Result, &decoded); err != nil {
		t.Fatalf("structured result does not parse: %v", err)
	}
	if len(decoded.Rows) != 3 {
		t.Fatalf("structured result rows = %d", len(decoded.Rows))
	}
	// The job result is byte-identical to the Go API at the same
	// options (worker count excluded from the spec on purpose).
	direct, err := experiment.RunTraceAblation(experiment.Options{Seed: 21, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render != direct.Render() {
		t.Fatal("service render diverged from direct run")
	}
	if !reflect.DeepEqual(&decoded, direct) {
		t.Fatalf("service result diverged from direct run:\n%+v\nvs\n%+v", &decoded, direct)
	}
	// Replay is a cache hit with the same payload.
	again, err := svc.RunExperiment(expSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("replay must be served from the artifact cache")
	}
	if again.Render != res.Render {
		t.Fatal("cached replay diverged")
	}
}

func TestRunExperimentValidation(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "no-such-grid", Seed: 1}); !errors.Is(err, ErrExperimentUnknown) {
		t.Fatalf("err = %v, want ErrExperimentUnknown", err)
	}
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 7}); !errors.Is(err, errBadRequest) {
		t.Fatalf("err = %v, want bad request", err)
	}
	// An absurd runs value must be refused before any grid allocation.
	if _, err := svc.RunExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.01, Runs: 2_000_000_000}); !errors.Is(err, errBadRequest) {
		t.Fatalf("huge runs err = %v, want bad request", err)
	}
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.01, Runs: -1}); !errors.Is(err, errBadRequest) {
		t.Fatalf("negative runs err = %v, want bad request", err)
	}
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "no-such-grid", Seed: 1}); !errors.Is(err, ErrExperimentUnknown) {
		t.Fatalf("launch err = %v, want ErrExperimentUnknown", err)
	}
}

func TestExperimentsListsRegistry(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	infos := svc.Experiments(ExperimentSpec{Scale: 0.01})
	if len(infos) != len(engine.Names()) {
		t.Fatalf("listed %d experiments, registry has %d", len(infos), len(engine.Names()))
	}
	byName := map[string]ExperimentInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	tbl, ok := byName["table1"]
	if !ok {
		t.Fatal("table1 missing from listing")
	}
	if tbl.Title == "" || len(tbl.Axes) != 2 {
		t.Fatalf("table1 listing incomplete: %+v", tbl)
	}
}

func TestLaunchExperimentJobLifecycle(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	job, err := svc.LaunchExperiment(expSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == "" {
		t.Fatal("job has no id")
	}
	got, err := svc.ExperimentJobByID(job.ID())
	if err != nil || got != job {
		t.Fatalf("job lookup: %v", err)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("job never finished")
	}
	status, res, jerr := job.Snapshot()
	if status != JobDone || jerr != nil || res == nil {
		t.Fatalf("snapshot: status=%v res=%v err=%v", status, res, jerr)
	}
	if !strings.Contains(res.Render, "Extension A6") {
		t.Fatal("job result incomplete")
	}
	if _, err := svc.ExperimentJobByID("job-999999"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("unknown job err = %v", err)
	}
}

func TestLaunchExperimentValidatesLikeRun(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	// Invalid scale is rejected at launch time — an immediate 400, the
	// same behavior as the synchronous path, with no job record left
	// behind.
	if _, err := svc.LaunchExperiment(ExperimentSpec{Name: "ablate-trace", Seed: 1, Scale: -3}); !errors.Is(err, errBadRequest) {
		t.Fatalf("err = %v, want bad request", err)
	}
	if n := svc.jobs.size(); n != 0 {
		t.Fatalf("rejected launch left %d job records", n)
	}
}

func TestJobTableBackpressureAndEviction(t *testing.T) {
	tb := newJobTable(2)
	running := func() *ExperimentJob {
		return &ExperimentJob{spec: ExperimentSpec{Name: "x"}, done: make(chan struct{})}
	}
	a, b := running(), running()
	if err := tb.add(a); err != nil {
		t.Fatal(err)
	}
	if err := tb.add(b); err != nil {
		t.Fatal(err)
	}
	// Table full of running jobs: admission is refused, nothing evicted.
	if err := tb.add(running()); !errors.Is(err, ErrJobLimit) {
		t.Fatalf("err = %v, want ErrJobLimit", err)
	}
	if tb.size() != 2 {
		t.Fatalf("size %d after refused add", tb.size())
	}
	// A finished job frees a slot; the oldest finished one is evicted.
	close(a.done)
	c := running()
	if err := tb.add(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.get(a.ID()); ok {
		t.Fatal("finished job not evicted")
	}
	if _, ok := tb.get(c.ID()); !ok {
		t.Fatal("admitted job not tracked")
	}
	if c.ID() == "" {
		t.Fatal("add must assign the id")
	}
}

func TestExperimentSpecNormalization(t *testing.T) {
	// Scale 0 means full scale; both spellings must share one cache key.
	a := specDefaults(ExperimentSpec{Name: "table1", Seed: 1})
	b := specDefaults(ExperimentSpec{Name: "table1", Seed: 1, Scale: 1})
	if specKey(a) != specKey(b) {
		t.Fatalf("equivalent specs have distinct keys: %q vs %q", specKey(a), specKey(b))
	}
	if c := specDefaults(ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.5}); c.Scale != 0.5 {
		t.Fatalf("explicit scale mangled: %v", c.Scale)
	}
	// An empty options envelope (or one with an all-zero fig5 entry) is
	// the same experiment as no options at all.
	c := specDefaults(ExperimentSpec{Name: "fig5", Seed: 1, Options: &api.ExperimentOptions{}})
	d := specDefaults(ExperimentSpec{Name: "fig5", Seed: 1, Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{}}})
	e := specDefaults(ExperimentSpec{Name: "fig5", Seed: 1})
	if c.Options != nil || d.Options != nil || specKey(c) != specKey(e) || specKey(d) != specKey(e) {
		t.Fatalf("empty options not normalized: %q %q %q", specKey(c), specKey(d), specKey(e))
	}
	// Distinct grids are distinct experiments.
	f := specDefaults(ExperimentSpec{Name: "fig5", Seed: 1,
		Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{Queries: []int{5, 10}}}})
	if specKey(f) == specKey(e) {
		t.Fatal("optioned spec shares the default key")
	}
}

func TestExperimentOptionValidation(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	cases := []struct {
		name string
		spec ExperimentSpec
	}{
		{"options for wrong experiment", ExperimentSpec{Name: "table1", Seed: 1, Scale: 0.01,
			Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{Queries: []int{5}}}}},
		{"non-positive query", ExperimentSpec{Name: "fig5", Seed: 1, Scale: 0.01,
			Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{Queries: []int{0}}}}},
		{"negative lambda", ExperimentSpec{Name: "fig5", Seed: 1, Scale: 0.01,
			Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{Lambdas: []float64{-1}}}}},
		{"oversized grid", ExperimentSpec{Name: "fig5", Seed: 1, Scale: 0.01,
			Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{Queries: make([]int, maxOptionGrid+1)}}}},
		{"absurd epochs", ExperimentSpec{Name: "fig5", Seed: 1, Scale: 0.01,
			Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{SurrogateEpochs: maxSurrogateEpochs + 1}}}},
	}
	for _, tc := range cases {
		if _, err := svc.RunExperiment(tc.spec); !errors.Is(err, errBadRequest) {
			t.Errorf("%s: err = %v, want bad request", tc.name, err)
		}
		if _, err := svc.LaunchExperiment(tc.spec); !errors.Is(err, errBadRequest) {
			t.Errorf("%s (launch): err = %v, want bad request", tc.name, err)
		}
	}
}

// TestFig5OptionsEndToEnd pins the ROADMAP item this API closes: a
// remote spec carrying custom query/λ grids runs RunFig5 with exactly
// those grids and returns a structured result matching the direct Go
// call bit for bit.
func TestFig5OptionsEndToEnd(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	spec := ExperimentSpec{Name: "fig5", Seed: 31, Scale: 0.01,
		Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{
			Queries: []int{5, 15}, Lambdas: []float64{0, 0.01}, SurrogateEpochs: 2,
		}}}
	res, err := svc.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded experiment.Fig5Result
	if err := json.Unmarshal(res.Result, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Rows) == 0 {
		t.Fatal("no fig5 rows")
	}
	for _, row := range decoded.Rows {
		if !reflect.DeepEqual(row.Queries, []int{5, 15}) || !reflect.DeepEqual(row.Lambdas, []float64{0, 0.01}) {
			t.Fatalf("row grids = %v / %v, want the requested sub-grid", row.Queries, row.Lambdas)
		}
	}
	direct, err := experiment.RunFig5(experiment.Fig5Options{
		Options:         experiment.Options{Seed: 31, Scale: 0.01},
		Queries:         []int{5, 15},
		Lambdas:         []float64{0, 0.01},
		SurrogateEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render != direct.Render() {
		t.Fatal("optioned job render diverged from direct RunFig5")
	}
	if !reflect.DeepEqual(&decoded, direct) {
		t.Fatal("optioned job result diverged from direct RunFig5")
	}
	// The optioned result must not collide with the default-grid cache
	// entry.
	plain, err := svc.RunExperiment(ExperimentSpec{Name: "fig5", Seed: 31, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cached {
		t.Fatal("default-grid run served the optioned artifact")
	}
}

func TestExperimentHTTPEndToEnd(t *testing.T) {
	svc := New(Config{Seed: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// List.
	infos, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(engine.Names()) {
		t.Fatalf("HTTP listed %d experiments", len(infos))
	}

	// Launch with wait: one round trip returns the finished result.
	spec := ExperimentSpec{Name: "ablate-trace", Seed: 23, Scale: 0.01}
	res, err := c.RunExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render, "Extension A6") {
		t.Fatal("HTTP result render incomplete")
	}

	// Async launch + WaitJob poll (same spec: served from cache).
	launched, err := c.LaunchExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if launched.ID == "" || launched.Spec.Name != "ablate-trace" {
		t.Fatalf("async launch: %+v", launched)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	polled, err := c.WaitJob(waitCtx, launched.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if polled.Status != JobDone || polled.Result == nil || !polled.Result.Cached {
		t.Fatalf("replayed job must be cache-served: %+v", polled.Result)
	}

	// Unknown experiment and unknown job carry their typed codes.
	if _, err := c.LaunchExperiment(ctx, ExperimentSpec{Name: "nope", Seed: 1}); api.CodeOf(err) != api.CodeUnknownExperiment {
		t.Fatalf("unknown experiment err = %v", err)
	}
	if _, err := c.ExperimentJob(ctx, "job-999999"); api.CodeOf(err) != api.CodeUnknownJob {
		t.Fatalf("unknown job err = %v", err)
	}
}
