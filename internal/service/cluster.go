package service

// The cluster layer: ring-aware admission plus peer artifact exchange.
//
// A clustered service is one node of a static membership (every node
// starts with the same `-peers id=url` list). The consistent-hash ring
// (internal/cluster) assigns every victim and every experiment spec to
// exactly one owner; a request for a key this node does not own is
// refused with a typed RedirectError — node_redirect on the wire, HTTP
// 421 — carrying the owner's URL, and the SDK re-issues it there. The
// owner is also the cross-ring singleflight: all clients' identical
// specs land on one node, whose in-process cache.Do collapses them
// onto one computation.
//
// Ownership governs admission, not ability: every node registers every
// victim (trained deterministically from the shared seed, so the
// victims are bit-identical), and journal replay always runs locally —
// a journaled job is this node's to finish regardless of how the
// membership looked when it was accepted. That keeps recovery correct
// across membership changes: the journal is node-local truth.
//
// Before computing a missing artifact, a node asks its peers for it by
// content address and accepts the bytes only if the Merkle provenance
// chain (internal/provenance) verifies against the spec key and code
// identity this node would itself have used — so a node never serves
// peer bytes it could not have produced.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"xbarsec/api"
	"xbarsec/internal/cluster"
	"xbarsec/internal/memo"
	"xbarsec/internal/provenance"
	"xbarsec/internal/tensor"
)

// ClusterConfig makes a service one node of a static cluster.
type ClusterConfig struct {
	// NodeID names this node within Ring's membership.
	NodeID string
	// Ring is the shared placement ring (cluster.New) — built from the
	// same members, vnodes and seed on every node, so all nodes agree on
	// every key's owner without coordination.
	Ring *cluster.Ring
}

// peerFetchTimeout bounds one artifact/proof fetch against a peer; a
// slow or dead peer degrades to local recompute, never a hung job.
const peerFetchTimeout = 30 * time.Second

// maxPeerArtifactBytes bounds what a peer response may make this node
// buffer — the same cap the HTTP layer puts on request bodies.
const maxPeerArtifactBytes = maxRequestBody

// clusterNode is the service's cluster state.
type clusterNode struct {
	self  cluster.Member
	ring  *cluster.Ring
	peers []cluster.Member // ring members minus self, sorted by ID
	hc    *http.Client

	redirects    atomic.Int64
	peerFetches  atomic.Int64
	peerVerified atomic.Int64
	peerRejected atomic.Int64
}

// initCluster wires the cluster state into a freshly built service.
// An id outside the ring is a construction bug (cmd/xbarserve and the
// tests validate membership before building the Config), so it panics
// like any other programmer error rather than limping along as a node
// that owns nothing.
func (s *Service) initCluster(cc *ClusterConfig) {
	if cc == nil {
		return
	}
	self, ok := cc.Ring.Lookup(cc.NodeID)
	if !ok {
		panic(fmt.Sprintf("service: cluster node id %q is not in the ring membership", cc.NodeID))
	}
	c := &clusterNode{
		self: self,
		ring: cc.Ring,
		hc:   &http.Client{Timeout: peerFetchTimeout},
	}
	for _, m := range cc.Ring.Members() {
		if m.ID != self.ID {
			c.peers = append(c.peers, m)
		}
	}
	s.cluster = c
	// Cluster job ids carry their owning node ("job-3@a") so a poll
	// that lands on the wrong node can be redirected by parsing the id.
	s.jobs.suffix = "@" + self.ID
}

// RedirectError reports that another node owns the requested key. The
// HTTP layer maps it to the protocol's node_redirect code (421) with
// Error.RedirectTo set; it is never retried in place.
type RedirectError struct {
	// Key is the routing key that was refused.
	Key string
	// NodeID and URL identify the owner.
	NodeID string
	URL    string
}

// Error renders the redirect.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("service: key %q is owned by node %s (%s)", e.Key, e.NodeID, e.URL)
}

// victimKey is the routing key of everything victim-scoped: sessions,
// campaigns and extractions route by victim, so one victim's whole
// interactive and sync workload lands on one owner.
func victimKey(name string) string { return "victim|" + name }

// routeKey admits a key: nil when this node owns it (or the service is
// not clustered), a RedirectError to the owner otherwise.
func (s *Service) routeKey(key string) error {
	c := s.cluster
	if c == nil {
		return nil
	}
	owner := c.ring.Owner(key)
	if owner.ID == c.self.ID {
		return nil
	}
	c.redirects.Add(1)
	return &RedirectError{Key: key, NodeID: owner.ID, URL: owner.URL}
}

// routeVictim admits a victim-scoped request.
func (s *Service) routeVictim(name string) error { return s.routeKey(victimKey(name)) }

// codeIdentity is the code-hash preimage of the provenance chain: the
// experiment registry digest plus the tensor backend. Two nodes with
// equal code identities compute bit-identical artifacts for equal spec
// keys — exactly the condition under which accepting a peer's artifact
// in place of recomputing is sound.
func codeIdentity() string {
	return "registry:" + RegistryHash() + "|tensor:" + tensor.ActiveName()
}

// peerFetchExperiment tries to serve a missing experiment artifact
// from a peer instead of recomputing: fetch payload + provenance chain
// by content address, verify the chain against the spec key and code
// identity this node would have used, and persist the verified bytes
// locally (spill + record) so the artifact is served and re-proved
// from here on. Returns nil — degrade to local compute — on any
// failure: peers down, artifact unknown, or verification rejected.
func (s *Service) peerFetchExperiment(key string) *ExperimentResult {
	c := s.cluster
	if c == nil || len(c.peers) == 0 {
		return nil
	}
	id := memo.Addr(key)
	code := codeIdentity()
	for _, m := range c.peers {
		c.peerFetches.Add(1)
		art, proof, err := c.fetchArtifact(m.URL, id)
		if err != nil {
			// Unreachable peer or no artifact there — not an integrity
			// failure, just a miss.
			continue
		}
		if err := provenance.Verify(*proof, key, code, art.Payload); err != nil {
			c.peerRejected.Add(1)
			continue
		}
		var res ExperimentResult
		if json.Unmarshal(art.Payload, &res) != nil {
			c.peerRejected.Add(1)
			continue
		}
		c.peerVerified.Add(1)
		// The verified payload spills verbatim — byte-identical on every
		// node that holds it — with a freshly derived record.
		if s.spill != nil && s.spill.Put(key, art.Payload) == nil && s.prov != nil {
			_ = s.prov.Put(provenance.New(key, code, art.Payload))
		}
		return &res
	}
	return nil
}

// fetchArtifact retrieves one artifact and its proof from a peer.
func (c *clusterNode) fetchArtifact(base, id string) (*api.Artifact, *api.ArtifactProof, error) {
	var art api.Artifact
	if err := c.getJSON(base+api.PathPrefix+"/artifacts/"+id, &art); err != nil {
		return nil, nil, err
	}
	var proof api.ArtifactProof
	if err := c.getJSON(base+api.PathPrefix+"/artifacts/"+id+"/proof", &proof); err != nil {
		return nil, nil, err
	}
	return &art, &proof, nil
}

func (c *clusterNode) getJSON(url string, v any) error {
	resp, err := c.hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("service: peer %s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxPeerArtifactBytes)).Decode(v)
}

// ErrArtifactUnknown indicates no provable artifact at the requested
// content address on this node — absent, unproven (no provenance
// record), or failing verification. The wire code is unknown_artifact.
var ErrArtifactUnknown = errors.New("service: unknown artifact")

// Artifact serves one spilled artifact by content address — only after
// its provenance chain verifies against the stored payload, so a
// corrupt record or payload is a 404, never wrong bytes with a proof
// that does not bind.
func (s *Service) Artifact(id string) (*api.Artifact, error) {
	payload, _, err := s.artifactAt(id)
	if err != nil {
		return nil, err
	}
	return &api.Artifact{ID: id, Payload: json.RawMessage(payload)}, nil
}

// ArtifactProof serves one artifact's Merkle provenance chain.
func (s *Service) ArtifactProof(id string) (*api.ArtifactProof, error) {
	_, rec, err := s.artifactAt(id)
	if err != nil {
		return nil, err
	}
	return &rec, nil
}

// artifactAt loads and verifies (payload, record) at a content
// address.
func (s *Service) artifactAt(id string) ([]byte, provenance.Record, error) {
	var zero provenance.Record
	if !memo.ValidAddr(id) {
		return nil, zero, badRequestf("artifact id %q is not a content address", id)
	}
	if s.spill == nil || s.prov == nil {
		return nil, zero, fmt.Errorf("service: artifact %s (no artifact store): %w", id, ErrArtifactUnknown)
	}
	payload, ok, err := s.spill.GetAddr(id)
	if err != nil || !ok {
		return nil, zero, fmt.Errorf("service: artifact %s: %w", id, ErrArtifactUnknown)
	}
	rec, ok, err := s.prov.Get(id)
	if err != nil || !ok {
		return nil, zero, fmt.Errorf("service: artifact %s has no provenance record: %w", id, ErrArtifactUnknown)
	}
	if err := rec.Verify(payload); err != nil {
		return nil, zero, fmt.Errorf("service: artifact %s fails verification (%v): %w", id, err, ErrArtifactUnknown)
	}
	return payload, rec, nil
}

// ClusterInfo snapshots the node's membership (the GET /v2/cluster
// body). A non-clustered service reports Enabled false.
func (s *Service) ClusterInfo() api.ClusterInfo {
	c := s.cluster
	if c == nil {
		return api.ClusterInfo{}
	}
	info := api.ClusterInfo{
		Enabled:  true,
		VNodes:   c.ring.VNodes(),
		RingSeed: c.ring.Seed(),
		RingHash: c.ring.Hash(),
	}
	for _, m := range c.ring.Members() {
		info.Members = append(info.Members, api.NodeInfo{ID: m.ID, URL: m.URL, Self: m.ID == c.self.ID})
	}
	return info
}

// jobRedirect resolves an unknown job id's owning node from its
// "@node" suffix: a poll that lands on the wrong node redirects
// instead of 404ing, which is what lets clients follow a launch
// redirect with plain per-call routing.
func (s *Service) jobRedirect(id string) error {
	c := s.cluster
	if c == nil {
		return nil
	}
	if _, node, ok := strings.Cut(id, "@"); ok && node != c.self.ID {
		if m, found := c.ring.Lookup(node); found {
			c.redirects.Add(1)
			return &RedirectError{Key: id, NodeID: m.ID, URL: m.URL}
		}
	}
	return nil
}

func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterInfo())
}

func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	art, err := s.Artifact(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

func (s *Service) handleArtifactProof(w http.ResponseWriter, r *http.Request) {
	proof, err := s.ArtifactProof(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, proof)
}
