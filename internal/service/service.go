// Package service is the concurrent attack-campaign layer on top of the
// simulation stack: a sharded registry of programmed victim networks,
// per-attacker sessions with split randomness and atomically enforced
// query budgets, a per-victim coalescer that merges in-flight queries
// from all sessions into batched (and, for power queries, fused) array
// reads, and deterministic campaign/extraction jobs with a singleflight
// artifact cache. It is the first layer of this repository built to be
// hit by many clients at once; cmd/xbarserve exposes it over HTTP.
//
// Determinism contract: campaign and extraction jobs are pure functions
// of their spec (seeded via rng.Split, fanned out on the deterministic
// pool), so replays are bit-identical at any worker count and specs
// double as cache keys. Interactive session traffic against noise-free
// victims is bit-identical to per-call scalar serving regardless of how
// queries coalesce; only noisy (stateful) arrays make interleaved
// results depend on arrival order — exactly as the physical hardware
// would.
package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xbarsec/api"
	"xbarsec/internal/memo"
	"xbarsec/internal/pool"
	"xbarsec/internal/provenance"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
	"xbarsec/internal/wal"
)

// ErrServiceClosed indicates an operation on a closed service.
var ErrServiceClosed = errors.New("service: closed")

// Config sizes the service.
type Config struct {
	// Seed roots every stream the service derives (session noise, demo
	// victims); campaign jobs use their own spec seeds.
	Seed int64
	// Workers bounds the per-job fan-out (0 = all runnable procs).
	Workers int
	// MaxConcurrentJobs caps campaign/extraction jobs running at once
	// (0 = all runnable procs).
	MaxConcurrentJobs int
	// QueueDepth bounds each victim's coalescer queue (0 = 256).
	QueueDepth int
	// DefaultSessionBudget applies when a session is opened with
	// Budget == 0 (0 here means 10000).
	DefaultSessionBudget int
	// MaxCachedArtifacts bounds the artifact cache; the oldest completed
	// artifacts are evicted FIFO beyond it (0 = 4096).
	MaxCachedArtifacts int
	// MaxCachedArtifactBytes bounds the artifact cache's approximate
	// resident bytes (0 = 256 MiB); the oldest artifacts are evicted
	// beyond it. The entry bound alone cannot protect the cache from
	// unevenly sized artifacts — a full-scale experiment render is
	// megabytes while a campaign result is bytes.
	MaxCachedArtifactBytes int64
	// SessionTTL evicts sessions idle longer than this (0 = sessions
	// never expire). A background janitor sweeps at TTL/4 granularity;
	// an evicted session behaves exactly like a closed one (lookups
	// fail with ErrSessionUnknown, remaining budget is forfeited).
	SessionTTL time.Duration
	// MaxSessionsPerVictim caps concurrently open sessions per victim
	// (0 = unlimited); OpenSession fails with ErrSessionLimit beyond it.
	MaxSessionsPerVictim int
	// DataDir, when set, is searched for real MNIST/CIFAR files by
	// server-side experiment jobs.
	DataDir string
	// MaxExperimentJobs bounds the experiment-job table; the oldest
	// finished jobs are evicted beyond it (0 = 1024).
	MaxExperimentJobs int
	// StateDir, when set, roots the durable state (job journal +
	// artifact spill store). Only Open uses it; New ignores it and runs
	// memory-only.
	StateDir string
	// JournalFsync makes every journal append durable before the job is
	// accepted. cmd/xbarserve defaults it on; off trades the journal
	// tail on power loss for accept latency (kill -9 recovery is
	// unaffected — the page cache survives the process).
	JournalFsync bool
	// MaxJournalBytes bounds the job journal between compactions
	// (0 = 64 MiB); launches beyond it are refused with a typed
	// "unavailable" rather than accepted without durability.
	MaxJournalBytes int64
	// FS overrides the filesystem under the journal and spill store
	// (nil = the real one). The fault-injection harness uses it to
	// drive recovery paths with deterministic torn writes and crashes.
	FS wal.FS
	// Cluster, when set, makes this service one node of a static
	// multi-node deployment: requests for keys another node owns are
	// refused with a node_redirect the SDK follows, and missing
	// artifacts are fetched (and provenance-verified) from peers before
	// being recomputed. Nil = single-node, no routing.
	Cluster *ClusterConfig
}

// Service hosts victims, sessions, campaign jobs and experiment jobs.
type Service struct {
	cfg      Config
	root     *rng.Source
	victims  shardedMap[*Victim]
	sessions shardedMap[*Session]
	cache    *memo.Cache[any]
	gate     *pool.Gate
	jobs     *jobTable

	// Durable-mode state, nil/zero under New (memory-only). See Open.
	fsys    wal.FS
	journal *jobJournal
	spill   *memo.SpillStore
	prov    *provenance.Store

	// Cluster state, nil when Config.Cluster is unset. See cluster.go.
	cluster *clusterNode
	// pendingSync holds journaled campaign/extract launches whose
	// completion mark never landed (crash mid-compute), keyed by victim
	// name; Register drains a victim's entries the moment it appears.
	pendingMu   sync.Mutex
	pendingSync map[string][]journalRecord

	campaigns    atomic.Int64
	reaped       atomic.Int64
	failedJobs   atomic.Int64
	replayedJobs atomic.Int64
	closed       atomic.Bool
	janitorCh    chan struct{} // closed on Close to stop the session janitor
}

// artifactWeight approximates one cached artifact's resident bytes for
// the cache's byte budget: the dominant payloads (an experiment's
// render and JSON, an extraction's signal slices) plus a fixed
// allowance for the struct itself.
func artifactWeight(v any) int64 {
	const base = 256
	switch a := v.(type) {
	case *CampaignResult:
		return base
	case *ExtractResult:
		return base + int64(len(a.Signals)+len(a.Norms))*8
	case *ExperimentResult:
		return base + int64(len(a.Render)+len(a.Result))
	default:
		return base
	}
}

// New returns an empty service. When Config.SessionTTL is set, a
// janitor goroutine reaps idle sessions until Close.
func New(cfg Config) *Service {
	if cfg.DefaultSessionBudget <= 0 {
		cfg.DefaultSessionBudget = 10000
	}
	if cfg.MaxCachedArtifactBytes <= 0 {
		cfg.MaxCachedArtifactBytes = 256 << 20
	}
	s := &Service{
		cfg:         cfg,
		root:        rng.New(cfg.Seed).Split("service"),
		cache:       memo.NewWeighted[any](cfg.MaxCachedArtifacts, cfg.MaxCachedArtifactBytes, artifactWeight),
		gate:        pool.NewGate(cfg.MaxConcurrentJobs),
		jobs:        newJobTable(cfg.MaxExperimentJobs),
		pendingSync: map[string][]journalRecord{},
		janitorCh:   make(chan struct{}),
	}
	s.initCluster(cfg.Cluster)
	if cfg.SessionTTL > 0 {
		go s.sessionJanitor()
	}
	return s
}

// sessionJanitor periodically reaps idle sessions. Sweep granularity is
// TTL/4 (at least a millisecond), so a session lives at most ~1.25 TTL
// past its last query.
func (s *Service) sessionJanitor() {
	interval := s.cfg.SessionTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorCh:
			return
		case now := <-ticker.C:
			s.ReapIdleSessions(now)
		}
	}
}

// ReapIdleSessions closes every session idle longer than the configured
// TTL as of now, returning how many it reaped. It is a no-op when no
// TTL is configured. Exposed so operators (and tests) can force a sweep
// without waiting for the janitor.
func (s *Service) ReapIdleSessions(now time.Time) int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.SessionTTL).UnixNano()
	// Two phases: collect stale ids under the shard read locks, then
	// remove outside them (remove takes the write lock). A query racing
	// the sweep is still served — budget accounting is the oracle's —
	// but its session may be reaped right after; with TTLs in seconds
	// and the race window in microseconds that is the intended "idle"
	// semantics, not a correctness hazard.
	var stale []string
	s.sessions.each(func(id string, sess *Session) {
		if sess.lastUsed.Load() < cutoff {
			stale = append(stale, id)
		}
	})
	reaped := 0
	for _, id := range stale {
		// remove is the linearization point: each session is reaped at
		// most once even when sweeps race with CloseSession.
		if sess, ok := s.sessions.remove(id); ok {
			sess.victim.open.Add(-1)
			reaped++
		}
	}
	s.reaped.Add(int64(reaped))
	return reaped
}

// Register adds a victim and starts its coalescer.
func (s *Service) Register(v *Victim) error {
	if s.isClosed() {
		return ErrServiceClosed
	}
	if v.batcher != nil {
		return fmt.Errorf("service: victim %q already attached to a service", v.name)
	}
	v.batcher = newBatcher(v.hw, s.cfg.QueueDepth)
	if !s.victims.put(v.name, v) {
		v.batcher.close()
		v.batcher = nil
		return fmt.Errorf("service: victim %q: %w", v.name, ErrVictimExists)
	}
	// Close may have swept the registry between the entry check and the
	// put; re-checking after the put closes the race — either Close's
	// sweep saw this victim (and stopped its flusher; close is
	// idempotent) or we observe closed here and undo the registration.
	if s.isClosed() {
		s.victims.remove(v.name)
		v.batcher.close()
		v.batcher = nil
		return ErrServiceClosed
	}
	s.drainPendingSync(v.name)
	return nil
}

// drainPendingSync replays any journaled campaign/extract jobs waiting
// on this victim, in journal order, on one background goroutine. The
// jobs re-run through the normal compute paths — re-journaled, cached,
// written through to spill — so the crashed client's retry of the same
// spec is served from the artifact store instead of recomputed.
func (s *Service) drainPendingSync(victim string) {
	s.pendingMu.Lock()
	recs := s.pendingSync[victim]
	delete(s.pendingSync, victim)
	s.pendingMu.Unlock()
	if len(recs) == 0 {
		return
	}
	go func() {
		for _, rec := range recs {
			// Errors are the job's own (bad spec, closed service) and are
			// journaled as failures by the run path; recovery has no
			// client to report them to. The local variants skip ring
			// admission: a journaled job is this node's to finish even if
			// the membership changed across the restart.
			switch {
			case rec.Campaign != nil:
				_, _ = s.runCampaignJob(*rec.Campaign)
			case rec.Extract != nil:
				_, _ = s.runExtractJob(*rec.Extract)
			}
		}
	}()
}

// Victim looks up a registered victim.
func (s *Service) Victim(name string) (*Victim, error) {
	v, ok := s.victims.get(name)
	if !ok {
		return nil, fmt.Errorf("service: victim %q: %w", name, ErrVictimUnknown)
	}
	return v, nil
}

// VictimNames lists registered victims in sorted order.
func (s *Service) VictimNames() []string { return s.victims.keys() }

// Close shuts the service down: coalescers stop after draining, queued
// queries fail with ErrVictimClosed, the session janitor stops, new
// work is refused, and (in durable mode) the job journal is flushed and
// closed. Jobs still in flight keep running; their completion marks are
// simply not journaled anymore, which recovery treats as "unfinished" —
// re-launched and served from spill.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.janitorCh)
	s.victims.each(func(_ string, v *Victim) { v.batcher.close() })
	if s.journal != nil {
		_ = s.journal.close()
	}
}

func (s *Service) isClosed() bool { return s.closed.Load() }

// VictimStats is one victim's serving counters — served verbatim on the
// wire, so it is defined by the public protocol package.
type VictimStats = api.VictimStats

// Stats is a point-in-time service snapshot (the GET /v2/stats wire
// type).
type Stats = api.Stats

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Sessions:            s.sessions.size(),
		ReapedSessions:      s.reaped.Load(),
		Campaigns:           s.campaigns.Load(),
		ExperimentJobs:      s.jobs.size(),
		CachedArtifacts:     s.cache.Size(),
		CachedArtifactBytes: s.cache.Weight(),
		TensorBackend:       tensor.ActiveName(),
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	st.FailedJobs = s.failedJobs.Load()
	st.ReplayedJobs = s.replayedJobs.Load()
	if s.spill != nil {
		sp := s.spill.Stats()
		st.SpilledArtifacts = sp.Artifacts
		st.SpilledArtifactBytes = sp.Bytes
		st.SpillHits = sp.Hits
	}
	if s.prov != nil {
		st.ProvenanceRecords = s.prov.Count()
	}
	if c := s.cluster; c != nil {
		st.NodeID = c.self.ID
		st.RingHash = c.ring.Hash()
		st.RedirectsIssued = c.redirects.Load()
		st.PeerFetches = c.peerFetches.Load()
		st.PeerFetchVerified = c.peerVerified.Load()
		st.PeerFetchRejected = c.peerRejected.Load()
	}
	for _, name := range s.victims.keys() {
		v, ok := s.victims.get(name)
		if !ok {
			continue
		}
		vs := VictimStats{
			Name:           v.name,
			Inputs:         v.Inputs(),
			Outputs:        v.Outputs(),
			Noisy:          v.Noisy(),
			Requests:       v.batcher.requests.Load(),
			Batches:        v.batcher.batches.Load(),
			MaxBatch:       v.batcher.maxBatch.Load(),
			QueueDepthPeak: v.batcher.queueDepthPeak.Load(),
			OpenSessions:   v.open.Load(),
		}
		st.Victims = append(st.Victims, vs)
		// Service-wide batcher aggregates: totals for the throughput
		// counters, maxima for the high-water marks.
		st.BatchFlushes += vs.Batches
		st.BatchedQueries += vs.Requests
		st.MaxBatch = max(st.MaxBatch, vs.MaxBatch)
		st.QueueDepthPeak = max(st.QueueDepthPeak, vs.QueueDepthPeak)
	}
	return st
}
