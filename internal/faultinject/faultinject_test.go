package faultinject_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/faultinject"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/wal"
)

// schedule records which of n operations fail for one seeded FS.
func writeSchedule(t *testing.T, seed int64, rate float64, n int) []bool {
	t.Helper()
	dir := t.TempDir()
	fs := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{
		Seed:  seed,
		Write: faultinject.Plan{ErrorRate: rate},
	})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make([]bool, n)
	for i := range out {
		_, err := f.Write([]byte("x"))
		out[i] = errors.Is(err, faultinject.ErrInjected)
	}
	return out
}

// TestDeterministicSchedule pins the harness's whole reason to exist:
// the same seed yields the same fault schedule, a different seed a
// different one.
func TestDeterministicSchedule(t *testing.T) {
	a := writeSchedule(t, 7, 0.5, 64)
	b := writeSchedule(t, 7, 0.5, 64)
	c := writeSchedule(t, 8, 0.5, 64)
	fails, same := 0, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: seed-7 schedules diverge", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("rate 0.5 over %d ops: %d failures — schedule is degenerate", len(a), fails)
	}
	if same {
		t.Error("seed 7 and seed 8 produced identical schedules")
	}
}

func TestFailAfter(t *testing.T) {
	fs := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{
		Seed:  1,
		Write: faultinject.Plan{FailAfter: 3},
	})
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d within FailAfter budget: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("no")); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("write past FailAfter: got %v, want ErrInjected", err)
		}
	}
}

// TestTornWriteThroughWAL drives the real wal.Writer over a faulted FS:
// the injected torn write must leave earlier records replayable and the
// tear detectable — the exact crash signature journal recovery handles.
func TestTornWriteThroughWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	for seed := int64(0); seed < 20; seed++ {
		fs := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{
			Seed:      seed,
			Write:     faultinject.Plan{FailAfter: 2},
			TornWrite: true,
		})
		w, err := wal.Create(fs, path, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append([]byte("first-record")); err != nil {
			t.Fatal(err)
		}
		if err := w.Append([]byte("second-record")); err != nil {
			t.Fatal(err)
		}
		err = w.Append([]byte("torn-record"))
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("seed %d: third append: got %v, want injected fault", seed, err)
		}
		w.Close()

		var recs []string
		st, err := wal.Replay(wal.OSFS{}, path, func(rec []byte) error {
			recs = append(recs, string(rec))
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if len(recs) != 2 || recs[0] != "first-record" || recs[1] != "second-record" {
			t.Fatalf("seed %d: replayed %q, want the two intact records", seed, recs)
		}
		// A zero-length torn prefix is a clean tail; any other prefix
		// must be reported torn. Either way nothing wrong was delivered.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		intact := int64((8 + len("first-record")) + (8 + len("second-record")))
		if info.Size() > intact && !st.Torn {
			t.Fatalf("seed %d: %d bytes past the intact frames but not reported torn", seed, info.Size()-intact)
		}
	}
}

func TestCrashSwitch(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.NewFS(wal.OSFS{}, faultinject.FSConfig{Seed: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	// Both already-open handles and fresh operations are dead.
	if _, err := f.Write([]byte("post-crash")); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("write after crash: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("sync after crash: got %v, want ErrCrashed", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "g"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("open after crash: got %v, want ErrCrashed", err)
	}
	if err := fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("rename after crash: got %v, want ErrCrashed", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after crash (process-side teardown): %v", err)
	}
	// The crash froze the disk image: only the pre-crash write landed.
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "pre-crash" {
		t.Fatalf("post-crash disk image = %q, want %q", data, "pre-crash")
	}
}

// stubHW is a minimal deterministic oracle.Hardware.
type stubHW struct{ calls atomic.Int64 }

func (s *stubHW) Forward(u []float64) ([]float64, error) {
	s.calls.Add(1)
	return []float64{float64(len(u))}, nil
}
func (s *stubHW) Power(u []float64) (float64, error) { s.calls.Add(1); return 1.5, nil }
func (s *stubHW) Predict(u []float64) (int, error)   { s.calls.Add(1); return 0, nil }
func (s *stubHW) Inputs() int                        { return 4 }
func (s *stubHW) Outputs() int                       { return 2 }
func (s *stubHW) Crossbar() *crossbar.Crossbar       { return nil }

func TestHardwareFaults(t *testing.T) {
	stub := &stubHW{}
	hw := faultinject.NewHardware(stub, faultinject.HardwareConfig{
		Seed:  3,
		Reads: faultinject.Plan{FailAfter: 2},
	})
	if _, err := hw.Forward([]float64{1, 2}); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := hw.Power([]float64{1, 2}); err != nil {
		t.Fatalf("second read: %v", err)
	}
	if _, err := hw.Predict([]float64{1, 2}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("third read: got %v, want ErrInjected", err)
	}
	// The injected failure never reached the device.
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("device saw %d calls, want 2", got)
	}
	if hw.Inputs() != 4 || hw.Outputs() != 2 {
		t.Error("dimension passthrough broken")
	}
}

// TestOracleChargeRollbackUnderFaults drives the oracle's accounting
// contract through injected hardware failures: every query either
// delivers a response (and is charged) or fails with the typed injected
// error (and is rolled back) — the charge counter must equal the number
// of responses the attacker actually received, never a partial or wrong
// result in between.
func TestOracleChargeRollbackUnderFaults(t *testing.T) {
	net, err := nn.NewNetwork(2, 4, nn.ActLinear, nn.LossMSE)
	if err != nil {
		t.Fatal(err)
	}
	net.InitXavier(rng.New(1).Split("init"))
	dcfg := crossbar.DefaultDeviceConfig()
	dcfg.GOff = 0
	device, err := crossbar.NewNetwork(net, dcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	hw := faultinject.NewHardware(device, faultinject.HardwareConfig{
		Seed:  11,
		Reads: faultinject.Plan{ErrorRate: 0.4},
	})
	orc, err := oracle.New(hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{1, 2, 3, 4}
	delivered := 0
	for i := 0; i < 200; i++ {
		resp, err := orc.Query(u)
		switch {
		case err == nil:
			// A delivered response is complete: forward output and power,
			// never one without the other.
			if len(resp.Raw) == 0 || resp.Power == 0 {
				t.Fatalf("query %d: partial response %+v", i, resp)
			}
			delivered++
		case errors.Is(err, faultinject.ErrInjected):
			// Typed failure, charge rolled back — asserted in aggregate
			// below.
		default:
			t.Fatalf("query %d: untyped error %v", i, err)
		}
	}
	if delivered == 0 || delivered == 200 {
		t.Fatalf("delivered %d/200 — fault schedule degenerate", delivered)
	}
	if got := orc.Queries(); got != delivered {
		t.Fatalf("charged %d queries, delivered %d responses — rollback broken", got, delivered)
	}
}

func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	// Without DropResponse the faulted request never reaches the server.
	tr := faultinject.NewTransport(nil, faultinject.TransportConfig{
		Seed:       5,
		RoundTrips: faultinject.Plan{FailAfter: 1},
	})
	cl := &http.Client{Transport: tr}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("first round trip: %v", err)
	}
	resp.Body.Close()
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("second round trip: want injected failure")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (fault fails before dispatch)", got)
	}
	if tr.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", tr.Faults())
	}

	// With DropResponse the request is executed and the answer lost —
	// the signature failure non-idempotent retry logic must respect.
	hits.Store(0)
	drop := faultinject.NewTransport(nil, faultinject.TransportConfig{
		Seed:         5,
		RoundTrips:   faultinject.Plan{FailAfter: 1},
		DropResponse: true,
	})
	cl = &http.Client{Transport: drop}
	resp, err = cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("first round trip: %v", err)
	}
	resp.Body.Close()
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("second round trip: want injected failure")
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (DropResponse still dispatches)", got)
	}
}
