// Package faultinject is the chaos harness for the durability layer:
// wrappers that inject deterministic, rng-seeded faults into the three
// surfaces crash recovery depends on — the filesystem under the job
// journal and artifact spill store (torn writes, disk errors, a crash
// switch), the oracle hardware (read failures), and the SDK's HTTP
// transport (dropped responses, refused connections).
//
// Determinism is the point: every fault decision is drawn from an
// explicit rng.Source stream in operation order, so a chaos test at a
// fixed seed replays the same fault schedule bit-for-bit — recovery
// paths are tested the same reproducible way as everything else in this
// repository. (Under concurrency the schedule depends on operation
// arrival order, exactly like the noisy-hardware streams.)
package faultinject

import (
	"errors"
	"net/http"
	"os"
	"sync"
	"time"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/wal"
)

// ErrInjected is the failure every injected fault surfaces. Chaos tests
// assert on it to separate scheduled faults from real bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCrashed is returned by every operation on a crashed FS — the
// in-process stand-in for SIGKILL: the abandoned process's writes can
// no longer reach the disk.
var ErrCrashed = errors.New("faultinject: crashed")

// Plan schedules faults for one operation class. The zero value injects
// nothing.
type Plan struct {
	// ErrorRate makes each operation fail independently with this
	// probability, drawn from the harness's seeded stream.
	ErrorRate float64
	// FailAfter fails every operation after the first FailAfter
	// successes (0 = disabled) — the knob for "the disk dies at exactly
	// append k" schedules.
	FailAfter int
	// Latency sleeps this long before each operation (0 = none); with
	// LatencyRate in (0,1] only that fraction of operations stall. Used
	// to widen race windows under -race.
	Latency     time.Duration
	LatencyRate float64
}

// injector makes the per-operation decisions for one Plan from one
// seeded stream. Safe for concurrent use.
type injector struct {
	mu   sync.Mutex
	plan Plan
	src  *rng.Source
	ok   int // successful operations so far (FailAfter accounting)
}

func newInjector(plan Plan, src *rng.Source) *injector {
	return &injector{plan: plan, src: src}
}

// decide draws one fault decision and applies scheduled latency.
func (in *injector) decide() error {
	in.mu.Lock()
	var stall time.Duration
	fail := false
	if in.plan.Latency > 0 {
		rate := in.plan.LatencyRate
		if rate <= 0 || rate >= 1 || in.src.Float64() < rate {
			stall = in.plan.Latency
		}
	}
	if in.plan.FailAfter > 0 && in.ok >= in.plan.FailAfter {
		fail = true
	}
	if !fail && in.plan.ErrorRate > 0 && in.src.Float64() < in.plan.ErrorRate {
		fail = true
	}
	if !fail {
		in.ok++
	}
	in.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if fail {
		return ErrInjected
	}
	return nil
}

// FSConfig schedules filesystem faults.
type FSConfig struct {
	// Seed roots the fault-decision streams.
	Seed int64
	// Write faults File.Write calls; Sync faults File.Sync; Open faults
	// FS.OpenFile.
	Write, Sync, Open Plan
	// TornWrite makes an injected write failure first land a strict
	// prefix of the buffer (length drawn from the seeded stream) — the
	// on-disk signature of a crash mid-append, which is exactly what
	// journal replay must survive.
	TornWrite bool
}

// FS wraps a wal.FS with scheduled faults and a crash switch.
type FS struct {
	inner wal.FS
	cfg   FSConfig

	write, sync, open *injector
	tornSrc           *rng.Source
	tornMu            sync.Mutex

	crashMu sync.Mutex
	crashed bool
}

// NewFS wraps inner with the scheduled faults.
func NewFS(inner wal.FS, cfg FSConfig) *FS {
	root := rng.New(cfg.Seed).Split("faultinject:fs")
	return &FS{
		inner:   inner,
		cfg:     cfg,
		write:   newInjector(cfg.Write, root.Split("write")),
		sync:    newInjector(cfg.Sync, root.Split("sync")),
		open:    newInjector(cfg.Open, root.Split("open")),
		tornSrc: root.Split("torn"),
	}
}

// Crash flips the crash switch: every subsequent operation — including
// ones on already-open files — fails with ErrCrashed. It simulates
// SIGKILL for in-process kill-and-restart tests: the abandoned service
// instance keeps running goroutines, but nothing it does can reach the
// state directory anymore.
func (f *FS) Crash() {
	f.crashMu.Lock()
	f.crashed = true
	f.crashMu.Unlock()
}

func (f *FS) dead() error {
	f.crashMu.Lock()
	defer f.crashMu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenFile opens a file unless a scheduled open fault (or the crash
// switch) refuses it.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	if err := f.open.decide(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Rename passes through unless crashed.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove passes through unless crashed.
func (f *FS) Remove(name string) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// MkdirAll passes through unless crashed.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// Stat passes through unless crashed.
func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// ReadDir passes through unless crashed.
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// faultFile injects write and sync faults on one open handle.
type faultFile struct {
	fs    *FS
	inner wal.File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.dead(); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

// Write applies the write schedule. A torn failure writes a strict
// prefix (possibly empty) before reporting the error — the caller's
// frame is half on disk, exactly as after a power cut.
func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.dead(); err != nil {
		return 0, err
	}
	if err := ff.fs.write.decide(); err != nil {
		if ff.fs.cfg.TornWrite && len(p) > 0 {
			ff.fs.tornMu.Lock()
			cut := ff.fs.tornSrc.Intn(len(p))
			ff.fs.tornMu.Unlock()
			n, werr := ff.inner.Write(p[:cut])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.dead(); err != nil {
		return err
	}
	if err := ff.fs.sync.decide(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close works even after a crash: the handle teardown is the
	// process's, not the disk's.
	return ff.inner.Close()
}

// HardwareConfig schedules oracle-hardware faults.
type HardwareConfig struct {
	// Seed roots the fault-decision stream.
	Seed int64
	// Reads faults Forward/Power/Predict calls (one shared schedule, in
	// call order).
	Reads Plan
}

// Hardware wraps an oracle.Hardware with scheduled read faults. It
// deliberately does not forward the fused/batched fast-path interfaces:
// a faulty device degrades the oracle to the scalar path, which is also
// the path whose charge-rollback accounting the faults are meant to
// exercise.
type Hardware struct {
	inner oracle.Hardware
	reads *injector
}

// NewHardware wraps hw with the scheduled faults.
func NewHardware(hw oracle.Hardware, cfg HardwareConfig) *Hardware {
	return &Hardware{
		inner: hw,
		reads: newInjector(cfg.Reads, rng.New(cfg.Seed).Split("faultinject:hw")),
	}
}

// Forward runs a forward pass unless a scheduled fault refuses it.
func (h *Hardware) Forward(u []float64) ([]float64, error) {
	if err := h.reads.decide(); err != nil {
		return nil, err
	}
	return h.inner.Forward(u)
}

// Power reads power unless a scheduled fault refuses it.
func (h *Hardware) Power(u []float64) (float64, error) {
	if err := h.reads.decide(); err != nil {
		return 0, err
	}
	return h.inner.Power(u)
}

// Predict classifies unless a scheduled fault refuses it.
func (h *Hardware) Predict(u []float64) (int, error) {
	if err := h.reads.decide(); err != nil {
		return 0, err
	}
	return h.inner.Predict(u)
}

// Inputs returns the wrapped dimensionality.
func (h *Hardware) Inputs() int { return h.inner.Inputs() }

// Outputs returns the wrapped class count.
func (h *Hardware) Outputs() int { return h.inner.Outputs() }

// Crossbar returns the wrapped array.
func (h *Hardware) Crossbar() *crossbar.Crossbar { return h.inner.Crossbar() }

var _ oracle.Hardware = (*Hardware)(nil)

// TransportConfig schedules HTTP transport faults for SDK tests.
type TransportConfig struct {
	// Seed roots the fault-decision stream.
	Seed int64
	// RoundTrips faults whole request round trips.
	RoundTrips Plan
	// DropResponse delivers faulted requests to the server and then
	// discards the response — the worst transport failure for a
	// non-idempotent call: the work happened, the client cannot know.
	// When false, faulted requests fail before reaching the server.
	DropResponse bool
}

// Transport wraps an http.RoundTripper with scheduled faults.
type Transport struct {
	inner http.RoundTripper
	cfg   TransportConfig
	trips *injector

	// Faults counts injected round-trip failures (for test assertions).
	faults   int
	faultsMu sync.Mutex
}

// NewTransport wraps inner (nil = http.DefaultTransport).
func NewTransport(inner http.RoundTripper, cfg TransportConfig) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner: inner,
		cfg:   cfg,
		trips: newInjector(cfg.RoundTrips, rng.New(cfg.Seed).Split("faultinject:transport")),
	}
}

// Faults returns how many round trips were failed so far.
func (t *Transport) Faults() int {
	t.faultsMu.Lock()
	defer t.faultsMu.Unlock()
	return t.faults
}

// RoundTrip applies the schedule: a faulted round trip either never
// reaches the server or (DropResponse) reaches it and loses the answer.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.trips.decide(); err != nil {
		t.faultsMu.Lock()
		t.faults++
		t.faultsMu.Unlock()
		if t.cfg.DropResponse {
			resp, rerr := t.inner.RoundTrip(req)
			if rerr == nil {
				resp.Body.Close()
			}
			return nil, err
		}
		return nil, err
	}
	return t.inner.RoundTrip(req)
}

var _ http.RoundTripper = (*Transport)(nil)
