package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xbarsec/internal/rng"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive counts must normalize to at least one worker")
	}
	if Workers(7) != 7 {
		t.Fatal("positive counts pass through")
	}
}

func TestDoRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 16} {
		for _, n := range []int{0, 1, 5, 100} {
			counts := make([]int, n)
			Do(workers, n, func(i int) { counts[i]++ })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestDoDeterministicAcrossWorkerCounts(t *testing.T) {
	// Per-index randomness assembled by index must be bit-identical for
	// any worker count — the contract the experiment runners rely on.
	const n = 64
	root := rng.New(42)
	draw := func(workers int) []float64 {
		out := make([]float64, n)
		Do(workers, n, func(i int) {
			src := root.SplitN("item", i)
			out[i] = src.Normal(0, 1) * src.Float64()
		})
		return out
	}
	want := draw(1)
	for _, workers := range []int{2, 5, 16} {
		got := draw(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := DoErr(workers, 20, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestDoErrNilOnSuccess(t *testing.T) {
	if err := DoErr(3, 10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDoErrAllItemsRunDespiteFailure(t *testing.T) {
	ran := make([]bool, 10)
	_ = DoErr(2, 10, func(i int) error {
		ran[i] = true
		return errors.New("boom")
	})
	for i, r := range ran {
		if !r {
			t.Fatalf("item %d skipped after another item failed", i)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate to the caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "item 2") {
			t.Fatalf("panic %v should name the lowest panicking item", r)
		}
	}()
	Do(4, 8, func(i int) {
		if i >= 2 && i <= 3 {
			panic("kaboom")
		}
	})
}

func TestGateBoundsConcurrency(t *testing.T) {
	const limit, jobs = 3, 24
	g := NewGate(limit)
	if g.Limit() != limit {
		t.Fatalf("limit = %d, want %d", g.Limit(), limit)
	}
	var running, peak, done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Run(func() {
				n := running.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				running.Add(-1)
				done.Add(1)
			})
		}()
	}
	wg.Wait()
	if done.Load() != jobs {
		t.Fatalf("done = %d, want %d", done.Load(), jobs)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeded limit %d", p, limit)
	}
}

func TestGateReleasesOnPanicAndError(t *testing.T) {
	g := NewGate(1)
	func() {
		defer func() { recover() }()
		g.Run(func() { panic("boom") })
	}()
	wantErr := errors.New("job failed")
	if err := g.RunErr(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The slot must be free again after both failures.
	ok := false
	g.Run(func() { ok = true })
	if !ok {
		t.Fatal("gate slot leaked")
	}
}

func TestGateDefaultLimit(t *testing.T) {
	if got := NewGate(0).Limit(); got != Workers(0) {
		t.Fatalf("default limit = %d, want %d", got, Workers(0))
	}
}
