// Package pool provides the deterministic worker pool the experiment
// runners fan work across.
//
// Determinism contract: a work item is identified solely by its index i in
// [0, n). Callers must derive all randomness consumed by item i from that
// index (via rng.Source.Split / SplitN, never from a stream shared across
// items) and must write results only into the i-th slot of a caller-owned
// slice. Under that contract the assembled results are bit-identical for
// every worker count — including the inline workers == 1 path — because
// no value ever depends on goroutine scheduling order.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0) — the number of procs actually runnable, which
// unlike NumCPU respects an explicit GOMAXPROCS cap in quota-limited
// containers.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) across at most workers goroutines
// (0 = all runnable procs). Items are claimed from a shared counter, so
// uneven item costs balance automatically. With workers == 1 (or n == 1)
// fn runs inline on the calling goroutine — the serial reference path.
//
// Nesting Do inside a Do item is fine and deliberate in the experiment
// runners: the outer fan-out alone can leave procs idle when it has
// fewer items than procs, so inner loops fan out too. The worst case is
// workers² goroutines contending for the same procs — goroutines are
// cheap and results are scheduling-independent, so this trades a little
// scheduler churn for work conservation.
//
// A panic in any item is captured and re-raised on the calling goroutine
// after all workers drain, annotated with the lowest panicking index.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]*itemPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runItem(i, fn, panics)
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("pool: item %d panicked: %v\nitem goroutine stack:\n%s", i, p.value, p.stack))
		}
	}
}

// itemPanic preserves a worker item's panic value together with the
// stack of the panicking goroutine, which would otherwise be lost when
// the panic is re-raised on the calling goroutine.
type itemPanic struct {
	value any
	stack []byte
}

// runItem isolates the per-item recover so a panicking item does not kill
// its worker goroutine before the remaining items run.
func runItem(i int, fn func(int), panics []*itemPanic) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &itemPanic{value: r, stack: debug.Stack()}
		}
	}()
	fn(i)
}

// Gate bounds how many callers run a section at once — the admission
// control long-lived services put in front of expensive jobs. Unlike Do,
// which fans a fixed work list across workers and returns, a Gate is held
// open for the life of a server and admits arbitrary callers as slots
// free up; excess callers block in FIFO-ish channel order rather than
// failing.
type Gate struct {
	sem chan struct{}
}

// NewGate returns a gate admitting at most limit concurrent callers;
// limit <= 0 selects the runnable-proc count, as Workers.
func NewGate(limit int) *Gate {
	return &Gate{sem: make(chan struct{}, Workers(limit))}
}

// Limit returns the gate's admission cap.
func (g *Gate) Limit() int { return cap(g.sem) }

// Run blocks until a slot is free, runs fn, and releases the slot — also
// on panic.
func (g *Gate) Run(fn func()) {
	g.sem <- struct{}{}
	defer func() { <-g.sem }()
	fn()
}

// RunErr is Run for fallible jobs.
func (g *Gate) RunErr(fn func() error) error {
	g.sem <- struct{}{}
	defer func() { <-g.sem }()
	return fn()
}

// DoErr is Do for fallible items. Every item runs regardless of other
// items' failures (errors are exceptional in this codebase, so no
// cancellation machinery), and the returned error is the one with the
// lowest index — the same error the serial path would surface first —
// so error reporting is also independent of scheduling.
func DoErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	Do(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
