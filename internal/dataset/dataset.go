// Package dataset provides the image-classification data substrate for the
// reproduction. The paper evaluates on MNIST and CIFAR-10; this package
// contains (a) parsers for the real distribution formats (IDX and the
// CIFAR-10 binary batches) so genuine data is used when present, and (b)
// synthetic generators that preserve the statistics the paper's effects
// depend on: an MNIST-like set on which a single-layer network reaches
// ~90% accuracy with smooth, centrally-concentrated discriminative pixel
// mass, and a CIFAR-like set with low linear separability and
// high-frequency discriminative structure. DESIGN.md §2 documents the
// substitution argument.
package dataset

import (
	"errors"
	"fmt"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// ErrEmpty indicates an operation was attempted on a dataset with no
// samples.
var ErrEmpty = errors.New("dataset: empty dataset")

// Dataset is a labelled image-classification dataset. X holds one
// flattened image per row with pixel values in [0, 1]; Labels holds the
// class index per row.
type Dataset struct {
	// X is the n x (Width*Height*Channels) design matrix.
	X *tensor.Matrix
	// Labels[i] is the class of row i, in [0, NumClasses).
	Labels []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// Width, Height and Channels describe the image geometry. Pixels are
	// stored channel-major: channel c, row y, column x maps to index
	// c*Width*Height + y*Width + x (the CIFAR-10 binary layout; MNIST has
	// Channels == 1 so the orders coincide).
	Width, Height, Channels int
	// Name identifies the dataset for reports ("mnist-synth", "cifar10", ...).
	Name string
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Dim returns the flattened input dimensionality.
func (d *Dataset) Dim() int { return d.Width * d.Height * d.Channels }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return errors.New("dataset: nil design matrix")
	}
	if d.X.Rows() != len(d.Labels) {
		return fmt.Errorf("dataset: %d rows but %d labels", d.X.Rows(), len(d.Labels))
	}
	if d.X.Cols() != d.Dim() {
		return fmt.Errorf("dataset: %d columns but geometry %dx%dx%d", d.X.Cols(), d.Width, d.Height, d.Channels)
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("dataset: invalid class count %d", d.NumClasses)
	}
	for i, l := range d.Labels {
		if l < 0 || l >= d.NumClasses {
			return fmt.Errorf("dataset: label %d out of range at row %d", l, i)
		}
	}
	return nil
}

// Sample returns a copy of the i-th image and its label.
func (d *Dataset) Sample(i int) ([]float64, int) {
	return tensor.CloneVec(d.X.Row(i)), d.Labels[i]
}

// OneHot returns the n x NumClasses one-hot target matrix.
func (d *Dataset) OneHot() *tensor.Matrix {
	t := tensor.New(d.Len(), d.NumClasses)
	for i, l := range d.Labels {
		t.Set(i, l, 1)
	}
	return t
}

// Subset returns a new dataset holding the rows at the given indices,
// copying the data.
func (d *Dataset) Subset(indices []int) *Dataset {
	x := tensor.New(len(indices), d.Dim())
	labels := make([]int, len(indices))
	for k, i := range indices {
		x.SetRow(k, d.X.Row(i))
		labels[k] = d.Labels[i]
	}
	return &Dataset{
		X: x, Labels: labels, NumClasses: d.NumClasses,
		Width: d.Width, Height: d.Height, Channels: d.Channels, Name: d.Name,
	}
}

// Head returns the first n samples (or all if n exceeds Len).
func (d *Dataset) Head(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// Shuffled returns a copy of the dataset with rows permuted by src.
func (d *Dataset) Shuffled(src *rng.Source) *Dataset {
	return d.Subset(src.Perm(d.Len()))
}

// SampleN returns n rows drawn without replacement using src. If n exceeds
// Len, all rows are returned (shuffled).
func (d *Dataset) SampleN(src *rng.Source, n int) *Dataset {
	return d.Subset(src.SampleWithoutReplacement(d.Len(), n))
}

// Split partitions the dataset into a training head and test tail after a
// shuffle. frac is the training fraction in (0, 1).
func (d *Dataset) Split(src *rng.Source, frac float64) (train, test *Dataset, err error) {
	if d.Len() == 0 {
		return nil, nil, ErrEmpty
	}
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v out of (0,1)", frac)
	}
	p := src.Perm(d.Len())
	cut := int(float64(d.Len()) * frac)
	if cut == 0 {
		cut = 1
	}
	if cut == d.Len() {
		cut = d.Len() - 1
	}
	return d.Subset(p[:cut]), d.Subset(p[cut:]), nil
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// FirstChannel returns the per-pixel values of channel 0 for use in
// heatmaps, matching the paper's Figure 3 which plots only the first color
// channel for CIFAR-10.
func FirstChannel(values []float64, width, height int) []float64 {
	n := width * height
	if len(values) < n {
		n = len(values)
	}
	return tensor.CloneVec(values[:n])
}
