package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Writers for the real distribution formats. They are the inverse of the
// parsers in idx.go and exist so synthetic datasets can be exported to
// disk in MNIST-IDX / CIFAR-binary form (cmd/xbargen) and later loaded
// through the exact same path as genuine files — a full-fidelity test of
// the I/O substrate and a way to share generated corpora with other
// tools.

// WriteIDXImages serializes d's images in the MNIST IDX3 format (pixels
// scaled back to 0..255). Only single-channel datasets are supported.
func WriteIDXImages(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Channels != 1 {
		return fmt.Errorf("dataset: IDX images require 1 channel, got %d", d.Channels)
	}
	var header [16]byte
	binary.BigEndian.PutUint32(header[0:4], idxMagicImages)
	binary.BigEndian.PutUint32(header[4:8], uint32(d.Len()))
	binary.BigEndian.PutUint32(header[8:12], uint32(d.Height))
	binary.BigEndian.PutUint32(header[12:16], uint32(d.Width))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("dataset: idx header: %w", err)
	}
	buf := make([]byte, d.Dim())
	for i := 0; i < d.Len(); i++ {
		row := d.X.Row(i)
		for j, v := range row {
			buf[j] = quantizeByte(v)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("dataset: idx image %d: %w", i, err)
		}
	}
	return nil
}

// WriteIDXLabels serializes d's labels in the MNIST IDX1 format.
func WriteIDXLabels(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.NumClasses > 256 {
		return fmt.Errorf("dataset: IDX labels support at most 256 classes, got %d", d.NumClasses)
	}
	var header [8]byte
	binary.BigEndian.PutUint32(header[0:4], idxMagicLabels)
	binary.BigEndian.PutUint32(header[4:8], uint32(d.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("dataset: idx label header: %w", err)
	}
	buf := make([]byte, d.Len())
	for i, l := range d.Labels {
		buf[i] = byte(l)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dataset: idx labels: %w", err)
	}
	return nil
}

// WriteCIFARBatch serializes d in the CIFAR-10 binary batch format. The
// dataset must be 32x32x3 with at most 10 classes.
func WriteCIFARBatch(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Width != 32 || d.Height != 32 || d.Channels != 3 {
		return fmt.Errorf("dataset: CIFAR batches require 32x32x3 geometry, got %dx%dx%d", d.Width, d.Height, d.Channels)
	}
	if d.NumClasses > 10 {
		return fmt.Errorf("dataset: CIFAR batches support at most 10 classes, got %d", d.NumClasses)
	}
	buf := make([]byte, cifarRecordSize)
	for i := 0; i < d.Len(); i++ {
		buf[0] = byte(d.Labels[i])
		row := d.X.Row(i)
		for j, v := range row {
			buf[1+j] = quantizeByte(v)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("dataset: cifar record %d: %w", i, err)
		}
	}
	return nil
}

func quantizeByte(v float64) byte {
	b := math.Round(v * 255)
	if b < 0 {
		b = 0
	} else if b > 255 {
		b = 255
	}
	return byte(b)
}

// ExportMNISTLayout writes train/test datasets under dir using the
// standard MNIST file names, so Load(MNIST, ..., LoadOptions{DataDir:
// dir}) finds them.
func ExportMNISTLayout(dir string, train, test *Dataset) error {
	files := []struct {
		name  string
		ds    *Dataset
		write func(io.Writer, *Dataset) error
	}{
		{"train-images-idx3-ubyte", train, WriteIDXImages},
		{"train-labels-idx1-ubyte", train, WriteIDXLabels},
		{"t10k-images-idx3-ubyte", test, WriteIDXImages},
		{"t10k-labels-idx1-ubyte", test, WriteIDXLabels},
	}
	for _, f := range files {
		if err := writeFileAtomic(filepath.Join(dir, f.name), f.ds, f.write); err != nil {
			return err
		}
	}
	return nil
}

// ExportCIFARLayout writes train/test datasets under dir using the
// standard CIFAR-10 binary batch names (the training set is split evenly
// across the five data batches).
func ExportCIFARLayout(dir string, train, test *Dataset) error {
	per := (train.Len() + 4) / 5
	for b := 0; b < 5; b++ {
		lo := b * per
		hi := lo + per
		if hi > train.Len() {
			hi = train.Len()
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		part := train.Subset(idx)
		name := fmt.Sprintf("data_batch_%d.bin", b+1)
		if err := writeFileAtomic(filepath.Join(dir, name), part, WriteCIFARBatch); err != nil {
			return err
		}
	}
	return writeFileAtomic(filepath.Join(dir, "test_batch.bin"), test, WriteCIFARBatch)
}

func writeFileAtomic(path string, d *Dataset, write func(io.Writer, *Dataset) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := write(bw, d); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
