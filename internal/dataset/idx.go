package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xbarsec/internal/tensor"
)

// Parsers for the real distribution formats so genuine MNIST / CIFAR-10
// files are used whenever they are present on disk (see Load).

const (
	idxMagicImages = 0x00000803 // unsigned byte, 3 dimensions
	idxMagicLabels = 0x00000801 // unsigned byte, 1 dimension
)

// ReadIDXImages parses an IDX3 image file (the MNIST image format) into a
// row-per-image matrix with pixels scaled to [0, 1].
func ReadIDXImages(r io.Reader) (*tensor.Matrix, int, int, error) {
	var header [16]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: idx image header: %w", err)
	}
	magic := binary.BigEndian.Uint32(header[0:4])
	if magic != idxMagicImages {
		return nil, 0, 0, fmt.Errorf("dataset: idx image magic 0x%08x, want 0x%08x", magic, idxMagicImages)
	}
	count := int(binary.BigEndian.Uint32(header[4:8]))
	rows := int(binary.BigEndian.Uint32(header[8:12]))
	cols := int(binary.BigEndian.Uint32(header[12:16]))
	if count < 0 || rows <= 0 || cols <= 0 || rows*cols > 1<<20 {
		return nil, 0, 0, fmt.Errorf("dataset: implausible idx geometry %dx%dx%d", count, rows, cols)
	}
	dim := rows * cols
	m := tensor.New(count, dim)
	buf := make([]byte, dim)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: idx image %d: %w", i, err)
		}
		row := m.Row(i)
		for j, b := range buf {
			row[j] = float64(b) / 255
		}
	}
	return m, rows, cols, nil
}

// ReadIDXLabels parses an IDX1 label file (the MNIST label format).
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("dataset: idx label header: %w", err)
	}
	magic := binary.BigEndian.Uint32(header[0:4])
	if magic != idxMagicLabels {
		return nil, fmt.Errorf("dataset: idx label magic 0x%08x, want 0x%08x", magic, idxMagicLabels)
	}
	count := int(binary.BigEndian.Uint32(header[4:8]))
	buf := make([]byte, count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dataset: idx labels: %w", err)
	}
	labels := make([]int, count)
	for i, b := range buf {
		labels[i] = int(b)
	}
	return labels, nil
}

// openMaybeGzip opens path, transparently decompressing .gz files. The
// returned closer must be closed by the caller.
func openMaybeGzip(path string) (io.Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(bufio.NewReader(f))
		if err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("dataset: gzip %s: %w", path, err)
		}
		return gz, func() error {
			gzErr := gz.Close()
			if err := f.Close(); err != nil {
				return err
			}
			return gzErr
		}, nil
	}
	return bufio.NewReader(f), f.Close, nil
}

// LoadMNISTFiles reads an (images, labels) IDX pair, possibly gzipped,
// into a Dataset.
func LoadMNISTFiles(imagePath, labelPath string) (*Dataset, error) {
	ir, iclose, err := openMaybeGzip(imagePath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = iclose() }()
	x, rows, cols, err := ReadIDXImages(ir)
	if err != nil {
		return nil, err
	}
	lr, lclose, err := openMaybeGzip(labelPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = lclose() }()
	labels, err := ReadIDXLabels(lr)
	if err != nil {
		return nil, err
	}
	if len(labels) != x.Rows() {
		return nil, fmt.Errorf("dataset: %d images but %d labels", x.Rows(), len(labels))
	}
	d := &Dataset{
		X: x, Labels: labels, NumClasses: 10,
		Width: cols, Height: rows, Channels: 1, Name: "mnist",
	}
	return d, d.Validate()
}

// cifarRecordSize is 1 label byte + 32*32*3 pixel bytes.
const cifarRecordSize = 1 + 3*32*32

// ReadCIFARBatch parses a CIFAR-10 binary batch file into images scaled to
// [0, 1] (channel-major layout, matching the on-disk format).
func ReadCIFARBatch(r io.Reader) (*tensor.Matrix, []int, error) {
	var rows [][]float64
	var labels []int
	buf := make([]byte, cifarRecordSize)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: cifar record %d: %w", len(labels), err)
		}
		label := int(buf[0])
		if label > 9 {
			return nil, nil, fmt.Errorf("dataset: cifar label %d out of range in record %d", label, len(labels))
		}
		px := make([]float64, cifarRecordSize-1)
		for j, b := range buf[1:] {
			px[j] = float64(b) / 255
		}
		rows = append(rows, px)
		labels = append(labels, label)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("dataset: empty cifar batch: %w", ErrEmpty)
	}
	x, err := tensor.NewFromRows(rows)
	if err != nil {
		return nil, nil, err
	}
	return x, labels, nil
}

// LoadCIFARFiles reads one or more CIFAR-10 binary batch files into a
// single Dataset.
func LoadCIFARFiles(paths ...string) (*Dataset, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: no cifar batch paths: %w", ErrEmpty)
	}
	var all *tensor.Matrix
	var labels []int
	for _, p := range paths {
		r, closeFn, err := openMaybeGzip(p)
		if err != nil {
			return nil, err
		}
		x, l, err := ReadCIFARBatch(r)
		cerr := closeFn()
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", filepath.Base(p), err)
		}
		if cerr != nil {
			return nil, cerr
		}
		if all == nil {
			all = x
		} else {
			merged := tensor.New(all.Rows()+x.Rows(), all.Cols())
			for i := 0; i < all.Rows(); i++ {
				merged.SetRow(i, all.Row(i))
			}
			for i := 0; i < x.Rows(); i++ {
				merged.SetRow(all.Rows()+i, x.Row(i))
			}
			all = merged
		}
		labels = append(labels, l...)
	}
	d := &Dataset{
		X: all, Labels: labels, NumClasses: 10,
		Width: 32, Height: 32, Channels: 3, Name: "cifar10",
	}
	return d, d.Validate()
}
