package dataset

import (
	"fmt"
	"math"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Synthetic MNIST-like generator.
//
// Each digit class is a fixed set of strokes (polylines in the unit
// square). A sample is rendered by applying a random affine jitter
// (translation, rotation, scale), rasterizing the strokes with a Gaussian
// pen profile, and adding pixel noise. The generator is tuned so that a
// single-layer network reaches roughly 90% test accuracy and the
// discriminative pixel mass is smooth and centrally concentrated — the two
// MNIST properties the paper's Case-1 results rest on.

// MNISTLikeConfig parameterizes the synthetic digit generator.
type MNISTLikeConfig struct {
	// Size is the image side length in pixels (MNIST: 28).
	Size int
	// StrokeWidth is the Gaussian pen sigma in unit coordinates.
	StrokeWidth float64
	// Jitter scales the random affine deformation (0 disables).
	Jitter float64
	// PixelNoise is the additive Gaussian noise sigma per pixel.
	PixelNoise float64
}

// DefaultMNISTLikeConfig returns the configuration used by the
// experiments.
func DefaultMNISTLikeConfig() MNISTLikeConfig {
	return MNISTLikeConfig{Size: 28, StrokeWidth: 0.055, Jitter: 1, PixelNoise: 0.05}
}

type segment struct{ x1, y1, x2, y2 float64 }

// digitStrokes returns the polyline prototype for digit d in unit
// coordinates, origin at the top-left, x right, y down.
func digitStrokes(d int) [][][2]float64 {
	arc := func(cx, cy, rx, ry, a0, a1 float64, n int) [][2]float64 {
		pts := make([][2]float64, 0, n+1)
		for i := 0; i <= n; i++ {
			a := a0 + (a1-a0)*float64(i)/float64(n)
			pts = append(pts, [2]float64{cx + rx*math.Cos(a), cy + ry*math.Sin(a)})
		}
		return pts
	}
	switch d {
	case 0:
		return [][][2]float64{arc(0.5, 0.5, 0.22, 0.32, 0, 2*math.Pi, 24)}
	case 1:
		return [][][2]float64{
			{{0.52, 0.18}, {0.52, 0.82}},
			{{0.40, 0.30}, {0.52, 0.18}},
		}
	case 2:
		top := arc(0.5, 0.32, 0.20, 0.14, math.Pi, 2.35*math.Pi, 12)
		return [][][2]float64{
			top,
			{top[len(top)-1], {0.30, 0.80}},
			{{0.30, 0.80}, {0.72, 0.80}},
		}
	case 3:
		return [][][2]float64{
			arc(0.47, 0.33, 0.18, 0.15, 1.25*math.Pi, 2.6*math.Pi, 12),
			arc(0.47, 0.65, 0.20, 0.17, 1.45*math.Pi, 2.8*math.Pi, 12),
		}
	case 4:
		return [][][2]float64{
			{{0.62, 0.18}, {0.62, 0.84}},
			{{0.62, 0.18}, {0.32, 0.58}},
			{{0.32, 0.58}, {0.76, 0.58}},
		}
	case 5:
		return [][][2]float64{
			{{0.68, 0.20}, {0.36, 0.20}},
			{{0.36, 0.20}, {0.34, 0.48}},
			arc(0.50, 0.63, 0.19, 0.17, 1.35*math.Pi, 2.75*math.Pi, 12),
		}
	case 6:
		return [][][2]float64{
			arc(0.52, 0.63, 0.18, 0.18, 0, 2*math.Pi, 16),
			arc(0.60, 0.45, 0.26, 0.28, 1.05*math.Pi, 1.75*math.Pi, 10),
		}
	case 7:
		return [][][2]float64{
			{{0.30, 0.20}, {0.72, 0.20}},
			{{0.72, 0.20}, {0.44, 0.82}},
		}
	case 8:
		return [][][2]float64{
			arc(0.5, 0.34, 0.16, 0.14, 0, 2*math.Pi, 16),
			arc(0.5, 0.66, 0.19, 0.17, 0, 2*math.Pi, 16),
		}
	case 9:
		return [][][2]float64{
			arc(0.48, 0.36, 0.17, 0.16, 0, 2*math.Pi, 16),
			arc(0.42, 0.52, 0.26, 0.28, 2.25*math.Pi, 2.9*math.Pi, 10),
		}
	default:
		panic(fmt.Sprintf("dataset: no stroke prototype for digit %d", d))
	}
}

func strokesToSegments(strokes [][][2]float64) []segment {
	var segs []segment
	for _, poly := range strokes {
		for i := 0; i+1 < len(poly); i++ {
			segs = append(segs, segment{poly[i][0], poly[i][1], poly[i+1][0], poly[i+1][1]})
		}
	}
	return segs
}

// distToSegment returns the Euclidean distance from (px,py) to s.
func distToSegment(px, py float64, s segment) float64 {
	dx, dy := s.x2-s.x1, s.y2-s.y1
	l2 := dx*dx + dy*dy
	var t float64
	if l2 > 0 {
		t = ((px-s.x1)*dx + (py-s.y1)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	cx, cy := s.x1+t*dx, s.y1+t*dy
	return math.Hypot(px-cx, py-cy)
}

// affine is a 2D affine map p -> A·(p-0.5) + 0.5 + t.
type affine struct {
	a11, a12, a21, a22 float64
	tx, ty             float64
}

func randomAffine(src *rng.Source, jitter float64) affine {
	rot := src.Normal(0, 0.10*jitter)
	scale := 1 + src.Normal(0, 0.06*jitter)
	shear := src.Normal(0, 0.05*jitter)
	c, s := math.Cos(rot), math.Sin(rot)
	return affine{
		a11: scale * c, a12: scale * (shear*c - s),
		a21: scale * s, a22: scale * (shear*s + c),
		tx: src.Normal(0, 0.035*jitter), ty: src.Normal(0, 0.035*jitter),
	}
}

func (t affine) apply(x, y float64) (float64, float64) {
	x, y = x-0.5, y-0.5
	return t.a11*x + t.a12*y + 0.5 + t.tx, t.a21*x + t.a22*y + 0.5 + t.ty
}

// renderDigit rasterizes the digit's segments (after jitter) into a
// size x size image with a Gaussian pen profile.
func renderDigit(segs []segment, tfm affine, cfg MNISTLikeConfig, src *rng.Source, out []float64) {
	size := cfg.Size
	width := cfg.StrokeWidth * (1 + src.Normal(0, 0.15*cfg.Jitter))
	if width < 0.02 {
		width = 0.02
	}
	moved := make([]segment, len(segs))
	for i, s := range segs {
		x1, y1 := tfm.apply(s.x1, s.y1)
		x2, y2 := tfm.apply(s.x2, s.y2)
		moved[i] = segment{x1, y1, x2, y2}
	}
	inv2w2 := 1 / (2 * width * width)
	for py := 0; py < size; py++ {
		fy := (float64(py) + 0.5) / float64(size)
		for px := 0; px < size; px++ {
			fx := (float64(px) + 0.5) / float64(size)
			best := math.MaxFloat64
			for _, s := range moved {
				if d := distToSegment(fx, fy, s); d < best {
					best = d
				}
			}
			v := math.Exp(-best * best * inv2w2)
			if cfg.PixelNoise > 0 {
				v += src.Normal(0, cfg.PixelNoise)
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out[py*size+px] = v
		}
	}
}

// GenerateMNISTLike produces n synthetic digit samples with balanced
// classes using the given configuration and random source.
func GenerateMNISTLike(src *rng.Source, n int, cfg MNISTLikeConfig) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample count %d must be positive", n)
	}
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("dataset: image size %d must be positive", cfg.Size)
	}
	const numClasses = 10
	segsByClass := make([][]segment, numClasses)
	for d := 0; d < numClasses; d++ {
		segsByClass[d] = strokesToSegments(digitStrokes(d))
	}
	dim := cfg.Size * cfg.Size
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % numClasses
		labels[i] = label
		sample := src.SplitN("mnist-sample", i)
		tfm := randomAffine(sample, cfg.Jitter)
		renderDigit(segsByClass[label], tfm, cfg, sample, x.Row(i))
	}
	// Shuffle so class order carries no information.
	d := &Dataset{
		X: x, Labels: labels, NumClasses: numClasses,
		Width: cfg.Size, Height: cfg.Size, Channels: 1, Name: "mnist-synth",
	}
	return d.Shuffled(src.Split("mnist-shuffle")), nil
}
