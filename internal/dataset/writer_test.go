package dataset

import (
	"bytes"
	"math"
	"testing"

	"xbarsec/internal/rng"
)

func TestIDXRoundTrip(t *testing.T) {
	src := rng.New(1)
	d, err := GenerateMNISTLike(src, 30, MNISTLikeConfig{Size: 12, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var images, labels bytes.Buffer
	if err := WriteIDXImages(&images, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&labels, d); err != nil {
		t.Fatal(err)
	}
	x, rows, cols, err := ReadIDXImages(bytes.NewReader(images.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 12 || cols != 12 || x.Rows() != 30 {
		t.Fatalf("geometry %dx%d n=%d", rows, cols, x.Rows())
	}
	got, err := ReadIDXLabels(bytes.NewReader(labels.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != d.Labels[i] {
			t.Fatalf("label %d changed in round trip", i)
		}
	}
	// Pixels survive up to the 8-bit quantization step.
	for i := 0; i < d.Len(); i++ {
		for j, v := range d.X.Row(i) {
			if math.Abs(x.At(i, j)-v) > 1.0/255+1e-9 {
				t.Fatalf("pixel (%d,%d): %v vs %v", i, j, x.At(i, j), v)
			}
		}
	}
}

func TestCIFARRoundTrip(t *testing.T) {
	src := rng.New(2)
	d, err := GenerateCIFARLike(src, 20, DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCIFARBatch(&buf, d); err != nil {
		t.Fatal(err)
	}
	x, labels, err := ReadCIFARBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 20 {
		t.Fatalf("rows = %d", x.Rows())
	}
	for i := range labels {
		if labels[i] != d.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
	for i := 0; i < d.Len(); i++ {
		for j, v := range d.X.Row(i) {
			if math.Abs(x.At(i, j)-v) > 1.0/255+1e-9 {
				t.Fatalf("pixel (%d,%d) drifted", i, j)
			}
		}
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	src := rng.New(3)
	cifar, err := GenerateCIFARLike(src, 10, DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXImages(&buf, cifar); err == nil {
		t.Fatal("3-channel dataset must be rejected by the IDX writer")
	}
	mnist, err := GenerateMNISTLike(src, 10, MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0, PixelNoise: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCIFARBatch(&buf, mnist); err == nil {
		t.Fatal("non-32x32x3 dataset must be rejected by the CIFAR writer")
	}
}

func TestExportMNISTLayoutLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := rng.New(4)
	cfg := DefaultMNISTLikeConfig()
	train, err := GenerateMNISTLike(src.Split("tr"), 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := GenerateMNISTLike(src.Split("te"), 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportMNISTLayout(dir, train, test); err != nil {
		t.Fatal(err)
	}
	// Load must pick up the exported files as "real" MNIST.
	ltr, lte, err := Load(MNIST, rng.New(5), LoadOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ltr.Name != "mnist" || ltr.Len() != 40 || lte.Len() != 20 {
		t.Fatalf("loaded %s %d/%d", ltr.Name, ltr.Len(), lte.Len())
	}
	for i := range ltr.Labels {
		if ltr.Labels[i] != train.Labels[i] {
			t.Fatal("training labels changed through export/load")
		}
	}
}

func TestExportCIFARLayoutLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := rng.New(6)
	cfg := DefaultCIFARLikeConfig()
	full, err := GenerateCIFARLike(src, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := full.Head(50)
	idx := make([]int, 10)
	for i := range idx {
		idx[i] = 50 + i
	}
	test := full.Subset(idx)
	if err := ExportCIFARLayout(dir, train, test); err != nil {
		t.Fatal(err)
	}
	ltr, lte, err := Load(CIFAR10, rng.New(7), LoadOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ltr.Name != "cifar10" || ltr.Len() != 50 || lte.Len() != 10 {
		t.Fatalf("loaded %s %d/%d", ltr.Name, ltr.Len(), lte.Len())
	}
}
