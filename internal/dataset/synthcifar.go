package dataset

import (
	"fmt"
	"math"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Synthetic CIFAR-like generator.
//
// Each class is a fixed high-frequency texture (a mixture of oriented
// sinusoids per color channel) plus a class-specific mean tint. Samples add
// strong per-sample texture clutter and pixel noise, so a single-layer
// network reaches only ~30-45% test accuracy and the discriminative pixel
// mass varies rapidly over the image plane — the two CIFAR-10 properties
// the paper's weaker Case-1/Case-2 results for CIFAR rest on.

// CIFARLikeConfig parameterizes the synthetic texture generator.
type CIFARLikeConfig struct {
	// Size is the image side length in pixels (CIFAR-10: 32).
	Size int
	// Channels is the number of color channels (CIFAR-10: 3).
	Channels int
	// ClassComponents is the number of sinusoid components per class
	// texture.
	ClassComponents int
	// ClutterComponents is the number of random per-sample sinusoids.
	ClutterComponents int
	// SignalAmp scales the class texture amplitude.
	SignalAmp float64
	// ClutterAmp scales the per-sample clutter amplitude.
	ClutterAmp float64
	// PixelNoise is the additive Gaussian noise sigma per pixel.
	PixelNoise float64
	// PhaseJitter is the per-sample Gaussian jitter (radians) on the
	// class texture phases; it models intra-class variation and is the
	// main lever lowering linear separability.
	PhaseJitter float64
}

// DefaultCIFARLikeConfig returns the configuration used by the
// experiments. The signal-to-clutter ratio is calibrated so a single-layer
// network lands in the paper's CIFAR-10 regime (~30-40% test accuracy).
func DefaultCIFARLikeConfig() CIFARLikeConfig {
	return CIFARLikeConfig{
		Size: 32, Channels: 3,
		ClassComponents: 6, ClutterComponents: 5,
		SignalAmp: 0.05, ClutterAmp: 0.26, PixelNoise: 0.10, PhaseJitter: 0.9,
	}
}

// textureComp is one oriented sinusoid of a class texture.
type textureComp struct {
	fx, fy, phase, amp float64
}

// classTexture holds a class's generative parameters: per-channel tints
// and sinusoid mixtures plus the spatial envelope. Samples render it with
// per-sample phase jitter.
type classTexture struct {
	tints  []float64       // per channel
	comps  [][]textureComp // per channel
	ex, ey float64         // envelope field frequency vector
	ephase float64
}

// signalEnvelope returns the spatial informativeness profile at unit
// coordinates (fx, fy): a center-weighted bump modulated by a smooth
// class-specific low-frequency field. Real CIFAR images concentrate
// class-discriminative mass unevenly (objects are centered); without this
// envelope every pixel column would be statistically identical and the
// paper's mean-sensitivity/1-norm correlation could not emerge.
func signalEnvelope(fx, fy, ex, ey, ephase float64) float64 {
	dx, dy := fx-0.5, fy-0.5
	center := 0.25 + 0.75*math.Exp(-(dx*dx+dy*dy)/(2*0.22*0.22))
	field := 0.6 + 0.4*math.Sin(2*math.Pi*(ex*fx+ey*fy)+ephase)
	return center * field
}

// buildClassTextures renders each class's fixed texture once; samples add
// clutter on top of it.
func buildClassTextures(src *rng.Source, numClasses int, cfg CIFARLikeConfig) []classTexture {
	textures := make([]classTexture, numClasses)
	// The spatial envelope and the per-component amplitude profile are
	// SHARED across classes, mirroring natural-image statistics where
	// per-pixel energy is class-invariant and classes differ in shape
	// (frequencies/phases). This keeps the crossbar's column 1-norms
	// informative about overall pixel importance (Table I) while limiting
	// how much class-discriminative signal raw power carries (Figure 5's
	// weak CIFAR result).
	shared := src.Split("cifar-shared")
	etheta := shared.Uniform(0, math.Pi)
	efreq := shared.Uniform(1, 2)
	ex, ey := efreq*math.Cos(etheta), efreq*math.Sin(etheta)
	ephase := shared.Uniform(0, 2*math.Pi)
	amps := make([]float64, cfg.ClassComponents)
	for k := range amps {
		amps[k] = cfg.SignalAmp * shared.Uniform(0.5, 1)
	}
	for c := 0; c < numClasses; c++ {
		cs := src.SplitN("cifar-class", c)
		tex := classTexture{
			tints:  make([]float64, cfg.Channels),
			comps:  make([][]textureComp, cfg.Channels),
			ex:     ex,
			ey:     ey,
			ephase: ephase,
		}
		for ch := 0; ch < cfg.Channels; ch++ {
			tex.tints[ch] = 0.5 + cs.Normal(0, 0.03)
			// Oriented sinusoid mixture, frequencies 3..9 cycles/image;
			// class identity lives in the frequencies and phases only.
			comps := make([]textureComp, cfg.ClassComponents)
			for k := range comps {
				freq := cs.Uniform(3, 9)
				theta := cs.Uniform(0, math.Pi)
				comps[k] = textureComp{
					fx:    freq * math.Cos(theta),
					fy:    freq * math.Sin(theta),
					phase: cs.Uniform(0, 2*math.Pi),
					amp:   amps[k],
				}
			}
			tex.comps[ch] = comps
		}
		textures[c] = tex
	}
	return textures
}

// envelopeGrid evaluates signalEnvelope once per pixel. The envelope field
// is shared by every class (buildClassTextures draws it from the shared
// stream), so one grid serves the whole dataset — the per-pixel Exp+Sin it
// hoists out of renderClassSignal used to be recomputed per sample per
// channel. Values are bit-identical: signalEnvelope is a pure function of
// the pixel coordinates and the shared field parameters.
func envelopeGrid(tex classTexture, cfg CIFARLikeConfig) []float64 {
	env := make([]float64, cfg.Size*cfg.Size)
	for py := 0; py < cfg.Size; py++ {
		fy := (float64(py) + 0.5) / float64(cfg.Size)
		for px := 0; px < cfg.Size; px++ {
			fx := (float64(px) + 0.5) / float64(cfg.Size)
			env[py*cfg.Size+px] = signalEnvelope(fx, fy, tex.ex, tex.ey, tex.ephase)
		}
	}
	return env
}

// renderClassSignal writes tint + envelope·texture into row for one
// channel, with per-sample phase offsets applied to the class components.
// env is the precomputed envelopeGrid.
func renderClassSignal(row []float64, tex classTexture, ch int, cfg CIFARLikeConfig, jitter, env []float64) {
	np := cfg.Size * cfg.Size
	base := ch * np
	comps := tex.comps[ch]
	for py := 0; py < cfg.Size; py++ {
		fy := (float64(py) + 0.5) / float64(cfg.Size)
		for px := 0; px < cfg.Size; px++ {
			fx := (float64(px) + 0.5) / float64(cfg.Size)
			var sig float64
			for k, c := range comps {
				sig += c.amp * math.Sin(2*math.Pi*(c.fx*fx+c.fy*fy)+c.phase+jitter[k])
			}
			row[base+py*cfg.Size+px] = tex.tints[ch] + env[py*cfg.Size+px]*sig
		}
	}
}

// GenerateCIFARLike produces n synthetic textured samples with balanced
// classes using the given configuration and random source.
func GenerateCIFARLike(src *rng.Source, n int, cfg CIFARLikeConfig) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample count %d must be positive", n)
	}
	if cfg.Size <= 0 || cfg.Channels <= 0 {
		return nil, fmt.Errorf("dataset: invalid geometry %dx%d", cfg.Size, cfg.Channels)
	}
	const numClasses = 10
	textures := buildClassTextures(src.Split("cifar-textures"), numClasses, cfg)
	// The envelope field is class-invariant (drawn from the shared
	// stream), so any texture's parameters produce the same grid.
	env := envelopeGrid(textures[0], cfg)
	np := cfg.Size * cfg.Size
	dim := np * cfg.Channels
	// Reusable per-sample clutter fields, one Size x Size plane per
	// clutter component (see the hoisting comment in the sample loop).
	clutterFields := make([][]float64, cfg.ClutterComponents)
	for k := range clutterFields {
		clutterFields[k] = make([]float64, np)
	}
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % numClasses
		labels[i] = label
		sample := src.SplitN("cifar-sample", i)
		row := x.Row(i)
		// Per-sample phase jitter on the class texture (intra-class
		// variation), shared across channels.
		jitter := make([]float64, cfg.ClassComponents)
		if cfg.PhaseJitter > 0 {
			for k := range jitter {
				jitter[k] = sample.Normal(0, cfg.PhaseJitter)
			}
		}
		for ch := 0; ch < cfg.Channels; ch++ {
			renderClassSignal(row, textures[label], ch, cfg, jitter, env)
		}
		// Per-sample clutter: random oriented sinusoids shared across
		// channels with channel-specific amplitude.
		type comp struct {
			fx, fy, phase float64
			amps          []float64
		}
		comps := make([]comp, cfg.ClutterComponents)
		for k := range comps {
			freq := sample.Uniform(2, 10)
			theta := sample.Uniform(0, math.Pi)
			amps := make([]float64, cfg.Channels)
			for ch := range amps {
				amps[ch] = cfg.ClutterAmp * sample.Uniform(0.3, 1)
			}
			comps[k] = comp{
				fx: freq * math.Cos(theta), fy: freq * math.Sin(theta),
				phase: sample.Uniform(0, 2*math.Pi), amps: amps,
			}
		}
		// The clutter sinusoid value at a pixel is channel-invariant (only
		// its amplitude varies per channel), so evaluate each component's
		// field once per sample instead of once per channel. The sine
		// arguments consume no randomness, so hoisting them leaves every
		// stream draw (phase jitter above, pixel noise below) in place;
		// values and accumulation order per pixel are unchanged.
		for k := range comps {
			field := clutterFields[k]
			c := comps[k]
			for py := 0; py < cfg.Size; py++ {
				fy := (float64(py) + 0.5) / float64(cfg.Size)
				for px := 0; px < cfg.Size; px++ {
					fx := (float64(px) + 0.5) / float64(cfg.Size)
					field[py*cfg.Size+px] = math.Sin(2*math.Pi*(c.fx*fx+c.fy*fy) + c.phase)
				}
			}
		}
		for ch := 0; ch < cfg.Channels; ch++ {
			base := ch * np
			for p := 0; p < np; p++ {
				v := row[base+p]
				for k := range comps {
					v += comps[k].amps[ch] * clutterFields[k][p]
				}
				if cfg.PixelNoise > 0 {
					v += sample.Normal(0, cfg.PixelNoise)
				}
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				row[base+p] = v
			}
		}
	}
	d := &Dataset{
		X: x, Labels: labels, NumClasses: numClasses,
		Width: cfg.Size, Height: cfg.Size, Channels: cfg.Channels, Name: "cifar-synth",
	}
	return d.Shuffled(src.Split("cifar-shuffle")), nil
}
