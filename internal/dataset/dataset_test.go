package dataset

import (
	"testing"

	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func makeTiny(t *testing.T) *Dataset {
	t.Helper()
	x, err := tensor.NewFromRows([][]float64{
		{0, 0.1, 0.2, 0.3},
		{0.4, 0.5, 0.6, 0.7},
		{0.8, 0.9, 1.0, 0.0},
		{0.2, 0.2, 0.2, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &Dataset{X: x, Labels: []int{0, 1, 0, 1}, NumClasses: 2, Width: 2, Height: 2, Channels: 1, Name: "tiny"}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Dataset)
	}{
		{"nil matrix", func(d *Dataset) { d.X = nil }},
		{"label count", func(d *Dataset) { d.Labels = d.Labels[:2] }},
		{"geometry", func(d *Dataset) { d.Width = 3 }},
		{"class count", func(d *Dataset) { d.NumClasses = 0 }},
		{"label range", func(d *Dataset) { d.Labels[0] = 7 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := makeTiny(t)
			tt.mutate(d)
			if err := d.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestOneHot(t *testing.T) {
	d := makeTiny(t)
	oh := d.OneHot()
	if oh.Rows() != 4 || oh.Cols() != 2 {
		t.Fatalf("shape %dx%d", oh.Rows(), oh.Cols())
	}
	for i, l := range d.Labels {
		for c := 0; c < 2; c++ {
			want := 0.0
			if c == l {
				want = 1
			}
			if oh.At(i, c) != want {
				t.Fatalf("one-hot (%d,%d) = %v", i, c, oh.At(i, c))
			}
		}
	}
}

func TestSubsetCopies(t *testing.T) {
	d := makeTiny(t)
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Labels[0] != 0 {
		t.Fatalf("subset %+v", s.Labels)
	}
	s.X.Set(0, 0, 99)
	if d.X.At(2, 0) == 99 {
		t.Fatal("Subset must copy data")
	}
}

func TestSplit(t *testing.T) {
	d := makeTiny(t)
	tr, te, err := d.Split(rng.New(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len()+te.Len() != d.Len() {
		t.Fatalf("split sizes %d + %d != %d", tr.Len(), te.Len(), d.Len())
	}
	if _, _, err := d.Split(rng.New(1), 0); err == nil {
		t.Fatal("frac 0 must error")
	}
	if _, _, err := (&Dataset{X: tensor.New(0, 4), NumClasses: 2, Width: 2, Height: 2, Channels: 1}).Split(rng.New(1), 0.5); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestSampleNAndHead(t *testing.T) {
	d := makeTiny(t)
	s := d.SampleN(rng.New(2), 3)
	if s.Len() != 3 {
		t.Fatalf("SampleN len %d", s.Len())
	}
	h := d.Head(2)
	if h.Len() != 2 || h.Labels[0] != d.Labels[0] {
		t.Fatal("Head must preserve order")
	}
	if d.Head(100).Len() != d.Len() {
		t.Fatal("Head beyond length must clamp")
	}
}

func TestClassCounts(t *testing.T) {
	d := makeTiny(t)
	c := d.ClassCounts()
	if c[0] != 2 || c[1] != 2 {
		t.Fatalf("counts %v", c)
	}
}

func TestGenerateMNISTLike(t *testing.T) {
	d, err := GenerateMNISTLike(rng.New(1), 100, DefaultMNISTLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 784 || d.NumClasses != 10 {
		t.Fatalf("geometry dim=%d classes=%d", d.Dim(), d.NumClasses)
	}
	// Balanced classes.
	for c, n := range d.ClassCounts() {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, n)
		}
	}
	// Pixel range respected.
	for _, v := range d.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	// Images must contain real signal (strokes), not be blank.
	var bright int
	for _, v := range d.X.Row(0) {
		if v > 0.5 {
			bright++
		}
	}
	if bright < 5 {
		t.Fatal("rendered digit has almost no bright pixels")
	}
}

func TestGenerateMNISTLikeDeterministic(t *testing.T) {
	a, err := GenerateMNISTLike(rng.New(7), 20, DefaultMNISTLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMNISTLike(rng.New(7), 20, DefaultMNISTLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must reproduce identical data")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels must be reproducible")
		}
	}
}

func TestGenerateMNISTLikeErrors(t *testing.T) {
	if _, err := GenerateMNISTLike(rng.New(1), 0, DefaultMNISTLikeConfig()); err == nil {
		t.Fatal("zero samples must error")
	}
	bad := DefaultMNISTLikeConfig()
	bad.Size = 0
	if _, err := GenerateMNISTLike(rng.New(1), 10, bad); err == nil {
		t.Fatal("zero size must error")
	}
}

func TestGenerateCIFARLike(t *testing.T) {
	d, err := GenerateCIFARLike(rng.New(1), 50, DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 3072 || d.Channels != 3 {
		t.Fatalf("geometry dim=%d channels=%d", d.Dim(), d.Channels)
	}
	for _, v := range d.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
}

func TestGenerateCIFARLikeDeterministic(t *testing.T) {
	a, err := GenerateCIFARLike(rng.New(3), 20, DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCIFARLike(rng.New(3), 20, DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must reproduce identical data")
	}
}

func TestLoadSynthetic(t *testing.T) {
	for _, kind := range []Kind{MNIST, CIFAR10} {
		tr, te, err := Load(kind, rng.New(5), LoadOptions{TrainN: 60, TestN: 20})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if tr.Len() != 60 || te.Len() != 20 {
			t.Fatalf("%v: sizes %d/%d", kind, tr.Len(), te.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := te.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Load(Kind(99), rng.New(1), LoadOptions{}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestKindString(t *testing.T) {
	if MNIST.String() != "mnist" || CIFAR10.String() != "cifar10" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestFirstChannel(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := FirstChannel(v, 2, 2)
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("FirstChannel = %v", got)
	}
	// Must be a copy.
	got[0] = 99
	if v[0] == 99 {
		t.Fatal("FirstChannel must copy")
	}
}
