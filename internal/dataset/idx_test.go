package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"xbarsec/internal/rng"
)

// buildIDXImages serializes images in the MNIST IDX3 format.
func buildIDXImages(images [][]byte, rows, cols int) []byte {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.BigEndian, uint32(idxMagicImages))
	_ = binary.Write(&buf, binary.BigEndian, uint32(len(images)))
	_ = binary.Write(&buf, binary.BigEndian, uint32(rows))
	_ = binary.Write(&buf, binary.BigEndian, uint32(cols))
	for _, img := range images {
		buf.Write(img)
	}
	return buf.Bytes()
}

func buildIDXLabels(labels []byte) []byte {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.BigEndian, uint32(idxMagicLabels))
	_ = binary.Write(&buf, binary.BigEndian, uint32(len(labels)))
	buf.Write(labels)
	return buf.Bytes()
}

func TestReadIDXImagesRoundTrip(t *testing.T) {
	img1 := []byte{0, 128, 255, 64}
	img2 := []byte{10, 20, 30, 40}
	raw := buildIDXImages([][]byte{img1, img2}, 2, 2)
	m, rows, cols, err := ReadIDXImages(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 || cols != 2 || m.Rows() != 2 {
		t.Fatalf("geometry %dx%d n=%d", rows, cols, m.Rows())
	}
	if m.At(0, 2) != 1.0 {
		t.Fatalf("255 should scale to 1, got %v", m.At(0, 2))
	}
	if m.At(1, 0) != 10.0/255 {
		t.Fatalf("pixel scaling wrong: %v", m.At(1, 0))
	}
}

func TestReadIDXImagesBadMagic(t *testing.T) {
	raw := buildIDXImages([][]byte{{1}}, 1, 1)
	raw[3] = 0x99
	if _, _, _, err := ReadIDXImages(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestReadIDXImagesTruncated(t *testing.T) {
	raw := buildIDXImages([][]byte{{1, 2, 3, 4}}, 2, 2)
	if _, _, _, err := ReadIDXImages(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated file must error")
	}
}

func TestReadIDXLabelsRoundTrip(t *testing.T) {
	raw := buildIDXLabels([]byte{3, 1, 4, 1, 5})
	labels, err := ReadIDXLabels(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 4, 1, 5}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
}

func TestReadIDXLabelsBadMagic(t *testing.T) {
	raw := buildIDXLabels([]byte{1})
	raw[3] = 0x42
	if _, err := ReadIDXLabels(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic must error")
	}
}

func writeFile(t *testing.T, dir, name string, data []byte, gz bool) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if gz {
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadMNISTFilesIncludingGzip(t *testing.T) {
	dir := t.TempDir()
	images := buildIDXImages([][]byte{{0, 255, 0, 255}, {255, 0, 255, 0}}, 2, 2)
	labels := buildIDXLabels([]byte{7, 3})
	ip := writeFile(t, dir, "imgs.gz", images, true)
	lp := writeFile(t, dir, "labels", labels, false)
	d, err := LoadMNISTFiles(ip, lp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Labels[0] != 7 || d.Labels[1] != 3 {
		t.Fatalf("loaded %+v", d.Labels)
	}
}

func TestLoadMNISTFilesCountMismatch(t *testing.T) {
	dir := t.TempDir()
	ip := writeFile(t, dir, "imgs", buildIDXImages([][]byte{{1, 2, 3, 4}}, 2, 2), false)
	lp := writeFile(t, dir, "labels", buildIDXLabels([]byte{1, 2}), false)
	if _, err := LoadMNISTFiles(ip, lp); err == nil {
		t.Fatal("count mismatch must error")
	}
}

func buildCIFARBatch(records []struct {
	label byte
	fill  byte
}) []byte {
	var buf bytes.Buffer
	for _, r := range records {
		buf.WriteByte(r.label)
		px := bytes.Repeat([]byte{r.fill}, cifarRecordSize-1)
		buf.Write(px)
	}
	return buf.Bytes()
}

func TestReadCIFARBatch(t *testing.T) {
	raw := buildCIFARBatch([]struct {
		label byte
		fill  byte
	}{{3, 128}, {9, 255}})
	x, labels, err := ReadCIFARBatch(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 2 || labels[0] != 3 || labels[1] != 9 {
		t.Fatalf("rows=%d labels=%v", x.Rows(), labels)
	}
	if x.At(1, 0) != 1.0 {
		t.Fatalf("pixel scale: %v", x.At(1, 0))
	}
}

func TestReadCIFARBatchBadLabel(t *testing.T) {
	raw := buildCIFARBatch([]struct {
		label byte
		fill  byte
	}{{10, 0}})
	if _, _, err := ReadCIFARBatch(bytes.NewReader(raw)); err == nil {
		t.Fatal("label > 9 must error")
	}
}

func TestReadCIFARBatchEmpty(t *testing.T) {
	if _, _, err := ReadCIFARBatch(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestLoadCIFARFilesMerge(t *testing.T) {
	dir := t.TempDir()
	b1 := writeFile(t, dir, "b1.bin", buildCIFARBatch([]struct {
		label byte
		fill  byte
	}{{0, 1}, {1, 2}}), false)
	b2 := writeFile(t, dir, "b2.bin", buildCIFARBatch([]struct {
		label byte
		fill  byte
	}{{2, 3}}), false)
	d, err := LoadCIFARFiles(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Labels[2] != 2 {
		t.Fatalf("merged %+v", d.Labels)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPrefersRealMNISTFiles(t *testing.T) {
	dir := t.TempDir()
	images := buildIDXImages([][]byte{bytes.Repeat([]byte{9}, 784)}, 28, 28)
	labels := buildIDXLabels([]byte{5})
	writeFile(t, dir, "train-images-idx3-ubyte", images, false)
	writeFile(t, dir, "train-labels-idx1-ubyte", labels, false)
	writeFile(t, dir, "t10k-images-idx3-ubyte", images, false)
	writeFile(t, dir, "t10k-labels-idx1-ubyte", labels, false)
	tr, te, err := Load(MNIST, rng.New(1), LoadOptions{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mnist" || te.Name != "mnist" {
		t.Fatalf("expected real files to be used, got %q/%q", tr.Name, te.Name)
	}
	if tr.Len() != 1 || tr.Labels[0] != 5 {
		t.Fatalf("unexpected content: %+v", tr.Labels)
	}
}
