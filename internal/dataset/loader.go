package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"xbarsec/internal/rng"
)

// Kind selects which dataset family an experiment runs on.
type Kind int

const (
	// MNIST selects the 28x28 grayscale digit family.
	MNIST Kind = iota + 1
	// CIFAR10 selects the 32x32x3 texture family.
	CIFAR10
)

// String returns the lower-case family name.
func (k Kind) String() string {
	switch k {
	case MNIST:
		return "mnist"
	case CIFAR10:
		return "cifar10"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String, for CLI flags and JSON wire
// formats.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "mnist":
		return MNIST, nil
	case "cifar10":
		return CIFAR10, nil
	default:
		return 0, fmt.Errorf("dataset: unknown kind %q (want mnist or cifar10)", s)
	}
}

// MarshalJSON emits the family name, the form experiment results carry
// on the wire.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the family name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// LoadOptions controls Load.
type LoadOptions struct {
	// DataDir is searched for real distribution files. Leave empty to skip
	// the search and always synthesize.
	DataDir string
	// TrainN and TestN are the synthetic sample counts used when real
	// files are absent.
	TrainN, TestN int
}

// Load returns train and test sets for the requested family. When the real
// distribution files exist under opts.DataDir they are parsed; otherwise
// the synthetic generator produces datasets with the same geometry and the
// statistics documented in DESIGN.md §2.
func Load(kind Kind, src *rng.Source, opts LoadOptions) (train, test *Dataset, err error) {
	if opts.TrainN <= 0 {
		opts.TrainN = 2000
	}
	if opts.TestN <= 0 {
		opts.TestN = 500
	}
	switch kind {
	case MNIST:
		if opts.DataDir != "" {
			if tr, te, err := tryLoadMNIST(opts.DataDir); err == nil {
				return tr, te, nil
			}
		}
		cfg := DefaultMNISTLikeConfig()
		train, err = GenerateMNISTLike(src.Split("train"), opts.TrainN, cfg)
		if err != nil {
			return nil, nil, err
		}
		test, err = GenerateMNISTLike(src.Split("test"), opts.TestN, cfg)
		return train, test, err
	case CIFAR10:
		if opts.DataDir != "" {
			if tr, te, err := tryLoadCIFAR(opts.DataDir); err == nil {
				return tr, te, nil
			}
		}
		cfg := DefaultCIFARLikeConfig()
		// The class textures must be shared between train and test, so use
		// a common texture stream but disjoint sample streams.
		train, err = GenerateCIFARLike(src.Split("cifar"), opts.TrainN+opts.TestN, cfg)
		if err != nil {
			return nil, nil, err
		}
		full := train
		train = full.Head(opts.TrainN)
		tail := make([]int, 0, opts.TestN)
		for i := opts.TrainN; i < full.Len() && len(tail) < opts.TestN; i++ {
			tail = append(tail, i)
		}
		test = full.Subset(tail)
		return train, test, nil
	default:
		return nil, nil, fmt.Errorf("dataset: unknown kind %v", kind)
	}
}

func firstExisting(dir string, names ...string) (string, bool) {
	for _, n := range names {
		p := filepath.Join(dir, n)
		if _, err := os.Stat(p); err == nil {
			return p, true
		}
	}
	return "", false
}

func tryLoadMNIST(dir string) (train, test *Dataset, err error) {
	tri, ok1 := firstExisting(dir, "train-images-idx3-ubyte", "train-images-idx3-ubyte.gz")
	trl, ok2 := firstExisting(dir, "train-labels-idx1-ubyte", "train-labels-idx1-ubyte.gz")
	tei, ok3 := firstExisting(dir, "t10k-images-idx3-ubyte", "t10k-images-idx3-ubyte.gz")
	tel, ok4 := firstExisting(dir, "t10k-labels-idx1-ubyte", "t10k-labels-idx1-ubyte.gz")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, nil, os.ErrNotExist
	}
	if train, err = LoadMNISTFiles(tri, trl); err != nil {
		return nil, nil, err
	}
	if test, err = LoadMNISTFiles(tei, tel); err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

func tryLoadCIFAR(dir string) (train, test *Dataset, err error) {
	var batches []string
	for i := 1; i <= 5; i++ {
		p, ok := firstExisting(dir, fmt.Sprintf("data_batch_%d.bin", i))
		if !ok {
			return nil, nil, os.ErrNotExist
		}
		batches = append(batches, p)
	}
	tb, ok := firstExisting(dir, "test_batch.bin")
	if !ok {
		return nil, nil, os.ErrNotExist
	}
	if train, err = LoadCIFARFiles(batches...); err != nil {
		return nil, nil, err
	}
	if test, err = LoadCIFARFiles(tb); err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
