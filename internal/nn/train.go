package nn

import (
	"fmt"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// TrainConfig controls the mini-batch SGD trainer.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size; values <= 0 default to 32.
	BatchSize int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient in [0, 1).
	Momentum float64
	// WeightDecay is the L2 penalty coefficient (0 disables).
	WeightDecay float64
	// ZeroInit starts W at zero instead of Xavier. For single-layer
	// (convex) problems this removes init noise from the trained weights
	// — there is no symmetry to break — giving cleaner column-norm
	// structure; it emulates fully-converged training.
	ZeroInit bool
}

// DefaultTrainConfig returns the settings used by the experiments, sized
// for the single-layer networks of the paper.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9}
}

// TrainResult reports the trajectory of a training run.
type TrainResult struct {
	// EpochLosses holds the mean training loss after each epoch.
	EpochLosses []float64
}

// Train fits the network to ds with one-hot targets using mini-batch SGD.
// The shuffle order is drawn from src, so training is fully deterministic
// given (network init, dataset, seed).
func Train(n *Network, ds *dataset.Dataset, cfg TrainConfig, src *rng.Source) (*TrainResult, error) {
	if ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if ds.Dim() != n.Inputs() {
		return nil, fmt.Errorf("nn: dataset dim %d != network inputs %d", ds.Dim(), n.Inputs())
	}
	if ds.NumClasses != n.Outputs() {
		return nil, fmt.Errorf("nn: dataset classes %d != network outputs %d", ds.NumClasses, n.Outputs())
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: epochs %d must be positive", cfg.Epochs)
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("nn: learning rate %v must be positive", cfg.LearningRate)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v out of [0,1)", cfg.Momentum)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	targets := ds.OneHot()
	velocity := tensor.New(n.Outputs(), n.Inputs())
	grad := tensor.New(n.Outputs(), n.Inputs())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			grad.Fill(0)
			for _, idx := range perm[start:end] {
				u := ds.X.Row(idx)
				t := targets.Row(idx)
				delta, y := n.outputDelta(u, t)
				epochLoss += lossValue(n.Crit, y, t)
				for i, d := range delta {
					if d == 0 {
						continue
					}
					row := grad.Row(i)
					for j, uj := range u {
						row[j] += d * uj
					}
				}
			}
			scale := 1 / float64(end-start)
			// v ← µv − η(∇ + wd·W); W ← W + v
			velocity.Scale(cfg.Momentum)
			velocity.AddScaled(-cfg.LearningRate*scale, grad)
			if cfg.WeightDecay > 0 {
				velocity.AddScaled(-cfg.LearningRate*cfg.WeightDecay, n.W)
			}
			n.W.AddMatrix(velocity)
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res, nil
}

// TrainNew builds, initializes and trains a network for ds in one call.
func TrainNew(ds *dataset.Dataset, act Activation, crit Loss, cfg TrainConfig, src *rng.Source) (*Network, *TrainResult, error) {
	n, err := NewNetwork(ds.NumClasses, ds.Dim(), act, crit)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.ZeroInit {
		n.InitXavier(src.Split("init"))
	}
	res, err := Train(n, ds, cfg, src.Split("sgd"))
	if err != nil {
		return nil, nil, err
	}
	return n, res, nil
}
