package nn

import (
	"fmt"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// TrainConfig controls the mini-batch SGD trainer.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size; values <= 0 default to 32.
	BatchSize int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient in [0, 1).
	Momentum float64
	// WeightDecay is the L2 penalty coefficient (0 disables).
	WeightDecay float64
	// ZeroInit starts W at zero instead of Xavier. For single-layer
	// (convex) problems this removes init noise from the trained weights
	// — there is no symmetry to break — giving cleaner column-norm
	// structure; it emulates fully-converged training.
	ZeroInit bool
}

// DefaultTrainConfig returns the settings used by the experiments, sized
// for the single-layer networks of the paper.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9}
}

// TrainResult reports the trajectory of a training run.
type TrainResult struct {
	// EpochLosses holds the mean training loss after each epoch.
	EpochLosses []float64
}

// batchViews is one set of mini-batch workspaces: gathered inputs u,
// gathered targets t, pre-activations (turned into outputs in place) s,
// and output deltas d, all with `rows` rows.
type batchViews struct {
	rows       int
	u, t, s, d *tensor.Matrix
}

// batchWorkspace owns the reusable buffers for batched forward/backprop.
// An epoch sees at most two mini-batch sizes — the full batch and the
// final remainder — so both view sets are materialized up front (the
// remainder views alias the full buffers) and the steady-state training
// step allocates nothing.
type batchWorkspace struct {
	full batchViews
	rem  batchViews
}

// newBatchWorkspace sizes workspaces for mini-batches of `batch` rows out
// of `total` samples, with nin inputs and nout outputs.
func newBatchWorkspace(batch, total, nin, nout int) *batchWorkspace {
	if batch > total {
		batch = total
	}
	full := batchViews{
		rows: batch,
		u:    tensor.New(batch, nin),
		t:    tensor.New(batch, nout),
		s:    tensor.New(batch, nout),
		d:    tensor.New(batch, nout),
	}
	ws := &batchWorkspace{full: full}
	if rem := total % batch; rem != 0 {
		ws.rem = batchViews{
			rows: rem,
			u:    full.u.RowSpan(0, rem),
			t:    full.t.RowSpan(0, rem),
			s:    full.s.RowSpan(0, rem),
			d:    full.d.RowSpan(0, rem),
		}
	}
	return ws
}

// views returns the workspace views for a mini-batch of `rows` rows.
func (w *batchWorkspace) views(rows int) *batchViews {
	if rows == w.full.rows {
		return &w.full
	}
	if rows == w.rem.rows {
		return &w.rem
	}
	panic(fmt.Sprintf("nn: no workspace for batch of %d rows", rows))
}

// batchStep runs one batched forward/backprop step over the samples
// x[idxs], writing the summed weight gradient into grad (overwritten) and
// adding each sample's loss to *epochLoss in index order. The mini-batch
// is forwarded as one matrix-matrix product and the gradient sum is
// contracted over the batch in sample-index order (see the tensor kernel
// determinism contract); per-sample losses join the epoch accumulator
// directly, never a per-batch subtotal, preserving the flat summation
// chain — so the result is bit-identical to running the per-sample loop
// over idxs in order.
func (n *Network) batchStep(x, targets *tensor.Matrix, idxs []int, v *batchViews, grad *tensor.Matrix, epochLoss *float64) {
	for bi, idx := range idxs {
		v.u.CopyRow(bi, x, idx)
		v.t.CopyRow(bi, targets, idx)
	}
	tensor.GemmTB(v.s, v.u, n.W)
	for bi := range idxs {
		*epochLoss += outputDeltaInto(n.Act, n.Crit, v.s.Row(bi), v.t.Row(bi), v.d.Row(bi))
	}
	tensor.GemmTA(grad, v.d, v.u)
}

// Train fits the network to ds with one-hot targets using mini-batch SGD.
// The shuffle order is drawn from src, so training is fully deterministic
// given (network init, dataset, seed). Mini-batches run through the
// batched GEMM kernels with reused workspaces — bit-identical to the
// per-sample reference loop (pinned by TestTrainMatchesPerSampleReference)
// and allocation-free per step.
func Train(n *Network, ds *dataset.Dataset, cfg TrainConfig, src *rng.Source) (*TrainResult, error) {
	if ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if ds.Dim() != n.Inputs() {
		return nil, fmt.Errorf("nn: dataset dim %d != network inputs %d", ds.Dim(), n.Inputs())
	}
	if ds.NumClasses != n.Outputs() {
		return nil, fmt.Errorf("nn: dataset classes %d != network outputs %d", ds.NumClasses, n.Outputs())
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: epochs %d must be positive", cfg.Epochs)
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("nn: learning rate %v must be positive", cfg.LearningRate)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v out of [0,1)", cfg.Momentum)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	targets := ds.OneHot()
	velocity := tensor.New(n.Outputs(), n.Inputs())
	grad := tensor.New(n.Outputs(), n.Inputs())
	ws := newBatchWorkspace(batch, ds.Len(), n.Inputs(), n.Outputs())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			idxs := perm[start:end]
			n.batchStep(ds.X, targets, idxs, ws.views(len(idxs)), grad, &epochLoss)
			scale := 1 / float64(end-start)
			// v ← µv − η(∇ + wd·W); W ← W + v, in one fused sweep.
			tensor.SGDMomentumStep(n.W, velocity, grad, cfg.Momentum,
				-cfg.LearningRate*scale, cfg.WeightDecay > 0, -cfg.LearningRate*cfg.WeightDecay)
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res, nil
}

// TrainNew builds, initializes and trains a network for ds in one call.
func TrainNew(ds *dataset.Dataset, act Activation, crit Loss, cfg TrainConfig, src *rng.Source) (*Network, *TrainResult, error) {
	n, err := NewNetwork(ds.NumClasses, ds.Dim(), act, crit)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.ZeroInit {
		n.InitXavier(src.Split("init"))
	}
	res, err := Train(n, ds, cfg, src.Split("sgd"))
	if err != nil {
		return nil, nil, err
	}
	return n, res, nil
}
