package nn

import (
	"fmt"
	"math"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// MLP is a small multi-layer perceptron: the paper's conclusion names
// multi-layer networks as the key future-work direction for power-channel
// attacks, and this type powers the corresponding extension experiment
// (ablation A4). Hidden layers use a fixed element-wise activation;
// the output head follows the same activation/loss pairing rules as
// Network. On crossbar hardware each layer occupies its own array, so the
// power side channel observes the sum of per-layer currents; see
// experiment.RunDepthAblation.
type MLP struct {
	// Layers holds the weight matrices, layer l mapping activations of
	// width Layers[l].Cols() to Layers[l].Rows().
	Layers []*tensor.Matrix
	// Hidden is the hidden-layer activation (ActSigmoid or ActReLU).
	Hidden Activation
	// Out and Crit describe the output head.
	Out  Activation
	Crit Loss
}

// NewMLP builds a zero-initialized MLP with the given layer widths, e.g.
// widths = [784, 100, 10] for one hidden layer of 100 units.
func NewMLP(widths []int, hidden, out Activation, crit Loss) (*MLP, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least 2 widths, got %d", len(widths))
	}
	for i, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("nn: MLP width %d at position %d", w, i)
		}
	}
	if hidden != ActSigmoid && hidden != ActReLU {
		return nil, fmt.Errorf("nn: hidden activation %v: %w", hidden, ErrBadConfig)
	}
	// Reuse the head validation from NewNetwork.
	if _, err := NewNetwork(widths[len(widths)-1], widths[len(widths)-2], out, crit); err != nil {
		return nil, err
	}
	layers := make([]*tensor.Matrix, len(widths)-1)
	for l := range layers {
		layers[l] = tensor.New(widths[l+1], widths[l])
	}
	return &MLP{Layers: layers, Hidden: hidden, Out: out, Crit: crit}, nil
}

// InitXavier fills every layer with Glorot-uniform values.
func (m *MLP) InitXavier(src *rng.Source) {
	for l, w := range m.Layers {
		limit := xavierLimit(w.Rows(), w.Cols())
		layerSrc := src.SplitN("layer", l)
		d := w.Data()
		for i := range d {
			d[i] = layerSrc.Uniform(-limit, limit)
		}
	}
}

func xavierLimit(rows, cols int) float64 {
	return math.Sqrt(6 / float64(rows+cols))
}

// Inputs returns the input dimensionality.
func (m *MLP) Inputs() int { return m.Layers[0].Cols() }

// Outputs returns the output dimensionality.
func (m *MLP) Outputs() int { return m.Layers[len(m.Layers)-1].Rows() }

// forwardPass returns the pre-activations and activations of every layer.
// acts[0] is the input; acts[l+1] = f_l(Layers[l]·acts[l]).
func (m *MLP) forwardPass(u []float64) (pre [][]float64, acts [][]float64) {
	acts = make([][]float64, len(m.Layers)+1)
	pre = make([][]float64, len(m.Layers))
	acts[0] = u
	for l, w := range m.Layers {
		s := w.MatVec(acts[l])
		pre[l] = s
		act := m.Hidden
		if l == len(m.Layers)-1 {
			act = m.Out
		}
		acts[l+1] = applyActivation(act, tensor.CloneVec(s))
	}
	return pre, acts
}

// Forward returns the network output for input u.
func (m *MLP) Forward(u []float64) []float64 {
	_, acts := m.forwardPass(u)
	return acts[len(acts)-1]
}

// Predict returns the argmax class for input u.
func (m *MLP) Predict(u []float64) int { return tensor.ArgMax(m.Forward(u)) }

// LossValue returns the loss for input u and target t.
func (m *MLP) LossValue(u, target []float64) float64 {
	return lossValue(m.Crit, m.Forward(u), target)
}

// backprop returns the per-layer weight gradients and the loss gradient
// with respect to the input.
func (m *MLP) backprop(u, target []float64) (grads []*tensor.Matrix, inputGrad []float64) {
	pre, acts := m.forwardPass(u)
	last := len(m.Layers) - 1
	// Output delta, as in Network.outputDelta.
	y := acts[last+1]
	var delta []float64
	switch {
	case m.Out == ActSoftmax && m.Crit == LossCrossEntropy:
		delta = tensor.SubVec(y, target)
	case m.Out == ActLinear && m.Crit == LossMSE:
		delta = tensor.ScaleVec(2/float64(len(y)), tensor.SubVec(y, target))
	case m.Out == ActSigmoid && m.Crit == LossMSE:
		delta = make([]float64, len(y))
		for i := range y {
			delta[i] = 2 / float64(len(y)) * (y[i] - target[i]) * y[i] * (1 - y[i])
		}
	case m.Out == ActReLU && m.Crit == LossMSE:
		delta = make([]float64, len(y))
		for i := range y {
			if pre[last][i] > 0 {
				delta[i] = 2 / float64(len(y)) * (y[i] - target[i])
			}
		}
	default:
		panic(fmt.Sprintf("nn: unsupported MLP head %v/%v", m.Out, m.Crit))
	}
	grads = make([]*tensor.Matrix, len(m.Layers))
	for l := last; l >= 0; l-- {
		g := tensor.New(m.Layers[l].Rows(), m.Layers[l].Cols())
		in := acts[l]
		for i, d := range delta {
			if d == 0 {
				continue
			}
			row := g.Row(i)
			for j, aj := range in {
				row[j] = d * aj
			}
		}
		grads[l] = g
		// Propagate delta to the previous layer.
		back := m.Layers[l].VecMat(delta)
		if l > 0 {
			switch m.Hidden {
			case ActSigmoid:
				for j := range back {
					a := acts[l][j]
					back[j] *= a * (1 - a)
				}
			case ActReLU:
				for j := range back {
					if pre[l-1][j] <= 0 {
						back[j] = 0
					}
				}
			}
		}
		delta = back
	}
	return grads, delta
}

// InputGradient returns ∂L/∂u, making MLP usable as an attack gradient
// source.
func (m *MLP) InputGradient(u, target []float64) []float64 {
	_, g := m.backprop(u, target)
	return g
}

// Accuracy returns top-1 accuracy on ds.
func (m *MLP) Accuracy(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		if m.Predict(ds.X.Row(i)) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// mlpViews is one set of mini-batch workspaces for an MLP: gathered
// targets, per-layer activation matrices (acts[0] holds the gathered
// inputs), per-layer pre-activations, and per-layer deltas.
type mlpViews struct {
	rows   int
	t      *tensor.Matrix
	acts   []*tensor.Matrix // len(Layers)+1
	pre    []*tensor.Matrix // len(Layers)
	deltas []*tensor.Matrix // len(Layers)
}

// mlpWorkspace owns the reusable buffers for batched MLP training; as in
// batchWorkspace, the remainder views alias the full-batch buffers.
type mlpWorkspace struct {
	full mlpViews
	rem  mlpViews
}

func newMLPWorkspace(m *MLP, batch, total int) *mlpWorkspace {
	if batch > total {
		batch = total
	}
	build := func(rows int, from *mlpViews) mlpViews {
		v := mlpViews{
			rows:   rows,
			acts:   make([]*tensor.Matrix, len(m.Layers)+1),
			pre:    make([]*tensor.Matrix, len(m.Layers)),
			deltas: make([]*tensor.Matrix, len(m.Layers)),
		}
		if from == nil {
			v.t = tensor.New(rows, m.Outputs())
			v.acts[0] = tensor.New(rows, m.Inputs())
			for l, w := range m.Layers {
				v.acts[l+1] = tensor.New(rows, w.Rows())
				v.pre[l] = tensor.New(rows, w.Rows())
				v.deltas[l] = tensor.New(rows, w.Rows())
			}
			return v
		}
		v.t = from.t.RowSpan(0, rows)
		v.acts[0] = from.acts[0].RowSpan(0, rows)
		for l := range m.Layers {
			v.acts[l+1] = from.acts[l+1].RowSpan(0, rows)
			v.pre[l] = from.pre[l].RowSpan(0, rows)
			v.deltas[l] = from.deltas[l].RowSpan(0, rows)
		}
		return v
	}
	ws := &mlpWorkspace{full: build(batch, nil)}
	if rem := total % batch; rem != 0 {
		ws.rem = build(rem, &ws.full)
	}
	return ws
}

func (w *mlpWorkspace) views(rows int) *mlpViews {
	if rows == w.full.rows {
		return &w.full
	}
	if rows == w.rem.rows {
		return &w.rem
	}
	panic(fmt.Sprintf("nn: no MLP workspace for batch of %d rows", rows))
}

// batchStep runs one batched forward/backprop step over x[idxs], writing
// each layer's summed weight gradient into sums[l] (overwritten) and
// adding each sample's loss to *epochLoss in index order (directly, to
// preserve the flat per-sample summation chain). Each layer forwards and
// back-propagates the whole mini-batch as one matrix-matrix product;
// gradient sums contract over the batch in sample-index order, so results
// are bit-identical to the per-sample loop — and the loss falls out of
// the forward activations, removing the per-sample second forward pass
// the old loop paid for calling LossValue.
func (m *MLP) batchStep(x, targets *tensor.Matrix, idxs []int, v *mlpViews, sums []*tensor.Matrix, epochLoss *float64) {
	for bi, idx := range idxs {
		v.acts[0].CopyRow(bi, x, idx)
		v.t.CopyRow(bi, targets, idx)
	}
	last := len(m.Layers) - 1
	for l, w := range m.Layers {
		tensor.GemmTB(v.pre[l], v.acts[l], w)
		act := m.Hidden
		if l == last {
			act = m.Out
		}
		for bi := range idxs {
			dst := v.acts[l+1].Row(bi)
			copy(dst, v.pre[l].Row(bi))
			applyActivation(act, dst)
		}
	}
	for bi := range idxs {
		*epochLoss += outputDeltaFromY(m.Out, m.Crit, v.acts[last+1].Row(bi), v.t.Row(bi), v.deltas[last].Row(bi))
	}
	for l := last; l >= 0; l-- {
		tensor.GemmTA(sums[l], v.deltas[l], v.acts[l])
		if l == 0 {
			continue
		}
		// Propagate the batch of deltas to the previous layer and apply
		// the hidden activation derivative row by row.
		tensor.Gemm(v.deltas[l-1], v.deltas[l], m.Layers[l])
		for bi := range idxs {
			back := v.deltas[l-1].Row(bi)
			switch m.Hidden {
			case ActSigmoid:
				a := v.acts[l].Row(bi)
				for j := range back {
					back[j] *= a[j] * (1 - a[j])
				}
			case ActReLU:
				p := v.pre[l-1].Row(bi)
				for j := range back {
					if p[j] <= 0 {
						back[j] = 0
					}
				}
			}
		}
	}
}

// TrainMLP fits the MLP with mini-batch SGD; the configuration semantics
// match Train. Mini-batches run layer-batched through the GEMM kernels
// with reused workspaces, bit-identical to the per-sample reference loop
// (pinned by TestTrainMLPMatchesPerSampleReference).
func TrainMLP(m *MLP, ds *dataset.Dataset, cfg TrainConfig, src *rng.Source) (*TrainResult, error) {
	if ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if ds.Dim() != m.Inputs() {
		return nil, fmt.Errorf("nn: dataset dim %d != MLP inputs %d", ds.Dim(), m.Inputs())
	}
	if ds.NumClasses != m.Outputs() {
		return nil, fmt.Errorf("nn: dataset classes %d != MLP outputs %d", ds.NumClasses, m.Outputs())
	}
	if cfg.Epochs <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("nn: invalid MLP training config %+v", cfg)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v out of [0,1)", cfg.Momentum)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	targets := ds.OneHot()
	velocity := make([]*tensor.Matrix, len(m.Layers))
	sums := make([]*tensor.Matrix, len(m.Layers))
	for l, w := range m.Layers {
		velocity[l] = tensor.New(w.Rows(), w.Cols())
		sums[l] = tensor.New(w.Rows(), w.Cols())
	}
	ws := newMLPWorkspace(m, batch, ds.Len())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			idxs := perm[start:end]
			m.batchStep(ds.X, targets, idxs, ws.views(len(idxs)), sums, &epochLoss)
			scale := 1 / float64(end-start)
			for l := range m.Layers {
				tensor.SGDMomentumStep(m.Layers[l], velocity[l], sums[l], cfg.Momentum,
					-cfg.LearningRate*scale, cfg.WeightDecay > 0, -cfg.LearningRate*cfg.WeightDecay)
			}
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res, nil
}
