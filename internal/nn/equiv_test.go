package nn

import (
	"math"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// This file pins the batched-GEMM trainers to the pre-refactor per-sample
// loops, which are preserved below as reference implementations. Under
// the default (bit-exact) tensor backend the contract is bit-identity:
// same final weights and same epoch losses, to the last ulp, at the same
// seed — the training-side analogue of the crossbar batch/scalar twin
// tests. Under a tolerance backend (-tensor.fast) the batched trainer's
// GemmTA/GemmTB reorder their accumulations while the frozen per-sample
// loops do not, so the pin relaxes to a tight relative tolerance — a few
// epochs of SGD on these tiny victims amplify the per-kernel ulps only
// modestly.

// referenceOutputDelta is the per-sample δ = ∂L/∂s computation exactly as
// shipped before the batched rewrite (network.go @ PR 1), kept frozen so
// the reference loops below cannot drift along with the production code.
func referenceOutputDelta(n *Network, u, target []float64) (delta, y []float64) {
	s := n.W.MatVec(u)
	switch {
	case n.Act == ActSoftmax && n.Crit == LossCrossEntropy:
		y = softmaxInPlace(tensor.CloneVec(s))
		delta = tensor.SubVec(y, target)
	case n.Act == ActLinear && n.Crit == LossMSE:
		y = tensor.CloneVec(s)
		delta = tensor.ScaleVec(2/float64(len(y)), tensor.SubVec(y, target))
	case n.Act == ActSigmoid && n.Crit == LossMSE:
		y = applyActivation(ActSigmoid, tensor.CloneVec(s))
		delta = make([]float64, len(y))
		for i := range y {
			delta[i] = 2 / float64(len(y)) * (y[i] - target[i]) * y[i] * (1 - y[i])
		}
	case n.Act == ActReLU && n.Crit == LossMSE:
		y = applyActivation(ActReLU, tensor.CloneVec(s))
		delta = make([]float64, len(y))
		for i := range y {
			if s[i] > 0 {
				delta[i] = 2 / float64(len(y)) * (y[i] - target[i])
			}
		}
	default:
		panic("unsupported pair")
	}
	return delta, y
}

// referenceTrain is the per-sample mini-batch SGD loop exactly as shipped
// before the batched rewrite (train.go @ PR 1).
func referenceTrain(n *Network, ds *dataset.Dataset, cfg TrainConfig, src *rng.Source) *TrainResult {
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	targets := ds.OneHot()
	velocity := tensor.New(n.Outputs(), n.Inputs())
	grad := tensor.New(n.Outputs(), n.Inputs())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			grad.Fill(0)
			for _, idx := range perm[start:end] {
				u := ds.X.Row(idx)
				t := targets.Row(idx)
				delta, y := referenceOutputDelta(n, u, t)
				epochLoss += lossValue(n.Crit, y, t)
				for i, d := range delta {
					if d == 0 {
						continue
					}
					row := grad.Row(i)
					for j, uj := range u {
						row[j] += d * uj
					}
				}
			}
			scale := 1 / float64(end-start)
			velocity.Scale(cfg.Momentum)
			velocity.AddScaled(-cfg.LearningRate*scale, grad)
			if cfg.WeightDecay > 0 {
				velocity.AddScaled(-cfg.LearningRate*cfg.WeightDecay, n.W)
			}
			n.W.AddMatrix(velocity)
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res
}

// referenceTrainMLP is the per-sample MLP loop exactly as shipped before
// the batched rewrite (mlp.go @ PR 1), including its second forward pass
// per sample through LossValue.
func referenceTrainMLP(m *MLP, ds *dataset.Dataset, cfg TrainConfig, src *rng.Source) *TrainResult {
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	targets := ds.OneHot()
	velocity := make([]*tensor.Matrix, len(m.Layers))
	sums := make([]*tensor.Matrix, len(m.Layers))
	for l, w := range m.Layers {
		velocity[l] = tensor.New(w.Rows(), w.Cols())
		sums[l] = tensor.New(w.Rows(), w.Cols())
	}
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			for _, s := range sums {
				s.Fill(0)
			}
			for _, idx := range perm[start:end] {
				u := ds.X.Row(idx)
				t := targets.Row(idx)
				grads, _ := m.backprop(u, t)
				epochLoss += m.LossValue(u, t)
				for l, g := range grads {
					sums[l].AddMatrix(g)
				}
			}
			scale := 1 / float64(end-start)
			for l := range m.Layers {
				velocity[l].Scale(cfg.Momentum)
				velocity[l].AddScaled(-cfg.LearningRate*scale, sums[l])
				if cfg.WeightDecay > 0 {
					velocity[l].AddScaled(-cfg.LearningRate*cfg.WeightDecay, m.Layers[l])
				}
				m.Layers[l].AddMatrix(velocity[l])
			}
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res
}

// referenceTrainAdam is the per-sample Adam loop exactly as shipped before
// the batched rewrite (adam.go @ PR 1).
func referenceTrainAdam(n *Network, ds *dataset.Dataset, cfg AdamConfig, src *rng.Source) *TrainResult {
	cfg, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	targets := ds.OneHot()
	m1 := tensor.New(n.Outputs(), n.Inputs())
	m2 := tensor.New(n.Outputs(), n.Inputs())
	grad := tensor.New(n.Outputs(), n.Inputs())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			grad.Fill(0)
			for _, idx := range perm[start:end] {
				u := ds.X.Row(idx)
				t := targets.Row(idx)
				delta, y := referenceOutputDelta(n, u, t)
				epochLoss += lossValue(n.Crit, y, t)
				for i, d := range delta {
					if d == 0 {
						continue
					}
					row := grad.Row(i)
					for j, uj := range u {
						row[j] += d * uj
					}
				}
			}
			grad.Scale(1 / float64(end-start))
			step++
			bc1 := 1 - math.Pow(cfg.Beta1, float64(step))
			bc2 := 1 - math.Pow(cfg.Beta2, float64(step))
			gd, m1d, m2d, wd := grad.Data(), m1.Data(), m2.Data(), n.W.Data()
			for k, g := range gd {
				m1d[k] = cfg.Beta1*m1d[k] + (1-cfg.Beta1)*g
				m2d[k] = cfg.Beta2*m2d[k] + (1-cfg.Beta2)*g*g
				mhat := m1d[k] / bc1
				vhat := m2d[k] / bc2
				wd[k] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + cfg.Epsilon)
			}
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res
}

func equivDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.GenerateMNISTLike(rng.New(41), n, dataset.DefaultMNISTLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// equivRelTol is the per-element relative tolerance the trainer pins
// relax to under a non-bit-exact tensor backend.
const equivRelTol = 1e-8

func requireEquivMatrix(t *testing.T, name string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	requireEquivVec(t, name, got.Data(), want.Data())
}

func requireEquivVec(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	exact := tensor.Active().BitExact()
	for i := range got {
		if exact {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: element %d: %v vs %v (bits %x vs %x)", name, i, got[i], want[i],
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
			continue
		}
		if d := math.Abs(got[i] - want[i]); d > equivRelTol*math.Abs(want[i])+equivRelTol*equivRelTol {
			t.Fatalf("%s: element %d off by %g under %s backend: %v vs %v",
				name, i, d, tensor.ActiveName(), got[i], want[i])
		}
	}
}

// TestTrainMatchesPerSampleReference pins the batched trainer to the old
// per-sample loop for all four activation/loss pairings, with momentum,
// weight decay, and a dataset size that leaves a remainder mini-batch.
func TestTrainMatchesPerSampleReference(t *testing.T) {
	ds := equivDataset(t, 75) // batch 32 -> mini-batches of 32, 32, 11
	cases := []struct {
		act  Activation
		crit Loss
	}{
		{ActLinear, LossMSE},
		{ActSoftmax, LossCrossEntropy},
		{ActSigmoid, LossMSE},
		{ActReLU, LossMSE},
	}
	for _, c := range cases {
		t.Run(c.act.String(), func(t *testing.T) {
			cfg := TrainConfig{Epochs: 3, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, WeightDecay: 0.01}
			refNet, err := NewNetwork(ds.NumClasses, ds.Dim(), c.act, c.crit)
			if err != nil {
				t.Fatal(err)
			}
			refNet.InitXavier(rng.New(7))
			gotNet := refNet.Clone()
			refRes := referenceTrain(refNet, ds, cfg, rng.New(11))
			gotRes, err := Train(gotNet, ds, cfg, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			requireEquivMatrix(t, "weights", gotNet.W, refNet.W)
			requireEquivVec(t, "epoch losses", gotRes.EpochLosses, refRes.EpochLosses)
		})
	}
}

// TestTrainMLPMatchesPerSampleReference pins the layer-batched MLP trainer
// (which also folds the old second forward pass into the batched forward)
// to the old per-sample loop, over both hidden activations and both heads.
func TestTrainMLPMatchesPerSampleReference(t *testing.T) {
	ds := equivDataset(t, 53) // mini-batches of 16, 16, 16, 5
	cases := []struct {
		name   string
		hidden Activation
		out    Activation
		crit   Loss
	}{
		{"relu-softmax", ActReLU, ActSoftmax, LossCrossEntropy},
		{"sigmoid-linear", ActSigmoid, ActLinear, LossMSE},
		{"relu-relu", ActReLU, ActReLU, LossMSE},
		{"sigmoid-sigmoid", ActSigmoid, ActSigmoid, LossMSE},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			widths := []int{ds.Dim(), 17, 12, ds.NumClasses} // two hidden layers
			ref, err := NewMLP(widths, c.hidden, c.out, c.crit)
			if err != nil {
				t.Fatal(err)
			}
			ref.InitXavier(rng.New(13))
			got := &MLP{Layers: make([]*tensor.Matrix, len(ref.Layers)), Hidden: ref.Hidden, Out: ref.Out, Crit: ref.Crit}
			for l, w := range ref.Layers {
				got.Layers[l] = w.Clone()
			}
			cfg := TrainConfig{Epochs: 2, BatchSize: 16, LearningRate: 0.1, Momentum: 0.8, WeightDecay: 0.001}
			refRes := referenceTrainMLP(ref, ds, cfg, rng.New(17))
			gotRes, err := TrainMLP(got, ds, cfg, rng.New(17))
			if err != nil {
				t.Fatal(err)
			}
			for l := range ref.Layers {
				requireEquivMatrix(t, "layer weights", got.Layers[l], ref.Layers[l])
			}
			requireEquivVec(t, "epoch losses", gotRes.EpochLosses, refRes.EpochLosses)
		})
	}
}

// TestTrainAdamMatchesPerSampleReference pins the batched Adam trainer to
// the old per-sample loop.
func TestTrainAdamMatchesPerSampleReference(t *testing.T) {
	ds := equivDataset(t, 45) // mini-batches of 32, 13
	cfg := AdamConfig{Epochs: 3, BatchSize: 32, LearningRate: 1e-3}
	refNet, err := NewNetwork(ds.NumClasses, ds.Dim(), ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	refNet.InitXavier(rng.New(19))
	gotNet := refNet.Clone()
	refRes := referenceTrainAdam(refNet, ds, cfg, rng.New(23))
	gotRes, err := TrainAdam(gotNet, ds, cfg, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	requireEquivMatrix(t, "weights", gotNet.W, refNet.W)
	requireEquivVec(t, "epoch losses", gotRes.EpochLosses, refRes.EpochLosses)
}

// TestBatchStepAllocationFree pins the allocation contract of the batched
// training step: after workspace construction, a full gather + forward +
// backprop step allocates nothing (satellite of ISSUE 2).
func TestBatchStepAllocationFree(t *testing.T) {
	var sink float64
	ds := equivDataset(t, 64)
	net, err := NewNetwork(ds.NumClasses, ds.Dim(), ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	net.InitXavier(rng.New(3))
	targets := ds.OneHot()
	grad := tensor.New(net.Outputs(), net.Inputs())
	ws := newBatchWorkspace(32, ds.Len(), net.Inputs(), net.Outputs())
	idxs := make([]int, 32)
	for i := range idxs {
		idxs[i] = i
	}
	v := ws.views(32)
	if n := testing.AllocsPerRun(10, func() {
		net.batchStep(ds.X, targets, idxs, v, grad, &sink)
	}); n != 0 {
		t.Errorf("Network.batchStep allocates %v per step, want 0", n)
	}

	mlp, err := NewMLP([]int{ds.Dim(), 16, ds.NumClasses}, ActReLU, ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	mlp.InitXavier(rng.New(5))
	sums := make([]*tensor.Matrix, len(mlp.Layers))
	for l, w := range mlp.Layers {
		sums[l] = tensor.New(w.Rows(), w.Cols())
	}
	mws := newMLPWorkspace(mlp, 32, ds.Len())
	mv := mws.views(32)
	if n := testing.AllocsPerRun(10, func() {
		mlp.batchStep(ds.X, targets, idxs, mv, sums, &sink)
	}); n != 0 {
		t.Errorf("MLP.batchStep allocates %v per step, want 0", n)
	}
}
