package nn

import (
	"math"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func batchFixture(t *testing.T) (*Network, *dataset.Dataset) {
	t.Helper()
	src := rng.New(41)
	ds, err := dataset.GenerateMNISTLike(src.Split("d"), 60, dataset.MNISTLikeConfig{
		Size: 10, StrokeWidth: 0.06, Jitter: 0.3, PixelNoise: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := TrainNew(ds, ActSoftmax, LossCrossEntropy, TrainConfig{
		Epochs: 8, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9,
	}, src.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func TestForwardBatchMatchesSingle(t *testing.T) {
	net, ds := batchFixture(t)
	y, err := net.ForwardBatch(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		want := net.Forward(ds.X.Row(i))
		got := y.Row(i)
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-12 {
				t.Fatalf("row %d class %d: %v vs %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestPredictAccuracyBatchMatchesSingle(t *testing.T) {
	net, ds := batchFixture(t)
	preds, err := net.PredictBatch(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if preds[i] != net.Predict(ds.X.Row(i)) {
			t.Fatalf("prediction %d differs", i)
		}
	}
	accB, err := net.AccuracyBatch(ds)
	if err != nil {
		t.Fatal(err)
	}
	if accB != net.Accuracy(ds) {
		t.Fatalf("batch accuracy %v vs %v", accB, net.Accuracy(ds))
	}
}

func TestInputGradientBatchMatchesSingle(t *testing.T) {
	net, ds := batchFixture(t)
	oh := ds.OneHot()
	g, err := net.InputGradientBatch(ds.X, oh)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := net.InputGradient(ds.X.Row(i), oh.Row(i))
		got := g.Row(i)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("gradient (%d,%d) differs", i, j)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	net, ds := batchFixture(t)
	if _, err := net.ForwardBatch(tensor.New(3, 5)); err == nil {
		t.Fatal("wrong width must error")
	}
	if _, err := net.InputGradientBatch(ds.X, tensor.New(2, 10)); err == nil {
		t.Fatal("target shape mismatch must error")
	}
	empty := &dataset.Dataset{X: tensor.New(0, ds.Dim()), NumClasses: 10, Width: ds.Width, Height: ds.Height, Channels: 1}
	if _, err := net.AccuracyBatch(empty); err == nil {
		t.Fatal("empty dataset must error")
	}
}
