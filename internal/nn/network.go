// Package nn implements the single-layer neural networks the paper
// attacks, with the exact activation/loss pairings of its four
// experimental configurations (linear+MSE and softmax+cross-entropy on
// MNIST and CIFAR-10), analytic weight- and input-gradients, and a
// mini-batch SGD trainer. A small multi-layer perceptron is provided for
// the paper's future-work direction (see mlp.go).
package nn

import (
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Activation selects the output non-linearity f in ŷ = f(Wu).
type Activation int

const (
	// ActLinear is the identity activation used with MSE loss in the
	// paper's "Linear" configurations.
	ActLinear Activation = iota + 1
	// ActSoftmax is the softmax activation used with cross-entropy loss.
	ActSoftmax
	// ActSigmoid is the element-wise logistic activation.
	ActSigmoid
	// ActReLU is the element-wise rectifier.
	ActReLU
)

// String returns the lower-case activation name.
func (a Activation) String() string {
	switch a {
	case ActLinear:
		return "linear"
	case ActSoftmax:
		return "softmax"
	case ActSigmoid:
		return "sigmoid"
	case ActReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Loss selects the training criterion.
type Loss int

const (
	// LossMSE is mean squared error over the output vector.
	LossMSE Loss = iota + 1
	// LossCrossEntropy is categorical cross-entropy; it requires
	// ActSoftmax.
	LossCrossEntropy
)

// String returns the lower-case loss name.
func (l Loss) String() string {
	switch l {
	case LossMSE:
		return "mse"
	case LossCrossEntropy:
		return "crossentropy"
	default:
		return fmt.Sprintf("Loss(%d)", int(l))
	}
}

// ErrBadConfig indicates an unsupported activation/loss combination.
var ErrBadConfig = errors.New("nn: unsupported activation/loss combination")

// Network is a single-layer neural network ŷ = f(Wu) with weight matrix W
// of shape outputs x inputs. It matches Eq. (4) of the paper: no bias term,
// exactly the computation an NVM crossbar performs.
type Network struct {
	// W is the outputs x inputs weight matrix.
	W *tensor.Matrix
	// Act is the output activation f.
	Act Activation
	// Crit is the training loss.
	Crit Loss
}

// NewNetwork creates a zero-initialized network and validates the
// activation/loss pairing.
func NewNetwork(outputs, inputs int, act Activation, crit Loss) (*Network, error) {
	if outputs <= 0 || inputs <= 0 {
		return nil, fmt.Errorf("nn: invalid shape %dx%d", outputs, inputs)
	}
	switch act {
	case ActLinear, ActSoftmax, ActSigmoid, ActReLU:
	default:
		return nil, fmt.Errorf("nn: unknown activation %v: %w", act, ErrBadConfig)
	}
	switch crit {
	case LossMSE:
		if act == ActSoftmax {
			return nil, fmt.Errorf("nn: softmax requires cross-entropy: %w", ErrBadConfig)
		}
	case LossCrossEntropy:
		if act != ActSoftmax {
			return nil, fmt.Errorf("nn: cross-entropy requires softmax: %w", ErrBadConfig)
		}
	default:
		return nil, fmt.Errorf("nn: unknown loss %v: %w", crit, ErrBadConfig)
	}
	return &Network{W: tensor.New(outputs, inputs), Act: act, Crit: crit}, nil
}

// InitXavier fills W with Glorot-uniform values.
func (n *Network) InitXavier(src *rng.Source) {
	limit := math.Sqrt(6 / float64(n.W.Rows()+n.W.Cols()))
	d := n.W.Data()
	for i := range d {
		d[i] = src.Uniform(-limit, limit)
	}
}

// Inputs returns the input dimensionality N.
func (n *Network) Inputs() int { return n.W.Cols() }

// Outputs returns the output dimensionality M.
func (n *Network) Outputs() int { return n.W.Rows() }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	return &Network{W: n.W.Clone(), Act: n.Act, Crit: n.Crit}
}

// PreActivation returns s = Wu.
func (n *Network) PreActivation(u []float64) []float64 {
	s := make([]float64, n.W.Rows())
	tensor.MatVecInto(s, n.W, u)
	return s
}

// Forward returns ŷ = f(Wu).
func (n *Network) Forward(u []float64) []float64 {
	return applyActivation(n.Act, n.PreActivation(u))
}

// Predict returns the argmax class of the network output.
func (n *Network) Predict(u []float64) int { return tensor.ArgMax(n.Forward(u)) }

// applyActivation applies f in place to s and returns it.
func applyActivation(act Activation, s []float64) []float64 {
	switch act {
	case ActLinear:
		return s
	case ActSoftmax:
		return softmaxInPlace(s)
	case ActSigmoid:
		for i, v := range s {
			s[i] = 1 / (1 + math.Exp(-v))
		}
		return s
	case ActReLU:
		for i, v := range s {
			if v < 0 {
				s[i] = 0
			}
		}
		return s
	default:
		panic(fmt.Sprintf("nn: unknown activation %v", act))
	}
}

// softmaxInPlace computes a numerically-stable softmax.
func softmaxInPlace(s []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range s {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range s {
		e := math.Exp(v - maxv)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
	return s
}

// LossValue returns the loss of the network on input u with one-hot (or
// regression) target t.
func (n *Network) LossValue(u, target []float64) float64 {
	y := n.Forward(u)
	return lossValue(n.Crit, y, target)
}

func lossValue(crit Loss, y, target []float64) float64 {
	switch crit {
	case LossMSE:
		var s float64
		for i, v := range y {
			d := v - target[i]
			s += d * d
		}
		return s / float64(len(y))
	case LossCrossEntropy:
		const eps = 1e-12
		var s float64
		for i, v := range y {
			if target[i] != 0 {
				s -= target[i] * math.Log(v+eps)
			}
		}
		return s
	default:
		panic(fmt.Sprintf("nn: unknown loss %v", crit))
	}
}

// outputDelta returns δ = ∂L/∂s for the network's activation/loss pair.
// It shares the single activation/loss switch in outputDeltaFromY with
// the batched trainers, so new pairings need exactly one change.
func (n *Network) outputDelta(u, target []float64) (delta, y []float64) {
	y = applyActivation(n.Act, n.PreActivation(u))
	delta = make([]float64, len(y))
	outputDeltaFromY(n.Act, n.Crit, y, target, delta)
	return delta, y
}

// outputDeltaFromY writes δ = ∂L/∂s into delta given the already-activated
// output y, and returns the sample loss. The arithmetic expressions and
// evaluation order match outputDelta + lossValue exactly, so results are
// bit-identical to the per-sample path. For ActReLU the pre-activation
// sign test s > 0 is equivalent to y > 0 (ReLU zeroes exactly the
// non-positive pre-activations), so y alone suffices.
func outputDeltaFromY(act Activation, crit Loss, y, target, delta []float64) float64 {
	switch {
	case act == ActSoftmax && crit == LossCrossEntropy:
		for i, v := range y {
			delta[i] = v - target[i]
		}
	case act == ActLinear && crit == LossMSE:
		alpha := 2 / float64(len(y))
		for i, v := range y {
			delta[i] = alpha * (v - target[i])
		}
	case act == ActSigmoid && crit == LossMSE:
		alpha := 2 / float64(len(y))
		for i, v := range y {
			delta[i] = alpha * (v - target[i]) * v * (1 - v)
		}
	case act == ActReLU && crit == LossMSE:
		alpha := 2 / float64(len(y))
		for i, v := range y {
			if v > 0 {
				delta[i] = alpha * (v - target[i])
			} else {
				delta[i] = 0
			}
		}
	default:
		panic(fmt.Sprintf("nn: unsupported pair %v/%v", act, crit))
	}
	return lossValue(crit, y, target)
}

// outputDeltaInto transforms the pre-activation s into the output y in
// place, writes δ = ∂L/∂s into delta, and returns the sample loss —
// the workspace form of outputDelta used by the batched trainers.
func outputDeltaInto(act Activation, crit Loss, s, target, delta []float64) float64 {
	applyActivation(act, s)
	return outputDeltaFromY(act, crit, s, target, delta)
}

// InputGradient returns ∂L/∂u = Wᵀ δ — Eq. (7) of the paper. This is the
// sensitivity the power side channel tries to approximate.
func (n *Network) InputGradient(u, target []float64) []float64 {
	delta, _ := n.outputDelta(u, target)
	out := make([]float64, n.Inputs())
	tensor.VecMatInto(out, delta, n.W)
	return out
}

// WeightGradient returns ∂L/∂W = δ uᵀ as an outputs x inputs matrix.
func (n *Network) WeightGradient(u, target []float64) *tensor.Matrix {
	delta, _ := n.outputDelta(u, target)
	g := tensor.New(n.Outputs(), n.Inputs())
	tensor.AddOuterInto(g, delta, u)
	return g
}

// Accuracy returns the top-1 accuracy of the network on ds.
func (n *Network) Accuracy(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		if n.Predict(ds.X.Row(i)) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MeanLoss returns the mean loss of the network over ds with one-hot
// targets.
func (n *Network) MeanLoss(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	oh := ds.OneHot()
	var s float64
	for i := 0; i < ds.Len(); i++ {
		s += n.LossValue(ds.X.Row(i), oh.Row(i))
	}
	return s / float64(ds.Len())
}

// MeanAbsInputGradient returns the per-input mean of |∂L/∂u_j| over ds —
// the left-hand panels of the paper's Figure 3. Gradients run through the
// batched path; the per-sample accumulation order (and hence every bit of
// the result) matches the per-sample loop it replaces.
func (n *Network) MeanAbsInputGradient(ds *dataset.Dataset) []float64 {
	out := make([]float64, n.Inputs())
	if ds.Len() == 0 {
		return out
	}
	g, err := n.InputGradientBatch(ds.X, ds.OneHot())
	if err != nil {
		panic(err) // shapes came from ds itself; mirror per-sample panics
	}
	for i := 0; i < g.Rows(); i++ {
		for j, v := range g.Row(i) {
			out[j] += math.Abs(v)
		}
	}
	inv := 1 / float64(ds.Len())
	for j := range out {
		out[j] *= inv
	}
	return out
}
