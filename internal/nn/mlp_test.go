package nn

import (
	"math"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func TestNewMLPValidation(t *testing.T) {
	tests := []struct {
		name    string
		widths  []int
		hidden  Activation
		out     Activation
		crit    Loss
		wantErr bool
	}{
		{"one hidden relu", []int{8, 16, 4}, ActReLU, ActSoftmax, LossCrossEntropy, false},
		{"two hidden sigmoid", []int{8, 16, 8, 4}, ActSigmoid, ActLinear, LossMSE, false},
		{"too few widths", []int{8}, ActReLU, ActLinear, LossMSE, true},
		{"zero width", []int{8, 0, 4}, ActReLU, ActLinear, LossMSE, true},
		{"bad hidden", []int{8, 16, 4}, ActSoftmax, ActLinear, LossMSE, true},
		{"bad head", []int{8, 16, 4}, ActReLU, ActSoftmax, LossMSE, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMLP(tt.widths, tt.hidden, tt.out, tt.crit)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMLPShapes(t *testing.T) {
	m, err := NewMLP([]int{12, 20, 5}, ActReLU, ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inputs() != 12 || m.Outputs() != 5 {
		t.Fatalf("shapes %d/%d", m.Inputs(), m.Outputs())
	}
	m.InitXavier(rng.New(1))
	y := m.Forward(make([]float64, 12))
	if len(y) != 5 {
		t.Fatalf("output len %d", len(y))
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestMLPInputGradientMatchesNumerical(t *testing.T) {
	for _, hidden := range []Activation{ActSigmoid, ActReLU} {
		t.Run(hidden.String(), func(t *testing.T) {
			src := rng.New(3)
			m, err := NewMLP([]int{6, 10, 4}, hidden, ActSoftmax, LossCrossEntropy)
			if err != nil {
				t.Fatal(err)
			}
			m.InitXavier(src)
			u := src.UniformVec(6, 0.1, 0.9)
			target := []float64{0, 0, 1, 0}
			got := m.InputGradient(u, target)
			const h = 1e-6
			for j := range u {
				up, um := tensor.CloneVec(u), tensor.CloneVec(u)
				up[j] += h
				um[j] -= h
				want := (m.LossValue(up, target) - m.LossValue(um, target)) / (2 * h)
				if math.Abs(got[j]-want) > 1e-4 {
					t.Fatalf("grad[%d] = %v, numerical %v", j, got[j], want)
				}
			}
		})
	}
}

func TestMLPWeightGradientMatchesNumerical(t *testing.T) {
	src := rng.New(5)
	m, err := NewMLP([]int{5, 7, 3}, ActSigmoid, ActLinear, LossMSE)
	if err != nil {
		t.Fatal(err)
	}
	m.InitXavier(src)
	u := src.UniformVec(5, 0.1, 0.9)
	target := []float64{1, 0, 0}
	grads, _ := m.backprop(u, target)
	const h = 1e-6
	for l, g := range grads {
		w := m.Layers[l]
		for i := 0; i < w.Rows(); i++ {
			for j := 0; j < w.Cols(); j++ {
				orig := w.At(i, j)
				w.Set(i, j, orig+h)
				lp := m.LossValue(u, target)
				w.Set(i, j, orig-h)
				lm := m.LossValue(u, target)
				w.Set(i, j, orig)
				want := (lp - lm) / (2 * h)
				if math.Abs(g.At(i, j)-want) > 1e-4 {
					t.Fatalf("layer %d grad(%d,%d) = %v, numerical %v", l, i, j, g.At(i, j), want)
				}
			}
		}
	}
}

func TestMLPTrainingLearnsNonlinearTask(t *testing.T) {
	src := rng.New(9)
	ds, err := dataset.GenerateMNISTLike(src.Split("d"), 300, dataset.MNISTLikeConfig{
		Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP([]int{ds.Dim(), 32, ds.NumClasses}, ActReLU, ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	m.InitXavier(src.Split("init"))
	res, err := TrainMLP(m, ds, TrainConfig{Epochs: 25, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9}, src.Split("sgd"))
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLosses[len(res.EpochLosses)-1] >= res.EpochLosses[0] {
		t.Fatal("MLP training did not reduce loss")
	}
	if acc := m.Accuracy(ds); acc < 0.85 {
		t.Fatalf("MLP train accuracy %v too low", acc)
	}
}

func TestTrainMLPValidation(t *testing.T) {
	src := rng.New(2)
	ds, _ := dataset.GenerateMNISTLike(src, 20, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0, PixelNoise: 0})
	m, _ := NewMLP([]int{ds.Dim(), 8, 10}, ActReLU, ActSoftmax, LossCrossEntropy)
	if _, err := TrainMLP(m, ds, TrainConfig{Epochs: 0, LearningRate: 0.1}, src); err == nil {
		t.Fatal("zero epochs must error")
	}
	wrong, _ := NewMLP([]int{5, 8, 10}, ActReLU, ActSoftmax, LossCrossEntropy)
	if _, err := TrainMLP(wrong, ds, TrainConfig{Epochs: 1, LearningRate: 0.1}, src); err == nil {
		t.Fatal("dim mismatch must error")
	}
	wrongC, _ := NewMLP([]int{ds.Dim(), 8, 3}, ActReLU, ActSoftmax, LossCrossEntropy)
	if _, err := TrainMLP(wrongC, ds, TrainConfig{Epochs: 1, LearningRate: 0.1}, src); err == nil {
		t.Fatal("class mismatch must error")
	}
	empty := &dataset.Dataset{X: tensor.New(0, ds.Dim()), NumClasses: 10, Width: ds.Width, Height: ds.Height, Channels: 1}
	if _, err := TrainMLP(m, empty, TrainConfig{Epochs: 1, LearningRate: 0.1}, src); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestMLPImplementsGradientSourceShape(t *testing.T) {
	m, _ := NewMLP([]int{4, 6, 2}, ActReLU, ActLinear, LossMSE)
	m.InitXavier(rng.New(1))
	g := m.InputGradient([]float64{0.1, 0.2, 0.3, 0.4}, []float64{1, 0})
	if len(g) != 4 {
		t.Fatalf("input gradient length %d", len(g))
	}
}
