package nn

import (
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
)

func TestAdamConfigDefaults(t *testing.T) {
	cfg, err := AdamConfig{Epochs: 1}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LearningRate != 1e-3 || cfg.Beta1 != 0.9 || cfg.Beta2 != 0.999 || cfg.Epsilon != 1e-8 || cfg.BatchSize != 32 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestAdamConfigValidation(t *testing.T) {
	bad := []AdamConfig{
		{Epochs: 0},
		{Epochs: 1, LearningRate: -1},
		{Epochs: 1, Beta1: 1},
		{Epochs: 1, Beta2: -0.1},
		{Epochs: 1, Epsilon: -1},
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestAdamLearnsDigits(t *testing.T) {
	src := rng.New(31)
	ds, err := dataset.GenerateMNISTLike(src.Split("d"), 250, dataset.MNISTLikeConfig{
		Size: 12, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, res, err := TrainNewAdam(ds, ActSoftmax, LossCrossEntropy, AdamConfig{
		Epochs: 15, BatchSize: 32, LearningRate: 5e-3, ZeroInit: true,
	}, src.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLosses[len(res.EpochLosses)-1] >= res.EpochLosses[0] {
		t.Fatal("Adam did not reduce loss")
	}
	if acc := net.Accuracy(ds); acc < 0.85 {
		t.Fatalf("Adam train accuracy %v too low", acc)
	}
}

// Adam's selling point here: the same default learning rate works on both
// sparse MNIST vectors and dense CIFAR vectors, where SGD needs manual
// rate scaling (see experiment.trainCfgFor).
func TestAdamHandlesDenseInputsAtDefaultRate(t *testing.T) {
	src := rng.New(32)
	ds, err := dataset.GenerateCIFARLike(src.Split("d"), 200, dataset.DefaultCIFARLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, res, err := TrainNewAdam(ds, ActLinear, LossMSE, AdamConfig{
		Epochs: 10, BatchSize: 32, ZeroInit: true,
	}, src.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	last := res.EpochLosses[len(res.EpochLosses)-1]
	if last >= res.EpochLosses[0] {
		t.Fatalf("Adam diverged on dense inputs: %v -> %v", res.EpochLosses[0], last)
	}
	if acc := net.Accuracy(ds); acc < 0.3 {
		t.Fatalf("Adam train accuracy %v too low on dense inputs", acc)
	}
}

func TestAdamValidationMismatches(t *testing.T) {
	src := rng.New(33)
	ds, _ := dataset.GenerateMNISTLike(src, 20, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0, PixelNoise: 0})
	wrong, _ := NewNetwork(10, 5, ActLinear, LossMSE)
	if _, err := TrainAdam(wrong, ds, AdamConfig{Epochs: 1}, src); err == nil {
		t.Fatal("dim mismatch must error")
	}
	wrongC, _ := NewNetwork(3, ds.Dim(), ActLinear, LossMSE)
	if _, err := TrainAdam(wrongC, ds, AdamConfig{Epochs: 1}, src); err == nil {
		t.Fatal("class mismatch must error")
	}
}

func TestAdamDeterminism(t *testing.T) {
	src1, src2 := rng.New(34), rng.New(34)
	ds1, _ := dataset.GenerateMNISTLike(src1.Split("d"), 50, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.3, PixelNoise: 0.02})
	ds2, _ := dataset.GenerateMNISTLike(src2.Split("d"), 50, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.3, PixelNoise: 0.02})
	cfg := AdamConfig{Epochs: 4, BatchSize: 16, ZeroInit: true}
	a, _, err := TrainNewAdam(ds1, ActLinear, LossMSE, cfg, src1.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TrainNewAdam(ds2, ActLinear, LossMSE, cfg, src2.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.W.Equal(b.W, 0) {
		t.Fatal("Adam must be deterministic per seed")
	}
}
