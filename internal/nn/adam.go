package nn

import (
	"fmt"
	"math"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// AdamConfig controls the Adam trainer, the adaptive-moment alternative
// to the momentum-SGD trainer in train.go. The paper's single-layer
// models train fine with SGD; Adam is provided for the MLP extension and
// for ill-conditioned inputs (dense CIFAR vectors) where per-parameter
// step adaptation removes the manual learning-rate tuning that SGD needs.
type AdamConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size; <= 0 defaults to 32.
	BatchSize int
	// LearningRate is the Adam step size (default 1e-3 when 0).
	LearningRate float64
	// Beta1 and Beta2 are the moment decay rates (defaults 0.9, 0.999).
	Beta1, Beta2 float64
	// Epsilon stabilizes the denominator (default 1e-8).
	Epsilon float64
	// ZeroInit starts W at zero (see TrainConfig.ZeroInit).
	ZeroInit bool
}

func (c AdamConfig) withDefaults() (AdamConfig, error) {
	if c.Epochs <= 0 {
		return c, fmt.Errorf("nn: adam epochs %d must be positive", c.Epochs)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.LearningRate < 0 {
		return c, fmt.Errorf("nn: adam learning rate %v must be positive", c.LearningRate)
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Beta1 < 0 || c.Beta1 >= 1 || c.Beta2 < 0 || c.Beta2 >= 1 {
		return c, fmt.Errorf("nn: adam betas (%v, %v) out of [0,1)", c.Beta1, c.Beta2)
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-8
	}
	if c.Epsilon < 0 {
		return c, fmt.Errorf("nn: adam epsilon %v must be positive", c.Epsilon)
	}
	return c, nil
}

// TrainAdam fits the network to ds with mini-batch Adam. Semantics match
// Train: deterministic given (init, dataset, seed).
func TrainAdam(n *Network, ds *dataset.Dataset, cfg AdamConfig, src *rng.Source) (*TrainResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if ds.Dim() != n.Inputs() {
		return nil, fmt.Errorf("nn: dataset dim %d != network inputs %d", ds.Dim(), n.Inputs())
	}
	if ds.NumClasses != n.Outputs() {
		return nil, fmt.Errorf("nn: dataset classes %d != network outputs %d", ds.NumClasses, n.Outputs())
	}
	targets := ds.OneHot()
	m1 := tensor.New(n.Outputs(), n.Inputs()) // first moment
	m2 := tensor.New(n.Outputs(), n.Inputs()) // second moment
	grad := tensor.New(n.Outputs(), n.Inputs())
	ws := newBatchWorkspace(cfg.BatchSize, ds.Len(), n.Inputs(), n.Outputs())
	res := &TrainResult{EpochLosses: make([]float64, 0, cfg.Epochs)}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			idxs := perm[start:end]
			n.batchStep(ds.X, targets, idxs, ws.views(len(idxs)), grad, &epochLoss)
			grad.Scale(1 / float64(end-start))
			step++
			bc1 := 1 - math.Pow(cfg.Beta1, float64(step))
			bc2 := 1 - math.Pow(cfg.Beta2, float64(step))
			gd, m1d, m2d, wd := grad.Data(), m1.Data(), m2.Data(), n.W.Data()
			for k, g := range gd {
				m1d[k] = cfg.Beta1*m1d[k] + (1-cfg.Beta1)*g
				m2d[k] = cfg.Beta2*m2d[k] + (1-cfg.Beta2)*g*g
				mhat := m1d[k] / bc1
				vhat := m2d[k] / bc2
				wd[k] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + cfg.Epsilon)
			}
		}
		res.EpochLosses = append(res.EpochLosses, epochLoss/float64(ds.Len()))
	}
	return res, nil
}

// TrainNewAdam builds, initializes and Adam-trains a network for ds.
func TrainNewAdam(ds *dataset.Dataset, act Activation, crit Loss, cfg AdamConfig, src *rng.Source) (*Network, *TrainResult, error) {
	n, err := NewNetwork(ds.NumClasses, ds.Dim(), act, crit)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.ZeroInit {
		n.InitXavier(src.Split("init"))
	}
	res, err := TrainAdam(n, ds, cfg, src.Split("adam"))
	if err != nil {
		return nil, nil, err
	}
	return n, res, nil
}
