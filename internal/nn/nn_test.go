package nn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func TestNewNetworkValidation(t *testing.T) {
	tests := []struct {
		name    string
		out, in int
		act     Activation
		crit    Loss
		wantErr bool
	}{
		{"linear mse", 3, 4, ActLinear, LossMSE, false},
		{"softmax ce", 3, 4, ActSoftmax, LossCrossEntropy, false},
		{"sigmoid mse", 3, 4, ActSigmoid, LossMSE, false},
		{"relu mse", 3, 4, ActReLU, LossMSE, false},
		{"softmax mse rejected", 3, 4, ActSoftmax, LossMSE, true},
		{"linear ce rejected", 3, 4, ActLinear, LossCrossEntropy, true},
		{"zero outputs", 0, 4, ActLinear, LossMSE, true},
		{"zero inputs", 3, 0, ActLinear, LossMSE, true},
		{"unknown act", 3, 4, Activation(0), LossMSE, true},
		{"unknown loss", 3, 4, ActLinear, Loss(0), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewNetwork(tt.out, tt.in, tt.act, tt.crit)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if tt.wantErr && err != nil && tt.act != Activation(0) && tt.crit != Loss(0) && tt.out > 0 && tt.in > 0 {
				if !errors.Is(err, ErrBadConfig) {
					t.Fatalf("want ErrBadConfig, got %v", err)
				}
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	if ActLinear.String() != "linear" || ActSoftmax.String() != "softmax" ||
		ActSigmoid.String() != "sigmoid" || ActReLU.String() != "relu" {
		t.Fatal("activation names")
	}
	if LossMSE.String() != "mse" || LossCrossEntropy.String() != "crossentropy" {
		t.Fatal("loss names")
	}
	if Activation(9).String() == "" || Loss(9).String() == "" {
		t.Fatal("unknown enum should still print")
	}
}

func TestForwardLinearIsMatVec(t *testing.T) {
	n, err := NewNetwork(2, 3, ActLinear, LossMSE)
	if err != nil {
		t.Fatal(err)
	}
	n.W.SetRow(0, []float64{1, 0, -1})
	n.W.SetRow(1, []float64{0.5, 2, 0})
	u := []float64{1, 2, 3}
	y := n.Forward(u)
	if math.Abs(y[0]+2) > 1e-12 || math.Abs(y[1]-4.5) > 1e-12 {
		t.Fatalf("Forward = %v", y)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(8)
		s := src.NormalVec(n, 0, 5)
		y := softmaxInPlace(tensor.CloneVec(s))
		var sum float64
		for _, v := range y {
			if v <= 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Invariance to constant shift.
		shifted := tensor.CloneVec(s)
		for i := range shifted {
			shifted[i] += 100
		}
		y2 := softmaxInPlace(shifted)
		for i := range y {
			if math.Abs(y[i]-y2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxOverflowStability(t *testing.T) {
	y := softmaxInPlace([]float64{1000, 1001, 999})
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", y)
		}
	}
}

func TestSigmoidReLUForward(t *testing.T) {
	n, _ := NewNetwork(1, 1, ActSigmoid, LossMSE)
	n.W.Set(0, 0, 1)
	if got := n.Forward([]float64{0})[0]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	r, _ := NewNetwork(1, 1, ActReLU, LossMSE)
	r.W.Set(0, 0, 1)
	if got := r.Forward([]float64{-3})[0]; got != 0 {
		t.Fatalf("relu(-3) = %v", got)
	}
	if got := r.Forward([]float64{3})[0]; got != 3 {
		t.Fatalf("relu(3) = %v", got)
	}
}

func TestLossValues(t *testing.T) {
	n, _ := NewNetwork(2, 2, ActLinear, LossMSE)
	n.W.SetRow(0, []float64{1, 0})
	n.W.SetRow(1, []float64{0, 1})
	// y = [1, 0], target [0, 1] → mse = (1+1)/2 = 1.
	if got := n.LossValue([]float64{1, 0}, []float64{0, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	s, _ := NewNetwork(2, 2, ActSoftmax, LossCrossEntropy)
	s.W.SetRow(0, []float64{1, 0})
	s.W.SetRow(1, []float64{0, 1})
	// Symmetric logits → y = [0.5, 0.5] → CE = ln 2.
	if got := s.LossValue([]float64{1, 1}, []float64{1, 0}); math.Abs(got-math.Ln2) > 1e-9 {
		t.Fatalf("CE = %v, want ln2", got)
	}
}

// numericalInputGradient approximates ∂L/∂u by central differences.
func numericalInputGradient(n *Network, u, target []float64) []float64 {
	const h = 1e-6
	g := make([]float64, len(u))
	for j := range u {
		up := tensor.CloneVec(u)
		um := tensor.CloneVec(u)
		up[j] += h
		um[j] -= h
		g[j] = (n.LossValue(up, target) - n.LossValue(um, target)) / (2 * h)
	}
	return g
}

func TestInputGradientMatchesNumerical(t *testing.T) {
	configs := []struct {
		act  Activation
		crit Loss
	}{
		{ActLinear, LossMSE},
		{ActSoftmax, LossCrossEntropy},
		{ActSigmoid, LossMSE},
	}
	src := rng.New(42)
	for _, cfg := range configs {
		t.Run(cfg.act.String(), func(t *testing.T) {
			n, err := NewNetwork(4, 6, cfg.act, cfg.crit)
			if err != nil {
				t.Fatal(err)
			}
			n.InitXavier(src.Split(cfg.act.String()))
			u := src.UniformVec(6, 0, 1)
			target := []float64{0, 1, 0, 0}
			got := n.InputGradient(u, target)
			want := numericalInputGradient(n, u, target)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-5 {
					t.Fatalf("input grad[%d] = %v, numerical %v", j, got[j], want[j])
				}
			}
		})
	}
}

func TestWeightGradientMatchesNumerical(t *testing.T) {
	src := rng.New(7)
	n, err := NewNetwork(3, 4, ActSoftmax, LossCrossEntropy)
	if err != nil {
		t.Fatal(err)
	}
	n.InitXavier(src)
	u := src.UniformVec(4, 0, 1)
	target := []float64{0, 0, 1}
	got := n.WeightGradient(u, target)
	const h = 1e-6
	for i := 0; i < n.Outputs(); i++ {
		for j := 0; j < n.Inputs(); j++ {
			orig := n.W.At(i, j)
			n.W.Set(i, j, orig+h)
			lp := n.LossValue(u, target)
			n.W.Set(i, j, orig-h)
			lm := n.LossValue(u, target)
			n.W.Set(i, j, orig)
			want := (lp - lm) / (2 * h)
			if math.Abs(got.At(i, j)-want) > 1e-5 {
				t.Fatalf("weight grad (%d,%d) = %v, numerical %v", i, j, got.At(i, j), want)
			}
		}
	}
}

// TestInputGradientBound verifies Eq. (8): |∂L/∂u_j| <= Σ_i |∂L/∂ŷ_i f'| |w_ij|.
// For linear+MSE, f'=1 and ∂L/∂ŷ_i = 2(y_i-t_i)/M.
func TestInputGradientBoundEq8(t *testing.T) {
	src := rng.New(3)
	n, _ := NewNetwork(5, 8, ActLinear, LossMSE)
	n.InitXavier(src)
	u := src.UniformVec(8, 0, 1)
	target := make([]float64, 5)
	target[2] = 1
	g := n.InputGradient(u, target)
	y := n.Forward(u)
	for j := 0; j < 8; j++ {
		var bound float64
		for i := 0; i < 5; i++ {
			bound += math.Abs(2/float64(5)*(y[i]-target[i])) * math.Abs(n.W.At(i, j))
		}
		if math.Abs(g[j]) > bound+1e-12 {
			t.Fatalf("Eq.8 violated at %d: |g|=%v > bound=%v", j, math.Abs(g[j]), bound)
		}
	}
}

func trainTinyDataset(t *testing.T, act Activation, crit Loss) (*Network, *dataset.Dataset) {
	t.Helper()
	src := rng.New(99)
	ds, err := dataset.GenerateMNISTLike(src.Split("data"), 200, dataset.MNISTLikeConfig{
		Size: 12, StrokeWidth: 0.06, Jitter: 0.5, PixelNoise: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, res, err := TrainNew(ds, act, crit, TrainConfig{
		Epochs: 20, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9,
	}, src.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLosses) != 20 {
		t.Fatalf("epoch losses %d", len(res.EpochLosses))
	}
	first, last := res.EpochLosses[0], res.EpochLosses[len(res.EpochLosses)-1]
	if last >= first {
		t.Fatalf("training did not reduce loss: %v -> %v", first, last)
	}
	return net, ds
}

func TestTrainingReducesLossAndFits(t *testing.T) {
	for _, cfg := range []struct {
		act  Activation
		crit Loss
	}{{ActLinear, LossMSE}, {ActSoftmax, LossCrossEntropy}} {
		t.Run(cfg.act.String(), func(t *testing.T) {
			net, ds := trainTinyDataset(t, cfg.act, cfg.crit)
			acc := net.Accuracy(ds)
			if acc < 0.8 {
				t.Fatalf("train accuracy %v too low for separable data", acc)
			}
		})
	}
}

func TestTrainValidation(t *testing.T) {
	src := rng.New(1)
	ds, err := dataset.GenerateMNISTLike(src, 20, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0, PixelNoise: 0})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := NewNetwork(10, ds.Dim(), ActLinear, LossMSE)
	tests := []struct {
		name string
		cfg  TrainConfig
	}{
		{"zero epochs", TrainConfig{Epochs: 0, LearningRate: 0.1}},
		{"zero lr", TrainConfig{Epochs: 1}},
		{"bad momentum", TrainConfig{Epochs: 1, LearningRate: 0.1, Momentum: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Train(n, ds, tt.cfg, src); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
	wrong, _ := NewNetwork(10, 5, ActLinear, LossMSE)
	if _, err := Train(wrong, ds, DefaultTrainConfig(), src); err == nil {
		t.Fatal("dim mismatch must error")
	}
	wrongC, _ := NewNetwork(3, ds.Dim(), ActLinear, LossMSE)
	if _, err := Train(wrongC, ds, DefaultTrainConfig(), src); err == nil {
		t.Fatal("class mismatch must error")
	}
}

func TestTrainDeterminism(t *testing.T) {
	src1 := rng.New(5)
	src2 := rng.New(5)
	ds1, _ := dataset.GenerateMNISTLike(src1.Split("d"), 50, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.5, PixelNoise: 0.02})
	ds2, _ := dataset.GenerateMNISTLike(src2.Split("d"), 50, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.5, PixelNoise: 0.02})
	cfg := TrainConfig{Epochs: 5, BatchSize: 8, LearningRate: 0.05, Momentum: 0.9}
	a, _, err := TrainNew(ds1, ActLinear, LossMSE, cfg, src1.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TrainNew(ds2, ActLinear, LossMSE, cfg, src2.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.W.Equal(b.W, 0) {
		t.Fatal("training must be deterministic given a seed")
	}
}

func TestCloneIndependence(t *testing.T) {
	n, _ := NewNetwork(2, 2, ActLinear, LossMSE)
	c := n.Clone()
	c.W.Set(0, 0, 42)
	if n.W.At(0, 0) == 42 {
		t.Fatal("Clone must deep-copy W")
	}
}

func TestMeanAbsInputGradientShape(t *testing.T) {
	src := rng.New(8)
	ds, _ := dataset.GenerateMNISTLike(src, 30, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.3, PixelNoise: 0.02})
	n, _ := NewNetwork(10, ds.Dim(), ActLinear, LossMSE)
	n.InitXavier(src)
	g := n.MeanAbsInputGradient(ds)
	if len(g) != ds.Dim() {
		t.Fatalf("len = %d", len(g))
	}
	for _, v := range g {
		if v < 0 {
			t.Fatal("mean absolute gradient must be non-negative")
		}
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	n, _ := NewNetwork(2, 4, ActLinear, LossMSE)
	empty := &dataset.Dataset{X: tensor.New(0, 4), NumClasses: 2, Width: 2, Height: 2, Channels: 1}
	if n.Accuracy(empty) != 0 || n.MeanLoss(empty) != 0 {
		t.Fatal("empty dataset accuracy/loss must be 0")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	src := rng.New(13)
	ds, _ := dataset.GenerateMNISTLike(src.Split("d"), 60, dataset.MNISTLikeConfig{Size: 8, StrokeWidth: 0.06, Jitter: 0.3, PixelNoise: 0.02})
	cfg := TrainConfig{Epochs: 10, BatchSize: 16, LearningRate: 0.05, Momentum: 0.9}
	plain, _, err := TrainNew(ds, ActLinear, LossMSE, cfg, src.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.WeightDecay = 0.1
	decayed, _, err := TrainNew(ds, ActLinear, LossMSE, cfg, src.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	if decayed.W.FrobeniusNorm() >= plain.W.FrobeniusNorm() {
		t.Fatal("weight decay should shrink the weight norm")
	}
}
