package nn

import (
	"fmt"

	"xbarsec/internal/dataset"
	"xbarsec/internal/tensor"
)

// Batched inference paths. The attack sweeps evaluate thousands of
// perturbed inputs per point; doing it as one matrix product instead of a
// MatVec per sample keeps the Figure 4/5 harnesses fast.

// ForwardBatch returns f(X Wᵀ): one output row per input row of x. The
// product runs through GemmTB — no transposed copy of W is materialized —
// and is bit-identical to per-sample Forward calls.
func (n *Network) ForwardBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != n.Inputs() {
		return nil, fmt.Errorf("nn: batch width %d, want %d", x.Cols(), n.Inputs())
	}
	s := tensor.New(x.Rows(), n.Outputs())
	tensor.GemmTB(s, x, n.W)
	for i := 0; i < s.Rows(); i++ {
		applyActivation(n.Act, s.Row(i))
	}
	return s, nil
}

// PredictBatch returns the argmax class per input row of x.
func (n *Network) PredictBatch(x *tensor.Matrix) ([]int, error) {
	y, err := n.ForwardBatch(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, y.Rows())
	for i := range out {
		out[i] = tensor.ArgMax(y.Row(i))
	}
	return out, nil
}

// AccuracyBatch computes top-1 accuracy over ds through the batched path.
// It returns the same value as Accuracy.
func (n *Network) AccuracyBatch(ds *dataset.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	preds, err := n.PredictBatch(ds.X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// gradChunk bounds the pre-activation/delta workspace of the batched
// gradient paths: gradients stream through chunks of this many samples so
// arbitrarily large evaluation sets need only O(chunk · outputs) scratch.
const gradChunk = 256

// InputGradientBatch returns one ∂L/∂u row per (input, target) row pair —
// the attack gradient path (Eq. 7) as two matrix-matrix products per
// chunk, bit-identical to per-sample InputGradient calls.
func (n *Network) InputGradientBatch(x, targets *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != n.Inputs() {
		return nil, fmt.Errorf("nn: batch width %d, want %d", x.Cols(), n.Inputs())
	}
	if targets.Rows() != x.Rows() || targets.Cols() != n.Outputs() {
		return nil, fmt.Errorf("nn: target shape %dx%d, want %dx%d", targets.Rows(), targets.Cols(), x.Rows(), n.Outputs())
	}
	out := tensor.New(x.Rows(), n.Inputs())
	rows := x.Rows()
	chunk := gradChunk
	if chunk > rows {
		chunk = rows
	}
	s := tensor.New(chunk, n.Outputs())
	d := tensor.New(chunk, n.Outputs())
	for c0 := 0; c0 < rows; c0 += chunk {
		c1 := c0 + chunk
		if c1 > rows {
			c1 = rows
		}
		sv, dv := s.RowSpan(0, c1-c0), d.RowSpan(0, c1-c0)
		tensor.GemmTB(sv, x.RowSpan(c0, c1), n.W)
		for bi := 0; bi < c1-c0; bi++ {
			outputDeltaInto(n.Act, n.Crit, sv.Row(bi), targets.Row(c0+bi), dv.Row(bi))
		}
		// ∂L/∂u = δ W, one row per sample (Eq. 7).
		tensor.Gemm(out.RowSpan(c0, c1), dv, n.W)
	}
	return out, nil
}
