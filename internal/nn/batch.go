package nn

import (
	"fmt"

	"xbarsec/internal/dataset"
	"xbarsec/internal/tensor"
)

// Batched inference paths. The attack sweeps evaluate thousands of
// perturbed inputs per point; doing it as one matrix product instead of a
// MatVec per sample keeps the Figure 4/5 harnesses fast.

// ForwardBatch returns f(X Wᵀ): one output row per input row of x.
func (n *Network) ForwardBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != n.Inputs() {
		return nil, fmt.Errorf("nn: batch width %d, want %d", x.Cols(), n.Inputs())
	}
	s := x.MatMul(n.W.T())
	for i := 0; i < s.Rows(); i++ {
		applyActivation(n.Act, s.Row(i))
	}
	return s, nil
}

// PredictBatch returns the argmax class per input row of x.
func (n *Network) PredictBatch(x *tensor.Matrix) ([]int, error) {
	y, err := n.ForwardBatch(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, y.Rows())
	for i := range out {
		out[i] = tensor.ArgMax(y.Row(i))
	}
	return out, nil
}

// AccuracyBatch computes top-1 accuracy over ds through the batched path.
// It returns the same value as Accuracy.
func (n *Network) AccuracyBatch(ds *dataset.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	preds, err := n.PredictBatch(ds.X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// InputGradientBatch returns one ∂L/∂u row per (input, target) row pair.
func (n *Network) InputGradientBatch(x, targets *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != n.Inputs() {
		return nil, fmt.Errorf("nn: batch width %d, want %d", x.Cols(), n.Inputs())
	}
	if targets.Rows() != x.Rows() || targets.Cols() != n.Outputs() {
		return nil, fmt.Errorf("nn: target shape %dx%d, want %dx%d", targets.Rows(), targets.Cols(), x.Rows(), n.Outputs())
	}
	out := tensor.New(x.Rows(), n.Inputs())
	for i := 0; i < x.Rows(); i++ {
		out.SetRow(i, n.InputGradient(x.Row(i), targets.Row(i)))
	}
	return out, nil
}
