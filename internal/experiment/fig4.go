package experiment

import (
	"fmt"
	"strings"

	"xbarsec/internal/attack"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Fig4Curve is one attack-method line of a Figure 4 panel.
type Fig4Curve struct {
	Method     attack.PixelMethod
	Strengths  []float64
	Accuracies []float64
}

// Fig4Panel holds all five method curves for one configuration.
type Fig4Panel struct {
	Config ModelConfig
	Curves []Fig4Curve
	// CleanAccuracy is the unperturbed test accuracy for reference.
	CleanAccuracy float64
}

// Fig4Result reproduces Figure 4's four panels.
type Fig4Result struct {
	Panels []Fig4Panel
}

// fig4Strengths returns the attack-strength sweep (the paper uses 0..10).
func fig4Strengths(opts Options) []float64 {
	step := 1.0
	if opts.Scale < 0.5 {
		step = 2.0
	}
	var out []float64
	for e := 0.0; e <= 10.0+1e-9; e += step {
		out = append(out, e)
	}
	return out
}

// RunFig4 regenerates Figure 4: single-pixel attacks guided by power
// information, for five methods per configuration, evaluated against the
// crossbar-hosted oracle.
func RunFig4(opts Options) (*Fig4Result, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("fig4")
	strengths := fig4Strengths(opts)
	configs := FourConfigs()
	panels := make([]Fig4Panel, len(configs))
	err := pool.DoErr(opts.Workers, len(configs), func(ci int) error {
		cfg := configs[ci]
		src := root.Split(cfg.Name())
		v, err := buildVictim(cfg, opts, src)
		if err != nil {
			return err
		}
		panel := Fig4Panel{Config: cfg}
		clean, err := evaluateSinglePixel(v, attack.PixelRandom, 0, src.Split("clean"), opts.Workers)
		if err != nil {
			return err
		}
		panel.CleanAccuracy = clean
		for _, method := range attack.AllPixelMethods() {
			curve := Fig4Curve{Method: method, Strengths: strengths}
			for _, eps := range strengths {
				acc, err := evaluateSinglePixel(v, method, eps, src.SplitN(method.String(), int(eps*10)), opts.Workers)
				if err != nil {
					return fmt.Errorf("experiment: fig4 %s %s eps=%v: %w", cfg.Name(), method, eps, err)
				}
				curve.Accuracies = append(curve.Accuracies, acc)
			}
			panel.Curves = append(panel.Curves, curve)
		}
		panels[ci] = panel
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Panels: panels}, nil
}

// evaluateSinglePixel perturbs every test image with the method and
// measures the crossbar oracle's accuracy, exactly the protocol behind
// each Figure 4 point. Adversarial examples are crafted concurrently —
// each sample from its own split of src, so the perturbations are
// worker-count independent — and evaluated through the oracle's batched
// predictor in one programming pass.
func evaluateSinglePixel(v *victim, method attack.PixelMethod, eps float64, src *rng.Source, workers int) (float64, error) {
	ds := v.test
	oh := ds.OneHot()
	advs := make([][]float64, ds.Len())
	err := pool.DoErr(workers, ds.Len(), func(i int) error {
		u := tensor.CloneVec(ds.X.Row(i))
		adv, err := attack.SinglePixel(method, u, oh.Row(i), eps, v.signals, v.net, src.SplitN("sample", i))
		if err != nil {
			return err
		}
		advs[i] = adv
		return nil
	})
	if err != nil {
		return 0, err
	}
	labels, err := v.hw.PredictBatch(advs)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, label := range labels {
		if label == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Render prints one accuracy-vs-strength table per panel.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	for _, panel := range r.Panels {
		tbl := &report.Table{
			Title:  fmt.Sprintf("Figure 4 [%s]: test accuracy vs attack strength (clean=%.3f)", panel.Config.Name(), panel.CleanAccuracy),
			Header: []string{"strength"},
		}
		for _, c := range panel.Curves {
			tbl.Header = append(tbl.Header, c.Method.String())
		}
		if len(panel.Curves) > 0 {
			for k := range panel.Curves[0].Strengths {
				row := []string{report.F(panel.Curves[0].Strengths[k], 1)}
				for _, c := range panel.Curves {
					row = append(row, report.F(c.Accuracies[k], 3))
				}
				tbl.AddRow(row...)
			}
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Series exports the panel curves as plottable series keyed by config.
func (r *Fig4Result) Series() map[string][]report.Series {
	out := make(map[string][]report.Series, len(r.Panels))
	for _, panel := range r.Panels {
		var ss []report.Series
		for _, c := range panel.Curves {
			ss = append(ss, report.Series{Name: c.Method.String(), X: c.Strengths, Y: c.Accuracies})
		}
		out[panel.Config.Name()] = ss
	}
	return out
}
