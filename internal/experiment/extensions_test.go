package experiment

import (
	"strings"
	"testing"
)

func TestRunDepthAblation(t *testing.T) {
	res, err := RunDepthAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Rows[0].Hidden) != 0 {
		t.Fatal("first row must be the single-layer baseline")
	}
	for _, row := range res.Rows {
		if row.TestAccuracy < 0.2 {
			t.Fatalf("hidden=%v: accuracy %v implausibly low", row.Hidden, row.TestAccuracy)
		}
		if row.CorrOfMean < -1.001 || row.CorrOfMean > 1.001 {
			t.Fatalf("correlation %v out of range", row.CorrOfMean)
		}
	}
	// The single-layer case must show a strong Case-1 signal.
	if res.Rows[0].CorrOfMean < 0.5 {
		t.Fatalf("single-layer correlation %v should be strong", res.Rows[0].CorrOfMean)
	}
	if out := res.Render(); !strings.Contains(out, "Extension A4") {
		t.Fatal("render incomplete")
	}
}

func TestRunMaskingAblation(t *testing.T) {
	res, err := RunMaskingAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The plain array leaks a perfect ranking; the masked one leaks
	// nothing.
	if res.RankCorrPlain < 0.999 {
		t.Fatalf("plain rank corr %v, want ~1", res.RankCorrPlain)
	}
	if res.RankCorrMasked > 0.2 || res.RankCorrMasked < -0.2 {
		t.Fatalf("masked rank corr %v, want ~0", res.RankCorrMasked)
	}
	// Masking must not change clean accuracy, and it costs power.
	if res.Overhead <= 0 {
		t.Fatalf("mask overhead %v must be positive", res.Overhead)
	}
	// The power-guided attack must be at least as effective against the
	// plain array as against the masked one (which degrades to a random
	// pixel choice).
	if res.AttackAccPlain > res.AttackAccMasked+0.1 {
		t.Fatalf("masking should blunt the attack: plain %v vs masked %v",
			res.AttackAccPlain, res.AttackAccMasked)
	}
	if out := res.Render(); !strings.Contains(out, "Extension A5") {
		t.Fatal("render incomplete")
	}
}

func TestRunTraceAblation(t *testing.T) {
	res, err := RunTraceAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	basis, traced := res.Rows[0], res.Rows[2]
	if basis.Inferences != res.Inputs {
		t.Fatalf("basis cost %d, want %d", basis.Inferences, res.Inputs)
	}
	// All strategies recover a near-perfect ranking on the ideal array.
	for _, row := range res.Rows {
		if row.RankCorr < 0.99 {
			t.Fatalf("%s: rank corr %v too low", row.Strategy, row.RankCorr)
		}
	}
	// The temporal channel is dramatically cheaper.
	if traced.Inferences*4 > basis.Inferences {
		t.Fatalf("bit-serial traces should cost <= N/4 inferences: %d vs %d",
			traced.Inferences, basis.Inferences)
	}
	if out := res.Render(); !strings.Contains(out, "Extension A6") {
		t.Fatal("render incomplete")
	}
}
