package experiment

import (
	"fmt"
	"sync/atomic"

	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/memo"
	"xbarsec/internal/rng"
)

// The victim store memoizes trained victims process-wide. Training is
// by far the dominant cost of every runner, and several runners — and
// every repeated or concurrent invocation of the same runner, which is
// exactly what the service layer's experiment jobs produce — rebuild
// victims from identical inputs.
//
// Equal config ⇒ equal victim. Every victim trains from ONE canonical
// stream derived from the run seed and the config alone:
// rng.New(opts.Seed).Split("victim").Split(cfg.Name()). No runner
// supplies its own stream — victimFor is the only entry point runners
// may use (enforced by TestGetVictimConvention) — so the store key is
// exactly the victim's semantic identity: (ModelConfig, Options.Seed,
// the Scale-resolved split sizes, DataDir). Two runners asking for the
// same config at the same seed/scale/data always share one trained
// victim; `xbarattack all` trains each of the paper's four configs
// exactly once.
//
// Historically each runner derived victim streams from its own root
// label ("fig3", "table1", ...), which made the stream seed part of the
// key and trained ~20 victims where 4 distinct configs existed. The
// golden files under testdata/golden were retrained when the streams
// were unified (protocol v2); see EXPERIMENTS.md.
//
// Stored victims are shared across goroutines and runners; they are
// read-only by contract (the ideal crossbar is stateless and
// experiment code never mutates a victim's fields).
//
// The store is bounded two ways: by entry count and by approximate
// resident bytes (victimBytes). Victims are wildly uneven — a scale-1
// CIFAR victim pins tens of MB of split data while a toy MNIST one is
// kilobytes — so an entry bound alone would let a seed-sweeping client
// pin gigabytes; the byte budget (DefaultVictimStoreBytes unless
// reconfigured) makes the limit track actual memory.

// Victim-store default bounds.
const (
	defaultMaxVictims = 64
	// DefaultVictimStoreBytes is the default byte budget of the victim
	// store: 1 GiB, roughly twenty scale-1 CIFAR victims.
	DefaultVictimStoreBytes int64 = 1 << 30
)

var victimStore = struct {
	cache     atomic.Pointer[memo.Cache[*victim]]
	trainings atomic.Int64
}{}

func init() {
	victimStore.cache.Store(newVictimCache(defaultMaxVictims, DefaultVictimStoreBytes))
}

func newVictimCache(maxVictims int, maxBytes int64) *memo.Cache[*victim] {
	return memo.NewWeighted[*victim](maxVictims, maxBytes, victimBytes)
}

// ConfigureVictimStore replaces the process-wide victim store with one
// bounded to maxVictims entries and maxBytes approximate resident bytes
// (<= 0 selects the defaults). Existing cached victims are dropped;
// in-flight trainings finish against the old store. Intended for
// process startup (xbarserve flags) — calling it mid-run only costs
// retraining, never correctness.
func ConfigureVictimStore(maxVictims int, maxBytes int64) {
	if maxVictims <= 0 {
		maxVictims = defaultMaxVictims
	}
	if maxBytes <= 0 {
		maxBytes = DefaultVictimStoreBytes
	}
	victimStore.cache.Store(newVictimCache(maxVictims, maxBytes))
}

// victimBytes approximates one stored victim's resident bytes: the two
// data splits, the software weight matrix, the crossbar's G+/G- device
// matrices plus their two lazily-built effective-conductance caches
// (crossbar/batch.go), and any extracted signals. Deliberately an
// estimate — the budget is a memory-pressure bound, not an allocator
// ledger.
func victimBytes(v *victim) int64 {
	const f64 = 8
	var n int64
	split := func(d *dataset.Dataset) {
		if d == nil {
			return
		}
		n += int64(d.X.Rows()*d.X.Cols()+len(d.Labels)) * f64
	}
	split(v.train)
	split(v.test)
	if v.net != nil && v.net.W != nil {
		n += int64(v.net.W.Rows()*v.net.W.Cols()) * f64
	}
	if v.hw != nil {
		n += 4 * int64(v.hw.Inputs()*v.hw.Outputs()) * f64
	}
	n += int64(len(v.signals)) * f64
	return n
}

// victimStream derives the one canonical training stream for cfg at
// opts: rng.New(Seed).Split("victim").Split(cfg.Name()). It is rooted
// in the run seed and the config — never in a runner's root label — so
// every runner at the same options trains (or shares) bit-identical
// victims.
func victimStream(cfg ModelConfig, opts Options) *rng.Source {
	return rng.New(opts.Seed).Split("victim").Split(cfg.Name())
}

// victimKey is the store identity of one victim: the config, the run
// seed the canonical stream derives from, the Scale-resolved split
// sizes, and the data directory. Nothing runner-specific appears here —
// that is the whole point of the canonical stream.
func victimKey(cfg ModelConfig, opts Options) string {
	trainN, testN := victimSplitSizes(cfg, opts)
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%s",
		cfg.Kind, cfg.Act, cfg.Crit, opts.Seed, trainN, testN, opts.DataDir)
}

// getVictim returns the victim for (cfg, opts), training it from the
// canonical stream on the first request and serving every later
// identical request from the store. Runners must not call this
// directly; they go through victimFor (see TestGetVictimConvention).
func getVictim(cfg ModelConfig, opts Options) (*victim, error) {
	v, _, err := victimStore.cache.Load().Do(victimKey(cfg, opts), func() (*victim, error) {
		victimStore.trainings.Add(1)
		return buildVictim(cfg, opts, victimStream(cfg, opts))
	})
	return v, err
}

// victimFor is the one way a runner obtains a victim: the store lookup
// at the run's options, with the stream derivation owned entirely by
// the store. Runners cannot pass a stream, so they cannot diverge from
// the canonical one.
func victimFor(t *engine.T, cfg ModelConfig) (*victim, error) {
	return getVictim(cfg, t.Opts)
}

// VictimStoreStats is a point-in-time snapshot of the victim store.
type VictimStoreStats struct {
	// Hits counts requests served from a completed or in-flight
	// computation (joiners of an in-flight training count as hits);
	// Misses counts training flights started.
	Hits, Misses int64
	// Trainings counts actual victim training runs — the number the
	// store exists to minimize.
	Trainings int64
	// Cached is the number of victims currently in memory; Bytes is
	// their approximate resident size (the value the byte budget
	// bounds).
	Cached int
	Bytes  int64
}

// StoreStats snapshots the victim store counters.
func StoreStats() VictimStoreStats {
	c := victimStore.cache.Load()
	h, m := c.Stats()
	return VictimStoreStats{
		Hits: h, Misses: m,
		Trainings: victimStore.trainings.Load(),
		Cached:    c.Size(),
		Bytes:     c.Weight(),
	}
}

// ResetVictimStore drops every cached victim and zeroes the counters.
// Benchmarks use it to measure the cold path; the engine-equivalence
// tests use it to isolate training counts.
func ResetVictimStore() {
	victimStore.cache.Load().Reset()
	victimStore.trainings.Store(0)
}
