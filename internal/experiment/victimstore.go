package experiment

import (
	"fmt"
	"sync/atomic"

	"xbarsec/internal/memo"
	"xbarsec/internal/rng"
)

// The victim store memoizes trained victims process-wide. Training is
// by far the dominant cost of every runner, and several runners — and
// every repeated or concurrent invocation of the same runner, which is
// exactly what the service layer's experiment jobs produce — rebuild
// victims from identical inputs. A victim is a pure function of
// (ModelConfig, the rng stream it trains from, the Scale-resolved split
// sizes, DataDir), so that tuple is the cache key and the singleflight
// cache guarantees each distinct victim trains at most once per
// process, with concurrent requests collapsing onto the one training.
//
// The stream seed is part of the key on purpose: the pre-engine runners
// each derived victim streams from their own root label ("fig3",
// "table1", ...), and those streams are pinned by the golden
// bit-identity tests — collapsing them onto one shared stream would
// change every published number. Two requests share a victim exactly
// when the pre-engine code would have trained two bit-identical ones.
//
// Stored victims are shared across goroutines and runners; they are
// read-only by contract (the ideal crossbar is stateless and
// experiment code never mutates a victim's fields).
var victimStore = struct {
	cache     *memo.Cache[*victim]
	trainings atomic.Int64
}{cache: memo.New[*victim](64)}

// victimKey is the store identity of one victim build request.
func victimKey(cfg ModelConfig, opts Options, src *rng.Source) string {
	trainN, testN := victimSplitSizes(cfg, opts)
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%s",
		cfg.Kind, cfg.Act, cfg.Crit, src.Seed(), trainN, testN, opts.DataDir)
}

// getVictim returns the victim for (cfg, opts, src), training it on the
// first request and serving every later identical request from the
// store. src must be the same stream the caller would have passed to
// buildVictim; getVictim only reads its seed (Split never consumes the
// parent stream), so callers may keep deriving child streams from src
// afterwards.
func getVictim(cfg ModelConfig, opts Options, src *rng.Source) (*victim, error) {
	v, _, err := victimStore.cache.Do(victimKey(cfg, opts, src), func() (*victim, error) {
		victimStore.trainings.Add(1)
		return buildVictim(cfg, opts, src)
	})
	return v, err
}

// VictimStoreStats is a point-in-time snapshot of the victim store.
type VictimStoreStats struct {
	// Hits counts requests served from a completed or in-flight
	// computation (joiners of an in-flight training count as hits);
	// Misses counts training flights started.
	Hits, Misses int64
	// Trainings counts actual victim training runs — the number the
	// store exists to minimize.
	Trainings int64
	// Cached is the number of victims currently in memory.
	Cached int
}

// StoreStats snapshots the victim store counters.
func StoreStats() VictimStoreStats {
	h, m := victimStore.cache.Stats()
	return VictimStoreStats{
		Hits: h, Misses: m,
		Trainings: victimStore.trainings.Load(),
		Cached:    victimStore.cache.Size(),
	}
}

// ResetVictimStore drops every cached victim and zeroes the counters.
// Benchmarks use it to measure the cold path; the engine-equivalence
// tests use it to isolate training counts.
func ResetVictimStore() {
	victimStore.cache.Reset()
	victimStore.trainings.Store(0)
}
