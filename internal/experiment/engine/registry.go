package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Experiment is one type-erased registry entry: a name, a description,
// and a runner producing the uniform Result. Three layers dispatch
// through it — cmd/xbarattack (CLI), internal/service (server-side
// jobs), and the xbarserve /experiments HTTP endpoint.
type Experiment struct {
	// Name is the registry key and CLI command.
	Name string
	// Title is a one-line human description.
	Title string
	// Run executes the experiment.
	Run func(opts Options) (Result, error)
	// Axes describes the grid's dimensions at the given options
	// (optional; may return nil).
	Axes func(opts Options) []Axis
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
)

// Register adds an experiment to the global registry. It panics on a
// duplicate or empty name — registration is init-time wiring, so a
// collision is a programming error, not a runtime condition.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("engine: Register needs a name and a runner")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[e.Name]; ok {
		panic(fmt.Sprintf("engine: experiment %q registered twice", e.Name))
	}
	registry[e.Name] = e
}

// Lookup returns the registered experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists registered experiment names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment, sorted by name.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON is the shared WriteJSON body for result types: indented
// JSON with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
