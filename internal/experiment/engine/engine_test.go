package engine

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"xbarsec/internal/report"
	"xbarsec/internal/rng"
)

// sumResult is a minimal Result for engine tests.
type sumResult struct {
	Values []float64 `json:"values"`
}

func (r *sumResult) Render() string { return fmt.Sprintf("values=%v", r.Values) }
func (r *sumResult) Tables() []*report.Table {
	t := &report.Table{Title: "sum", Header: []string{"i", "v"}}
	for i, v := range r.Values {
		t.AddRow(fmt.Sprint(i), report.F(v, 6))
	}
	return []*report.Table{t}
}
func (r *sumResult) WriteJSON(w io.Writer) error { return WriteJSON(w, r) }

// testGrid draws one normal value per cell from the cell's stream.
func testGrid() *Grid[struct{}, int, float64, *sumResult] {
	return &Grid[struct{}, int, float64, *sumResult]{
		Name:  "sum",
		Title: "test grid",
		Cells: func(t *T, _ struct{}) ([]int, error) {
			n := t.Opts.ScaledCount(100, 8)
			cells := make([]int, n)
			for i := range cells {
				cells[i] = i
			}
			return cells, nil
		},
		Src: func(t *T, cell, i int) *rng.Source { return t.Root.SplitN("cell", cell) },
		Job: func(t *T, _ struct{}, cell int, src *rng.Source) (float64, error) {
			return src.Normal(0, 1), nil
		},
		Reduce: func(t *T, _ struct{}, cells []int, results []float64) (*sumResult, error) {
			return &sumResult{Values: results}, nil
		},
	}
}

func TestGridWorkerInvariance(t *testing.T) {
	g := testGrid()
	var want *sumResult
	for wi, workers := range []int{1, 2, 7} {
		got, err := g.Run(Options{Seed: 3, Scale: 0.1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if wi == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, want)
		}
	}
}

func TestGridDefaultSrcMatchesExplicit(t *testing.T) {
	g := testGrid()
	explicit, err := g.Run(Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g.Src = nil // default is Root.SplitN("cell", i); cells are 0..n-1 so identical
	def, err := g.Run(Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(explicit, def) {
		t.Fatal("default cell stream diverged from explicit SplitN(\"cell\", i)")
	}
}

func TestGridSeedLabelIsolation(t *testing.T) {
	g := testGrid()
	a, err := g.Run(Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g.SeedLabel = "other-label"
	b, err := g.Run(Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seed labels must derive different streams")
	}
}

func TestGridErrorPropagation(t *testing.T) {
	g := testGrid()
	boom := errors.New("boom")
	g.Job = func(t *T, _ struct{}, cell int, src *rng.Source) (float64, error) {
		if cell >= 3 {
			return 0, fmt.Errorf("cell %d: %w", cell, boom)
		}
		return 0, nil
	}
	_, err := g.Run(Options{Seed: 1, Scale: 0.1, Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// pool.DoErr reports the lowest-index failure.
	if !strings.Contains(err.Error(), "cell 3") {
		t.Fatalf("expected lowest failing cell first, got %v", err)
	}
}

func TestGridSetupEnvReachesJobs(t *testing.T) {
	g := &Grid[int, int, int, *sumResult]{
		Name:  "env",
		Setup: func(t *T) (int, error) { return 40, nil },
		Cells: func(t *T, env int) ([]int, error) { return []int{1, 2}, nil },
		Job: func(t *T, env, cell int, src *rng.Source) (int, error) {
			return env + cell, nil
		},
		Reduce: func(t *T, env int, cells, results []int) (*sumResult, error) {
			out := &sumResult{}
			for _, r := range results {
				out.Values = append(out.Values, float64(r))
			}
			return out, nil
		},
	}
	res, err := g.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, []float64{41, 42}) {
		t.Fatalf("values %v", res.Values)
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.Normalized()
	if o.Scale != 1 {
		t.Fatalf("default scale %v", o.Scale)
	}
	if (Options{Scale: 2}).Normalized().Scale != 1 {
		t.Fatal("over-scale must clamp to 1")
	}
	if (Options{Scale: 0.1}).ScaledCount(1000, 200) != 200 {
		t.Fatal("ScaledCount must respect minimum")
	}
	if (Options{Scale: 0.5}).Normalized().ScaledCount(1000, 200) != 500 {
		t.Fatal("ScaledCount must multiply")
	}
}

func TestSweepFloatsMatchesAccumulationLoop(t *testing.T) {
	// The exact generator the old fig4Strengths used.
	accumulate := func(step float64) []float64 {
		var out []float64
		for e := 0.0; e <= 10.0+1e-9; e += step {
			out = append(out, e)
		}
		return out
	}
	for _, step := range []float64{1.0, 2.0} {
		want := accumulate(step)
		got := SweepFloats(0, 10, step)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %v: %v vs accumulated %v", step, got, want)
		}
	}
}

func TestSweepFloatsNonExactStep(t *testing.T) {
	got := SweepFloats(0, 1, 0.1)
	if len(got) != 11 {
		t.Fatalf("0..1 by 0.1: %d points (%v)", len(got), got)
	}
	// Integer stepping: point i is exactly lo + i*step, not a running sum.
	for i, v := range got {
		if v != float64(i)*0.1 {
			t.Fatalf("point %d = %v, want %v", i, v, float64(i)*0.1)
		}
	}
	if SweepFloats(0, 10, 0) != nil {
		t.Fatal("zero step must yield nil")
	}
	if SweepFloats(1, 0, 1) != nil {
		t.Fatal("inverted range must yield nil")
	}
	if got := SweepFloats(5, 5, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate range: %v", got)
	}
}

func TestSweepInts(t *testing.T) {
	if got := SweepInts(1, 7, 2); !reflect.DeepEqual(got, []int{1, 3, 5, 7}) {
		t.Fatalf("got %v", got)
	}
	if SweepInts(3, 1, 1) != nil {
		t.Fatal("inverted range must yield nil")
	}
}

func TestCrossProductRowMajor(t *testing.T) {
	got := CrossProduct(2, 3)
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if CrossProduct(2, 0) != nil {
		t.Fatal("empty axis must yield nil")
	}
}

func TestRegistry(t *testing.T) {
	name := "engine-test-registry-entry"
	Register(Experiment{
		Name:  name,
		Title: "test entry",
		Run: func(opts Options) (Result, error) {
			return nil, errors.New("unused")
		},
	})
	if _, ok := Lookup(name); !ok {
		t.Fatal("registered experiment not found")
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing registered experiment")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(Experiment{Name: name, Run: func(Options) (Result, error) { return nil, nil }})
}
