// Package engine is the deterministic grid engine every experiment
// runner in this repository is built on. An experiment is a declarative
// Grid spec — named axes enumerated into cells, a per-cell job that is a
// pure function of (options, environment, cell, cell stream), and a
// typed reduction run in cell order — rather than a bespoke fan-out
// loop. The engine owns the mechanics the runners used to hand-roll:
// root-stream derivation, the worker-pool fan-out, result assembly in
// cell order, and the uniform Result surface the CLI, the service layer
// and the HTTP API all consume.
//
// Determinism contract (inherited from internal/pool and internal/rng):
// cell enumeration depends only on Options and the Setup environment;
// each cell's randomness derives from the run root via Split/SplitN
// keyed by the cell's identity, never from a stream shared across
// cells; and Reduce sees results in enumeration order. Under that
// contract a grid's output is bit-identical at every worker count.
package engine

import (
	"io"

	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
)

// Options configures an experiment run. It is shared by every grid in
// the registry so one flag set / wire format drives them all.
type Options struct {
	// Seed drives every random choice in the experiment.
	Seed int64
	// Scale in (0, 1] shrinks dataset sizes and sweep densities; 1.0
	// reproduces paper-sized sweeps on the synthetic datasets.
	Scale float64
	// DataDir, when set, is searched for real MNIST/CIFAR files.
	DataDir string
	// Runs overrides the number of independent repetitions (0 = scaled
	// default: 5 for Table I, 10 for Figure 5, as in the paper).
	Runs int
	// Workers bounds the concurrent goroutines per fan-out level (0 =
	// all CPUs, 1 = strictly serial). Grids nest fan-outs — e.g. Fig. 4
	// fans configurations and, within each, per-sample attack
	// evaluations — so total concurrency can exceed Workers (see
	// pool.Do); Workers == 1 disables every level and is exactly the
	// serial path. Any value produces bit-identical results: every work
	// item derives its randomness from Seed via rng.Source.Split/SplitN
	// keyed by the item's identity — never from a stream shared across
	// items — and results are assembled in item order, so nothing
	// depends on goroutine scheduling.
	Workers int
}

// Normalized clamps Options into its valid domain (the zero value runs
// at full scale).
func (o Options) Normalized() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

// ScaledCount shrinks a full-scale workload count by Scale, bounded
// below by minimum so tiny scales stay statistically meaningful.
func (o Options) ScaledCount(full, minimum int) int {
	v := int(float64(full) * o.Scale)
	if v < minimum {
		v = minimum
	}
	return v
}

// Result is the uniform deliverable of every registered experiment:
// renderable for humans, tabular for CSV export, and serializable for
// the HTTP API. Render returns exactly the bytes the pre-engine CLI
// printed for the experiment, so migrations are pinned by byte
// comparison.
type Result interface {
	// Render returns the human-readable report (tables, heatmaps,
	// plots) without a trailing newline.
	Render() string
	// Tables returns the result's tabular views for CSV export.
	Tables() []*report.Table
	// WriteJSON serializes the full structured result.
	WriteJSON(w io.Writer) error
}

// T carries one run's shared context into every spec hook.
type T struct {
	// Opts is the normalized run configuration.
	Opts Options
	// Root is rng.New(Opts.Seed).Split(seed label): the stream every
	// cell stream must derive from.
	Root *rng.Source
}

// Grid is the declarative description of one experiment: a typed
// (environment, cell, per-cell result, output) pipeline the engine
// executes deterministically.
//
// E is the shared environment Setup builds once per run (trained
// victims, datasets); C is one grid cell; R is one cell's result; Out
// is the aggregate the experiment returns.
type Grid[E, C, R any, Out Result] struct {
	// Name is the registry key and CLI command, e.g. "table1".
	Name string
	// Title is a one-line human description for listings.
	Title string
	// SeedLabel roots the run stream: rng.New(seed).Split(SeedLabel).
	// Empty selects Name. Migrated runners keep their historical label
	// here so outputs stay bit-identical to the pre-engine code.
	SeedLabel string
	// Axes describes the grid's named dimensions for listings and
	// result metadata (optional, purely descriptive).
	Axes func(t *T) []Axis
	// Setup builds the shared environment once per run, before the
	// fan-out (optional; heavy work belongs here or in Job, never in
	// Cells). It may fan out internally via pool on t.Opts.Workers.
	Setup func(t *T) (E, error)
	// Cells deterministically enumerates the grid from options and
	// environment.
	Cells func(t *T, env E) ([]C, error)
	// Src derives cell i's private random stream from t.Root. It must
	// depend only on the cell's identity. Optional: the default is
	// t.Root.SplitN("cell", i).
	Src func(t *T, cell C, i int) *rng.Source
	// Job computes one cell — a pure function of (t.Opts, env, cell,
	// src). Jobs run concurrently across Workers goroutines.
	Job func(t *T, env E, cell C, src *rng.Source) (R, error)
	// Reduce aggregates the per-cell results, delivered in enumeration
	// order regardless of scheduling.
	Reduce func(t *T, env E, cells []C, results []R) (Out, error)
}

// seedLabel returns the root-stream label.
func (g *Grid[E, C, R, Out]) seedLabel() string {
	if g.SeedLabel != "" {
		return g.SeedLabel
	}
	return g.Name
}

// Run executes the grid: normalize options, derive the root stream,
// Setup, enumerate, fan the cells across the worker pool, and Reduce in
// cell order.
func (g *Grid[E, C, R, Out]) Run(opts Options) (Out, error) {
	var zero Out
	t := &T{Opts: opts.Normalized()}
	t.Root = rng.New(t.Opts.Seed).Split(g.seedLabel())
	var env E
	if g.Setup != nil {
		var err error
		if env, err = g.Setup(t); err != nil {
			return zero, err
		}
	}
	cells, err := g.Cells(t, env)
	if err != nil {
		return zero, err
	}
	results := make([]R, len(cells))
	err = pool.DoErr(t.Opts.Workers, len(cells), func(i int) error {
		src := t.Root.SplitN("cell", i)
		if g.Src != nil {
			src = g.Src(t, cells[i], i)
		}
		r, err := g.Job(t, env, cells[i], src)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return zero, err
	}
	return g.Reduce(t, env, cells, results)
}

// Experiment returns the type-erased registry entry for the grid.
func (g *Grid[E, C, R, Out]) Experiment() Experiment {
	return Experiment{
		Name:  g.Name,
		Title: g.Title,
		Run: func(opts Options) (Result, error) {
			out, err := g.Run(opts)
			if err != nil {
				return nil, err
			}
			return out, nil
		},
		Axes: func(opts Options) []Axis {
			if g.Axes == nil {
				return nil
			}
			t := &T{Opts: opts.Normalized()}
			t.Root = rng.New(t.Opts.Seed).Split(g.seedLabel())
			return g.Axes(t)
		},
	}
}
