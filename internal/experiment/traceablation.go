package experiment

import (
	"fmt"
	"io"

	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
	"xbarsec/internal/trace"
)

// TraceAblationRow compares one extraction strategy's cost and fidelity.
type TraceAblationRow struct {
	// Strategy names the extraction method.
	Strategy string `json:"strategy"`
	// Inferences is the number of full inferences the attacker ran.
	Inferences int `json:"inferences"`
	// RankCorr is the Spearman correlation of the recovered signals with
	// the true column 1-norms.
	RankCorr float64 `json:"rank_corr"`
}

// TraceAblationResult is extension experiment A6: static basis queries vs
// least-squares over natural inputs vs bit-serial trace recovery, at
// equal fidelity targets.
type TraceAblationResult struct {
	Rows []TraceAblationRow `json:"rows"`
	// Inputs is the victim's input dimensionality (the static baseline
	// cost).
	Inputs int `json:"inputs"`
}

// traceGrid quantifies how much cheaper the temporal (bit-serial trace)
// channel makes 1-norm extraction compared with the paper's static
// model: N basis queries vs Q >= N natural-input measurements vs
// ceil(N/Bits) traced inferences. The three strategies share one probe
// whose query counter is reset between them, so this experiment is a
// single sequential cell on the engine — the degenerate but legal grid
// shape for inherently ordered protocols.
var traceGrid = &engine.Grid[struct{}, struct{}, *TraceAblationResult, *TraceAblationResult]{
	Name:      "ablate-trace",
	Title:     "1-norm extraction cost, basis vs LS vs bit-serial traces (A6)",
	SeedLabel: "ablation-trace",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{{Name: "strategy", Values: []string{
			"static basis queries", "static LS on arbitrary inputs", "bit-serial traces (8-bit DAC)",
		}}}
	},
	Cells: func(t *engine.T, _ struct{}) ([]struct{}, error) {
		return []struct{}{{}}, nil
	},
	Src: func(t *engine.T, _ struct{}, _ int) *rng.Source {
		// The sequential protocol derives its measurement-input streams
		// from the run root itself; the victim comes from the canonical
		// config-rooted stream via victimFor.
		return t.Root
	},
	Job: func(t *engine.T, _ struct{}, _ struct{}, root *rng.Source) (*TraceAblationResult, error) {
		cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
		v, err := victimFor(t, cfg)
		if err != nil {
			return nil, err
		}
		trueNorms := v.net.W.ColAbsSums()
		n := v.net.Inputs()
		res := &TraceAblationResult{Inputs: n}

		// Strategy 1: the paper's static basis queries (N inferences).
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(v.hw.Crossbar()), 0, nil)
		if err != nil {
			return nil, err
		}
		signals, err := probe.ExtractColumnSignals(1)
		if err != nil {
			return nil, err
		}
		rho, err := stats.Spearman(signals, trueNorms)
		if err != nil {
			return nil, fmt.Errorf("experiment: trace ablation basis: %w", err)
		}
		res.Rows = append(res.Rows, TraceAblationRow{Strategy: "static basis queries", Inferences: probe.Queries(), RankCorr: rho})

		// Strategy 2: static least squares over arbitrary (non-basis) inputs
		// — stealthier ride-along measurement, still >= N inferences.
		probe.ResetQueries()
		q := n + n/4
		lsSrc := root.Split("ls-inputs")
		lsInputs := tensor.New(q, n)
		for i := 0; i < q; i++ {
			lsInputs.SetRow(i, lsSrc.UniformVec(n, 0, 1))
		}
		lsSignals, err := probe.EstimateColumnSignalsLS(lsInputs)
		if err != nil {
			return nil, err
		}
		rho, err = stats.Spearman(lsSignals, trueNorms)
		if err != nil {
			return nil, fmt.Errorf("experiment: trace ablation LS: %w", err)
		}
		res.Rows = append(res.Rows, TraceAblationRow{Strategy: "static LS on arbitrary inputs", Inferences: probe.Queries(), RankCorr: rho})

		// Strategy 3: bit-serial trace recovery (ceil(N/Bits) inferences).
		const bits = 8
		rec, err := trace.NewRecorder(sidechannel.MeterFromCrossbar(v.hw.Crossbar()), bits, 0, nil)
		if err != nil {
			return nil, err
		}
		needed := (n + bits - 1) / bits
		needed += needed / 4 // slack for conditioning
		src := root.Split("trace-inputs")
		trInputs := tensor.New(needed, n)
		for i := 0; i < needed; i++ {
			trInputs.SetRow(i, src.UniformVec(n, 0, 1))
		}
		trSignals, err := rec.RecoverColumnSignals(trInputs)
		if err != nil {
			return nil, err
		}
		rho, err = stats.Spearman(trSignals, trueNorms)
		if err != nil {
			return nil, fmt.Errorf("experiment: trace ablation bit-serial: %w", err)
		}
		res.Rows = append(res.Rows, TraceAblationRow{Strategy: "bit-serial traces (8-bit DAC)", Inferences: rec.Queries(), RankCorr: rho})
		return res, nil
	},
	Reduce: func(t *engine.T, _ struct{}, cells []struct{}, results []*TraceAblationResult) (*TraceAblationResult, error) {
		return results[0], nil
	},
}

// RunTraceAblation quantifies 1-norm extraction cost across the static
// and temporal channels.
func RunTraceAblation(opts Options) (*TraceAblationResult, error) {
	return traceGrid.Run(opts)
}

// Tables formats A6 as a table.
func (r *TraceAblationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Extension A6: 1-norm extraction cost (victim has %d inputs)", r.Inputs),
		Header: []string{"strategy", "inferences", "rank corr"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, fmt.Sprintf("%d", row.Inferences), report.F(row.RankCorr, 3))
	}
	return []*report.Table{t}
}

// Render formats A6.
func (r *TraceAblationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *TraceAblationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }
