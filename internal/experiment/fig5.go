package experiment

import (
	"fmt"
	"sort"
	"strings"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

// fig5AttackEps is the FGSM strength the paper uses for Figure 5.
const fig5AttackEps = 0.1

// Fig5Options extends Options with the sweep grids of Figure 5; zero
// values select the paper's grids (thinned at small Scale).
type Fig5Options struct {
	Options
	// Queries overrides the query-budget grid.
	Queries []int
	// Lambdas overrides the power-loss-weight grid.
	Lambdas []float64
	// SurrogateEpochs overrides surrogate training length.
	SurrogateEpochs int
}

// Fig5Row holds one row of Figure 5 (a dataset x disclosure-mode pair):
// per (λ, query budget) the surrogate's test accuracy and the oracle's
// adversarial accuracy under surrogate-crafted FGSM, across runs.
type Fig5Row struct {
	Kind    dataset.Kind
	Mode    oracle.Mode
	Queries []int
	Lambdas []float64
	// SurrogateAcc[l][q] collects per-run surrogate test accuracies.
	SurrogateAcc [][][]float64
	// OracleAdvAcc[l][q] collects per-run oracle adversarial accuracies.
	OracleAdvAcc [][][]float64
	// CleanAccuracy is the oracle's unattacked test accuracy.
	CleanAccuracy float64
}

// Fig5Result reproduces Figure 5's four rows.
type Fig5Result struct {
	Rows []Fig5Row
	Runs int
}

func fig5Grids(opts Fig5Options, trainN int) (queries []int, lambdas []float64) {
	queries = opts.Queries
	if len(queries) == 0 {
		if opts.Scale < 0.5 {
			queries = []int{10, 50, 200, trainN}
		} else {
			queries = []int{2, 10, 50, 100, 500, 1000, trainN}
		}
	}
	seen := map[int]bool{}
	var qs []int
	for _, q := range queries {
		if q > trainN {
			q = trainN
		}
		if q > 0 && !seen[q] {
			seen[q] = true
			qs = append(qs, q)
		}
	}
	sort.Ints(qs)
	lambdas = opts.Lambdas
	if len(lambdas) == 0 {
		if opts.Scale < 0.5 {
			lambdas = []float64{0, 0.004, 0.01}
		} else {
			lambdas = []float64{0, 0.002, 0.004, 0.006, 0.008, 0.01}
		}
	}
	return qs, lambdas
}

// RunFig5 regenerates Figure 5: surrogate-based black-box attacks with
// and without power information, for MNIST/CIFAR x label-only/raw-output.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	opts.Options = opts.Options.withDefaults()
	runs := opts.Runs
	if runs <= 0 {
		runs = opts.scaled(10, 3)
	}
	root := rng.New(opts.Seed).Split("fig5")
	res := &Fig5Result{Runs: runs}
	rows := []struct {
		kind dataset.Kind
		mode oracle.Mode
	}{
		{dataset.MNIST, oracle.LabelOnly},
		{dataset.MNIST, oracle.RawOutput},
		{dataset.CIFAR10, oracle.LabelOnly},
		{dataset.CIFAR10, oracle.RawOutput},
	}
	rowResults := make([]*Fig5Row, len(rows))
	err := pool.DoErr(opts.Workers, len(rows), func(ri int) error {
		rc := rows[ri]
		row, err := runFig5Row(rc.kind, rc.mode, opts, runs, root.Split(fmt.Sprintf("%s-%s", rc.kind, rc.mode)))
		if err != nil {
			return err
		}
		rowResults[ri] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rowResults {
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runFig5Row(kind dataset.Kind, mode oracle.Mode, opts Fig5Options, runs int, src *rng.Source) (*Fig5Row, error) {
	// Case 2 uses linear victims only (paper §IV).
	cfg := ModelConfig{Kind: kind, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts.Options, src.Split("victim"))
	if err != nil {
		return nil, err
	}
	orc, err := oracle.New(v.hw, oracle.Config{Mode: mode, MeasurePower: true})
	if err != nil {
		return nil, err
	}
	clean, err := orc.AccuracyOn(v.test)
	if err != nil {
		return nil, err
	}
	queries, lambdas := fig5Grids(opts, v.train.Len())
	row := &Fig5Row{
		Kind: kind, Mode: mode, Queries: queries, Lambdas: lambdas,
		CleanAccuracy: clean,
		SurrogateAcc:  allocCells(len(lambdas), len(queries)),
		OracleAdvAcc:  allocCells(len(lambdas), len(queries)),
	}
	sCfg := surrogate.DefaultConfig()
	if kind == dataset.CIFAR10 {
		// MSE gradients scale with ‖u‖²; dense 3072-dim CIFAR inputs need
		// a far smaller rate than sparse MNIST digits for stable SGD, and
		// more epochs so the λ=0 baseline is as converged as the power-
		// regularized runs (otherwise Δ conflates the power prior with
		// simple training acceleration).
		sCfg.LearningRate = 0.003
		sCfg.Epochs = 120
	}
	if opts.SurrogateEpochs > 0 {
		sCfg.Epochs = opts.SurrogateEpochs
	} else if opts.Scale < 0.5 {
		sCfg.Epochs /= 2
	}
	// Repetitions are independent given per-run seed splits, so they fan
	// out across workers. Each run gets its own Oracle: the query counter
	// is the oracle's only mutable state, and the underlying ideal
	// crossbar is read-only, so per-run oracles return exactly what one
	// shared oracle would.
	type cell struct{ sAcc, aAcc float64 }
	runCells := make([][][]cell, runs)
	err = pool.DoErr(opts.Workers, runs, func(run int) error {
		runSrc := src.SplitN("run", run)
		runOrc, err := oracle.New(v.hw, oracle.Config{Mode: mode, MeasurePower: true})
		if err != nil {
			return err
		}
		cells := make([][]cell, len(lambdas))
		for li := range cells {
			cells[li] = make([]cell, len(queries))
		}
		for qi, q := range queries {
			qs, err := oracle.Collect(runOrc, v.train, q, runSrc.SplitN("collect", qi))
			if err != nil {
				return err
			}
			for li, lambda := range lambdas {
				cfg := sCfg
				cfg.Lambda = lambda
				model, err := surrogate.Train(qs, cfg, runSrc.SplitN(fmt.Sprintf("train-%d", qi), li))
				if err != nil {
					return fmt.Errorf("experiment: fig5 %s/%s run=%d q=%d λ=%v: %w", kind, mode, run, q, lambda, err)
				}
				sAcc := model.Accuracy(v.test.X, v.test.Labels)
				aAcc, err := oracleFGSMAccuracy(v, model, opts.Workers)
				if err != nil {
					return err
				}
				cells[li][qi] = cell{sAcc: sAcc, aAcc: aAcc}
			}
		}
		runCells[run] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Append per-run results in run order, as the serial sweep would.
	for run := 0; run < runs; run++ {
		for li := range lambdas {
			for qi := range queries {
				c := runCells[run][li][qi]
				row.SurrogateAcc[li][qi] = append(row.SurrogateAcc[li][qi], c.sAcc)
				row.OracleAdvAcc[li][qi] = append(row.OracleAdvAcc[li][qi], c.aAcc)
			}
		}
	}
	return row, nil
}

func allocCells(l, q int) [][][]float64 {
	out := make([][][]float64, l)
	for i := range out {
		out[i] = make([][]float64, q)
	}
	return out
}

// oracleFGSMAccuracy crafts FGSM(ε=0.1) examples on the surrogate for
// every test input — concurrently; FGSM is deterministic — and measures
// the oracle's accuracy on them through the batched predictor.
func oracleFGSMAccuracy(v *victim, model *surrogate.Model, workers int) (float64, error) {
	ds := v.test
	oh := ds.OneHot()
	advs := make([][]float64, ds.Len())
	err := pool.DoErr(workers, ds.Len(), func(i int) error {
		adv, err := attack.FGSM(model.Net, tensor.CloneVec(ds.X.Row(i)), oh.Row(i), fig5AttackEps)
		if err != nil {
			return err
		}
		advs[i] = adv
		return nil
	})
	if err != nil {
		return 0, err
	}
	labels, err := v.hw.PredictBatch(advs)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, label := range labels {
		if label == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Improvement returns, for lambda index li > 0 and query index qi, the
// mean attack improvement Δ = mean(advAcc(λ=0)) − mean(advAcc(λ)) and the
// Welch t-test p-value across runs (positive Δ = power info strengthens
// the attack), matching Figure 5's right-hand panels.
func (r *Fig5Row) Improvement(li, qi int) (delta, pValue float64, err error) {
	if li <= 0 || li >= len(r.Lambdas) || qi < 0 || qi >= len(r.Queries) {
		return 0, 0, fmt.Errorf("experiment: improvement index (%d,%d) out of range", li, qi)
	}
	base := r.OracleAdvAcc[0][qi]
	with := r.OracleAdvAcc[li][qi]
	delta = stats.Mean(base) - stats.Mean(with)
	res, err := stats.WelchTTest(base, with)
	if err != nil {
		// Insufficient runs for a p-value: report no significance.
		return delta, 1, nil
	}
	return delta, res.P, nil
}

// BootstrapImprovement is the nonparametric companion to Improvement: a
// percentile-bootstrap confidence interval on Δ = mean(advAcc(λ=0)) −
// mean(advAcc(λ)), for run counts too small to trust the t-test's
// normality assumption.
func (r *Fig5Row) BootstrapImprovement(li, qi int, level float64, src *rng.Source) (stats.Interval, error) {
	if li <= 0 || li >= len(r.Lambdas) || qi < 0 || qi >= len(r.Queries) {
		return stats.Interval{}, fmt.Errorf("experiment: improvement index (%d,%d) out of range", li, qi)
	}
	return stats.BootstrapDiffCI(r.OracleAdvAcc[0][qi], r.OracleAdvAcc[li][qi], level, 1000, src)
}

// Render prints, per row, the three Figure 5 panels as tables: surrogate
// accuracy, oracle adversarial accuracy, and the power-information
// improvement with significance asterisks (p < 0.05).
func (r *Fig5Result) Render() string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "=== Figure 5 row: %s, %s (clean oracle accuracy %.3f, %d runs) ===\n",
			row.Kind, row.Mode, row.CleanAccuracy, r.Runs)
		sur := &report.Table{Title: "Surrogate test accuracy", Header: []string{"queries"}}
		adv := &report.Table{Title: "Oracle accuracy under surrogate FGSM (eps=0.1)", Header: []string{"queries"}}
		for _, l := range row.Lambdas {
			sur.Header = append(sur.Header, fmt.Sprintf("λ=%g", l))
			adv.Header = append(adv.Header, fmt.Sprintf("λ=%g", l))
		}
		for qi, q := range row.Queries {
			srow := []string{fmt.Sprintf("%d", q)}
			arow := []string{fmt.Sprintf("%d", q)}
			for li := range row.Lambdas {
				srow = append(srow, report.F(stats.Mean(row.SurrogateAcc[li][qi]), 3))
				arow = append(arow, report.F(stats.Mean(row.OracleAdvAcc[li][qi]), 3))
			}
			sur.AddRow(srow...)
			adv.AddRow(arow...)
		}
		b.WriteString(sur.String())
		b.WriteString(adv.String())
		diff := &report.Table{Title: "Attack improvement with power info (Δ adv-accuracy, * = p<0.05)", Header: []string{"queries"}}
		for _, l := range row.Lambdas[1:] {
			diff.Header = append(diff.Header, fmt.Sprintf("λ=%g", l))
		}
		for qi, q := range row.Queries {
			drow := []string{fmt.Sprintf("%d", q)}
			for li := 1; li < len(row.Lambdas); li++ {
				d, p, err := row.Improvement(li, qi)
				if err != nil {
					drow = append(drow, "err")
					continue
				}
				drow = append(drow, report.F(d, 3)+report.SignificanceMark(p, 0.05))
			}
			diff.AddRow(drow...)
		}
		b.WriteString(diff.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Compile-time guards: the experiment relies on these types satisfying
// the attack interfaces.
var (
	_ attack.GradientSource = (*nn.Network)(nil)
	_                       = crossbar.DefaultDeviceConfig
)
