package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

// fig5AttackEps is the FGSM strength the paper uses for Figure 5.
const fig5AttackEps = 0.1

// Fig5Options extends Options with the sweep grids of Figure 5; zero
// values select the paper's grids (thinned at small Scale).
type Fig5Options struct {
	Options
	// Queries overrides the query-budget grid.
	Queries []int
	// Lambdas overrides the power-loss-weight grid.
	Lambdas []float64
	// SurrogateEpochs overrides surrogate training length.
	SurrogateEpochs int
}

// Fig5Row holds one row of Figure 5 (a dataset x disclosure-mode pair):
// per (λ, query budget) the surrogate's test accuracy and the oracle's
// adversarial accuracy under surrogate-crafted FGSM, across runs.
type Fig5Row struct {
	Kind    dataset.Kind `json:"kind"`
	Mode    oracle.Mode  `json:"mode"`
	Queries []int        `json:"queries"`
	Lambdas []float64    `json:"lambdas"`
	// SurrogateAcc[l][q] collects per-run surrogate test accuracies.
	SurrogateAcc [][][]float64 `json:"surrogate_acc"`
	// OracleAdvAcc[l][q] collects per-run oracle adversarial accuracies.
	OracleAdvAcc [][][]float64 `json:"oracle_adv_acc"`
	// CleanAccuracy is the oracle's unattacked test accuracy.
	CleanAccuracy float64 `json:"clean_accuracy"`
}

// Fig5Result reproduces Figure 5's four rows.
type Fig5Result struct {
	Rows []Fig5Row `json:"rows"`
	Runs int       `json:"runs"`
}

func fig5Grids(opts Fig5Options, trainN int) (queries []int, lambdas []float64) {
	queries = opts.Queries
	if len(queries) == 0 {
		if opts.Scale < 0.5 {
			queries = []int{10, 50, 200, trainN}
		} else {
			queries = []int{2, 10, 50, 100, 500, 1000, trainN}
		}
	}
	seen := map[int]bool{}
	var qs []int
	for _, q := range queries {
		if q > trainN {
			q = trainN
		}
		if q > 0 && !seen[q] {
			seen[q] = true
			qs = append(qs, q)
		}
	}
	sort.Ints(qs)
	lambdas = opts.Lambdas
	if len(lambdas) == 0 {
		if opts.Scale < 0.5 {
			lambdas = []float64{0, 0.004, 0.01}
		} else {
			lambdas = []float64{0, 0.002, 0.004, 0.006, 0.008, 0.01}
		}
	}
	return qs, lambdas
}

// fig5RowSpec names one Figure 5 row: a dataset x disclosure-mode pair.
type fig5RowSpec struct {
	kind dataset.Kind
	mode oracle.Mode
}

func (rs fig5RowSpec) label() string { return fmt.Sprintf("%s-%s", rs.kind, rs.mode) }

// fig5RowSpecs lists the paper's four rows in order.
func fig5RowSpecs() []fig5RowSpec {
	return []fig5RowSpec{
		{dataset.MNIST, oracle.LabelOnly},
		{dataset.MNIST, oracle.RawOutput},
		{dataset.CIFAR10, oracle.LabelOnly},
		{dataset.CIFAR10, oracle.RawOutput},
	}
}

// fig5RowEnv is one row's shared environment, built once in Setup: the
// trained victim, its clean oracle accuracy, and the sweep grids.
type fig5RowEnv struct {
	spec    fig5RowSpec
	victim  *victim
	clean   float64
	queries []int
	lambdas []float64
	sCfg    surrogate.Config
}

// fig5Cell is one (row, run) grid point.
type fig5Cell struct {
	row int
	run int
}

// fig5CellAcc is one (λ, budget) pair's accuracies for a single run.
type fig5CellAcc struct{ sAcc, aAcc float64 }

// fig5Runs resolves the repetition count.
func fig5Runs(opts Options) int {
	if opts.Runs > 0 {
		return opts.Runs
	}
	return opts.ScaledCount(10, 3)
}

// fig5SurrogateCfg resolves one row's surrogate training config.
func fig5SurrogateCfg(x Fig5Options, kind dataset.Kind) surrogate.Config {
	sCfg := surrogate.DefaultConfig()
	if kind == dataset.CIFAR10 {
		// MSE gradients scale with ‖u‖²; dense 3072-dim CIFAR inputs need
		// a far smaller rate than sparse MNIST digits for stable SGD, and
		// more epochs so the λ=0 baseline is as converged as the power-
		// regularized runs (otherwise Δ conflates the power prior with
		// simple training acceleration).
		sCfg.LearningRate = 0.003
		sCfg.Epochs = 120
	}
	if x.SurrogateEpochs > 0 {
		sCfg.Epochs = x.SurrogateEpochs
	} else if x.Scale < 0.5 {
		sCfg.Epochs /= 2
	}
	return sCfg
}

// fig5GridFor builds the Figure 5 grid for the given extended options:
// Setup trains the four row victims (through the store) and measures
// their clean accuracy; the cells are the (row x run) cross product,
// each run sweeping the full (λ x budget) grid against its own oracle.
func fig5GridFor(x Fig5Options) *engine.Grid[[]fig5RowEnv, fig5Cell, [][]fig5CellAcc, *Fig5Result] {
	return &engine.Grid[[]fig5RowEnv, fig5Cell, [][]fig5CellAcc, *Fig5Result]{
		Name:  "fig5",
		Title: "Figure 5 surrogate black-box attack sweeps",
		Axes: func(t *engine.T) []engine.Axis {
			rows := engine.Axis{Name: "row"}
			for _, rs := range fig5RowSpecs() {
				rows.Values = append(rows.Values, rs.label())
			}
			runs := make([]int, fig5Runs(t.Opts))
			for i := range runs {
				runs[i] = i
			}
			return []engine.Axis{rows, engine.IntAxis("run", runs)}
		},
		Setup: func(t *engine.T) ([]fig5RowEnv, error) {
			specs := fig5RowSpecs()
			envs := make([]fig5RowEnv, len(specs))
			err := pool.DoErr(t.Opts.Workers, len(specs), func(ri int) error {
				rs := specs[ri]
				// Case 2 uses linear victims only (paper §IV), so the four
				// rows share two canonical victims (one per dataset).
				cfg := ModelConfig{Kind: rs.kind, Act: nn.ActLinear, Crit: nn.LossMSE}
				v, err := victimFor(t, cfg)
				if err != nil {
					return err
				}
				orc, err := oracle.New(v.hw, oracle.Config{Mode: rs.mode, MeasurePower: true})
				if err != nil {
					return err
				}
				clean, err := orc.AccuracyOn(v.test)
				if err != nil {
					return err
				}
				fopts := x
				fopts.Options = t.Opts
				queries, lambdas := fig5Grids(fopts, v.train.Len())
				envs[ri] = fig5RowEnv{
					spec: rs, victim: v, clean: clean,
					queries: queries, lambdas: lambdas,
					sCfg: fig5SurrogateCfg(fopts, rs.kind),
				}
				return nil
			})
			return envs, err
		},
		Cells: func(t *engine.T, envs []fig5RowEnv) ([]fig5Cell, error) {
			runs := fig5Runs(t.Opts)
			cells := make([]fig5Cell, 0, len(envs)*runs)
			for _, coord := range engine.CrossProduct(len(envs), runs) {
				cells = append(cells, fig5Cell{row: coord[0], run: coord[1]})
			}
			return cells, nil
		},
		Src: func(t *engine.T, c fig5Cell, _ int) *rng.Source {
			return t.Root.Split(fig5RowSpecs()[c.row].label()).SplitN("run", c.run)
		},
		Job: func(t *engine.T, envs []fig5RowEnv, c fig5Cell, runSrc *rng.Source) ([][]fig5CellAcc, error) {
			env := envs[c.row]
			v := env.victim
			// Each run gets its own Oracle: the query counter is the
			// oracle's only mutable state, and the underlying ideal
			// crossbar is read-only, so per-run oracles return exactly
			// what one shared oracle would.
			runOrc, err := oracle.New(v.hw, oracle.Config{Mode: env.spec.mode, MeasurePower: true})
			if err != nil {
				return nil, err
			}
			cells := make([][]fig5CellAcc, len(env.lambdas))
			for li := range cells {
				cells[li] = make([]fig5CellAcc, len(env.queries))
			}
			for qi, q := range env.queries {
				qs, err := oracle.Collect(runOrc, v.train, q, runSrc.SplitN("collect", qi))
				if err != nil {
					return nil, err
				}
				for li, lambda := range env.lambdas {
					cfg := env.sCfg
					cfg.Lambda = lambda
					model, err := surrogate.Train(qs, cfg, runSrc.SplitN(fmt.Sprintf("train-%d", qi), li))
					if err != nil {
						return nil, fmt.Errorf("experiment: fig5 %s run=%d q=%d λ=%v: %w", env.spec.label(), c.run, q, lambda, err)
					}
					sAcc := model.Accuracy(v.test.X, v.test.Labels)
					aAcc, err := oracleFGSMAccuracy(v, model, t.Opts.Workers)
					if err != nil {
						return nil, err
					}
					cells[li][qi] = fig5CellAcc{sAcc: sAcc, aAcc: aAcc}
				}
			}
			return cells, nil
		},
		Reduce: func(t *engine.T, envs []fig5RowEnv, cells []fig5Cell, results [][][]fig5CellAcc) (*Fig5Result, error) {
			runs := fig5Runs(t.Opts)
			res := &Fig5Result{Runs: runs}
			for ri, env := range envs {
				row := Fig5Row{
					Kind: env.spec.kind, Mode: env.spec.mode,
					Queries: env.queries, Lambdas: env.lambdas,
					CleanAccuracy: env.clean,
					SurrogateAcc:  allocCells(len(env.lambdas), len(env.queries)),
					OracleAdvAcc:  allocCells(len(env.lambdas), len(env.queries)),
				}
				// Append per-run results in run order, as the serial
				// sweep would.
				for run := 0; run < runs; run++ {
					rc := results[ri*runs+run]
					for li := range env.lambdas {
						for qi := range env.queries {
							row.SurrogateAcc[li][qi] = append(row.SurrogateAcc[li][qi], rc[li][qi].sAcc)
							row.OracleAdvAcc[li][qi] = append(row.OracleAdvAcc[li][qi], rc[li][qi].aAcc)
						}
					}
				}
				res.Rows = append(res.Rows, row)
			}
			return res, nil
		},
	}
}

// RunFig5 regenerates Figure 5: surrogate-based black-box attacks with
// and without power information, for MNIST/CIFAR x label-only/raw-output.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	return fig5GridFor(opts).Run(opts.Options)
}

func allocCells(l, q int) [][][]float64 {
	out := make([][][]float64, l)
	for i := range out {
		out[i] = make([][]float64, q)
	}
	return out
}

// oracleFGSMAccuracy crafts FGSM(ε=0.1) examples on the surrogate for
// every test input — concurrently; FGSM is deterministic — and measures
// the oracle's accuracy on them through the batched predictor.
func oracleFGSMAccuracy(v *victim, model *surrogate.Model, workers int) (float64, error) {
	ds := v.test
	oh := ds.OneHot()
	advs := make([][]float64, ds.Len())
	err := pool.DoErr(workers, ds.Len(), func(i int) error {
		adv, err := attack.FGSM(model.Net, tensor.CloneVec(ds.X.Row(i)), oh.Row(i), fig5AttackEps)
		if err != nil {
			return err
		}
		advs[i] = adv
		return nil
	})
	if err != nil {
		return 0, err
	}
	labels, err := v.hw.PredictBatch(advs)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, label := range labels {
		if label == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Improvement returns, for lambda index li > 0 and query index qi, the
// mean attack improvement Δ = mean(advAcc(λ=0)) − mean(advAcc(λ)) and the
// Welch t-test p-value across runs (positive Δ = power info strengthens
// the attack), matching Figure 5's right-hand panels.
func (r *Fig5Row) Improvement(li, qi int) (delta, pValue float64, err error) {
	if li <= 0 || li >= len(r.Lambdas) || qi < 0 || qi >= len(r.Queries) {
		return 0, 0, fmt.Errorf("experiment: improvement index (%d,%d) out of range", li, qi)
	}
	base := r.OracleAdvAcc[0][qi]
	with := r.OracleAdvAcc[li][qi]
	delta = stats.Mean(base) - stats.Mean(with)
	res, err := stats.WelchTTest(base, with)
	if err != nil {
		// Insufficient runs for a p-value: report no significance.
		return delta, 1, nil
	}
	return delta, res.P, nil
}

// BootstrapImprovement is the nonparametric companion to Improvement: a
// percentile-bootstrap confidence interval on Δ = mean(advAcc(λ=0)) −
// mean(advAcc(λ)), for run counts too small to trust the t-test's
// normality assumption.
func (r *Fig5Row) BootstrapImprovement(li, qi int, level float64, src *rng.Source) (stats.Interval, error) {
	if li <= 0 || li >= len(r.Lambdas) || qi < 0 || qi >= len(r.Queries) {
		return stats.Interval{}, fmt.Errorf("experiment: improvement index (%d,%d) out of range", li, qi)
	}
	return stats.BootstrapDiffCI(r.OracleAdvAcc[0][qi], r.OracleAdvAcc[li][qi], level, 1000, src)
}

// panelTables builds one row's three Figure 5 panels: surrogate
// accuracy, oracle adversarial accuracy, and the power-information
// improvement with significance asterisks (p < 0.05). titlePrefix
// distinguishes the rendered form (empty — rows carry their own header
// line) from the exported form ("[kind, mode] ").
func (row *Fig5Row) panelTables(titlePrefix string) (sur, adv, diff *report.Table) {
	sur = &report.Table{Title: titlePrefix + "Surrogate test accuracy", Header: []string{"queries"}}
	adv = &report.Table{Title: titlePrefix + "Oracle accuracy under surrogate FGSM (eps=0.1)", Header: []string{"queries"}}
	for _, l := range row.Lambdas {
		sur.Header = append(sur.Header, fmt.Sprintf("λ=%g", l))
		adv.Header = append(adv.Header, fmt.Sprintf("λ=%g", l))
	}
	for qi, q := range row.Queries {
		srow := []string{fmt.Sprintf("%d", q)}
		arow := []string{fmt.Sprintf("%d", q)}
		for li := range row.Lambdas {
			srow = append(srow, report.F(stats.Mean(row.SurrogateAcc[li][qi]), 3))
			arow = append(arow, report.F(stats.Mean(row.OracleAdvAcc[li][qi]), 3))
		}
		sur.AddRow(srow...)
		adv.AddRow(arow...)
	}
	diff = &report.Table{Title: titlePrefix + "Attack improvement with power info (Δ adv-accuracy, * = p<0.05)", Header: []string{"queries"}}
	for _, l := range row.Lambdas[1:] {
		diff.Header = append(diff.Header, fmt.Sprintf("λ=%g", l))
	}
	for qi, q := range row.Queries {
		drow := []string{fmt.Sprintf("%d", q)}
		for li := 1; li < len(row.Lambdas); li++ {
			d, p, err := row.Improvement(li, qi)
			if err != nil {
				drow = append(drow, "err")
				continue
			}
			drow = append(drow, report.F(d, 3)+report.SignificanceMark(p, 0.05))
		}
		diff.AddRow(drow...)
	}
	return sur, adv, diff
}

// Tables returns the three panels per row, titled for standalone export.
func (r *Fig5Result) Tables() []*report.Table {
	var out []*report.Table
	for i := range r.Rows {
		row := &r.Rows[i]
		sur, adv, diff := row.panelTables(fmt.Sprintf("[%s, %s] ", row.Kind, row.Mode))
		out = append(out, sur, adv, diff)
	}
	return out
}

// Render prints, per row, the three Figure 5 panels as tables.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(&b, "=== Figure 5 row: %s, %s (clean oracle accuracy %.3f, %d runs) ===\n",
			row.Kind, row.Mode, row.CleanAccuracy, r.Runs)
		sur, adv, diff := row.panelTables("")
		b.WriteString(sur.String())
		b.WriteString(adv.String())
		b.WriteString(diff.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSON serializes the structured result.
func (r *Fig5Result) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// Compile-time guards: the experiment relies on these types satisfying
// the attack interfaces.
var (
	_ attack.GradientSource = (*nn.Network)(nil)
	_                       = crossbar.DefaultDeviceConfig
)
