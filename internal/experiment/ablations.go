package experiment

import (
	"fmt"
	"io"
	"math"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

// The ablations extend the paper along the axes its conclusion names as
// future work: non-ideal crossbar behaviour (A1), query-efficient 1-norm
// search (A2, sketched at the end of §III), and multi-pixel attacks (A3,
// discussed qualitatively in §III).

// NoiseAblationPoint is one row of ablation A1.
type NoiseAblationPoint struct {
	// MeasurementNoise is the relative instrument noise on the probe.
	MeasurementNoise float64 `json:"measurement_noise"`
	// Levels is the device quantization level count (0 = analog).
	Levels int `json:"levels"`
	// RankCorrelation is the Spearman correlation between extracted
	// signals and true column 1-norms.
	RankCorrelation float64 `json:"rank_correlation"`
	// ArgmaxHit reports whether the extracted argmax matches the true
	// largest-1-norm column.
	ArgmaxHit bool `json:"argmax_hit"`
	// Repeats is the measurement-averaging count used.
	Repeats int `json:"repeats"`
}

// NoiseAblationResult reports how extraction quality degrades with
// measurement noise and device quantization.
type NoiseAblationResult struct {
	Points []NoiseAblationPoint `json:"points"`
}

// noiseGridPoint is one (noise, levels, repeats) cell of ablation A1.
type noiseGridPoint struct {
	noise   float64
	levels  int
	repeats int
}

// noiseAblationPoints is the A1 measurement grid.
func noiseAblationPoints() []noiseGridPoint {
	return []noiseGridPoint{
		{0, 0, 1},
		{0.01, 0, 1},
		{0.05, 0, 1},
		{0.05, 0, 16},
		{0.2, 0, 1},
		{0.2, 0, 16},
		{0, 16, 1},
		{0, 4, 1},
		{0.05, 8, 4},
	}
}

// noiseEnv is the A1 shared environment: one victim and its true norms.
type noiseEnv struct {
	v         *victim
	trueNorms []float64
}

// noiseGrid measures 1-norm extraction fidelity across instrument noise
// levels and conductance quantization (ablation A1) on the grid engine:
// every grid point programs and probes its own crossbar from its own
// seed split, so the sweep fans out across workers.
var noiseGrid = &engine.Grid[noiseEnv, noiseGridPoint, NoiseAblationPoint, *NoiseAblationResult]{
	Name:      "ablate-noise",
	Title:     "extraction fidelity vs measurement noise and quantization (A1)",
	SeedLabel: "ablation-noise",
	Axes: func(t *engine.T) []engine.Axis {
		ax := engine.Axis{Name: "point"}
		for _, g := range noiseAblationPoints() {
			ax.Values = append(ax.Values, fmt.Sprintf("noise=%g,levels=%d,repeats=%d", g.noise, g.levels, g.repeats))
		}
		return []engine.Axis{ax}
	},
	Setup: func(t *engine.T) (noiseEnv, error) {
		cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
		v, err := victimFor(t, cfg)
		if err != nil {
			return noiseEnv{}, err
		}
		return noiseEnv{v: v, trueNorms: v.net.W.ColAbsSums()}, nil
	},
	Cells: func(t *engine.T, _ noiseEnv) ([]noiseGridPoint, error) {
		return noiseAblationPoints(), nil
	},
	Src: func(t *engine.T, _ noiseGridPoint, i int) *rng.Source {
		return t.Root.SplitN("point", i)
	},
	Job: func(t *engine.T, env noiseEnv, g noiseGridPoint, src *rng.Source) (NoiseAblationPoint, error) {
		dcfg := crossbar.DefaultDeviceConfig()
		dcfg.Levels = g.levels
		xb, err := crossbar.Program(env.v.net.W, dcfg, src.Split("xbar"))
		if err != nil {
			return NoiseAblationPoint{}, err
		}
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(xb), g.noise, src.Split("probe"))
		if err != nil {
			return NoiseAblationPoint{}, err
		}
		signals, err := probe.ExtractColumnSignals(g.repeats)
		if err != nil {
			return NoiseAblationPoint{}, err
		}
		rho, err := stats.Spearman(signals, env.trueNorms)
		if err != nil {
			return NoiseAblationPoint{}, fmt.Errorf("experiment: noise ablation point (noise=%g levels=%d): %w", g.noise, g.levels, err)
		}
		return NoiseAblationPoint{
			MeasurementNoise: g.noise,
			Levels:           g.levels,
			Repeats:          g.repeats,
			RankCorrelation:  rho,
			ArgmaxHit:        tensor.ArgMax(signals) == tensor.ArgMax(env.trueNorms),
		}, nil
	},
	Reduce: func(t *engine.T, _ noiseEnv, cells []noiseGridPoint, points []NoiseAblationPoint) (*NoiseAblationResult, error) {
		return &NoiseAblationResult{Points: points}, nil
	},
}

// RunNoiseAblation measures 1-norm extraction fidelity across instrument
// noise levels and conductance quantization (ablation A1).
func RunNoiseAblation(opts Options) (*NoiseAblationResult, error) {
	return noiseGrid.Run(opts)
}

// Tables formats the A1 ablation as a table.
func (r *NoiseAblationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  "Ablation A1: 1-norm extraction fidelity vs measurement noise and quantization",
		Header: []string{"noise", "levels", "repeats", "rank corr", "argmax hit"},
	}
	for _, p := range r.Points {
		hit := "no"
		if p.ArgmaxHit {
			hit = "yes"
		}
		t.AddRow(report.F(p.MeasurementNoise, 2), fmt.Sprintf("%d", p.Levels),
			fmt.Sprintf("%d", p.Repeats), report.F(p.RankCorrelation, 3), hit)
	}
	return []*report.Table{t}
}

// Render formats the A1 ablation.
func (r *NoiseAblationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *NoiseAblationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// SearchAblationRow is one row of ablation A2.
type SearchAblationRow struct {
	Config ModelConfig `json:"config"`
	// ExhaustiveQueries is the cost of measuring every column (N).
	ExhaustiveQueries int `json:"exhaustive_queries"`
	// HillClimbQueries is the cost of the greedy spatial search.
	HillClimbQueries int `json:"hill_climb_queries"`
	// SignalRatio is hill-climb's found signal over the true maximum
	// (1.0 = found the global max).
	SignalRatio float64 `json:"signal_ratio"`
}

// SearchAblationResult compares exhaustive and query-efficient max-1-norm
// search on the smooth (MNIST) and rough (CIFAR) power landscapes.
type SearchAblationResult struct {
	Rows []SearchAblationRow `json:"rows"`
}

// searchGrid implements the paper's §III closing remark on the grid
// engine: on MNIST the 1-norm map is smooth, so local search finds the
// maximum with far fewer queries; on CIFAR-10 it is rapidly varying and
// search degrades.
var searchGrid = &engine.Grid[struct{}, ModelConfig, SearchAblationRow, *SearchAblationResult]{
	Name:      "ablate-search",
	Title:     "query-efficient max-1-norm search, hill climb vs exhaustive (A2)",
	SeedLabel: "ablation-search",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{configAxis(searchConfigs())}
	},
	Cells: func(t *engine.T, _ struct{}) ([]ModelConfig, error) {
		return searchConfigs(), nil
	},
	Src: func(t *engine.T, cfg ModelConfig, _ int) *rng.Source {
		return t.Root.Split(cfg.Name())
	},
	Job: func(t *engine.T, _ struct{}, cfg ModelConfig, src *rng.Source) (SearchAblationRow, error) {
		v, err := victimFor(t, cfg)
		if err != nil {
			return SearchAblationRow{}, err
		}
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(v.hw.Crossbar()), 0, nil)
		if err != nil {
			return SearchAblationRow{}, err
		}
		hc, err := sidechannel.HillClimbMaxSearch(probe, sidechannel.HillClimbConfig{
			Width: v.test.Width, Height: v.test.Height,
			Restarts: 6, MaxSteps: v.test.Width * v.test.Height,
		}, src.Split("climb"))
		if err != nil {
			return SearchAblationRow{}, err
		}
		best := v.signals[tensor.ArgMax(v.signals)]
		ratio := 0.0
		if best > 0 {
			ratio = hc.Signal / best
		}
		return SearchAblationRow{
			Config:            cfg,
			ExhaustiveQueries: len(v.signals),
			HillClimbQueries:  hc.Queries,
			SignalRatio:       ratio,
		}, nil
	},
	Reduce: func(t *engine.T, _ struct{}, cells []ModelConfig, rows []SearchAblationRow) (*SearchAblationResult, error) {
		return &SearchAblationResult{Rows: rows}, nil
	},
}

// searchConfigs lists the two A2 configurations.
func searchConfigs() []ModelConfig {
	return []ModelConfig{
		{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.CIFAR10, Act: nn.ActLinear, Crit: nn.LossMSE},
	}
}

// RunSearchAblation compares exhaustive and hill-climb max-1-norm
// search (ablation A2).
func RunSearchAblation(opts Options) (*SearchAblationResult, error) {
	return searchGrid.Run(opts)
}

// Tables formats the A2 ablation as a table.
func (r *SearchAblationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  "Ablation A2: query-efficient max-1-norm search (hill climb vs exhaustive)",
		Header: []string{"config", "exhaustive", "hill-climb", "signal ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config.Name(), fmt.Sprintf("%d", row.ExhaustiveQueries),
			fmt.Sprintf("%d", row.HillClimbQueries), report.F(row.SignalRatio, 3))
	}
	return []*report.Table{t}
}

// Render formats the A2 ablation.
func (r *SearchAblationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *SearchAblationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// MultiPixelPoint is one (N pixels, accuracy) point of ablation A3.
type MultiPixelPoint struct {
	Pixels   int     `json:"pixels"`
	Accuracy float64 `json:"accuracy"`
	// WorstAccuracy is the gradient-signed variant on the same pixel
	// count (white-box bound).
	WorstAccuracy float64 `json:"worst_accuracy"`
}

// MultiPixelResult reproduces the paper's multi-pixel observation: with
// random perturbation signs on the top-N 1-norm pixels, attack success
// decays roughly like (1/2)^N relative to the signed bound.
type MultiPixelResult struct {
	Config ModelConfig       `json:"config"`
	Eps    float64           `json:"eps"`
	Points []MultiPixelPoint `json:"points"`
}

// multiPixelEps is the A3 attack strength.
const multiPixelEps = 4.0

// multiPixelKs is the attacked-pixel-count sweep.
func multiPixelKs() []int { return []int{1, 2, 4, 8, 16} }

// multiPixelGrid sweeps the number of attacked pixels (ablation A3) on
// the grid engine: one shared victim from Setup, one cell per pixel
// count, per-sample crafting fanned on the nested pool.
var multiPixelGrid = &engine.Grid[*victim, int, MultiPixelPoint, *MultiPixelResult]{
	Name:      "ablate-multipixel",
	Title:     "multi-pixel attacks, random vs gradient signs (A3)",
	SeedLabel: "ablation-multipixel",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{engine.IntAxis("pixels", multiPixelKs())}
	},
	Setup: func(t *engine.T) (*victim, error) {
		cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
		return victimFor(t, cfg)
	},
	Cells: func(t *engine.T, _ *victim) ([]int, error) {
		return multiPixelKs(), nil
	},
	Src: func(t *engine.T, k, _ int) *rng.Source {
		return t.Root.SplitN("eval", k)
	},
	Job: func(t *engine.T, v *victim, k int, src *rng.Source) (MultiPixelPoint, error) {
		oh := v.test.OneHot()
		n := v.test.Len()
		// Craft both variants per sample concurrently (random signs come
		// from per-sample seed splits), then measure each set against the
		// oracle in one batched pass.
		advRand := make([][]float64, n)
		advWorst := make([][]float64, n)
		err := pool.DoErr(t.Opts.Workers, n, func(i int) error {
			u := v.test.X.Row(i)
			target := oh.Row(i)
			advR, err := attack.MultiPixel(k, u, target, multiPixelEps, v.signals, nil, false, src.SplitN("sample", i))
			if err != nil {
				return err
			}
			advW, err := attack.MultiPixel(k, u, target, multiPixelEps, nil, v.net, true, nil)
			if err != nil {
				return err
			}
			advRand[i], advWorst[i] = advR, advW
			return nil
		})
		if err != nil {
			return MultiPixelPoint{}, err
		}
		labelsR, err := v.hw.PredictBatch(advRand)
		if err != nil {
			return MultiPixelPoint{}, err
		}
		labelsW, err := v.hw.PredictBatch(advWorst)
		if err != nil {
			return MultiPixelPoint{}, err
		}
		var correctRand, correctWorst int
		for i := 0; i < n; i++ {
			if labelsR[i] == v.test.Labels[i] {
				correctRand++
			}
			if labelsW[i] == v.test.Labels[i] {
				correctWorst++
			}
		}
		return MultiPixelPoint{
			Pixels:        k,
			Accuracy:      float64(correctRand) / float64(n),
			WorstAccuracy: float64(correctWorst) / float64(n),
		}, nil
	},
	Reduce: func(t *engine.T, v *victim, cells []int, points []MultiPixelPoint) (*MultiPixelResult, error) {
		return &MultiPixelResult{Config: v.cfg, Eps: multiPixelEps, Points: points}, nil
	},
}

// RunMultiPixelAblation sweeps the number of attacked pixels.
func RunMultiPixelAblation(opts Options) (*MultiPixelResult, error) {
	return multiPixelGrid.Run(opts)
}

// Tables formats the A3 ablation as a table.
func (r *MultiPixelResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Ablation A3: multi-pixel attacks on %s (eps=%.1f)", r.Config.Name(), r.Eps),
		Header: []string{"pixels", "accuracy (random signs)", "accuracy (gradient signs)"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Pixels), report.F(p.Accuracy, 3), report.F(p.WorstAccuracy, 3))
	}
	return []*report.Table{t}
}

// Render formats the A3 ablation.
func (r *MultiPixelResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *MultiPixelResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// expectedRandomSignDecay is documented for reference: the probability of
// guessing all N perturbation directions correctly is (1/2)^N.
func expectedRandomSignDecay(n int) float64 { return math.Pow(0.5, float64(n)) }
