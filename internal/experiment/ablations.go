package experiment

import (
	"fmt"
	"math"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

// The ablations extend the paper along the axes its conclusion names as
// future work: non-ideal crossbar behaviour (A1), query-efficient 1-norm
// search (A2, sketched at the end of §III), and multi-pixel attacks (A3,
// discussed qualitatively in §III).

// NoiseAblationPoint is one row of ablation A1.
type NoiseAblationPoint struct {
	// MeasurementNoise is the relative instrument noise on the probe.
	MeasurementNoise float64
	// Levels is the device quantization level count (0 = analog).
	Levels int
	// RankCorrelation is the Spearman correlation between extracted
	// signals and true column 1-norms.
	RankCorrelation float64
	// ArgmaxHit reports whether the extracted argmax matches the true
	// largest-1-norm column.
	ArgmaxHit bool
	// Repeats is the measurement-averaging count used.
	Repeats int
}

// NoiseAblationResult reports how extraction quality degrades with
// measurement noise and device quantization.
type NoiseAblationResult struct {
	Points []NoiseAblationPoint
}

// RunNoiseAblation measures 1-norm extraction fidelity across instrument
// noise levels and conductance quantization (ablation A1).
func RunNoiseAblation(opts Options) (*NoiseAblationResult, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("ablation-noise")
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts, root.Split("victim"))
	if err != nil {
		return nil, err
	}
	trueNorms := v.net.W.ColAbsSums()
	grid := []struct {
		noise   float64
		levels  int
		repeats int
	}{
		{0, 0, 1},
		{0.01, 0, 1},
		{0.05, 0, 1},
		{0.05, 0, 16},
		{0.2, 0, 1},
		{0.2, 0, 16},
		{0, 16, 1},
		{0, 4, 1},
		{0.05, 8, 4},
	}
	// Every grid point programs and probes its own crossbar from its own
	// seed split, so the sweep fans out across workers.
	points := make([]NoiseAblationPoint, len(grid))
	err = pool.DoErr(opts.Workers, len(grid), func(i int) error {
		g := grid[i]
		dcfg := crossbar.DefaultDeviceConfig()
		dcfg.Levels = g.levels
		src := root.SplitN("point", i)
		xb, err := crossbar.Program(v.net.W, dcfg, src.Split("xbar"))
		if err != nil {
			return err
		}
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(xb), g.noise, src.Split("probe"))
		if err != nil {
			return err
		}
		signals, err := probe.ExtractColumnSignals(g.repeats)
		if err != nil {
			return err
		}
		rho, err := stats.Spearman(signals, trueNorms)
		if err != nil {
			return fmt.Errorf("experiment: noise ablation point %d: %w", i, err)
		}
		points[i] = NoiseAblationPoint{
			MeasurementNoise: g.noise,
			Levels:           g.levels,
			Repeats:          g.repeats,
			RankCorrelation:  rho,
			ArgmaxHit:        tensor.ArgMax(signals) == tensor.ArgMax(trueNorms),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &NoiseAblationResult{Points: points}, nil
}

// Render formats the A1 ablation as a table.
func (r *NoiseAblationResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Ablation A1: 1-norm extraction fidelity vs measurement noise and quantization",
		Header: []string{"noise", "levels", "repeats", "rank corr", "argmax hit"},
	}
	for _, p := range r.Points {
		hit := "no"
		if p.ArgmaxHit {
			hit = "yes"
		}
		t.AddRow(report.F(p.MeasurementNoise, 2), fmt.Sprintf("%d", p.Levels),
			fmt.Sprintf("%d", p.Repeats), report.F(p.RankCorrelation, 3), hit)
	}
	return t
}

// SearchAblationRow is one row of ablation A2.
type SearchAblationRow struct {
	Config ModelConfig
	// ExhaustiveQueries is the cost of measuring every column (N).
	ExhaustiveQueries int
	// HillClimbQueries is the cost of the greedy spatial search.
	HillClimbQueries int
	// SignalRatio is hill-climb's found signal over the true maximum
	// (1.0 = found the global max).
	SignalRatio float64
}

// SearchAblationResult compares exhaustive and query-efficient max-1-norm
// search on the smooth (MNIST) and rough (CIFAR) power landscapes.
type SearchAblationResult struct {
	Rows []SearchAblationRow
}

// RunSearchAblation implements the paper's §III closing remark: on MNIST
// the 1-norm map is smooth, so local search finds the maximum with far
// fewer queries; on CIFAR-10 it is rapidly varying and search degrades.
func RunSearchAblation(opts Options) (*SearchAblationResult, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("ablation-search")
	configs := []ModelConfig{
		{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.CIFAR10, Act: nn.ActLinear, Crit: nn.LossMSE},
	}
	rows := make([]SearchAblationRow, len(configs))
	err := pool.DoErr(opts.Workers, len(configs), func(ci int) error {
		cfg := configs[ci]
		src := root.Split(cfg.Name())
		v, err := buildVictim(cfg, opts, src)
		if err != nil {
			return err
		}
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(v.hw.Crossbar()), 0, nil)
		if err != nil {
			return err
		}
		hc, err := sidechannel.HillClimbMaxSearch(probe, sidechannel.HillClimbConfig{
			Width: v.test.Width, Height: v.test.Height,
			Restarts: 6, MaxSteps: v.test.Width * v.test.Height,
		}, src.Split("climb"))
		if err != nil {
			return err
		}
		best := v.signals[tensor.ArgMax(v.signals)]
		ratio := 0.0
		if best > 0 {
			ratio = hc.Signal / best
		}
		rows[ci] = SearchAblationRow{
			Config:            cfg,
			ExhaustiveQueries: len(v.signals),
			HillClimbQueries:  hc.Queries,
			SignalRatio:       ratio,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SearchAblationResult{Rows: rows}, nil
}

// Render formats the A2 ablation as a table.
func (r *SearchAblationResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Ablation A2: query-efficient max-1-norm search (hill climb vs exhaustive)",
		Header: []string{"config", "exhaustive", "hill-climb", "signal ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config.Name(), fmt.Sprintf("%d", row.ExhaustiveQueries),
			fmt.Sprintf("%d", row.HillClimbQueries), report.F(row.SignalRatio, 3))
	}
	return t
}

// MultiPixelPoint is one (N pixels, accuracy) point of ablation A3.
type MultiPixelPoint struct {
	Pixels   int
	Accuracy float64
	// WorstAccuracy is the gradient-signed variant on the same pixel
	// count (white-box bound).
	WorstAccuracy float64
}

// MultiPixelResult reproduces the paper's multi-pixel observation: with
// random perturbation signs on the top-N 1-norm pixels, attack success
// decays roughly like (1/2)^N relative to the signed bound.
type MultiPixelResult struct {
	Config ModelConfig
	Eps    float64
	Points []MultiPixelPoint
}

// RunMultiPixelAblation sweeps the number of attacked pixels.
func RunMultiPixelAblation(opts Options) (*MultiPixelResult, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("ablation-multipixel")
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts, root.Split("victim"))
	if err != nil {
		return nil, err
	}
	const eps = 4.0
	oh := v.test.OneHot()
	ks := []int{1, 2, 4, 8, 16}
	points := make([]MultiPixelPoint, len(ks))
	err = pool.DoErr(opts.Workers, len(ks), func(ki int) error {
		k := ks[ki]
		src := root.SplitN("eval", k)
		n := v.test.Len()
		// Craft both variants per sample concurrently (random signs come
		// from per-sample seed splits), then measure each set against the
		// oracle in one batched pass.
		advRand := make([][]float64, n)
		advWorst := make([][]float64, n)
		err := pool.DoErr(opts.Workers, n, func(i int) error {
			u := v.test.X.Row(i)
			target := oh.Row(i)
			advR, err := attack.MultiPixel(k, u, target, eps, v.signals, nil, false, src.SplitN("sample", i))
			if err != nil {
				return err
			}
			advW, err := attack.MultiPixel(k, u, target, eps, nil, v.net, true, nil)
			if err != nil {
				return err
			}
			advRand[i], advWorst[i] = advR, advW
			return nil
		})
		if err != nil {
			return err
		}
		labelsR, err := v.hw.PredictBatch(advRand)
		if err != nil {
			return err
		}
		labelsW, err := v.hw.PredictBatch(advWorst)
		if err != nil {
			return err
		}
		var correctRand, correctWorst int
		for i := 0; i < n; i++ {
			if labelsR[i] == v.test.Labels[i] {
				correctRand++
			}
			if labelsW[i] == v.test.Labels[i] {
				correctWorst++
			}
		}
		points[ki] = MultiPixelPoint{
			Pixels:        k,
			Accuracy:      float64(correctRand) / float64(n),
			WorstAccuracy: float64(correctWorst) / float64(n),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &MultiPixelResult{Config: cfg, Eps: eps, Points: points}, nil
}

// Render formats the A3 ablation as a table.
func (r *MultiPixelResult) Render() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Ablation A3: multi-pixel attacks on %s (eps=%.1f)", r.Config.Name(), r.Eps),
		Header: []string{"pixels", "accuracy (random signs)", "accuracy (gradient signs)"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Pixels), report.F(p.Accuracy, 3), report.F(p.WorstAccuracy, 3))
	}
	return t
}

// expectedRandomSignDecay is documented for reference: the probability of
// guessing all N perturbation directions correctly is (1/2)^N.
func expectedRandomSignDecay(n int) float64 { return math.Pow(0.5, float64(n)) }
