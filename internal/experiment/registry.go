package experiment

import "xbarsec/internal/experiment/engine"

// Every experiment in this package registers itself in the engine's
// name→spec registry at init time. Three layers dispatch through the
// registry instead of hard-coding runner lists: cmd/xbarattack maps CLI
// commands onto it, internal/service turns any entry into a cached
// server-side job, and the xbarserve /experiments endpoint lists,
// launches and polls entries over HTTP.
//
// Figure 5 registers the default-grid variant; callers needing custom
// query/λ grids use RunFig5 with Fig5Options directly.
func init() {
	engine.Register(table1Grid.Experiment())
	engine.Register(fig3Grid.Experiment())
	engine.Register(fig4Grid.Experiment())
	engine.Register(engine.Experiment{
		Name:  "fig5",
		Title: "Figure 5 surrogate black-box attack sweeps",
		Run: func(opts engine.Options) (engine.Result, error) {
			return RunFig5(Fig5Options{Options: opts})
		},
		Axes: func(opts engine.Options) []engine.Axis {
			return fig5GridFor(Fig5Options{Options: opts}).Experiment().Axes(opts)
		},
	})
	engine.Register(noiseGrid.Experiment())
	engine.Register(searchGrid.Experiment())
	engine.Register(multiPixelGrid.Experiment())
	engine.Register(depthGrid.Experiment())
	engine.Register(maskingGrid.Experiment())
	engine.Register(traceGrid.Experiment())
	engine.Register(calibrateGrid.Experiment())
}

// AblationNames lists the ablation/extension experiments in the order
// the CLI's "ablations" command (and the paper appendix) presents them.
func AblationNames() []string {
	return []string{
		"ablate-noise", "ablate-search", "ablate-multipixel",
		"ablate-depth", "ablate-masking", "ablate-trace",
	}
}

// PaperOrder lists the registry names in the order the CLI's "all"
// command runs them (paper order; excludes the service-layer campaign
// demo, which is not a registry experiment).
func PaperOrder() []string {
	return append([]string{"calibrate", "table1", "fig3", "fig4", "fig5"}, AblationNames()...)
}
