package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestRunNoiseAblation(t *testing.T) {
	res, err := RunNoiseAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The noiseless analog point must recover the exact ranking.
	p0 := res.Points[0]
	if p0.MeasurementNoise != 0 || p0.Levels != 0 {
		t.Fatal("first grid point should be the ideal configuration")
	}
	if math.Abs(p0.RankCorrelation-1) > 1e-9 || !p0.ArgmaxHit {
		t.Fatalf("ideal extraction must be exact: rho=%v hit=%v", p0.RankCorrelation, p0.ArgmaxHit)
	}
	// Noise degrades rank correlation monotonically-ish: the 0.2-noise
	// single-shot point must be worse than the noiseless one.
	var noisy NoiseAblationPoint
	for _, p := range res.Points {
		if p.MeasurementNoise == 0.2 && p.Repeats == 1 {
			noisy = p
		}
	}
	if noisy.RankCorrelation >= 1 {
		t.Fatal("strong noise should degrade the ranking")
	}
	// Averaging must improve the noisy extraction.
	var avg NoiseAblationPoint
	for _, p := range res.Points {
		if p.MeasurementNoise == 0.2 && p.Repeats == 16 {
			avg = p
		}
	}
	if avg.RankCorrelation < noisy.RankCorrelation {
		t.Fatalf("averaging should help: %v < %v", avg.RankCorrelation, noisy.RankCorrelation)
	}
	if out := res.Render(); !strings.Contains(out, "Ablation A1") {
		t.Fatal("render incomplete")
	}
}

func TestRunSearchAblation(t *testing.T) {
	res, err := RunSearchAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.HillClimbQueries <= 0 || row.ExhaustiveQueries <= 0 {
			t.Fatal("query counts must be positive")
		}
		if row.SignalRatio < 0 || row.SignalRatio > 1.0001 {
			t.Fatalf("signal ratio %v out of range", row.SignalRatio)
		}
		// Hill climbing must be cheaper than exhaustive search.
		if row.HillClimbQueries >= row.ExhaustiveQueries {
			t.Fatalf("%s: hill climb used %d queries vs %d exhaustive",
				row.Config.Name(), row.HillClimbQueries, row.ExhaustiveQueries)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Ablation A2") {
		t.Fatal("render incomplete")
	}
}

func TestRunMultiPixelAblation(t *testing.T) {
	res, err := RunMultiPixelAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		if p.Accuracy < 0 || p.Accuracy > 1 || p.WorstAccuracy < 0 || p.WorstAccuracy > 1 {
			t.Fatalf("point %d out of range: %+v", i, p)
		}
		// The gradient-signed variant dominates random signs.
		if p.WorstAccuracy > p.Accuracy+0.05 {
			t.Fatalf("pixels=%d: worst-case %v should be at most random-sign %v",
				p.Pixels, p.WorstAccuracy, p.Accuracy)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Ablation A3") {
		t.Fatal("render incomplete")
	}
}

func TestExpectedRandomSignDecay(t *testing.T) {
	if expectedRandomSignDecay(1) != 0.5 || expectedRandomSignDecay(3) != 0.125 {
		t.Fatal("decay formula")
	}
}
