package experiment

import (
	"reflect"
	"testing"

	"xbarsec/internal/attack"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
)

// The parallel engine's contract: for a fixed Options.Seed, every runner
// returns bit-identical results at every worker count, because work items
// derive randomness from their identity (via rng.Source.Split/SplitN) and
// results are assembled in item order. These tests pin that contract at
// several worker counts, including counts far above this machine's CPU
// count and the strictly-serial Workers == 1 path.

func withWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

func TestEvaluateSinglePixelWorkerInvariance(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts, testSrc(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []attack.PixelMethod{attack.PixelRandom, attack.PixelNormRandom, attack.PixelWorst} {
		var want float64
		for wi, workers := range []int{1, 2, 5} {
			got, err := evaluateSinglePixel(v, method, 4.0, testSrc(t, 3), workers)
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s: workers=%d accuracy %v, serial %v", method, workers, got, want)
			}
		}
	}
}

func TestRunNoiseAblationWorkerInvariance(t *testing.T) {
	serial, err := RunNoiseAblation(withWorkers(tinyOpts(), 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 13} {
		parallel, err := RunNoiseAblation(withWorkers(tinyOpts(), workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d result diverged from serial:\nserial:   %+v\nparallel: %+v", workers, serial, parallel)
		}
	}
}

func TestRunMultiPixelAblationWorkerInvariance(t *testing.T) {
	serial, err := RunMultiPixelAblation(withWorkers(tinyOpts(), 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMultiPixelAblation(withWorkers(tinyOpts(), 6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestEngineGridsWorkerInvariance pins the engine-level contract for
// every registered experiment: Workers ∈ {1, 4} produce deeply equal
// results. It runs at the golden options so the victim store (shared
// with TestGoldenBitIdentity) absorbs the training cost.
func TestEngineGridsWorkerInvariance(t *testing.T) {
	if testing.Short() {
		// Two full-registry replays; the per-runner invariance tests
		// below keep worker-invariance covered in -short (race) runs.
		t.Skip("skipping full-registry invariance replay in -short mode")
	}
	for _, name := range PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			exp, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			opts := goldenOpts()
			opts.Workers = 1
			serial, err := exp.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 4
			parallel, err := exp.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("workers=4 result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

func TestRunTable1WorkerInvariance(t *testing.T) {
	opts := Options{Seed: 5, Scale: 0.01, Runs: 1}
	serial, err := RunTable1(withWorkers(opts, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTable1(withWorkers(opts, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
