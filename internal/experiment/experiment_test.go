package experiment

import (
	"strings"
	"testing"

	"xbarsec/internal/attack"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
)

// tinyOpts keeps experiment tests fast: minimum dataset sizes, 2 runs.
func tinyOpts() Options {
	return Options{Seed: 1, Scale: 0.01, Runs: 2}
}

func TestFourConfigs(t *testing.T) {
	cfgs := FourConfigs()
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.Name()] = true
	}
	for _, want := range []string{"mnist/linear", "mnist/softmax", "cifar10/linear", "cifar10/softmax"} {
		if !names[want] {
			t.Fatalf("missing config %s", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Normalized()
	if o.Scale != 1 {
		t.Fatalf("default scale %v", o.Scale)
	}
	o = Options{Scale: 2}.Normalized()
	if o.Scale != 1 {
		t.Fatal("over-scale must clamp to 1")
	}
	if (Options{Scale: 0.1}).ScaledCount(1000, 200) != 200 {
		t.Fatal("scaled must respect minimum")
	}
	if (Options{Scale: 0.5}.Normalized()).ScaledCount(1000, 200) != 500 {
		t.Fatal("scaled must multiply")
	}
}

func TestBuildVictimProducesWorkingOracle(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts, testSrc(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if v.train.Len() < 100 || v.test.Len() < 50 {
		t.Fatalf("dataset sizes %d/%d", v.train.Len(), v.test.Len())
	}
	if len(v.signals) != v.net.Inputs() {
		t.Fatalf("signals %d, want %d", len(v.signals), v.net.Inputs())
	}
	// The victim must have learned something.
	if acc := v.net.Accuracy(v.test); acc < 0.3 {
		t.Fatalf("victim test accuracy %v suspiciously low", acc)
	}
	// All power signals are positive (conductances are positive).
	for j, s := range v.signals {
		if s <= 0 {
			t.Fatalf("signal %d = %v, want positive", j, s)
		}
	}
}

func TestRunTable1Structure(t *testing.T) {
	res, err := RunTable1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, v := range []float64{row.MeanCorrTrain, row.MeanCorrTest, row.CorrOfMeanTrain, row.CorrOfMeanTest} {
			if v < -1.000001 || v > 1.000001 {
				t.Fatalf("%s: correlation %v out of range", row.Config.Name(), v)
			}
		}
		// Paper's core Case-1 finding: correlation-of-mean is large and
		// exceeds the per-sample mean correlation.
		if row.CorrOfMeanTest < row.MeanCorrTest-0.05 {
			t.Fatalf("%s: corr-of-mean %v should dominate mean-corr %v",
				row.Config.Name(), row.CorrOfMeanTest, row.MeanCorrTest)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "mnist") || !strings.Contains(out, "cifar10") {
		t.Fatalf("render missing datasets:\n%s", out)
	}
}

func TestRunFig3Structure(t *testing.T) {
	res, err := RunFig3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.Sensitivity) != p.Width*p.Height || len(p.Norms) != p.Width*p.Height {
			t.Fatalf("%s: map sizes %d/%d vs %dx%d", p.Config.Name(), len(p.Sensitivity), len(p.Norms), p.Width, p.Height)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "1-norm map") {
		t.Fatal("render incomplete")
	}
}

func TestRunFig4Structure(t *testing.T) {
	res, err := RunFig4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, panel := range res.Panels {
		if len(panel.Curves) != 5 {
			t.Fatalf("%s: curves = %d", panel.Config.Name(), len(panel.Curves))
		}
		for _, c := range panel.Curves {
			if len(c.Strengths) != len(c.Accuracies) || len(c.Strengths) == 0 {
				t.Fatalf("curve %s has bad lengths", c.Method)
			}
			for _, a := range c.Accuracies {
				if a < 0 || a > 1 {
					t.Fatalf("accuracy %v out of range", a)
				}
			}
			// At eps=0 every method leaves accuracy at the clean level.
			if c.Strengths[0] == 0 && c.Accuracies[0] != panel.CleanAccuracy {
				t.Fatalf("%s %s: eps=0 accuracy %v != clean %v",
					panel.Config.Name(), c.Method, c.Accuracies[0], panel.CleanAccuracy)
			}
		}
	}
	// MNIST linear panel: the worst-case attack must dominate random-pixel
	// at the largest strength (the paper's ordering).
	panel := res.Panels[0]
	var worst, rp float64
	for _, c := range panel.Curves {
		last := c.Accuracies[len(c.Accuracies)-1]
		switch c.Method {
		case attack.PixelWorst:
			worst = last
		case attack.PixelRandom:
			rp = last
		}
	}
	if worst > rp {
		t.Fatalf("worst-case accuracy %v should be <= random-pixel %v at max strength", worst, rp)
	}
	if s := res.Series(); len(s) != 4 {
		t.Fatalf("series map size %d", len(s))
	}
	if out := res.Render(); !strings.Contains(out, "Figure 4") {
		t.Fatal("render incomplete")
	}
}

func TestRunFig5Structure(t *testing.T) {
	opts := Fig5Options{
		Options: Options{Seed: 3, Scale: 0.01, Runs: 2},
		Queries: []int{10, 60},
		Lambdas: []float64{0, 0.01},

		SurrogateEpochs: 8,
	}
	res, err := RunFig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Queries) != 2 || len(row.Lambdas) != 2 {
			t.Fatalf("grids %v %v", row.Queries, row.Lambdas)
		}
		for li := range row.Lambdas {
			for qi := range row.Queries {
				if got := len(row.SurrogateAcc[li][qi]); got != 2 {
					t.Fatalf("runs recorded = %d", got)
				}
				for _, a := range row.OracleAdvAcc[li][qi] {
					if a < 0 || a > 1 {
						t.Fatalf("accuracy %v out of range", a)
					}
				}
			}
		}
		d, p, err := row.Improvement(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value %v", p)
		}
		if d < -1 || d > 1 {
			t.Fatalf("delta %v", d)
		}
		if _, _, err := row.Improvement(0, 0); err == nil {
			t.Fatal("li=0 must be rejected")
		}
		if _, _, err := row.Improvement(1, 99); err == nil {
			t.Fatal("qi out of range must be rejected")
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure 5 row", "Surrogate test accuracy", "Δ adv-accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig5GridsFullScale(t *testing.T) {
	qs, ls := fig5Grids(Fig5Options{Options: Options{Scale: 1}}, 2000)
	if len(qs) != 7 || qs[len(qs)-1] != 2000 {
		t.Fatalf("full query grid %v", qs)
	}
	if len(ls) != 6 || ls[0] != 0 || ls[len(ls)-1] != 0.01 {
		t.Fatalf("full lambda grid %v", ls)
	}
	// Budget above trainN clamps and dedupes.
	qs, _ = fig5Grids(Fig5Options{Options: Options{Scale: 1}}, 600)
	for i := 1; i < len(qs); i++ {
		if qs[i] <= qs[i-1] {
			t.Fatalf("grid not strictly increasing: %v", qs)
		}
	}
	if qs[len(qs)-1] != 600 {
		t.Fatalf("grid must end at trainN: %v", qs)
	}
}

func TestFig5BootstrapImprovement(t *testing.T) {
	opts := Fig5Options{
		Options:         Options{Seed: 9, Scale: 0.01, Runs: 3},
		Queries:         []int{40},
		Lambdas:         []float64{0, 0.01},
		SurrogateEpochs: 6,
	}
	res, err := RunFig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	iv, err := row.BootstrapImprovement(1, 0, 0.95, testSrc(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := row.Improvement(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(d) {
		t.Fatalf("bootstrap CI %+v must contain the point estimate %v", iv, d)
	}
	if _, err := row.BootstrapImprovement(0, 0, 0.95, testSrc(t, 1)); err == nil {
		t.Fatal("li=0 must be rejected")
	}
}
