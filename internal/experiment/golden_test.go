package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"xbarsec/internal/experiment/engine"
)

// goldenOpts are the options the pre-engine code was run at to produce
// testdata/golden/*.txt (one file per registry experiment, captured
// from the runners as they existed before the grid-engine migration).
func goldenOpts() Options {
	return Options{Seed: 7, Scale: 0.01, Runs: 1}
}

// TestGoldenBitIdentity pins the grid-engine migration: every
// registered experiment's Render() output must byte-match the output of
// the pre-refactor runner at the same options. The golden files were
// generated from commit dce9a09 (the last pre-engine revision); they
// change only when an experiment's published numbers deliberately
// change.
func TestGoldenBitIdentity(t *testing.T) {
	if testing.Short() {
		// Deterministic replay of every experiment — no concurrency
		// value beyond what the store/pool race tests cover, and ~10x
		// slower under the race detector, which runs with -short.
		t.Skip("skipping full-registry golden replay in -short mode")
	}
	for _, name := range PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			exp, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			res, err := exp.Run(goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(res.Render())
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: output diverged from pre-engine golden\n--- got (%d bytes) ---\n%s\n--- want (%d bytes) ---\n%s",
					name, len(got), got, len(want), want)
			}
		})
	}
}

// TestRegistryCoversPaperOrder keeps the aggregate command lists and
// the registry in sync.
func TestRegistryCoversPaperOrder(t *testing.T) {
	names := map[string]bool{}
	for _, n := range engine.Names() {
		names[n] = true
	}
	for _, n := range PaperOrder() {
		if !names[n] {
			t.Fatalf("PaperOrder lists unregistered experiment %q", n)
		}
	}
	// Every registry entry must be reachable from the CLI's aggregate
	// commands or be a deliberate standalone (none today).
	inOrder := map[string]bool{}
	for _, n := range PaperOrder() {
		inOrder[n] = true
	}
	for n := range names {
		if !inOrder[n] {
			t.Fatalf("registered experiment %q missing from PaperOrder", n)
		}
	}
}
