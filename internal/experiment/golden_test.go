package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xbarsec/internal/experiment/engine"
)

// updateGoldens regenerates testdata/golden/*.txt instead of comparing
// against them. Run through `make goldens`; the lint CI job regenerates
// and diffs, so a stale golden cannot land.
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden from the current runners")

// goldenOpts are the options every golden file is produced at.
func goldenOpts() Options {
	return Options{Seed: 7, Scale: 0.01, Runs: 1}
}

// TestGoldenBitIdentity pins every registered experiment's Render()
// output byte-for-byte at goldenOpts. The files under testdata/golden
// were last retrained for protocol v2, when victim streams were unified
// onto the canonical config-rooted derivation (see victimstore.go);
// they change only when an experiment's published numbers deliberately
// change, via `make goldens`.
func TestGoldenBitIdentity(t *testing.T) {
	if testing.Short() && !*updateGoldens {
		// Deterministic replay of every experiment — no concurrency
		// value beyond what the store/pool race tests cover, and ~10x
		// slower under the race detector, which runs with -short.
		t.Skip("skipping full-registry golden replay in -short mode")
	}
	for _, name := range PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			exp, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			res, err := exp.Run(goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(res.Render())
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGoldens {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: output diverged from golden\n--- got (%d bytes) ---\n%s\n--- want (%d bytes) ---\n%s",
					name, len(got), got, len(want), want)
			}
		})
	}
}

// TestRegistryCoversPaperOrder keeps the aggregate command lists and
// the registry in sync.
func TestRegistryCoversPaperOrder(t *testing.T) {
	names := map[string]bool{}
	for _, n := range engine.Names() {
		names[n] = true
	}
	for _, n := range PaperOrder() {
		if !names[n] {
			t.Fatalf("PaperOrder lists unregistered experiment %q", n)
		}
	}
	// Every registry entry must be reachable from the CLI's aggregate
	// commands or be a deliberate standalone (none today).
	inOrder := map[string]bool{}
	for _, n := range PaperOrder() {
		inOrder[n] = true
	}
	for n := range names {
		if !inOrder[n] {
			t.Fatalf("registered experiment %q missing from PaperOrder", n)
		}
	}
}
