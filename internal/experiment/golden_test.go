package experiment

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/tensor"
)

// updateGoldens regenerates testdata/golden/*.txt instead of comparing
// against them. Run through `make goldens`; the lint CI job regenerates
// and diffs, so a stale golden cannot land.
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden from the current runners")

// goldenOpts are the options every golden file is produced at.
func goldenOpts() Options {
	return Options{Seed: 7, Scale: 0.01, Runs: 1}
}

// goldenTol is the abs+rel tolerance for numeric tokens when the goldens
// are replayed under a non-bit-exact backend. Reordered-summation ulps
// amplified through SGD reach the second decimal place of the published
// numbers at golden scale; anything larger than this is a real
// divergence, not rounding.
const goldenTol = 2e-2

// goldenNoiseBand exempts near-zero statistics from the pointwise
// tolerance: a rank correlation of a deliberately decorrelated channel
// (e.g. the masked array in ablate-masking) is noise around zero, and a
// single ulp-induced rank swap moves it by ~0.1. Two values that are
// both inside the band count as equal — the statistic stayed
// indistinguishable from zero, which is all the golden asserts about it.
const goldenNoiseBand = 0.2

// goldenNum matches the numeric tokens of a rendered table for the
// tolerance-mode comparison below.
var goldenNum = regexp.MustCompile(`-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?`)

// goldenSkeleton replaces every numeric token with "#" and collapses
// whitespace runs, so a sign flip or width change in a column-padded
// number doesn't break the structural comparison.
func goldenSkeleton(s string) string {
	return strings.Join(strings.Fields(goldenNum.ReplaceAllString(s, "#")), " ")
}

// compareGoldenTolerant checks a rendered output against a golden with
// numeric tokens allowed to drift within abs+rel tolerance and all
// surrounding text required to match. This is the comparison mode for
// non-bit-exact tensor backends: their kernels reorder floating-point
// accumulations, and a few epochs of SGD amplify the ulps into the low
// decimal places of the published numbers.
func compareGoldenTolerant(got, want string, tol float64) error {
	if gs, ws := goldenSkeleton(got), goldenSkeleton(want); gs != ws {
		return fmt.Errorf("non-numeric structure diverged\n--- got skeleton ---\n%s\n--- want skeleton ---\n%s", gs, ws)
	}
	gn := goldenNum.FindAllString(got, -1)
	wn := goldenNum.FindAllString(want, -1)
	for i := range gn {
		g, gerr := strconv.ParseFloat(gn[i], 64)
		w, werr := strconv.ParseFloat(wn[i], 64)
		if gerr != nil || werr != nil {
			return fmt.Errorf("numeric token %d unparseable: %q vs %q", i, gn[i], wn[i])
		}
		d := math.Abs(g - w)
		if d <= tol+tol*math.Abs(w) {
			continue
		}
		if math.Abs(g) < goldenNoiseBand && math.Abs(w) < goldenNoiseBand {
			continue
		}
		return fmt.Errorf("numeric token %d off by %g (tol %g): got %q want %q",
			i, d, tol+tol*math.Abs(w), gn[i], wn[i])
	}
	return nil
}

// TestGoldenBitIdentity pins every registered experiment's Render()
// output byte-for-byte at goldenOpts. The files under testdata/golden
// were last retrained for protocol v2, when victim streams were unified
// onto the canonical config-rooted derivation (see victimstore.go);
// they change only when an experiment's published numbers deliberately
// change, via `make goldens`. Under a non-bit-exact tensor backend
// (-tensor.fast) the byte pin relaxes to the tolerant numeric comparison
// above, and regenerating goldens is refused — committed goldens are
// defined by the reference backend only.
func TestGoldenBitIdentity(t *testing.T) {
	if testing.Short() && !*updateGoldens {
		// Deterministic replay of every experiment — no concurrency
		// value beyond what the store/pool race tests cover, and ~10x
		// slower under the race detector, which runs with -short.
		t.Skip("skipping full-registry golden replay in -short mode")
	}
	exact := tensor.Active().BitExact()
	if *updateGoldens && !exact {
		t.Fatalf("refusing -update-goldens under the %s tensor backend: goldens are defined by the bit-exact reference backend", tensor.ActiveName())
	}
	for _, name := range PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			exp, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			res, err := exp.Run(goldenOpts())
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(res.Render())
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGoldens {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !exact {
				if err := compareGoldenTolerant(string(got), string(want), goldenTol); err != nil {
					t.Fatalf("%s under %s backend: %v\n--- got ---\n%s\n--- want ---\n%s",
						name, tensor.ActiveName(), err, got, want)
				}
				return
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: output diverged from golden\n--- got (%d bytes) ---\n%s\n--- want (%d bytes) ---\n%s",
					name, len(got), got, len(want), want)
			}
		})
	}
}

// TestRegistryCoversPaperOrder keeps the aggregate command lists and
// the registry in sync.
func TestRegistryCoversPaperOrder(t *testing.T) {
	names := map[string]bool{}
	for _, n := range engine.Names() {
		names[n] = true
	}
	for _, n := range PaperOrder() {
		if !names[n] {
			t.Fatalf("PaperOrder lists unregistered experiment %q", n)
		}
	}
	// Every registry entry must be reachable from the CLI's aggregate
	// commands or be a deliberate standalone (none today).
	inOrder := map[string]bool{}
	for _, n := range PaperOrder() {
		inOrder[n] = true
	}
	for n := range names {
		if !inOrder[n] {
			t.Fatalf("registered experiment %q missing from PaperOrder", n)
		}
	}
}
