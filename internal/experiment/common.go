// Package experiment contains one runner per table and figure of the
// paper's evaluation, plus the ablations listed in DESIGN.md. Every runner
// is deterministic given Options.Seed and scales its workload with
// Options.Scale so the full sweeps (scale 1) and fast CI/bench sweeps
// (scale << 1) share one code path.
package experiment

import (
	"fmt"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/pool"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives every random choice in the experiment.
	Seed int64
	// Scale in (0, 1] shrinks dataset sizes and sweep densities; 1.0
	// reproduces paper-sized sweeps on the synthetic datasets.
	Scale float64
	// DataDir, when set, is searched for real MNIST/CIFAR files.
	DataDir string
	// Runs overrides the number of independent repetitions (0 = scaled
	// default: 5 for Table I, 10 for Figure 5, as in the paper).
	Runs int
	// Workers bounds the concurrent goroutines per fan-out level (0 =
	// all CPUs, 1 = strictly serial). Runners nest fan-outs — e.g.
	// Fig. 4 fans configurations and, within each, per-sample attack
	// evaluations — so total concurrency can exceed Workers (see
	// pool.Do); Workers == 1 disables every level and is exactly the
	// serial path. Any value produces bit-identical results: every
	// work item derives
	// its randomness from Seed via rng.Source.Split/SplitN keyed by the
	// item's identity — never from a stream shared across items — and
	// results are assembled in item order, so nothing depends on
	// goroutine scheduling.
	Workers int
}

// withDefaults normalizes an Options value.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

func (o Options) scaled(full int, minimum int) int {
	v := int(float64(full) * o.Scale)
	if v < minimum {
		v = minimum
	}
	return v
}

// ModelConfig is one of the paper's four dataset/head configurations.
type ModelConfig struct {
	// Kind selects the dataset family.
	Kind dataset.Kind
	// Act and Crit select the output head (linear+MSE or softmax+CE).
	Act  nn.Activation
	Crit nn.Loss
}

// Name returns a compact identifier like "mnist/linear".
func (c ModelConfig) Name() string {
	return fmt.Sprintf("%s/%s", c.Kind, c.Act)
}

// FourConfigs lists the paper's four configurations in the order of
// Table I and Figures 3-4.
func FourConfigs() []ModelConfig {
	return []ModelConfig{
		{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy},
		{Kind: dataset.CIFAR10, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.CIFAR10, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy},
	}
}

// victim bundles everything an experiment needs about one trained model
// hosted on an ideal crossbar.
type victim struct {
	cfg     ModelConfig
	train   *dataset.Dataset
	test    *dataset.Dataset
	net     *nn.Network
	hw      *crossbar.Network
	signals []float64 // raw power-channel column signals (basis queries)
}

// loadData returns train/test sets for a config, sized by Scale.
func loadData(cfg ModelConfig, opts Options, src *rng.Source) (train, test *dataset.Dataset, err error) {
	trainFull, testFull := 2000, 500
	if cfg.Kind == dataset.CIFAR10 {
		trainFull, testFull = 1500, 400
	}
	return dataset.Load(cfg.Kind, src, dataset.LoadOptions{
		DataDir: opts.DataDir,
		TrainN:  opts.scaled(trainFull, 200),
		TestN:   opts.scaled(testFull, 100),
	})
}

// trainCfgFor returns the training hyperparameters for a config.
func trainCfgFor(cfg ModelConfig) nn.TrainConfig {
	// ZeroInit: the single-layer problem is convex, so zero init plus
	// enough epochs emulates the paper's converged Keras training without
	// leaving init noise in the weight matrix's null-space component.
	tc := nn.TrainConfig{Epochs: 40, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true}
	if cfg.Act == nn.ActSoftmax {
		tc.LearningRate = 0.1
	}
	if cfg.Kind == dataset.CIFAR10 {
		// Mild L2 keeps the heavily-overparameterized CIFAR victims from
		// interpolating small training sets, which would zero the
		// training-split gradients Table I correlates; the rates land the
		// victims in the paper's ~30-40% CIFAR accuracy regime.
		if cfg.Act == nn.ActSoftmax {
			tc.LearningRate = 0.08
			tc.WeightDecay = 0.005
		} else {
			// MSE gradients scale with ‖u‖² ≈ 900 on dense 3072-dim CIFAR
			// inputs; the small rate keeps SGD stable.
			tc.Epochs = 60
			tc.LearningRate = 0.001
			tc.WeightDecay = 0.05
		}
	}
	return tc
}

// buildVictim trains the model for cfg, programs it onto an ideal
// crossbar, and extracts the power-channel column signals with basis
// queries, reproducing the attacker's Section III measurement procedure.
func buildVictim(cfg ModelConfig, opts Options, src *rng.Source) (*victim, error) {
	train, test, err := loadData(cfg, opts, src.Split("data"))
	if err != nil {
		return nil, fmt.Errorf("experiment: loading %s: %w", cfg.Name(), err)
	}
	net, _, err := nn.TrainNew(train, cfg.Act, cfg.Crit, trainCfgFor(cfg), src.Split("train"))
	if err != nil {
		return nil, fmt.Errorf("experiment: training %s: %w", cfg.Name(), err)
	}
	dcfg := crossbar.DefaultDeviceConfig()
	hw, err := crossbar.NewNetwork(net, dcfg, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: programming %s: %w", cfg.Name(), err)
	}
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
	if err != nil {
		return nil, err
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		return nil, fmt.Errorf("experiment: power extraction for %s: %w", cfg.Name(), err)
	}
	return &victim{cfg: cfg, train: train, test: test, net: net, hw: hw, signals: signals}, nil
}

// VictimAccuracies trains each of the four configurations once and
// returns {train, test} accuracy per config name — a calibration helper
// used by the CLI to verify the synthetic datasets land in the paper's
// accuracy regime (~90% MNIST, ~30-40% CIFAR for single-layer nets).
func VictimAccuracies(opts Options) (map[string][2]float64, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("calibration")
	configs := FourConfigs()
	accs := make([][2]float64, len(configs))
	err := pool.DoErr(opts.Workers, len(configs), func(ci int) error {
		cfg := configs[ci]
		v, err := buildVictim(cfg, opts, root.Split(cfg.Name()))
		if err != nil {
			return err
		}
		accs[ci] = [2]float64{v.net.Accuracy(v.train), v.net.Accuracy(v.test)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][2]float64, len(configs))
	for ci, cfg := range configs {
		out[cfg.Name()] = accs[ci]
	}
	return out, nil
}
