// Package experiment contains one runner per table and figure of the
// paper's evaluation, plus the ablations listed in DESIGN.md. Every
// runner is a declarative grid spec on the deterministic engine in
// internal/experiment/engine: cells fan across Options.Workers with
// bit-identical results at any worker count, victims are trained at
// most once per (config, seed, scale, data dir) through the
// process-wide victim store — every runner obtains them through
// victimFor, which derives one canonical stream per config — and every
// experiment registers itself by name so the CLI, the service layer
// and the HTTP API dispatch uniformly (see registry.go).
package experiment

import (
	"encoding/json"
	"fmt"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
)

// Options configures an experiment run; it is the engine's option type,
// shared by every grid in the registry.
type Options = engine.Options

// ModelConfig is one of the paper's four dataset/head configurations.
type ModelConfig struct {
	// Kind selects the dataset family.
	Kind dataset.Kind
	// Act and Crit select the output head (linear+MSE or softmax+CE).
	Act  nn.Activation
	Crit nn.Loss
}

// Name returns a compact identifier like "mnist/linear".
func (c ModelConfig) Name() string {
	return fmt.Sprintf("%s/%s", c.Kind, c.Act)
}

// MarshalJSON emits the configuration with symbolic names, the form the
// HTTP experiment API serves.
func (c ModelConfig) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind string `json:"kind"`
		Act  string `json:"act"`
		Crit string `json:"crit"`
	}{c.Kind.String(), c.Act.String(), c.Crit.String()})
}

// FourConfigs lists the paper's four configurations in the order of
// Table I and Figures 3-4.
func FourConfigs() []ModelConfig {
	return []ModelConfig{
		{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy},
		{Kind: dataset.CIFAR10, Act: nn.ActLinear, Crit: nn.LossMSE},
		{Kind: dataset.CIFAR10, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy},
	}
}

// configAxis is the descriptive axis over the paper's configurations.
func configAxis(configs []ModelConfig) engine.Axis {
	ax := engine.Axis{Name: "config"}
	for _, c := range configs {
		ax.Values = append(ax.Values, c.Name())
	}
	return ax
}

// victim bundles everything an experiment needs about one trained model
// hosted on an ideal crossbar. Victims obtained through the store are
// shared across runners and must be treated as read-only — the ideal
// crossbar is stateless, so concurrent evaluation is safe.
type victim struct {
	cfg     ModelConfig
	train   *dataset.Dataset
	test    *dataset.Dataset
	net     *nn.Network
	hw      *crossbar.Network
	signals []float64 // raw power-channel column signals (basis queries)
}

// loadData returns train/test sets for a config, sized by Scale.
func loadData(cfg ModelConfig, opts Options, src *rng.Source) (train, test *dataset.Dataset, err error) {
	trainN, testN := victimSplitSizes(cfg, opts)
	return dataset.Load(cfg.Kind, src, dataset.LoadOptions{
		DataDir: opts.DataDir,
		TrainN:  trainN,
		TestN:   testN,
	})
}

// victimSplitSizes resolves the Scale-dependent split sizes — part of a
// victim's store identity.
func victimSplitSizes(cfg ModelConfig, opts Options) (trainN, testN int) {
	trainFull, testFull := 2000, 500
	if cfg.Kind == dataset.CIFAR10 {
		trainFull, testFull = 1500, 400
	}
	return opts.ScaledCount(trainFull, 200), opts.ScaledCount(testFull, 100)
}

// trainCfgFor returns the training hyperparameters for a config.
func trainCfgFor(cfg ModelConfig) nn.TrainConfig {
	// ZeroInit: the single-layer problem is convex, so zero init plus
	// enough epochs emulates the paper's converged Keras training without
	// leaving init noise in the weight matrix's null-space component.
	tc := nn.TrainConfig{Epochs: 40, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true}
	if cfg.Act == nn.ActSoftmax {
		tc.LearningRate = 0.1
	}
	if cfg.Kind == dataset.CIFAR10 {
		// Mild L2 keeps the heavily-overparameterized CIFAR victims from
		// interpolating small training sets, which would zero the
		// training-split gradients Table I correlates; the rates land the
		// victims in the paper's ~30-40% CIFAR accuracy regime.
		if cfg.Act == nn.ActSoftmax {
			tc.LearningRate = 0.08
			tc.WeightDecay = 0.005
		} else {
			// MSE gradients scale with ‖u‖² ≈ 900 on dense 3072-dim CIFAR
			// inputs; the small rate keeps SGD stable.
			tc.Epochs = 60
			tc.LearningRate = 0.001
			tc.WeightDecay = 0.05
		}
	}
	return tc
}

// buildVictim trains the model for cfg, programs it onto an ideal
// crossbar, and extracts the power-channel column signals with basis
// queries, reproducing the attacker's Section III measurement procedure.
// Runners call victimFor instead, which memoizes this through the
// process-wide victim store from the canonical config-rooted stream.
func buildVictim(cfg ModelConfig, opts Options, src *rng.Source) (*victim, error) {
	train, test, err := loadData(cfg, opts, src.Split("data"))
	if err != nil {
		return nil, fmt.Errorf("experiment: loading %s: %w", cfg.Name(), err)
	}
	net, _, err := nn.TrainNew(train, cfg.Act, cfg.Crit, trainCfgFor(cfg), src.Split("train"))
	if err != nil {
		return nil, fmt.Errorf("experiment: training %s: %w", cfg.Name(), err)
	}
	dcfg := crossbar.DefaultDeviceConfig()
	hw, err := crossbar.NewNetwork(net, dcfg, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: programming %s: %w", cfg.Name(), err)
	}
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
	if err != nil {
		return nil, err
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		return nil, fmt.Errorf("experiment: power extraction for %s: %w", cfg.Name(), err)
	}
	return &victim{cfg: cfg, train: train, test: test, net: net, hw: hw, signals: signals}, nil
}
