package experiment

import (
	"fmt"
	"io"
	"math"

	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
)

// Table1Row holds the four correlation coefficients of one Table I line:
// the per-sample ("mean correlation") and per-dataset ("correlation of
// mean") Pearson correlations between |∂L/∂u_j| and the power-channel
// column 1-norm signals, on the train and test splits, averaged over
// Options.Runs independent training runs.
type Table1Row struct {
	Config          ModelConfig `json:"config"`
	MeanCorrTrain   float64     `json:"mean_corr_train"`
	MeanCorrTest    float64     `json:"mean_corr_test"`
	CorrOfMeanTrain float64     `json:"corr_of_mean_train"`
	CorrOfMeanTest  float64     `json:"corr_of_mean_test"`
}

// Table1Result is the full reproduction of Table I.
type Table1Result struct {
	Rows []Table1Row `json:"rows"`
	Runs int         `json:"runs"`
}

// table1Runs resolves the repetition count.
func table1Runs(opts Options) int {
	if opts.Runs > 0 {
		return opts.Runs
	}
	return opts.ScaledCount(5, 2)
}

// table1Cell is one (configuration, run) grid point.
type table1Cell struct {
	cfg ModelConfig
	run int
}

// table1Corrs is one cell's four correlation coefficients.
type table1Corrs struct {
	mcTrain, mcTest, cmTrain, cmTest float64
}

// table1Grid reproduces Table I on the grid engine: the (configuration
// x run) cross product, every cell of a configuration sharing that
// config's one canonical victim through the store, reduced by
// fixed-order averaging so float accumulation never depends on
// scheduling. (Since the victim-stream unification the per-run values
// of one config are identical — the paper's run-averaging layout is
// kept for the published table shape, and Runs still sizes the grid.)
var table1Grid = &engine.Grid[struct{}, table1Cell, table1Corrs, *Table1Result]{
	Name:  "table1",
	Title: "Table I correlation coefficients",
	Axes: func(t *engine.T) []engine.Axis {
		runs := make([]int, table1Runs(t.Opts))
		for i := range runs {
			runs[i] = i
		}
		return []engine.Axis{configAxis(FourConfigs()), engine.IntAxis("run", runs)}
	},
	Cells: func(t *engine.T, _ struct{}) ([]table1Cell, error) {
		configs := FourConfigs()
		runs := table1Runs(t.Opts)
		cells := make([]table1Cell, 0, len(configs)*runs)
		for _, coord := range engine.CrossProduct(len(configs), runs) {
			cells = append(cells, table1Cell{cfg: configs[coord[0]], run: coord[1]})
		}
		return cells, nil
	},
	Job: func(t *engine.T, _ struct{}, c table1Cell, _ *rng.Source) (table1Corrs, error) {
		var out table1Corrs
		v, err := victimFor(t, c.cfg)
		if err != nil {
			return out, err
		}
		out.mcTrain, out.cmTrain, err = sensitivityCorrelations(v, true)
		if err != nil {
			return out, fmt.Errorf("experiment: %s run %d train: %w", c.cfg.Name(), c.run, err)
		}
		out.mcTest, out.cmTest, err = sensitivityCorrelations(v, false)
		if err != nil {
			return out, fmt.Errorf("experiment: %s run %d test: %w", c.cfg.Name(), c.run, err)
		}
		return out, nil
	},
	Reduce: func(t *engine.T, _ struct{}, cells []table1Cell, results []table1Corrs) (*Table1Result, error) {
		configs := FourConfigs()
		runs := table1Runs(t.Opts)
		res := &Table1Result{Runs: runs}
		for ci, cfg := range configs {
			row := Table1Row{Config: cfg}
			for run := 0; run < runs; run++ {
				c := results[ci*runs+run]
				row.MeanCorrTrain += c.mcTrain
				row.MeanCorrTest += c.mcTest
				row.CorrOfMeanTrain += c.cmTrain
				row.CorrOfMeanTest += c.cmTest
			}
			inv := 1 / float64(runs)
			row.MeanCorrTrain *= inv
			row.MeanCorrTest *= inv
			row.CorrOfMeanTrain *= inv
			row.CorrOfMeanTest *= inv
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	},
}

// RunTable1 regenerates Table I: for each of the four configurations it
// trains Runs independent networks, extracts column 1-norm signals from
// crossbar power, and correlates them with the loss sensitivity.
func RunTable1(opts Options) (*Table1Result, error) {
	return table1Grid.Run(opts)
}

// sensitivityCorrelations computes, for one victim and one split, the
// mean per-sample correlation and the correlation of the mean sensitivity
// against the power-channel signals.
func sensitivityCorrelations(v *victim, train bool) (meanCorr, corrOfMean float64, err error) {
	ds := v.test
	if train {
		ds = v.train
	}
	oh := ds.OneHot()
	// One batched-GEMM gradient pass over the whole split; per-sample
	// values and the accumulation order below are bit-identical to calling
	// InputGradient per sample.
	grads, err := v.net.InputGradientBatch(ds.X, oh)
	if err != nil {
		return 0, 0, err
	}
	meanAbs := make([]float64, v.net.Inputs())
	var corrSum float64
	var corrCount int
	for i := 0; i < ds.Len(); i++ {
		g := grads.Row(i)
		for j := range g {
			g[j] = math.Abs(g[j])
			meanAbs[j] += g[j]
		}
		r, err := stats.Pearson(g, v.signals)
		if err != nil {
			// A degenerate sample (constant gradient) carries no
			// correlation information; skip it.
			continue
		}
		corrSum += r
		corrCount++
	}
	if corrCount == 0 {
		return 0, 0, fmt.Errorf("experiment: no valid per-sample correlations")
	}
	inv := 1 / float64(ds.Len())
	for j := range meanAbs {
		meanAbs[j] *= inv
	}
	cm, err := stats.Pearson(meanAbs, v.signals)
	if err != nil {
		return 0, 0, err
	}
	return corrSum / float64(corrCount), cm, nil
}

// Tables formats the result in the layout of the paper's Table I.
func (r *Table1Result) Tables() []*report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Table I: correlation between |dL/du| and column 1-norms (avg over %d runs)", r.Runs),
		Header: []string{
			"Dataset", "Activation",
			"MeanCorr(Train)", "MeanCorr(Test)",
			"CorrOfMean(Train)", "CorrOfMean(Test)",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Config.Kind.String(), row.Config.Act.String(),
			report.F(row.MeanCorrTrain, 2), report.F(row.MeanCorrTest, 2),
			report.F(row.CorrOfMeanTrain, 2), report.F(row.CorrOfMeanTest, 2),
		)
	}
	return []*report.Table{t}
}

// Render returns the table in the paper's layout.
func (r *Table1Result) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *Table1Result) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }
