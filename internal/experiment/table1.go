package experiment

import (
	"fmt"
	"math"

	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
)

// Table1Row holds the four correlation coefficients of one Table I line:
// the per-sample ("mean correlation") and per-dataset ("correlation of
// mean") Pearson correlations between |∂L/∂u_j| and the power-channel
// column 1-norm signals, on the train and test splits, averaged over
// Options.Runs independent training runs.
type Table1Row struct {
	Config          ModelConfig
	MeanCorrTrain   float64
	MeanCorrTest    float64
	CorrOfMeanTrain float64
	CorrOfMeanTest  float64
}

// Table1Result is the full reproduction of Table I.
type Table1Result struct {
	Rows []Table1Row
	Runs int
}

// RunTable1 regenerates Table I: for each of the four configurations it
// trains Runs independent networks, extracts column 1-norm signals from
// crossbar power, and correlates them with the loss sensitivity.
func RunTable1(opts Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	runs := opts.Runs
	if runs <= 0 {
		runs = opts.scaled(5, 2)
	}
	root := rng.New(opts.Seed).Split("table1")
	res := &Table1Result{Runs: runs}
	for _, cfg := range FourConfigs() {
		var row Table1Row
		row.Config = cfg
		for run := 0; run < runs; run++ {
			src := root.SplitN(cfg.Name(), run)
			v, err := buildVictim(cfg, opts, src)
			if err != nil {
				return nil, err
			}
			mcTrain, cmTrain, err := sensitivityCorrelations(v, true)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s run %d train: %w", cfg.Name(), run, err)
			}
			mcTest, cmTest, err := sensitivityCorrelations(v, false)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s run %d test: %w", cfg.Name(), run, err)
			}
			row.MeanCorrTrain += mcTrain
			row.MeanCorrTest += mcTest
			row.CorrOfMeanTrain += cmTrain
			row.CorrOfMeanTest += cmTest
		}
		inv := 1 / float64(runs)
		row.MeanCorrTrain *= inv
		row.MeanCorrTest *= inv
		row.CorrOfMeanTrain *= inv
		row.CorrOfMeanTest *= inv
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sensitivityCorrelations computes, for one victim and one split, the
// mean per-sample correlation and the correlation of the mean sensitivity
// against the power-channel signals.
func sensitivityCorrelations(v *victim, train bool) (meanCorr, corrOfMean float64, err error) {
	ds := v.test
	if train {
		ds = v.train
	}
	oh := ds.OneHot()
	meanAbs := make([]float64, v.net.Inputs())
	var corrSum float64
	var corrCount int
	for i := 0; i < ds.Len(); i++ {
		g := v.net.InputGradient(ds.X.Row(i), oh.Row(i))
		for j := range g {
			g[j] = math.Abs(g[j])
			meanAbs[j] += g[j]
		}
		r, err := stats.Pearson(g, v.signals)
		if err != nil {
			// A degenerate sample (constant gradient) carries no
			// correlation information; skip it.
			continue
		}
		corrSum += r
		corrCount++
	}
	if corrCount == 0 {
		return 0, 0, fmt.Errorf("experiment: no valid per-sample correlations")
	}
	inv := 1 / float64(ds.Len())
	for j := range meanAbs {
		meanAbs[j] *= inv
	}
	cm, err := stats.Pearson(meanAbs, v.signals)
	if err != nil {
		return 0, 0, err
	}
	return corrSum / float64(corrCount), cm, nil
}

// Render formats the result in the layout of the paper's Table I.
func (r *Table1Result) Render() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Table I: correlation between |dL/du| and column 1-norms (avg over %d runs)", r.Runs),
		Header: []string{
			"Dataset", "Activation",
			"MeanCorr(Train)", "MeanCorr(Test)",
			"CorrOfMean(Train)", "CorrOfMean(Test)",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Config.Kind.String(), row.Config.Act.String(),
			report.F(row.MeanCorrTrain, 2), report.F(row.MeanCorrTest, 2),
			report.F(row.CorrOfMeanTrain, 2), report.F(row.CorrOfMeanTest, 2),
		)
	}
	return t
}
