package experiment

import (
	"fmt"
	"math"

	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
)

// Table1Row holds the four correlation coefficients of one Table I line:
// the per-sample ("mean correlation") and per-dataset ("correlation of
// mean") Pearson correlations between |∂L/∂u_j| and the power-channel
// column 1-norm signals, on the train and test splits, averaged over
// Options.Runs independent training runs.
type Table1Row struct {
	Config          ModelConfig
	MeanCorrTrain   float64
	MeanCorrTest    float64
	CorrOfMeanTrain float64
	CorrOfMeanTest  float64
}

// Table1Result is the full reproduction of Table I.
type Table1Result struct {
	Rows []Table1Row
	Runs int
}

// RunTable1 regenerates Table I: for each of the four configurations it
// trains Runs independent networks, extracts column 1-norm signals from
// crossbar power, and correlates them with the loss sensitivity.
func RunTable1(opts Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	runs := opts.Runs
	if runs <= 0 {
		runs = opts.scaled(5, 2)
	}
	root := rng.New(opts.Seed).Split("table1")
	res := &Table1Result{Runs: runs}
	configs := FourConfigs()
	// One work item per (configuration, run) pair; each derives its seed
	// from the pair's identity alone, so the grid fans out across workers
	// with bit-identical results to the serial sweep.
	type cell struct{ mcTrain, mcTest, cmTrain, cmTest float64 }
	cells := make([]cell, len(configs)*runs)
	err := pool.DoErr(opts.Workers, len(cells), func(k int) error {
		cfg, run := configs[k/runs], k%runs
		src := root.SplitN(cfg.Name(), run)
		v, err := buildVictim(cfg, opts, src)
		if err != nil {
			return err
		}
		mcTrain, cmTrain, err := sensitivityCorrelations(v, true)
		if err != nil {
			return fmt.Errorf("experiment: %s run %d train: %w", cfg.Name(), run, err)
		}
		mcTest, cmTest, err := sensitivityCorrelations(v, false)
		if err != nil {
			return fmt.Errorf("experiment: %s run %d test: %w", cfg.Name(), run, err)
		}
		cells[k] = cell{mcTrain: mcTrain, mcTest: mcTest, cmTrain: cmTrain, cmTest: cmTest}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Reduce in fixed (configuration, run) order so float accumulation
	// never depends on scheduling.
	for ci, cfg := range configs {
		row := Table1Row{Config: cfg}
		for run := 0; run < runs; run++ {
			c := cells[ci*runs+run]
			row.MeanCorrTrain += c.mcTrain
			row.MeanCorrTest += c.mcTest
			row.CorrOfMeanTrain += c.cmTrain
			row.CorrOfMeanTest += c.cmTest
		}
		inv := 1 / float64(runs)
		row.MeanCorrTrain *= inv
		row.MeanCorrTest *= inv
		row.CorrOfMeanTrain *= inv
		row.CorrOfMeanTest *= inv
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sensitivityCorrelations computes, for one victim and one split, the
// mean per-sample correlation and the correlation of the mean sensitivity
// against the power-channel signals.
func sensitivityCorrelations(v *victim, train bool) (meanCorr, corrOfMean float64, err error) {
	ds := v.test
	if train {
		ds = v.train
	}
	oh := ds.OneHot()
	// One batched-GEMM gradient pass over the whole split; per-sample
	// values and the accumulation order below are bit-identical to calling
	// InputGradient per sample.
	grads, err := v.net.InputGradientBatch(ds.X, oh)
	if err != nil {
		return 0, 0, err
	}
	meanAbs := make([]float64, v.net.Inputs())
	var corrSum float64
	var corrCount int
	for i := 0; i < ds.Len(); i++ {
		g := grads.Row(i)
		for j := range g {
			g[j] = math.Abs(g[j])
			meanAbs[j] += g[j]
		}
		r, err := stats.Pearson(g, v.signals)
		if err != nil {
			// A degenerate sample (constant gradient) carries no
			// correlation information; skip it.
			continue
		}
		corrSum += r
		corrCount++
	}
	if corrCount == 0 {
		return 0, 0, fmt.Errorf("experiment: no valid per-sample correlations")
	}
	inv := 1 / float64(ds.Len())
	for j := range meanAbs {
		meanAbs[j] *= inv
	}
	cm, err := stats.Pearson(meanAbs, v.signals)
	if err != nil {
		return 0, 0, err
	}
	return corrSum / float64(corrCount), cm, nil
}

// Render formats the result in the layout of the paper's Table I.
func (r *Table1Result) Render() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Table I: correlation between |dL/du| and column 1-norms (avg over %d runs)", r.Runs),
		Header: []string{
			"Dataset", "Activation",
			"MeanCorr(Train)", "MeanCorr(Test)",
			"CorrOfMean(Train)", "CorrOfMean(Test)",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Config.Kind.String(), row.Config.Act.String(),
			report.F(row.MeanCorrTrain, 2), report.F(row.MeanCorrTest, 2),
			report.F(row.CorrOfMeanTrain, 2), report.F(row.CorrOfMeanTest, 2),
		)
	}
	return t
}
