package experiment

import (
	"io"
	"sort"

	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
)

// CalibrationRow is one configuration's victim accuracies.
type CalibrationRow struct {
	Config ModelConfig `json:"config"`
	// TrainAccuracy and TestAccuracy locate the victim in the paper's
	// accuracy regime (~90% MNIST, ~30-40% CIFAR for single-layer nets).
	TrainAccuracy float64 `json:"train_accuracy"`
	TestAccuracy  float64 `json:"test_accuracy"`
}

// CalibrationResult verifies the synthetic datasets land the victims in
// the paper's accuracy regime.
type CalibrationResult struct {
	Rows []CalibrationRow `json:"rows"`
}

// calibrateGrid trains each of the four configurations once and reports
// {train, test} accuracy per config — the CLI's calibration helper on
// the grid engine.
var calibrateGrid = &engine.Grid[struct{}, ModelConfig, CalibrationRow, *CalibrationResult]{
	Name:      "calibrate",
	Title:     "victim accuracies per configuration",
	SeedLabel: "calibration",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{configAxis(FourConfigs())}
	},
	Cells: func(t *engine.T, _ struct{}) ([]ModelConfig, error) {
		return FourConfigs(), nil
	},
	Job: func(t *engine.T, _ struct{}, cfg ModelConfig, _ *rng.Source) (CalibrationRow, error) {
		v, err := victimFor(t, cfg)
		if err != nil {
			return CalibrationRow{}, err
		}
		return CalibrationRow{
			Config:        cfg,
			TrainAccuracy: v.net.Accuracy(v.train),
			TestAccuracy:  v.net.Accuracy(v.test),
		}, nil
	},
	Reduce: func(t *engine.T, _ struct{}, cells []ModelConfig, rows []CalibrationRow) (*CalibrationResult, error) {
		return &CalibrationResult{Rows: rows}, nil
	},
}

// RunCalibration trains the four victims and reports their accuracies.
func RunCalibration(opts Options) (*CalibrationResult, error) {
	return calibrateGrid.Run(opts)
}

// VictimAccuracies returns {train, test} accuracy per config name — the
// map form of RunCalibration, kept for programmatic callers.
func VictimAccuracies(opts Options) (map[string][2]float64, error) {
	res, err := RunCalibration(opts)
	if err != nil {
		return nil, err
	}
	out := make(map[string][2]float64, len(res.Rows))
	for _, row := range res.Rows {
		out[row.Config.Name()] = [2]float64{row.TrainAccuracy, row.TestAccuracy}
	}
	return out, nil
}

// Tables formats the calibration as a table. Rows are sorted by config
// name, matching the pre-engine CLI output.
func (r *CalibrationResult) Tables() []*report.Table {
	tbl := &report.Table{
		Title:  "Victim calibration (paper regime: MNIST ~0.92, CIFAR-10 ~0.30-0.40 test)",
		Header: []string{"config", "train acc", "test acc"},
	}
	rows := make([]CalibrationRow, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Config.Name() < rows[j].Config.Name() })
	for _, row := range rows {
		tbl.AddRow(row.Config.Name(), report.F(row.TrainAccuracy, 3), report.F(row.TestAccuracy, 3))
	}
	return []*report.Table{tbl}
}

// Render formats the calibration table.
func (r *CalibrationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *CalibrationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }
