package experiment

import (
	"reflect"
	"sync"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

// storeDelta runs fn and returns how many victim trainings it caused.
// The victim store is process-global, so tests measure deltas rather
// than absolute counts.
func storeDelta(t *testing.T, fn func()) int64 {
	t.Helper()
	before := StoreStats().Trainings
	fn()
	return StoreStats().Trainings - before
}

// TestVictimStoreByteBudget pins the size-aware bound: with a byte
// budget smaller than two victims, the older one is evicted and
// retrains on the next request, while the store's byte gauge tracks
// what is retained.
func TestVictimStoreByteBudget(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	srcA := rng.New(501).Split("budget-test")
	srcB := rng.New(502).Split("budget-test")

	// Measure one victim's weight with an ample budget.
	ConfigureVictimStore(0, 0)
	defer func() { ConfigureVictimStore(0, 0); ResetVictimStore() }()
	if _, err := getVictim(cfg, opts, srcA); err != nil {
		t.Fatal(err)
	}
	one := StoreStats().Bytes
	if one <= 0 {
		t.Fatalf("victim byte estimate = %d", one)
	}

	// Budget for ~1.5 victims: the second insert evicts the first.
	ConfigureVictimStore(0, one+one/2)
	if _, err := getVictim(cfg, opts, srcA); err != nil {
		t.Fatal(err)
	}
	if _, err := getVictim(cfg, opts, srcB); err != nil {
		t.Fatal(err)
	}
	st := StoreStats()
	if st.Cached != 1 || st.Bytes > one+one/2 {
		t.Fatalf("store over budget: %d victims, %d bytes (budget %d)", st.Cached, st.Bytes, one+one/2)
	}
	// The evicted victim retrains; the retained one does not.
	if d := storeDelta(t, func() {
		if _, err := getVictim(cfg, opts, srcB); err != nil {
			t.Fatal(err)
		}
	}); d != 0 {
		t.Fatalf("retained victim retrained %d times", d)
	}
	if d := storeDelta(t, func() {
		if _, err := getVictim(cfg, opts, srcA); err != nil {
			t.Fatal(err)
		}
	}); d != 1 {
		t.Fatalf("evicted victim trained %d times, want 1", d)
	}
}

func TestVictimStoreTrainsOncePerKey(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	src := rng.New(101).Split("store-test")
	var first, second *victim
	d := storeDelta(t, func() {
		var err error
		if first, err = getVictim(cfg, opts, src); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("first request trained %d times, want 1", d)
	}
	d = storeDelta(t, func() {
		var err error
		if second, err = getVictim(cfg, opts, src); err != nil {
			t.Fatal(err)
		}
	})
	if d != 0 {
		t.Fatalf("identical request retrained (%d trainings)", d)
	}
	if first != second {
		t.Fatal("identical requests must share one victim instance")
	}
	// A different stream is a different victim.
	d = storeDelta(t, func() {
		other, err := getVictim(cfg, opts, rng.New(102).Split("store-test"))
		if err != nil {
			t.Fatal(err)
		}
		if other == first {
			t.Fatal("different streams must not share a victim")
		}
	})
	if d != 1 {
		t.Fatalf("distinct stream trained %d times, want 1", d)
	}
}

func TestVictimStoreMatchesDirectBuild(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy}
	stored, err := getVictim(cfg, opts, rng.New(103).Split("equiv"))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := buildVictim(cfg, opts, rng.New(103).Split("equiv"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored.net.W, direct.net.W) {
		t.Fatal("stored victim's weights diverge from a direct build")
	}
	if !reflect.DeepEqual(stored.signals, direct.signals) {
		t.Fatal("stored victim's power signals diverge from a direct build")
	}
}

// TestVictimStoreSingleflightUnderConcurrentRunners pins the collapse
// guarantee: N concurrent runners requesting the same victims cause
// each distinct victim to train exactly once.
func TestVictimStoreSingleflightUnderConcurrentRunners(t *testing.T) {
	opts := Options{Seed: 424242, Scale: 0.01}.Normalized()
	const runners = 4
	d := storeDelta(t, func() {
		var wg sync.WaitGroup
		errs := make([]error, runners)
		for r := 0; r < runners; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Every runner requests the same four victims (fig3's
				// streams at this seed).
				root := rng.New(opts.Seed).Split("fig3")
				for _, cfg := range FourConfigs() {
					if _, err := getVictim(cfg, opts, root.Split(cfg.Name())); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if d != int64(len(FourConfigs())) {
		t.Fatalf("%d concurrent runners trained %d victims, want exactly %d",
			runners, d, len(FourConfigs()))
	}
}

// TestRunnerReuseTrainsAtMostOncePerVictim pins the acceptance
// criterion end to end: re-running a full experiment in the same
// process trains nothing the second time.
func TestRunnerReuseTrainsAtMostOncePerVictim(t *testing.T) {
	opts := Options{Seed: 31337, Scale: 0.01, Runs: 1}
	first := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if first != int64(len(FourConfigs())) {
		t.Fatalf("cold fig3 trained %d victims, want %d", first, len(FourConfigs()))
	}
	again := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if again != 0 {
		t.Fatalf("warm fig3 retrained %d victims, want 0", again)
	}
}

func TestResetVictimStore(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	if _, err := getVictim(cfg, opts, rng.New(104).Split("reset")); err != nil {
		t.Fatal(err)
	}
	ResetVictimStore()
	st := StoreStats()
	if st.Cached != 0 || st.Trainings != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("store not empty after reset: %+v", st)
	}
	d := storeDelta(t, func() {
		if _, err := getVictim(cfg, opts, rng.New(104).Split("reset")); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("post-reset request trained %d times, want 1", d)
	}
}
