package experiment

import (
	"reflect"
	"sync"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
)

// storeDelta runs fn and returns how many victim trainings it caused.
// The victim store is process-global, so tests measure deltas rather
// than absolute counts.
func storeDelta(t *testing.T, fn func()) int64 {
	t.Helper()
	before := StoreStats().Trainings
	fn()
	return StoreStats().Trainings - before
}

func TestVictimStoreTrainsOncePerKey(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	src := rng.New(101).Split("store-test")
	var first, second *victim
	d := storeDelta(t, func() {
		var err error
		if first, err = getVictim(cfg, opts, src); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("first request trained %d times, want 1", d)
	}
	d = storeDelta(t, func() {
		var err error
		if second, err = getVictim(cfg, opts, src); err != nil {
			t.Fatal(err)
		}
	})
	if d != 0 {
		t.Fatalf("identical request retrained (%d trainings)", d)
	}
	if first != second {
		t.Fatal("identical requests must share one victim instance")
	}
	// A different stream is a different victim.
	d = storeDelta(t, func() {
		other, err := getVictim(cfg, opts, rng.New(102).Split("store-test"))
		if err != nil {
			t.Fatal(err)
		}
		if other == first {
			t.Fatal("different streams must not share a victim")
		}
	})
	if d != 1 {
		t.Fatalf("distinct stream trained %d times, want 1", d)
	}
}

func TestVictimStoreMatchesDirectBuild(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy}
	stored, err := getVictim(cfg, opts, rng.New(103).Split("equiv"))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := buildVictim(cfg, opts, rng.New(103).Split("equiv"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored.net.W, direct.net.W) {
		t.Fatal("stored victim's weights diverge from a direct build")
	}
	if !reflect.DeepEqual(stored.signals, direct.signals) {
		t.Fatal("stored victim's power signals diverge from a direct build")
	}
}

// TestVictimStoreSingleflightUnderConcurrentRunners pins the collapse
// guarantee: N concurrent runners requesting the same victims cause
// each distinct victim to train exactly once.
func TestVictimStoreSingleflightUnderConcurrentRunners(t *testing.T) {
	opts := Options{Seed: 424242, Scale: 0.01}.Normalized()
	const runners = 4
	d := storeDelta(t, func() {
		var wg sync.WaitGroup
		errs := make([]error, runners)
		for r := 0; r < runners; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Every runner requests the same four victims (fig3's
				// streams at this seed).
				root := rng.New(opts.Seed).Split("fig3")
				for _, cfg := range FourConfigs() {
					if _, err := getVictim(cfg, opts, root.Split(cfg.Name())); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if d != int64(len(FourConfigs())) {
		t.Fatalf("%d concurrent runners trained %d victims, want exactly %d",
			runners, d, len(FourConfigs()))
	}
}

// TestRunnerReuseTrainsAtMostOncePerVictim pins the acceptance
// criterion end to end: re-running a full experiment in the same
// process trains nothing the second time.
func TestRunnerReuseTrainsAtMostOncePerVictim(t *testing.T) {
	opts := Options{Seed: 31337, Scale: 0.01, Runs: 1}
	first := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if first != int64(len(FourConfigs())) {
		t.Fatalf("cold fig3 trained %d victims, want %d", first, len(FourConfigs()))
	}
	again := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if again != 0 {
		t.Fatalf("warm fig3 retrained %d victims, want 0", again)
	}
}

func TestResetVictimStore(t *testing.T) {
	opts := tinyOpts().Normalized()
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	if _, err := getVictim(cfg, opts, rng.New(104).Split("reset")); err != nil {
		t.Fatal(err)
	}
	ResetVictimStore()
	st := StoreStats()
	if st.Cached != 0 || st.Trainings != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("store not empty after reset: %+v", st)
	}
	d := storeDelta(t, func() {
		if _, err := getVictim(cfg, opts, rng.New(104).Split("reset")); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("post-reset request trained %d times, want 1", d)
	}
}
