package experiment

import (
	"reflect"
	"sync"
	"testing"

	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
)

// storeDelta runs fn and returns how many victim trainings it caused.
// The victim store is process-global, so tests measure deltas rather
// than absolute counts.
func storeDelta(t *testing.T, fn func()) int64 {
	t.Helper()
	before := StoreStats().Trainings
	fn()
	return StoreStats().Trainings - before
}

// seedOpts is tinyOpts at an explicit run seed — the only store-key
// dimension these tests vary.
func seedOpts(seed int64) Options {
	o := tinyOpts()
	o.Seed = seed
	return o.Normalized()
}

// TestVictimStoreByteBudget pins the size-aware bound: with a byte
// budget smaller than two victims, the older one is evicted and
// retrains on the next request, while the store's byte gauge tracks
// what is retained.
func TestVictimStoreByteBudget(t *testing.T) {
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	optsA := seedOpts(501)
	optsB := seedOpts(502)

	// Measure one victim's weight with an ample budget.
	ConfigureVictimStore(0, 0)
	defer func() { ConfigureVictimStore(0, 0); ResetVictimStore() }()
	if _, err := getVictim(cfg, optsA); err != nil {
		t.Fatal(err)
	}
	one := StoreStats().Bytes
	if one <= 0 {
		t.Fatalf("victim byte estimate = %d", one)
	}

	// Budget for ~1.5 victims: the second insert evicts the first.
	ConfigureVictimStore(0, one+one/2)
	if _, err := getVictim(cfg, optsA); err != nil {
		t.Fatal(err)
	}
	if _, err := getVictim(cfg, optsB); err != nil {
		t.Fatal(err)
	}
	st := StoreStats()
	if st.Cached != 1 || st.Bytes > one+one/2 {
		t.Fatalf("store over budget: %d victims, %d bytes (budget %d)", st.Cached, st.Bytes, one+one/2)
	}
	// The evicted victim retrains; the retained one does not.
	if d := storeDelta(t, func() {
		if _, err := getVictim(cfg, optsB); err != nil {
			t.Fatal(err)
		}
	}); d != 0 {
		t.Fatalf("retained victim retrained %d times", d)
	}
	if d := storeDelta(t, func() {
		if _, err := getVictim(cfg, optsA); err != nil {
			t.Fatal(err)
		}
	}); d != 1 {
		t.Fatalf("evicted victim trained %d times, want 1", d)
	}
}

func TestVictimStoreTrainsOncePerKey(t *testing.T) {
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	opts := seedOpts(101)
	var first, second *victim
	d := storeDelta(t, func() {
		var err error
		if first, err = getVictim(cfg, opts); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("first request trained %d times, want 1", d)
	}
	d = storeDelta(t, func() {
		var err error
		if second, err = getVictim(cfg, opts); err != nil {
			t.Fatal(err)
		}
	})
	if d != 0 {
		t.Fatalf("identical request retrained (%d trainings)", d)
	}
	if first != second {
		t.Fatal("identical requests must share one victim instance")
	}
	// A different run seed is a different victim.
	d = storeDelta(t, func() {
		other, err := getVictim(cfg, seedOpts(102))
		if err != nil {
			t.Fatal(err)
		}
		if other == first {
			t.Fatal("different seeds must not share a victim")
		}
	})
	if d != 1 {
		t.Fatalf("distinct seed trained %d times, want 1", d)
	}
}

// TestVictimStoreMatchesDirectBuild pins the canonical-stream contract:
// a stored victim is bit-identical to building directly from
// victimStream(cfg, opts).
func TestVictimStoreMatchesDirectBuild(t *testing.T) {
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy}
	opts := seedOpts(103)
	stored, err := getVictim(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := buildVictim(cfg, opts, victimStream(cfg, opts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored.net.W, direct.net.W) {
		t.Fatal("stored victim's weights diverge from a direct build")
	}
	if !reflect.DeepEqual(stored.signals, direct.signals) {
		t.Fatal("stored victim's power signals diverge from a direct build")
	}
}

// TestVictimStoreSingleflightUnderConcurrentRunners pins the collapse
// guarantee: N concurrent runners requesting the same victims cause
// each distinct victim to train exactly once.
func TestVictimStoreSingleflightUnderConcurrentRunners(t *testing.T) {
	opts := Options{Seed: 424242, Scale: 0.01}.Normalized()
	const runners = 4
	d := storeDelta(t, func() {
		var wg sync.WaitGroup
		errs := make([]error, runners)
		for r := 0; r < runners; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Every runner requests the paper's four victims at the
				// same options — the canonical stream makes these the
				// same four store entries regardless of which runner asks.
				for _, cfg := range FourConfigs() {
					if _, err := getVictim(cfg, opts); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if d != int64(len(FourConfigs())) {
		t.Fatalf("%d concurrent runners trained %d victims, want exactly %d",
			runners, d, len(FourConfigs()))
	}
}

// TestCrossRunnerVictimSharing pins the tentpole guarantee of the
// unified derivation: fig3, table1 and fig4 at the same options train
// each of the paper's four configs exactly once between them, and all
// three runners see the same victim instances (hence bit-identical
// weights and signals).
func TestCrossRunnerVictimSharing(t *testing.T) {
	opts := Options{Seed: 90210, Scale: 0.01, Runs: 2}
	norm := opts.Normalized()

	// Pre-resolve the victim pointers the runners should share.
	before := make(map[string]*victim)
	prime := storeDelta(t, func() {
		for _, cfg := range FourConfigs() {
			v, err := getVictim(cfg, norm)
			if err != nil {
				t.Fatal(err)
			}
			before[cfg.Name()] = v
		}
	})
	if prime != int64(len(FourConfigs())) {
		t.Fatalf("priming trained %d victims, want %d", prime, len(FourConfigs()))
	}

	// All three runners ride the already-trained victims: zero new
	// trainings across fig3 + table1 (Runs=2) + fig4.
	d := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
		if _, err := RunTable1(opts); err != nil {
			t.Fatal(err)
		}
		if _, err := RunFig4(opts); err != nil {
			t.Fatal(err)
		}
	})
	if d != 0 {
		t.Fatalf("fig3+table1+fig4 trained %d extra victims, want 0 (one victim per config)", d)
	}
	for _, cfg := range FourConfigs() {
		v, err := getVictim(cfg, norm)
		if err != nil {
			t.Fatal(err)
		}
		if v != before[cfg.Name()] {
			t.Fatalf("%s: runners did not share the canonical victim instance", cfg.Name())
		}
	}
}

// TestRunnerReuseTrainsAtMostOncePerVictim pins the acceptance
// criterion end to end: re-running a full experiment in the same
// process trains nothing the second time.
func TestRunnerReuseTrainsAtMostOncePerVictim(t *testing.T) {
	opts := Options{Seed: 31337, Scale: 0.01, Runs: 1}
	first := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if first != int64(len(FourConfigs())) {
		t.Fatalf("cold fig3 trained %d victims, want %d", first, len(FourConfigs()))
	}
	again := storeDelta(t, func() {
		if _, err := RunFig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if again != 0 {
		t.Fatalf("warm fig3 retrained %d victims, want 0", again)
	}
}

func TestResetVictimStore(t *testing.T) {
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	if _, err := getVictim(cfg, seedOpts(104)); err != nil {
		t.Fatal(err)
	}
	ResetVictimStore()
	st := StoreStats()
	if st.Cached != 0 || st.Trainings != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("store not empty after reset: %+v", st)
	}
	d := storeDelta(t, func() {
		if _, err := getVictim(cfg, seedOpts(104)); err != nil {
			t.Fatal(err)
		}
	})
	if d != 1 {
		t.Fatalf("post-reset request trained %d times, want 1", d)
	}
}
