package experiment

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGetVictimConvention enforces the victim-derivation contract
// documented in victimstore.go: runners obtain victims exclusively
// through victimFor. Direct getVictim and buildVictim calls are the
// store's own business — any other non-test file in this package that
// touches them is reintroducing a per-runner victim stream, exactly the
// divergence the protocol-v2 unification removed.
func TestGetVictimConvention(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if name == "victimstore.go" {
			continue // the store implements getVictim in terms of buildVictim
		}
		f, err := parser.ParseFile(fset, filepath.Clean(name), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "getVictim", "buildVictim":
				// common.go defines buildVictim; its declaration is not a
				// call, so reaching here means an actual invocation.
				t.Errorf("%s: %s called directly; runners must use victimFor",
					fset.Position(call.Pos()), id.Name)
			}
			return true
		})
	}
}
