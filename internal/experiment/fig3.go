package experiment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
)

// Fig3Panel is one (sensitivity map, 1-norm map) pair of Figure 3. For
// CIFAR-10 the maps cover only the first color channel, as in the paper.
type Fig3Panel struct {
	Config ModelConfig `json:"config"`
	// Sensitivity is the per-pixel mean |∂L/∂u_j| over the test set.
	Sensitivity []float64 `json:"sensitivity"`
	// Norms is the per-pixel power-channel 1-norm signal.
	Norms []float64 `json:"norms"`
	// Width and Height give the map geometry for rendering.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Corr is the Pearson correlation between the two maps.
	Corr float64 `json:"corr"`
}

// Fig3Result reproduces Figure 3's four panel pairs.
type Fig3Result struct {
	Panels []Fig3Panel `json:"panels"`
}

// fig3Grid reproduces Figure 3 on the grid engine: one cell per
// configuration, each correlating the victim's mean sensitivity map
// with its power-extracted column-1-norm map.
var fig3Grid = &engine.Grid[struct{}, ModelConfig, Fig3Panel, *Fig3Result]{
	Name:  "fig3",
	Title: "Figure 3 sensitivity / 1-norm heatmaps",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{configAxis(FourConfigs())}
	},
	Cells: func(t *engine.T, _ struct{}) ([]ModelConfig, error) {
		return FourConfigs(), nil
	},
	Job: func(t *engine.T, _ struct{}, cfg ModelConfig, _ *rng.Source) (Fig3Panel, error) {
		v, err := victimFor(t, cfg)
		if err != nil {
			return Fig3Panel{}, err
		}
		sens := v.net.MeanAbsInputGradient(v.test)
		norms := v.signals
		w, h := v.test.Width, v.test.Height
		plane := w * h
		// Paper plots only the first color channel for CIFAR-10.
		sensMap := dataset.FirstChannel(sens, w, h)
		normMap := dataset.FirstChannel(norms, w, h)
		corr, err := stats.Pearson(sensMap[:plane], normMap[:plane])
		if err != nil {
			return Fig3Panel{}, fmt.Errorf("experiment: fig3 %s: %w", cfg.Name(), err)
		}
		return Fig3Panel{
			Config: cfg, Sensitivity: sensMap, Norms: normMap,
			Width: w, Height: h, Corr: corr,
		}, nil
	},
	Reduce: func(t *engine.T, _ struct{}, cells []ModelConfig, panels []Fig3Panel) (*Fig3Result, error) {
		return &Fig3Result{Panels: panels}, nil
	},
}

// RunFig3 regenerates Figure 3: per configuration, the mean sensitivity
// map next to the power-extracted column-1-norm map.
func RunFig3(opts Options) (*Fig3Result, error) {
	return fig3Grid.Run(opts)
}

// Tables returns the correlation summary table.
func (r *Fig3Result) Tables() []*report.Table {
	tbl := &report.Table{
		Title:  "Figure 3: mean |sensitivity| vs power-extracted column 1-norms (first channel)",
		Header: []string{"Config", "Pearson r"},
	}
	for _, p := range r.Panels {
		tbl.AddRow(p.Config.Name(), report.F(p.Corr, 3))
	}
	return []*report.Table{tbl}
}

// Render produces side-by-side ASCII heatmaps per panel plus the
// correlation summary table.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Tables()[0].String())
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n[%s] mean |dL/du| map:\n%s", p.Config.Name(), report.Heatmap(p.Sensitivity, p.Width, p.Height))
		fmt.Fprintf(&b, "[%s] 1-norm map:\n%s", p.Config.Name(), report.Heatmap(p.Norms, p.Width, p.Height))
	}
	return b.String()
}

// WriteJSON serializes the structured result.
func (r *Fig3Result) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// Export writes each panel's maps as PGM images under dir, returning
// the written paths (the CLI's -out behavior).
func (r *Fig3Result) Export(dir string) ([]string, error) {
	var written []string
	for _, panel := range r.Panels {
		for _, m := range []struct {
			suffix string
			values []float64
		}{
			{"sensitivity", panel.Sensitivity},
			{"norms", panel.Norms},
		} {
			path := filepath.Join(dir, "fig3_"+sanitizeName(panel.Config.Name())+"_"+m.suffix+".pgm")
			if err := writePGMFile(path, m.values, panel.Width, panel.Height); err != nil {
				return written, err
			}
			written = append(written, path)
		}
	}
	return written, nil
}

// sanitizeName maps a config name onto a filesystem-safe token.
func sanitizeName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// writePGMFile writes one grayscale map to path, creating parent
// directories as needed.
func writePGMFile(path string, values []float64, w, h int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WritePGM(f, values, w, h); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
